# Empty compiler generated dependencies file for emx_labeling.
# This may be replaced when dependencies are built.
