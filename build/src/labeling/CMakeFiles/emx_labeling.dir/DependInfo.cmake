
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labeling/label.cc" "src/labeling/CMakeFiles/emx_labeling.dir/label.cc.o" "gcc" "src/labeling/CMakeFiles/emx_labeling.dir/label.cc.o.d"
  "/root/repo/src/labeling/label_debugger.cc" "src/labeling/CMakeFiles/emx_labeling.dir/label_debugger.cc.o" "gcc" "src/labeling/CMakeFiles/emx_labeling.dir/label_debugger.cc.o.d"
  "/root/repo/src/labeling/oracle.cc" "src/labeling/CMakeFiles/emx_labeling.dir/oracle.cc.o" "gcc" "src/labeling/CMakeFiles/emx_labeling.dir/oracle.cc.o.d"
  "/root/repo/src/labeling/sampler.cc" "src/labeling/CMakeFiles/emx_labeling.dir/sampler.cc.o" "gcc" "src/labeling/CMakeFiles/emx_labeling.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/block/CMakeFiles/emx_block.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/emx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/emx_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/emx_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
