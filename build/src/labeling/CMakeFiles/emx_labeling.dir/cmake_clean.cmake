file(REMOVE_RECURSE
  "CMakeFiles/emx_labeling.dir/label.cc.o"
  "CMakeFiles/emx_labeling.dir/label.cc.o.d"
  "CMakeFiles/emx_labeling.dir/label_debugger.cc.o"
  "CMakeFiles/emx_labeling.dir/label_debugger.cc.o.d"
  "CMakeFiles/emx_labeling.dir/oracle.cc.o"
  "CMakeFiles/emx_labeling.dir/oracle.cc.o.d"
  "CMakeFiles/emx_labeling.dir/sampler.cc.o"
  "CMakeFiles/emx_labeling.dir/sampler.cc.o.d"
  "libemx_labeling.a"
  "libemx_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
