file(REMOVE_RECURSE
  "libemx_labeling.a"
)
