file(REMOVE_RECURSE
  "libemx_cli.a"
)
