
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli.cc" "src/cli/CMakeFiles/emx_cli.dir/cli.cc.o" "gcc" "src/cli/CMakeFiles/emx_cli.dir/cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/emx_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/feature/CMakeFiles/emx_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/emx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/emx_block.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/emx_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/emx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/emx_labeling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
