# Empty compiler generated dependencies file for emx_cli.
# This may be replaced when dependencies are built.
