file(REMOVE_RECURSE
  "CMakeFiles/emx_cli.dir/cli.cc.o"
  "CMakeFiles/emx_cli.dir/cli.cc.o.d"
  "libemx_cli.a"
  "libemx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
