# Empty compiler generated dependencies file for emx.
# This may be replaced when dependencies are built.
