# Empty dependencies file for emx.
# This may be replaced when dependencies are built.
