file(REMOVE_RECURSE
  "../../tools/emx"
  "../../tools/emx.pdb"
  "CMakeFiles/emx.dir/emx_main.cc.o"
  "CMakeFiles/emx.dir/emx_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
