# Empty compiler generated dependencies file for emx_eval.
# This may be replaced when dependencies are built.
