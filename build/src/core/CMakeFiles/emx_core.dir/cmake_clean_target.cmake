file(REMOVE_RECURSE
  "libemx_core.a"
)
