file(REMOVE_RECURSE
  "CMakeFiles/emx_core.dir/logging.cc.o"
  "CMakeFiles/emx_core.dir/logging.cc.o.d"
  "CMakeFiles/emx_core.dir/random.cc.o"
  "CMakeFiles/emx_core.dir/random.cc.o.d"
  "CMakeFiles/emx_core.dir/status.cc.o"
  "CMakeFiles/emx_core.dir/status.cc.o.d"
  "CMakeFiles/emx_core.dir/strings.cc.o"
  "CMakeFiles/emx_core.dir/strings.cc.o.d"
  "libemx_core.a"
  "libemx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
