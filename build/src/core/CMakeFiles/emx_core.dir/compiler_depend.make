# Empty compiler generated dependencies file for emx_core.
# This may be replaced when dependencies are built.
