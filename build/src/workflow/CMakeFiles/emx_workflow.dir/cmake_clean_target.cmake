file(REMOVE_RECURSE
  "libemx_workflow.a"
)
