file(REMOVE_RECURSE
  "CMakeFiles/emx_workflow.dir/cluster_analysis.cc.o"
  "CMakeFiles/emx_workflow.dir/cluster_analysis.cc.o.d"
  "CMakeFiles/emx_workflow.dir/em_workflow.cc.o"
  "CMakeFiles/emx_workflow.dir/em_workflow.cc.o.d"
  "CMakeFiles/emx_workflow.dir/match_set.cc.o"
  "CMakeFiles/emx_workflow.dir/match_set.cc.o.d"
  "libemx_workflow.a"
  "libemx_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
