# Empty compiler generated dependencies file for emx_workflow.
# This may be replaced when dependencies are built.
