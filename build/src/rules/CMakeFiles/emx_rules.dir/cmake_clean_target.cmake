file(REMOVE_RECURSE
  "libemx_rules.a"
)
