file(REMOVE_RECURSE
  "CMakeFiles/emx_rules.dir/feature_rules.cc.o"
  "CMakeFiles/emx_rules.dir/feature_rules.cc.o.d"
  "CMakeFiles/emx_rules.dir/match_rules.cc.o"
  "CMakeFiles/emx_rules.dir/match_rules.cc.o.d"
  "CMakeFiles/emx_rules.dir/number_pattern.cc.o"
  "CMakeFiles/emx_rules.dir/number_pattern.cc.o.d"
  "libemx_rules.a"
  "libemx_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
