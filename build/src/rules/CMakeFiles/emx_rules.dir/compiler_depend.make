# Empty compiler generated dependencies file for emx_rules.
# This may be replaced when dependencies are built.
