# Empty dependencies file for emx_ml.
# This may be replaced when dependencies are built.
