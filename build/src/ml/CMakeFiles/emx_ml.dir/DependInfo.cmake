
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/emx_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/emx_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/emx_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/ml/CMakeFiles/emx_ml.dir/linear_regression.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/linear_regression.cc.o.d"
  "/root/repo/src/ml/linear_svm.cc" "src/ml/CMakeFiles/emx_ml.dir/linear_svm.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/linear_svm.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/emx_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/matcher.cc" "src/ml/CMakeFiles/emx_ml.dir/matcher.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/matcher.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/emx_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/emx_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/emx_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/threshold.cc" "src/ml/CMakeFiles/emx_ml.dir/threshold.cc.o" "gcc" "src/ml/CMakeFiles/emx_ml.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
