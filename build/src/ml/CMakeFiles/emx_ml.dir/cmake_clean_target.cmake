file(REMOVE_RECURSE
  "libemx_ml.a"
)
