file(REMOVE_RECURSE
  "CMakeFiles/emx_ml.dir/cross_validation.cc.o"
  "CMakeFiles/emx_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/emx_ml.dir/dataset.cc.o"
  "CMakeFiles/emx_ml.dir/dataset.cc.o.d"
  "CMakeFiles/emx_ml.dir/decision_tree.cc.o"
  "CMakeFiles/emx_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/emx_ml.dir/linear_regression.cc.o"
  "CMakeFiles/emx_ml.dir/linear_regression.cc.o.d"
  "CMakeFiles/emx_ml.dir/linear_svm.cc.o"
  "CMakeFiles/emx_ml.dir/linear_svm.cc.o.d"
  "CMakeFiles/emx_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/emx_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/emx_ml.dir/matcher.cc.o"
  "CMakeFiles/emx_ml.dir/matcher.cc.o.d"
  "CMakeFiles/emx_ml.dir/metrics.cc.o"
  "CMakeFiles/emx_ml.dir/metrics.cc.o.d"
  "CMakeFiles/emx_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/emx_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/emx_ml.dir/random_forest.cc.o"
  "CMakeFiles/emx_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/emx_ml.dir/threshold.cc.o"
  "CMakeFiles/emx_ml.dir/threshold.cc.o.d"
  "libemx_ml.a"
  "libemx_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
