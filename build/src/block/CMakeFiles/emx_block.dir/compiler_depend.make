# Empty compiler generated dependencies file for emx_block.
# This may be replaced when dependencies are built.
