file(REMOVE_RECURSE
  "CMakeFiles/emx_block.dir/attr_equivalence_blocker.cc.o"
  "CMakeFiles/emx_block.dir/attr_equivalence_blocker.cc.o.d"
  "CMakeFiles/emx_block.dir/blocker.cc.o"
  "CMakeFiles/emx_block.dir/blocker.cc.o.d"
  "CMakeFiles/emx_block.dir/blocking_debugger.cc.o"
  "CMakeFiles/emx_block.dir/blocking_debugger.cc.o.d"
  "CMakeFiles/emx_block.dir/candidate_set.cc.o"
  "CMakeFiles/emx_block.dir/candidate_set.cc.o.d"
  "CMakeFiles/emx_block.dir/overlap_blocker.cc.o"
  "CMakeFiles/emx_block.dir/overlap_blocker.cc.o.d"
  "CMakeFiles/emx_block.dir/rule_blocker.cc.o"
  "CMakeFiles/emx_block.dir/rule_blocker.cc.o.d"
  "CMakeFiles/emx_block.dir/similarity_join.cc.o"
  "CMakeFiles/emx_block.dir/similarity_join.cc.o.d"
  "libemx_block.a"
  "libemx_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
