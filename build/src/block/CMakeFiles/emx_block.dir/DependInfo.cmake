
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/attr_equivalence_blocker.cc" "src/block/CMakeFiles/emx_block.dir/attr_equivalence_blocker.cc.o" "gcc" "src/block/CMakeFiles/emx_block.dir/attr_equivalence_blocker.cc.o.d"
  "/root/repo/src/block/blocker.cc" "src/block/CMakeFiles/emx_block.dir/blocker.cc.o" "gcc" "src/block/CMakeFiles/emx_block.dir/blocker.cc.o.d"
  "/root/repo/src/block/blocking_debugger.cc" "src/block/CMakeFiles/emx_block.dir/blocking_debugger.cc.o" "gcc" "src/block/CMakeFiles/emx_block.dir/blocking_debugger.cc.o.d"
  "/root/repo/src/block/candidate_set.cc" "src/block/CMakeFiles/emx_block.dir/candidate_set.cc.o" "gcc" "src/block/CMakeFiles/emx_block.dir/candidate_set.cc.o.d"
  "/root/repo/src/block/overlap_blocker.cc" "src/block/CMakeFiles/emx_block.dir/overlap_blocker.cc.o" "gcc" "src/block/CMakeFiles/emx_block.dir/overlap_blocker.cc.o.d"
  "/root/repo/src/block/rule_blocker.cc" "src/block/CMakeFiles/emx_block.dir/rule_blocker.cc.o" "gcc" "src/block/CMakeFiles/emx_block.dir/rule_blocker.cc.o.d"
  "/root/repo/src/block/similarity_join.cc" "src/block/CMakeFiles/emx_block.dir/similarity_join.cc.o" "gcc" "src/block/CMakeFiles/emx_block.dir/similarity_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/emx_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/emx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
