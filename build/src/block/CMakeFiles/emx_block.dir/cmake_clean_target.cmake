file(REMOVE_RECURSE
  "libemx_block.a"
)
