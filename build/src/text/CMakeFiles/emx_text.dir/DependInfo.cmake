
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/numeric_similarity.cc" "src/text/CMakeFiles/emx_text.dir/numeric_similarity.cc.o" "gcc" "src/text/CMakeFiles/emx_text.dir/numeric_similarity.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/text/CMakeFiles/emx_text.dir/phonetic.cc.o" "gcc" "src/text/CMakeFiles/emx_text.dir/phonetic.cc.o.d"
  "/root/repo/src/text/sequence_similarity.cc" "src/text/CMakeFiles/emx_text.dir/sequence_similarity.cc.o" "gcc" "src/text/CMakeFiles/emx_text.dir/sequence_similarity.cc.o.d"
  "/root/repo/src/text/set_similarity.cc" "src/text/CMakeFiles/emx_text.dir/set_similarity.cc.o" "gcc" "src/text/CMakeFiles/emx_text.dir/set_similarity.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/emx_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/emx_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
