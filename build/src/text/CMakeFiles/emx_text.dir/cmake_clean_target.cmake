file(REMOVE_RECURSE
  "libemx_text.a"
)
