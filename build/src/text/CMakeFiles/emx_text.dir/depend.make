# Empty dependencies file for emx_text.
# This may be replaced when dependencies are built.
