file(REMOVE_RECURSE
  "CMakeFiles/emx_text.dir/numeric_similarity.cc.o"
  "CMakeFiles/emx_text.dir/numeric_similarity.cc.o.d"
  "CMakeFiles/emx_text.dir/phonetic.cc.o"
  "CMakeFiles/emx_text.dir/phonetic.cc.o.d"
  "CMakeFiles/emx_text.dir/sequence_similarity.cc.o"
  "CMakeFiles/emx_text.dir/sequence_similarity.cc.o.d"
  "CMakeFiles/emx_text.dir/set_similarity.cc.o"
  "CMakeFiles/emx_text.dir/set_similarity.cc.o.d"
  "CMakeFiles/emx_text.dir/tokenizer.cc.o"
  "CMakeFiles/emx_text.dir/tokenizer.cc.o.d"
  "libemx_text.a"
  "libemx_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
