# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("table")
subdirs("text")
subdirs("block")
subdirs("feature")
subdirs("labeling")
subdirs("rules")
subdirs("ml")
subdirs("workflow")
subdirs("eval")
subdirs("datagen")
subdirs("cli")
