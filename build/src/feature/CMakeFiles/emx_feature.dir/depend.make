# Empty dependencies file for emx_feature.
# This may be replaced when dependencies are built.
