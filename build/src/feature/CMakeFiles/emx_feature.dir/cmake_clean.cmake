file(REMOVE_RECURSE
  "CMakeFiles/emx_feature.dir/attribute_type.cc.o"
  "CMakeFiles/emx_feature.dir/attribute_type.cc.o.d"
  "CMakeFiles/emx_feature.dir/feature.cc.o"
  "CMakeFiles/emx_feature.dir/feature.cc.o.d"
  "CMakeFiles/emx_feature.dir/feature_gen.cc.o"
  "CMakeFiles/emx_feature.dir/feature_gen.cc.o.d"
  "CMakeFiles/emx_feature.dir/vectorizer.cc.o"
  "CMakeFiles/emx_feature.dir/vectorizer.cc.o.d"
  "libemx_feature.a"
  "libemx_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
