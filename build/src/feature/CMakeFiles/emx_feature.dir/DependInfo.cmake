
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feature/attribute_type.cc" "src/feature/CMakeFiles/emx_feature.dir/attribute_type.cc.o" "gcc" "src/feature/CMakeFiles/emx_feature.dir/attribute_type.cc.o.d"
  "/root/repo/src/feature/feature.cc" "src/feature/CMakeFiles/emx_feature.dir/feature.cc.o" "gcc" "src/feature/CMakeFiles/emx_feature.dir/feature.cc.o.d"
  "/root/repo/src/feature/feature_gen.cc" "src/feature/CMakeFiles/emx_feature.dir/feature_gen.cc.o" "gcc" "src/feature/CMakeFiles/emx_feature.dir/feature_gen.cc.o.d"
  "/root/repo/src/feature/vectorizer.cc" "src/feature/CMakeFiles/emx_feature.dir/vectorizer.cc.o" "gcc" "src/feature/CMakeFiles/emx_feature.dir/vectorizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/block/CMakeFiles/emx_block.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/emx_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/emx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
