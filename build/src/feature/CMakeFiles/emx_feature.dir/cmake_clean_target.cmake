file(REMOVE_RECURSE
  "libemx_feature.a"
)
