file(REMOVE_RECURSE
  "libemx_datagen.a"
)
