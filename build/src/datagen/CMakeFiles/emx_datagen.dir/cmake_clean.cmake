file(REMOVE_RECURSE
  "CMakeFiles/emx_datagen.dir/case_study.cc.o"
  "CMakeFiles/emx_datagen.dir/case_study.cc.o.d"
  "CMakeFiles/emx_datagen.dir/iris_matcher.cc.o"
  "CMakeFiles/emx_datagen.dir/iris_matcher.cc.o.d"
  "CMakeFiles/emx_datagen.dir/preprocess.cc.o"
  "CMakeFiles/emx_datagen.dir/preprocess.cc.o.d"
  "CMakeFiles/emx_datagen.dir/universe.cc.o"
  "CMakeFiles/emx_datagen.dir/universe.cc.o.d"
  "CMakeFiles/emx_datagen.dir/vocab.cc.o"
  "CMakeFiles/emx_datagen.dir/vocab.cc.o.d"
  "libemx_datagen.a"
  "libemx_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
