# Empty compiler generated dependencies file for emx_datagen.
# This may be replaced when dependencies are built.
