file(REMOVE_RECURSE
  "CMakeFiles/emx_table.dir/csv.cc.o"
  "CMakeFiles/emx_table.dir/csv.cc.o.d"
  "CMakeFiles/emx_table.dir/profile.cc.o"
  "CMakeFiles/emx_table.dir/profile.cc.o.d"
  "CMakeFiles/emx_table.dir/schema.cc.o"
  "CMakeFiles/emx_table.dir/schema.cc.o.d"
  "CMakeFiles/emx_table.dir/table.cc.o"
  "CMakeFiles/emx_table.dir/table.cc.o.d"
  "CMakeFiles/emx_table.dir/table_ops.cc.o"
  "CMakeFiles/emx_table.dir/table_ops.cc.o.d"
  "CMakeFiles/emx_table.dir/value.cc.o"
  "CMakeFiles/emx_table.dir/value.cc.o.d"
  "libemx_table.a"
  "libemx_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
