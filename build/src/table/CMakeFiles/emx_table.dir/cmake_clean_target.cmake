file(REMOVE_RECURSE
  "libemx_table.a"
)
