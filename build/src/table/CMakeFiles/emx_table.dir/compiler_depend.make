# Empty compiler generated dependencies file for emx_table.
# This may be replaced when dependencies are built.
