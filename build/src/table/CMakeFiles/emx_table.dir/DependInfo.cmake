
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/csv.cc" "src/table/CMakeFiles/emx_table.dir/csv.cc.o" "gcc" "src/table/CMakeFiles/emx_table.dir/csv.cc.o.d"
  "/root/repo/src/table/profile.cc" "src/table/CMakeFiles/emx_table.dir/profile.cc.o" "gcc" "src/table/CMakeFiles/emx_table.dir/profile.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/table/CMakeFiles/emx_table.dir/schema.cc.o" "gcc" "src/table/CMakeFiles/emx_table.dir/schema.cc.o.d"
  "/root/repo/src/table/table.cc" "src/table/CMakeFiles/emx_table.dir/table.cc.o" "gcc" "src/table/CMakeFiles/emx_table.dir/table.cc.o.d"
  "/root/repo/src/table/table_ops.cc" "src/table/CMakeFiles/emx_table.dir/table_ops.cc.o" "gcc" "src/table/CMakeFiles/emx_table.dir/table_ops.cc.o.d"
  "/root/repo/src/table/value.cc" "src/table/CMakeFiles/emx_table.dir/value.cc.o" "gcc" "src/table/CMakeFiles/emx_table.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
