# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/feature_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/table_ops_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/phonetic_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_join_test[1]_include.cmake")
include("/root/repo/build/tests/feature_rules_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/universe_property_test[1]_include.cmake")
include("/root/repo/build/tests/ml_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/csv_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
