# Empty compiler generated dependencies file for cluster_analysis_test.
# This may be replaced when dependencies are built.
