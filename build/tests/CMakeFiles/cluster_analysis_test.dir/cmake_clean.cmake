file(REMOVE_RECURSE
  "CMakeFiles/cluster_analysis_test.dir/cluster_analysis_test.cc.o"
  "CMakeFiles/cluster_analysis_test.dir/cluster_analysis_test.cc.o.d"
  "cluster_analysis_test"
  "cluster_analysis_test.pdb"
  "cluster_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
