# Empty dependencies file for feature_rules_test.
# This may be replaced when dependencies are built.
