file(REMOVE_RECURSE
  "CMakeFiles/feature_rules_test.dir/feature_rules_test.cc.o"
  "CMakeFiles/feature_rules_test.dir/feature_rules_test.cc.o.d"
  "feature_rules_test"
  "feature_rules_test.pdb"
  "feature_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
