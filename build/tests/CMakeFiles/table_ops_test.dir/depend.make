# Empty dependencies file for table_ops_test.
# This may be replaced when dependencies are built.
