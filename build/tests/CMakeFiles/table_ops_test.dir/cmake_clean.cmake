file(REMOVE_RECURSE
  "CMakeFiles/table_ops_test.dir/table_ops_test.cc.o"
  "CMakeFiles/table_ops_test.dir/table_ops_test.cc.o.d"
  "table_ops_test"
  "table_ops_test.pdb"
  "table_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
