file(REMOVE_RECURSE
  "CMakeFiles/csv_pipeline_test.dir/csv_pipeline_test.cc.o"
  "CMakeFiles/csv_pipeline_test.dir/csv_pipeline_test.cc.o.d"
  "csv_pipeline_test"
  "csv_pipeline_test.pdb"
  "csv_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
