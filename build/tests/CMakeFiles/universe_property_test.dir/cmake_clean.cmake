file(REMOVE_RECURSE
  "CMakeFiles/universe_property_test.dir/universe_property_test.cc.o"
  "CMakeFiles/universe_property_test.dir/universe_property_test.cc.o.d"
  "universe_property_test"
  "universe_property_test.pdb"
  "universe_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universe_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
