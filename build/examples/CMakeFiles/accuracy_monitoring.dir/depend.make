# Empty dependencies file for accuracy_monitoring.
# This may be replaced when dependencies are built.
