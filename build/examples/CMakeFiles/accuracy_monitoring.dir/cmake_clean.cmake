file(REMOVE_RECURSE
  "CMakeFiles/accuracy_monitoring.dir/accuracy_monitoring.cpp.o"
  "CMakeFiles/accuracy_monitoring.dir/accuracy_monitoring.cpp.o.d"
  "accuracy_monitoring"
  "accuracy_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
