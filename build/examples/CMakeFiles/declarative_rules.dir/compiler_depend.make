# Empty compiler generated dependencies file for declarative_rules.
# This may be replaced when dependencies are built.
