file(REMOVE_RECURSE
  "CMakeFiles/declarative_rules.dir/declarative_rules.cpp.o"
  "CMakeFiles/declarative_rules.dir/declarative_rules.cpp.o.d"
  "declarative_rules"
  "declarative_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/declarative_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
