file(REMOVE_RECURSE
  "CMakeFiles/rule_patching.dir/rule_patching.cpp.o"
  "CMakeFiles/rule_patching.dir/rule_patching.cpp.o.d"
  "rule_patching"
  "rule_patching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_patching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
