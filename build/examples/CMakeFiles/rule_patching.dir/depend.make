# Empty dependencies file for rule_patching.
# This may be replaced when dependencies are built.
