file(REMOVE_RECURSE
  "CMakeFiles/blocking_debugger.dir/blocking_debugger.cpp.o"
  "CMakeFiles/blocking_debugger.dir/blocking_debugger.cpp.o.d"
  "blocking_debugger"
  "blocking_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
