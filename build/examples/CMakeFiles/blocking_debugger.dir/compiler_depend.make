# Empty compiler generated dependencies file for blocking_debugger.
# This may be replaced when dependencies are built.
