# Empty compiler generated dependencies file for umetrics_case_study.
# This may be replaced when dependencies are built.
