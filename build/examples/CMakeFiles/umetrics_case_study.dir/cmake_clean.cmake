file(REMOVE_RECURSE
  "CMakeFiles/umetrics_case_study.dir/umetrics_case_study.cpp.o"
  "CMakeFiles/umetrics_case_study.dir/umetrics_case_study.cpp.o.d"
  "umetrics_case_study"
  "umetrics_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umetrics_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
