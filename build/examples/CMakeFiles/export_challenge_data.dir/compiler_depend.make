# Empty compiler generated dependencies file for export_challenge_data.
# This may be replaced when dependencies are built.
