file(REMOVE_RECURSE
  "CMakeFiles/export_challenge_data.dir/export_challenge_data.cpp.o"
  "CMakeFiles/export_challenge_data.dir/export_challenge_data.cpp.o.d"
  "export_challenge_data"
  "export_challenge_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_challenge_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
