# Empty dependencies file for exp_sec9_workflow_v1.
# This may be replaced when dependencies are built.
