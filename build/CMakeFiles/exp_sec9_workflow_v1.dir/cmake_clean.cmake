file(REMOVE_RECURSE
  "CMakeFiles/exp_sec9_workflow_v1.dir/bench/exp_sec9_workflow_v1.cc.o"
  "CMakeFiles/exp_sec9_workflow_v1.dir/bench/exp_sec9_workflow_v1.cc.o.d"
  "bench/exp_sec9_workflow_v1"
  "bench/exp_sec9_workflow_v1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec9_workflow_v1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
