# Empty compiler generated dependencies file for exp_sec9_matchers.
# This may be replaced when dependencies are built.
