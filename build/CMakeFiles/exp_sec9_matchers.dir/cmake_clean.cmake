file(REMOVE_RECURSE
  "CMakeFiles/exp_sec9_matchers.dir/bench/exp_sec9_matchers.cc.o"
  "CMakeFiles/exp_sec9_matchers.dir/bench/exp_sec9_matchers.cc.o.d"
  "bench/exp_sec9_matchers"
  "bench/exp_sec9_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec9_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
