file(REMOVE_RECURSE
  "CMakeFiles/exp_sec10_clusters.dir/bench/exp_sec10_clusters.cc.o"
  "CMakeFiles/exp_sec10_clusters.dir/bench/exp_sec10_clusters.cc.o.d"
  "bench/exp_sec10_clusters"
  "bench/exp_sec10_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec10_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
