# Empty compiler generated dependencies file for exp_sec10_clusters.
# This may be replaced when dependencies are built.
