# Empty dependencies file for exp_fig2_tables.
# This may be replaced when dependencies are built.
