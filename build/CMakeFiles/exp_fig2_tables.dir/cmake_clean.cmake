file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_tables.dir/bench/exp_fig2_tables.cc.o"
  "CMakeFiles/exp_fig2_tables.dir/bench/exp_fig2_tables.cc.o.d"
  "bench/exp_fig2_tables"
  "bench/exp_fig2_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
