file(REMOVE_RECURSE
  "CMakeFiles/exp_label_budget.dir/bench/exp_label_budget.cc.o"
  "CMakeFiles/exp_label_budget.dir/bench/exp_label_budget.cc.o.d"
  "bench/exp_label_budget"
  "bench/exp_label_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_label_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
