# Empty dependencies file for exp_label_budget.
# This may be replaced when dependencies are built.
