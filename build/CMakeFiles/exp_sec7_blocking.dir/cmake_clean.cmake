file(REMOVE_RECURSE
  "CMakeFiles/exp_sec7_blocking.dir/bench/exp_sec7_blocking.cc.o"
  "CMakeFiles/exp_sec7_blocking.dir/bench/exp_sec7_blocking.cc.o.d"
  "bench/exp_sec7_blocking"
  "bench/exp_sec7_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec7_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
