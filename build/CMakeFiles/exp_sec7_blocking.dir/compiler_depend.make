# Empty compiler generated dependencies file for exp_sec7_blocking.
# This may be replaced when dependencies are built.
