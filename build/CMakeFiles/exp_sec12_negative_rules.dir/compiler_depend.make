# Empty compiler generated dependencies file for exp_sec12_negative_rules.
# This may be replaced when dependencies are built.
