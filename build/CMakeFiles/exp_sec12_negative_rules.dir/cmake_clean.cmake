file(REMOVE_RECURSE
  "CMakeFiles/exp_sec12_negative_rules.dir/bench/exp_sec12_negative_rules.cc.o"
  "CMakeFiles/exp_sec12_negative_rules.dir/bench/exp_sec12_negative_rules.cc.o.d"
  "bench/exp_sec12_negative_rules"
  "bench/exp_sec12_negative_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec12_negative_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
