# Empty dependencies file for exp_sec8_labeling.
# This may be replaced when dependencies are built.
