file(REMOVE_RECURSE
  "CMakeFiles/exp_sec8_labeling.dir/bench/exp_sec8_labeling.cc.o"
  "CMakeFiles/exp_sec8_labeling.dir/bench/exp_sec8_labeling.cc.o.d"
  "bench/exp_sec8_labeling"
  "bench/exp_sec8_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec8_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
