file(REMOVE_RECURSE
  "CMakeFiles/exp_sec6_preprocess.dir/bench/exp_sec6_preprocess.cc.o"
  "CMakeFiles/exp_sec6_preprocess.dir/bench/exp_sec6_preprocess.cc.o.d"
  "bench/exp_sec6_preprocess"
  "bench/exp_sec6_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec6_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
