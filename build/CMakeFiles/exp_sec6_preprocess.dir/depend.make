# Empty dependencies file for exp_sec6_preprocess.
# This may be replaced when dependencies are built.
