# Empty dependencies file for bench_matchers.
# This may be replaced when dependencies are built.
