
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_matchers.cc" "CMakeFiles/bench_matchers.dir/bench/bench_matchers.cc.o" "gcc" "CMakeFiles/bench_matchers.dir/bench/bench_matchers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/emx_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/emx_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/emx_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/emx_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/feature/CMakeFiles/emx_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/emx_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/emx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/emx_block.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/emx_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/emx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
