file(REMOVE_RECURSE
  "CMakeFiles/bench_matchers.dir/bench/bench_matchers.cc.o"
  "CMakeFiles/bench_matchers.dir/bench/bench_matchers.cc.o.d"
  "bench/bench_matchers"
  "bench/bench_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
