# Empty dependencies file for exp_sec10_workflow_v2.
# This may be replaced when dependencies are built.
