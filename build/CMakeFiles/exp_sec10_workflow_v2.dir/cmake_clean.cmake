file(REMOVE_RECURSE
  "CMakeFiles/exp_sec10_workflow_v2.dir/bench/exp_sec10_workflow_v2.cc.o"
  "CMakeFiles/exp_sec10_workflow_v2.dir/bench/exp_sec10_workflow_v2.cc.o.d"
  "bench/exp_sec10_workflow_v2"
  "bench/exp_sec10_workflow_v2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec10_workflow_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
