file(REMOVE_RECURSE
  "CMakeFiles/exp_sec11_accuracy.dir/bench/exp_sec11_accuracy.cc.o"
  "CMakeFiles/exp_sec11_accuracy.dir/bench/exp_sec11_accuracy.cc.o.d"
  "bench/exp_sec11_accuracy"
  "bench/exp_sec11_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec11_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
