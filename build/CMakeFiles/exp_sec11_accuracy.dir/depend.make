# Empty dependencies file for exp_sec11_accuracy.
# This may be replaced when dependencies are built.
