# Empty dependencies file for exp_ablation_features.
# This may be replaced when dependencies are built.
