# Empty compiler generated dependencies file for exp_ablation_features.
# This may be replaced when dependencies are built.
