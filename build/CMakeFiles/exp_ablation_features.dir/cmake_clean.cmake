file(REMOVE_RECURSE
  "CMakeFiles/exp_ablation_features.dir/bench/exp_ablation_features.cc.o"
  "CMakeFiles/exp_ablation_features.dir/bench/exp_ablation_features.cc.o.d"
  "bench/exp_ablation_features"
  "bench/exp_ablation_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
