#include <gtest/gtest.h>

#include "src/eval/corleone_estimator.h"

namespace emx {
namespace {

CandidateSet CS(std::initializer_list<RecordPair> pairs) {
  return CandidateSet(std::vector<RecordPair>(pairs));
}

LabeledSet Labels(std::initializer_list<std::pair<RecordPair, Label>> items) {
  LabeledSet out;
  for (const auto& [p, l] : items) out.SetLabel(p, l);
  return out;
}

TEST(EstimateAccuracyTest, PerfectMatcher) {
  CandidateSet predicted = CS({{0, 0}, {1, 1}});
  LabeledSet sample = Labels({{{0, 0}, Label::kYes},
                              {{1, 1}, Label::kYes},
                              {{2, 2}, Label::kNo},
                              {{3, 3}, Label::kNo}});
  auto est = EstimateAccuracy(predicted, sample);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->precision.point, 1.0);
  EXPECT_DOUBLE_EQ(est->recall.point, 1.0);
  // Degenerate proportion: zero-width interval at 1.
  EXPECT_DOUBLE_EQ(est->precision.lo, 1.0);
  EXPECT_DOUBLE_EQ(est->precision.hi, 1.0);
  EXPECT_EQ(est->sample_size, 4u);
  EXPECT_EQ(est->unsure_ignored, 0u);
}

TEST(EstimateAccuracyTest, HandComputedCounts) {
  // In-sample: predicted+Yes = 2, predicted+No = 1, missed Yes = 1.
  CandidateSet predicted = CS({{0, 0}, {1, 1}, {2, 2}});
  LabeledSet sample = Labels({{{0, 0}, Label::kYes},
                              {{1, 1}, Label::kYes},
                              {{2, 2}, Label::kNo},
                              {{3, 3}, Label::kYes},
                              {{4, 4}, Label::kNo}});
  auto est = EstimateAccuracy(predicted, sample);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->precision.point, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(est->recall.point, 2.0 / 3.0);
  EXPECT_EQ(est->precision.support, 3u);
  EXPECT_EQ(est->recall.support, 3u);
  // Interval brackets the point and stays in [0, 1].
  EXPECT_LE(est->precision.lo, est->precision.point);
  EXPECT_GE(est->precision.hi, est->precision.point);
  EXPECT_GE(est->precision.lo, 0.0);
  EXPECT_LE(est->precision.hi, 1.0);
}

TEST(EstimateAccuracyTest, UnsurePairsIgnored) {
  CandidateSet predicted = CS({{0, 0}, {1, 1}});
  LabeledSet sample = Labels({{{0, 0}, Label::kYes},
                              {{1, 1}, Label::kUnsure},   // ignored FP-ish
                              {{2, 2}, Label::kUnsure}});  // ignored
  auto est = EstimateAccuracy(predicted, sample);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->unsure_ignored, 2u);
  EXPECT_EQ(est->sample_size, 1u);
  EXPECT_DOUBLE_EQ(est->precision.point, 1.0);
}

TEST(EstimateAccuracyTest, WiderZWidensInterval) {
  CandidateSet predicted = CS({{0, 0}, {1, 1}, {2, 2}});
  LabeledSet sample = Labels({{{0, 0}, Label::kYes},
                              {{1, 1}, Label::kYes},
                              {{2, 2}, Label::kNo}});
  auto narrow = EstimateAccuracy(predicted, sample, /*z=*/1.0);
  auto wide = EstimateAccuracy(predicted, sample, /*z=*/2.58);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_LT(wide->precision.lo, narrow->precision.lo);
  EXPECT_GT(wide->precision.hi, narrow->precision.hi);
}

TEST(EstimateAccuracyTest, EmptySampleIsError) {
  EXPECT_EQ(EstimateAccuracy(CS({{0, 0}}), LabeledSet()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EstimateAccuracyTest, MoreSamplesTightenTheInterval) {
  // The §11 step-3 move: doubling the labeled sample narrows the range.
  CandidateSet predicted;
  {
    std::vector<RecordPair> p;
    for (uint32_t i = 0; i < 100; ++i) p.push_back({i, i});
    predicted = CandidateSet(std::move(p));
  }
  LabeledSet small, large;
  for (uint32_t i = 0; i < 200; ++i) {
    // 80% of predicted are true; universe interleaves predicted/others.
    RecordPair pair{i, i};
    Label label = (i < 100) ? (i % 5 == 0 ? Label::kNo : Label::kYes)
                            : Label::kNo;
    if (i % 2 == 0) small.SetLabel(pair, label);
    large.SetLabel(pair, label);
  }
  auto est_small = EstimateAccuracy(predicted, small);
  auto est_large = EstimateAccuracy(predicted, large);
  ASSERT_TRUE(est_small.ok() && est_large.ok());
  EXPECT_LT(est_large->precision.hi - est_large->precision.lo,
            est_small->precision.hi - est_small->precision.lo);
}

TEST(IntervalEstimateTest, ToStringFormat) {
  IntervalEstimate e;
  e.lo = 0.796;
  e.hi = 0.8601;
  EXPECT_EQ(e.ToString(), "(79.6%, 86.0%)");
}

// --- gold metrics -------------------------------------------------------------

TEST(GoldMetricsTest, Counts) {
  CandidateSet predicted = CS({{0, 0}, {1, 1}, {2, 2}});
  CandidateSet gold = CS({{0, 0}, {1, 1}, {3, 3}});
  GoldMetrics m = ComputeGoldMetrics(predicted, gold);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_DOUBLE_EQ(m.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.F1(), 2.0 / 3.0);
}

TEST(GoldMetricsTest, AmbiguousPairsExcludedBothWays) {
  CandidateSet predicted = CS({{0, 0}, {1, 1}});
  CandidateSet gold = CS({{0, 0}, {2, 2}});
  CandidateSet ambiguous = CS({{1, 1}, {2, 2}});
  GoldMetrics m = ComputeGoldMetrics(predicted, gold, ambiguous);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fp, 0u);  // (1,1) is ambiguous, not an FP
  EXPECT_EQ(m.fn, 0u);  // (2,2) is ambiguous, not an FN
}

TEST(GoldMetricsTest, EmptyPrediction) {
  GoldMetrics m = ComputeGoldMetrics(CandidateSet(), CS({{0, 0}}));
  EXPECT_EQ(m.tp, 0u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
}

}  // namespace
}  // namespace emx
