#include "src/core/retry.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/failpoint.h"
#include "src/table/csv.h"

namespace emx {
namespace {

using std::chrono::milliseconds;

// A fake clock: the policy's injectable sleep records each backoff instead
// of waiting, so the tests assert the exact exponential schedule in
// microseconds of wall time.
RetryPolicy RecordingPolicy(std::vector<milliseconds>* slept,
                            int max_attempts = 3) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff = milliseconds(10);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(5000);
  policy.sleep = [slept](milliseconds d) { slept->push_back(d); };
  return policy;
}

class RetryTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

TEST_F(RetryTest, OnlyIoErrorIsRetryable) {
  EXPECT_TRUE(IsRetryableCode(StatusCode::kIoError));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kParseError));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInternal));
}

TEST_F(RetryTest, BackoffDoublesAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(10);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(35);
  EXPECT_EQ(BackoffForAttempt(policy, 2), milliseconds(10));
  EXPECT_EQ(BackoffForAttempt(policy, 3), milliseconds(20));
  EXPECT_EQ(BackoffForAttempt(policy, 4), milliseconds(35));  // capped (40)
  EXPECT_EQ(BackoffForAttempt(policy, 5), milliseconds(35));  // capped (80)
}

TEST_F(RetryTest, SucceedsFirstAttemptWithoutSleeping) {
  std::vector<milliseconds> slept;
  RetryPolicy policy = RecordingPolicy(&slept);
  int calls = 0;
  Status s = RetryStatus(policy, "noop", [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST_F(RetryTest, RetriesIoErrorWithExponentialBackoff) {
  std::vector<milliseconds> slept;
  RetryPolicy policy = RecordingPolicy(&slept);
  int calls = 0;
  Status s = RetryStatus(policy, "flaky", [&] {
    return ++calls < 3 ? Status::IoError("transient") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept, (std::vector<milliseconds>{milliseconds(10),
                                              milliseconds(20)}));
}

TEST_F(RetryTest, GivesUpAfterMaxAttempts) {
  std::vector<milliseconds> slept;
  RetryPolicy policy = RecordingPolicy(&slept, /*max_attempts=*/3);
  int calls = 0;
  Status s = RetryStatus(policy, "doomed", [&] {
    ++calls;
    return Status::IoError("still broken");
  });
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);
}

TEST_F(RetryTest, NonRetryableCodeFailsAfterOneAttempt) {
  std::vector<milliseconds> slept;
  RetryPolicy policy = RecordingPolicy(&slept);
  int calls = 0;
  Status s = RetryStatus(policy, "deterministic", [&] {
    ++calls;
    return Status::ParseError("bad syntax");
  });
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST_F(RetryTest, ResultVariantReturnsValueAfterRetries) {
  std::vector<milliseconds> slept;
  RetryPolicy policy = RecordingPolicy(&slept);
  int calls = 0;
  Result<int> r = Retry<int>(policy, "flaky-value", [&]() -> Result<int> {
    if (++calls < 2) return Status::IoError("transient");
    return 42;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(slept, std::vector<milliseconds>{milliseconds(10)});
}

// The acceptance-criteria scenario end to end: a count=2 IoError failpoint on
// csv/read makes the first two read attempts fail; the retry layer backs off
// 10ms then 20ms on the fake clock and the third attempt parses the file.
TEST_F(RetryTest, CsvReadRetriesInjectedIoErrorThenSucceeds) {
  std::string path = ::testing::TempDir() + "/emx_retry_read.csv";
  ASSERT_TRUE(WriteCsvFile(*ReadCsvString("a,b\n1,2\n"), path).ok());
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("csv/read:error(IoError),count=2")
                  .ok());
  std::vector<milliseconds> slept;
  CsvReadOptions options;
  options.retry = RecordingPolicy(&slept);
  Result<Table> t = ReadCsvFile(path, options);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(slept, (std::vector<milliseconds>{milliseconds(10),
                                              milliseconds(20)}));
  FailPoint* fp = FailPointRegistry::Global().Find("csv/read");
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->fires(), 2u);
}

// With more injected failures than attempts, the retry budget is exhausted
// and the last injected IoError surfaces.
TEST_F(RetryTest, CsvReadExhaustsRetryBudget) {
  std::string path = ::testing::TempDir() + "/emx_retry_read2.csv";
  ASSERT_TRUE(WriteCsvFile(*ReadCsvString("a,b\n1,2\n"), path).ok());
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("csv/read:error(IoError),count=5")
                  .ok());
  std::vector<milliseconds> slept;
  CsvReadOptions options;
  options.retry = RecordingPolicy(&slept);
  Result<Table> t = ReadCsvFile(path, options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIoError);
  EXPECT_EQ(slept.size(), 2u);
}

// A missing file is NotFound — deterministic, not retried.
TEST_F(RetryTest, CsvReadMissingFileIsNotRetried) {
  std::vector<milliseconds> slept;
  CsvReadOptions options;
  options.retry = RecordingPolicy(&slept);
  Result<Table> t =
      ReadCsvFile(::testing::TempDir() + "/emx_no_such_file.csv", options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(slept.empty());
}

// A malformed file is ParseError — deterministic, one attempt only even
// though the read itself succeeded.
TEST_F(RetryTest, CsvParseErrorIsNotRetried) {
  std::string path = ::testing::TempDir() + "/emx_retry_bad.csv";
  {
    // A ragged CSV, written as raw bytes (WriteCsvFile can't produce one).
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char* bad = "a,b\n1,2,3\n";
    fwrite(bad, 1, strlen(bad), f);
    fclose(f);
  }
  std::vector<milliseconds> slept;
  CsvReadOptions options;
  options.retry = RecordingPolicy(&slept);
  Result<Table> t = ReadCsvFile(path, options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(slept.empty());
}

// csv/write is also instrumented and retried.
TEST_F(RetryTest, CsvWriteRetriesInjectedIoError) {
  std::string path = ::testing::TempDir() + "/emx_retry_write.csv";
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("csv/write:error(IoError),count=1")
                  .ok());
  std::vector<milliseconds> slept;
  CsvWriteOptions options;
  options.retry = RecordingPolicy(&slept);
  Status s = WriteCsvFile(*ReadCsvString("a\nx\n"), path, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(slept, std::vector<milliseconds>{milliseconds(10)});
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 1u);
}

}  // namespace
}  // namespace emx
