#include <cmath>

#include <gtest/gtest.h>

#include "src/feature/attribute_type.h"
#include "src/feature/feature.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/table/csv.h"

namespace emx {
namespace {

// --- attribute type inference -------------------------------------------------

std::vector<Value> Col(std::initializer_list<Value> vs) { return vs; }

TEST(AttrKindTest, Numeric) {
  EXPECT_EQ(InferAttrKind(Col({Value(1.5), Value(int64_t{2}), Value::Null()})),
            AttrKind::kNumeric);
}

TEST(AttrKindTest, Boolean) {
  EXPECT_EQ(InferAttrKind(Col({Value(int64_t{0}), Value(int64_t{1})})),
            AttrKind::kBoolean);
  // 0/1 doubles count too.
  EXPECT_EQ(InferAttrKind(Col({Value(0.0), Value(1.0)})), AttrKind::kBoolean);
}

TEST(AttrKindTest, StringBucketsByWordCount) {
  EXPECT_EQ(InferAttrKind(Col({Value("WIS01040"), Value("WIS04059")})),
            AttrKind::kShortString);
  EXPECT_EQ(InferAttrKind(Col({Value("corn fungicide study")})),
            AttrKind::kMediumString);
  EXPECT_EQ(InferAttrKind(
                Col({Value("one two three four five six seven eight")})),
            AttrKind::kLongString);
  EXPECT_EQ(InferAttrKind(Col({Value(
                "a b c d e f g h i j k l m n o p q r s t u v w x y z")})),
            AttrKind::kVeryLongString);
}

TEST(AttrKindTest, EmptyOrAllNullDefaultsToShortString) {
  EXPECT_EQ(InferAttrKind({}), AttrKind::kShortString);
  EXPECT_EQ(InferAttrKind(Col({Value::Null(), Value::Null()})),
            AttrKind::kShortString);
}

TEST(AttrKindTest, MixedNumericAndStringIsString) {
  EXPECT_EQ(InferAttrKind(Col({Value(int64_t{3}), Value("abc")})),
            AttrKind::kShortString);
}

// --- individual features ----------------------------------------------------

TEST(FeatureTest, NullInputsYieldNaN) {
  Feature f = MakeJaccardFeature("t", "t");
  EXPECT_TRUE(std::isnan(f.fn(Value::Null(), Value("x"))));
  EXPECT_TRUE(std::isnan(f.fn(Value("x"), Value::Null())));
  EXPECT_FALSE(std::isnan(f.fn(Value("x"), Value("x"))));
}

TEST(FeatureTest, ExactMatchRespectsCaseFlag) {
  Feature sensitive = MakeExactMatchFeature("t", "t", /*lowercase=*/false);
  Feature insensitive = MakeExactMatchFeature("t", "t", /*lowercase=*/true);
  EXPECT_DOUBLE_EQ(sensitive.fn(Value("ABC"), Value("abc")), 0.0);
  EXPECT_DOUBLE_EQ(insensitive.fn(Value("ABC"), Value("abc")), 1.0);
  EXPECT_EQ(sensitive.name, "t_exact");
  EXPECT_EQ(insensitive.name, "lc_t_exact");
}

TEST(FeatureTest, LowercaseTwinFixesCaseBlindness) {
  // The §9 debugging story in miniature: UPPERCASE vs Mixed Case titles.
  Value upper("CORN FUNGICIDE GUIDELINES");
  Value mixed("Corn Fungicide Guidelines");
  Feature plain = MakeJaccardFeature("t", "t", /*qgram=*/0);
  Feature fixed = MakeJaccardFeature("t", "t", /*qgram=*/0, /*lowercase=*/true);
  EXPECT_DOUBLE_EQ(plain.fn(upper, mixed), 0.0);
  EXPECT_DOUBLE_EQ(fixed.fn(upper, mixed), 1.0);
}

TEST(FeatureTest, NumericFeatures) {
  EXPECT_DOUBLE_EQ(MakeAbsDiffFeature("n", "n").fn(Value(3.0), Value(8.0)),
                   5.0);
  EXPECT_DOUBLE_EQ(
      MakeRelativeSimFeature("n", "n").fn(Value(5.0), Value(10.0)), 0.5);
  EXPECT_DOUBLE_EQ(
      MakeNumericExactFeature("n", "n").fn(Value(int64_t{4}), Value(4.0)),
      1.0);
  // Strings are not coerced: NaN.
  EXPECT_TRUE(std::isnan(MakeAbsDiffFeature("n", "n").fn(Value("3"), Value(3.0))));
}

TEST(FeatureTest, YearDiffParsesBothDateStyles) {
  Feature f = MakeYearDiffFeature("d", "d");
  // ISO vs paper's "M/D/YY" style.
  EXPECT_DOUBLE_EQ(f.fn(Value("2008-10-01"), Value("10/1/08")), 0.0);
  EXPECT_DOUBLE_EQ(f.fn(Value("2008-34103-19449"), Value("2011-09-30")), 3.0);
  EXPECT_TRUE(std::isnan(f.fn(Value("no year"), Value("2008-01-01"))));
}

TEST(FeatureTest, YearDiffRejectsOverlongDigitRunsWithoutThrowing) {
  Feature f = MakeYearDiffFeature("d", "d");
  // A slash-date whose "year" tail exceeds int range used to escape as
  // std::out_of_range from std::stoi; now it is simply not a year.
  EXPECT_TRUE(std::isnan(f.fn(Value("10/1/9999999999"), Value("2008-01-01"))));
  EXPECT_TRUE(std::isnan(f.fn(Value("1/1/123456789012345678901234567890"),
                              Value("2008-01-01"))));
  // 3-digit tails are not years either (neither YY nor YYYY).
  EXPECT_TRUE(std::isnan(f.fn(Value("10/1/200"), Value("2008-01-01"))));
  // Valid 2- and 4-digit tails still parse.
  EXPECT_DOUBLE_EQ(f.fn(Value("10/1/08"), Value("2008-01-01")), 0.0);
  EXPECT_DOUBLE_EQ(f.fn(Value("10/1/2009"), Value("2008-01-01")), 1.0);
}

TEST(FeatureTest, StringMeasureFamiliesAgreeWithCore) {
  Value a("swamp dodder ecology");
  Value b("swamp dodder applied ecology");
  EXPECT_GT(MakeMongeElkanFeature("t", "t").fn(a, b), 0.8);
  EXPECT_GT(MakeCosineFeature("t", "t").fn(a, b), 0.8);
  EXPECT_DOUBLE_EQ(MakeOverlapCoefficientFeature("t", "t").fn(a, b), 1.0);
  EXPECT_GT(MakeJaroWinklerFeature("t", "t").fn(a, b), 0.8);
  EXPECT_LT(MakeLevenshteinFeature("t", "t").fn(a, b), 1.0);
  EXPECT_GT(MakeSmithWatermanFeature("t", "t").fn(a, b), 0.6);
  EXPECT_GT(MakeNeedlemanWunschFeature("t", "t").fn(a, b), 0.5);
  EXPECT_GT(MakeDiceFeature("t", "t").fn(a, b), 0.8);
  EXPECT_GT(MakeJaroFeature("t", "t").fn(a, b), 0.8);
}

// --- automatic generation ------------------------------------------------------

Table FeatLeft() {
  return *ReadCsvString(
      "RecordId,Code,Title,Amount\n"
      "0,WIS01,corn fungicide study,100\n"
      "1,WIS02,swamp dodder ecology plan,250\n");
}

Table FeatRight() {
  return *ReadCsvString(
      "RecordId,Code,Title,Amount,Extra\n"
      "0,WIS01,Corn Fungicide Study,100,x\n"
      "1,WIS09,other thing entirely,90,y\n");
}

TEST(FeatureGenTest, SharedAttributesOnly) {
  auto set = GenerateFeatures(FeatLeft(), FeatRight(),
                              {.exclude = {"RecordId"}, .lowercase_variants = {}});
  ASSERT_TRUE(set.ok());
  for (const Feature& f : set->features) {
    EXPECT_NE(f.left_attr, "RecordId");
    EXPECT_NE(f.left_attr, "Extra");  // not shared
  }
  EXPECT_FALSE(set->features.empty());
}

TEST(FeatureGenTest, KindsDriveMeasureSelection) {
  auto set = GenerateFeatures(FeatLeft(), FeatRight(),
                              {.exclude = {"RecordId"}, .lowercase_variants = {}});
  ASSERT_TRUE(set.ok());
  bool has_code_exact = false, has_title_jac = false, has_amount_absdiff = false;
  for (const auto& name : set->names()) {
    if (name == "Code_exact") has_code_exact = true;
    if (name == "Title_jac_ws") has_title_jac = true;
    if (name == "Amount_absdiff") has_amount_absdiff = true;
  }
  EXPECT_TRUE(has_code_exact);
  EXPECT_TRUE(has_title_jac);
  EXPECT_TRUE(has_amount_absdiff);
}

TEST(FeatureGenTest, LowercaseVariantsOnRequest) {
  auto plain = GenerateFeatures(FeatLeft(), FeatRight(),
                                {.exclude = {"RecordId"}, .lowercase_variants = {}});
  auto fixed = GenerateFeatures(
      FeatLeft(), FeatRight(),
      {.exclude = {"RecordId"}, .lowercase_variants = {"Title"}});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(fixed.ok());
  EXPECT_GT(fixed->features.size(), plain->features.size());
  bool has_lc = false;
  for (const auto& name : fixed->names()) {
    if (name.rfind("lc_Title", 0) == 0) has_lc = true;
  }
  EXPECT_TRUE(has_lc);
}

TEST(FeatureGenTest, NoSharedAttributesIsError) {
  Table l = *ReadCsvString("A\nx\n");
  Table r = *ReadCsvString("B\ny\n");
  EXPECT_EQ(GenerateFeatures(l, r).status().code(),
            StatusCode::kInvalidArgument);
}

// --- vectorizer & imputer --------------------------------------------------------

TEST(VectorizerTest, RowsAlignWithPairs) {
  Table l = FeatLeft(), r = FeatRight();
  auto set = GenerateFeatures(l, r, {.exclude = {"RecordId"},
                                     .lowercase_variants = {"Title"}});
  ASSERT_TRUE(set.ok());
  CandidateSet pairs(std::vector<RecordPair>{{0, 0}, {1, 1}});
  auto m = VectorizePairs(l, r, pairs, *set);
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->num_rows(), 2u);
  EXPECT_EQ(m->num_features(), set->features.size());
  // Pair (0,0) is the same grant modulo case; its lc title jaccard is 1.
  int lc_idx = -1;
  for (size_t i = 0; i < m->feature_names.size(); ++i) {
    if (m->feature_names[i] == "lc_Title_jac_ws") lc_idx = static_cast<int>(i);
  }
  ASSERT_GE(lc_idx, 0);
  EXPECT_DOUBLE_EQ(m->rows[0][lc_idx], 1.0);
  EXPECT_LT(m->rows[1][lc_idx], 0.5);
}

TEST(VectorizerTest, UnknownFeatureAttrIsNotFound) {
  Table l = FeatLeft(), r = FeatRight();
  FeatureSet set;
  set.features.push_back(MakeJaccardFeature("Missing", "Missing"));
  CandidateSet pairs(std::vector<RecordPair>{{0, 0}});
  EXPECT_EQ(VectorizePairs(l, r, pairs, set).status().code(),
            StatusCode::kNotFound);
}

TEST(ImputerTest, FillsNaNWithTrainingMeans) {
  FeatureMatrix train;
  train.feature_names = {"f0", "f1"};
  double nan = std::numeric_limits<double>::quiet_NaN();
  train.rows = {{1.0, nan}, {3.0, 4.0}, {nan, 8.0}};
  MeanImputer imp;
  imp.Fit(train);
  EXPECT_DOUBLE_EQ(imp.means()[0], 2.0);
  EXPECT_DOUBLE_EQ(imp.means()[1], 6.0);
  ASSERT_TRUE(imp.Transform(train).ok());
  EXPECT_DOUBLE_EQ(train.rows[0][1], 6.0);
  EXPECT_DOUBLE_EQ(train.rows[2][0], 2.0);
  EXPECT_DOUBLE_EQ(train.rows[1][0], 3.0);  // untouched
}

TEST(ImputerTest, AllNaNColumnGetsZero) {
  FeatureMatrix m;
  m.feature_names = {"f"};
  double nan = std::numeric_limits<double>::quiet_NaN();
  m.rows = {{nan}, {nan}};
  MeanImputer imp;
  imp.Fit(m);
  ASSERT_TRUE(imp.Transform(m).ok());
  EXPECT_DOUBLE_EQ(m.rows[0][0], 0.0);
}

TEST(ImputerTest, WidthMismatchFails) {
  FeatureMatrix a, b;
  a.feature_names = {"x"};
  a.rows = {{1.0}};
  b.feature_names = {"x", "y"};
  b.rows = {{1.0, 2.0}};
  MeanImputer imp;
  imp.Fit(a);
  EXPECT_EQ(imp.Transform(b).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace emx
