#include <gtest/gtest.h>

#include "src/block/similarity_join.h"
#include "src/core/random.h"
#include "src/table/csv.h"
#include "src/text/set_similarity.h"

namespace emx {
namespace {

TEST(JaccardJoinTest, ExactSemanticsOnSmallTables) {
  Table l = *ReadCsvString(
      "T\ncorn fungicide guidelines north central\nlab supplies\n");
  Table r = *ReadCsvString(
      "T\nCorn Fungicide Guidelines North Central States\nunrelated thing\n");
  OverlapBlockerOptions opts;
  opts.left_attr = "T";
  opts.right_attr = "T";
  JaccardJoinBlocker join(opts, 0.8);
  auto c = join.Block(l, r);
  ASSERT_TRUE(c.ok());
  // jaccard = 5/6 = 0.833 >= 0.8.
  EXPECT_EQ(c->size(), 1u);
  EXPECT_TRUE(c->Contains({0, 0}));
  // Threshold above 5/6 excludes it.
  JaccardJoinBlocker tighter(opts, 0.9);
  EXPECT_TRUE(tighter.Block(l, r)->empty());
}

TEST(JaccardJoinTest, SizeFilterExcludesIncompatibleLengths) {
  // A 2-token set can never reach jaccard 0.8 against a 10-token set.
  Table l = *ReadCsvString("T\na b\n");
  Table r = *ReadCsvString("T\na b c d e f g h i j\n");
  OverlapBlockerOptions opts;
  opts.left_attr = "T";
  opts.right_attr = "T";
  JaccardJoinBlocker join(opts, 0.8);
  BlockStats stats;
  auto c = join.BlockWithStats(l, r, &stats);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->empty());
  EXPECT_EQ(stats.verified, 0u);  // size filter pruned it
}

// Property: the prefix-filtered join returns EXACTLY the brute-force
// jaccard-threshold pairs (filters must be lossless).
class JaccardJoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JaccardJoinEquivalenceTest, AgreesWithBruteForce) {
  RandomEngine rng(GetParam());
  auto make_table = [&rng](size_t rows) {
    Table t(Schema({{"T", DataType::kString}}));
    for (size_t i = 0; i < rows; ++i) {
      size_t words = 1 + rng.NextBelow(6);
      std::string s;
      for (size_t w = 0; w < words; ++w) {
        if (!s.empty()) s += ' ';
        s += std::string(1, static_cast<char>('a' + rng.NextBelow(10)));
      }
      (void)t.AppendRow({Value(s)});
    }
    return t;
  };
  Table l = make_table(25), r = make_table(25);
  double threshold = 0.3 + 0.1 * static_cast<double>(rng.NextBelow(6));

  OverlapBlockerOptions opts;
  opts.left_attr = "T";
  opts.right_attr = "T";
  JaccardJoinBlocker join(opts, threshold);
  BlockStats stats;
  auto filtered = join.BlockWithStats(l, r, &stats);
  ASSERT_TRUE(filtered.ok());

  WhitespaceTokenizer tok;
  std::vector<RecordPair> brute;
  for (uint32_t i = 0; i < l.num_rows(); ++i) {
    for (uint32_t j = 0; j < r.num_rows(); ++j) {
      auto ta = tok.Tokenize(l.at(i, 0).AsString());
      auto tb = tok.Tokenize(r.at(j, 0).AsString());
      if (JaccardSimilarity(ta, tb) >= threshold) brute.push_back({i, j});
    }
  }
  EXPECT_EQ(*filtered, CandidateSet(std::move(brute)))
      << "threshold=" << threshold;
  // The filter should have verified (far) fewer pairs than the Cartesian
  // product — at worst, all of them.
  EXPECT_LE(stats.verified, l.num_rows() * r.num_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardJoinEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- sorted neighborhood ------------------------------------------------------

TEST(SortedNeighborhoodTest, WindowPairsNearbyKeys) {
  Table l = *ReadCsvString("K\nanderson\nmiller\nzimmer\n");
  Table r = *ReadCsvString("K\nandersen\nmillar\nnowhere near\n");
  SortedNeighborhoodBlocker blocker("K", "K", /*window=*/2);
  auto c = blocker.Block(l, r);
  ASSERT_TRUE(c.ok());
  // Sorted: andersen(r0) anderson(l0) millar(r1) miller(l1) nowhere(r2) zimmer(l2)
  EXPECT_TRUE(c->Contains({0, 0}));
  EXPECT_TRUE(c->Contains({1, 1}));
  // anderson-millar are adjacent too (window 2) — cross-table, so present.
  EXPECT_TRUE(c->Contains({0, 1}));
  // miller-zimmer are separated by nowhere(r2): (2,2) present, (l1,r2) too.
  EXPECT_TRUE(c->Contains({1, 2}));
}

TEST(SortedNeighborhoodTest, LargerWindowsAdmitMorePairs) {
  Table l = *ReadCsvString("K\na\nb\nc\nd\n");
  Table r = *ReadCsvString("K\naa\nbb\ncc\ndd\n");
  auto w2 = SortedNeighborhoodBlocker("K", "K", 2).Block(l, r);
  auto w4 = SortedNeighborhoodBlocker("K", "K", 4).Block(l, r);
  ASSERT_TRUE(w2.ok() && w4.ok());
  EXPECT_LT(w2->size(), w4->size());
  EXPECT_TRUE(CandidateSet::Minus(*w2, *w4).empty());  // monotone
}

TEST(SortedNeighborhoodTest, SameTablePairsNeverEmitted) {
  Table l = *ReadCsvString("K\na\nb\n");
  Table r = *ReadCsvString("K\nzzz\n");
  auto c = SortedNeighborhoodBlocker("K", "K", 3).Block(l, r);
  ASSERT_TRUE(c.ok());
  for (const RecordPair& p : *c) {
    EXPECT_LT(p.left, l.num_rows());
    EXPECT_LT(p.right, r.num_rows());
  }
}

TEST(SortedNeighborhoodTest, NullKeysSkipped) {
  Table l = *ReadCsvString("K\n\na\n");
  Table r = *ReadCsvString("K\na\n\n");
  auto c = SortedNeighborhoodBlocker("K", "K", 4).Block(l, r);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 1u);
  EXPECT_TRUE(c->Contains({1, 0}));
}

}  // namespace
}  // namespace emx
