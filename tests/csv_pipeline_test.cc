// Integration: the pipeline must survive a CSV round trip — the challenge
// dataset written by examples/export_challenge_data is only useful if a
// downstream user re-reading the CSVs gets the same candidate sets and
// sure matches we compute in memory.

#include <gtest/gtest.h>

#include "src/datagen/case_study.h"
#include "src/datagen/iris_matcher.h"
#include "src/datagen/preprocess.h"
#include "src/rules/match_rules.h"
#include "src/table/csv.h"

namespace emx {
namespace {

struct RoundTripFixture {
  ProjectedTables original;
  Table umetrics_rt;  // written to CSV and read back
  Table usda_rt;
};

const RoundTripFixture& Fixture() {
  static const RoundTripFixture& fx = *[] {
    auto* f = new RoundTripFixture();
    auto data = GenerateCaseStudy();
    EXPECT_TRUE(data.ok());
    auto tables = PreprocessCaseStudy(*data);
    EXPECT_TRUE(tables.ok());
    f->original = std::move(*tables);
    auto u = ReadCsvString(WriteCsvString(f->original.umetrics));
    auto s = ReadCsvString(WriteCsvString(f->original.usda));
    EXPECT_TRUE(u.ok() && s.ok());
    f->umetrics_rt = std::move(*u);
    f->usda_rt = std::move(*s);
    return f;
  }();
  return fx;
}

TEST(CsvPipelineTest, ShapesSurviveRoundTrip) {
  const RoundTripFixture& fx = Fixture();
  EXPECT_EQ(fx.umetrics_rt.num_rows(), fx.original.umetrics.num_rows());
  EXPECT_EQ(fx.umetrics_rt.schema().names(),
            fx.original.umetrics.schema().names());
  EXPECT_EQ(fx.usda_rt.num_rows(), fx.original.usda.num_rows());
}

TEST(CsvPipelineTest, BlockingIdenticalAfterRoundTrip) {
  const RoundTripFixture& fx = Fixture();
  auto before = RunStandardBlocking(fx.original.umetrics, fx.original.usda);
  auto after = RunStandardBlocking(fx.umetrics_rt, fx.usda_rt);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(before->c1, after->c1);
  EXPECT_EQ(before->c2, after->c2);
  EXPECT_EQ(before->c3, after->c3);
  EXPECT_EQ(before->c, after->c);
}

TEST(CsvPipelineTest, SureRulesIdenticalAfterRoundTrip) {
  const RoundTripFixture& fx = Fixture();
  auto before = ApplyRulesCartesian(PositiveRulesV2(), fx.original.umetrics,
                                    fx.original.usda);
  auto after =
      ApplyRulesCartesian(PositiveRulesV2(), fx.umetrics_rt, fx.usda_rt);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST(CsvPipelineTest, IrisIdenticalAfterRoundTrip) {
  const RoundTripFixture& fx = Fixture();
  auto before = RunIrisMatcher(fx.original.umetrics, fx.original.usda);
  auto after = RunIrisMatcher(fx.umetrics_rt, fx.usda_rt);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

TEST(CsvPipelineTest, KeyColumnsSurviveTyping) {
  // AwardNumber values contain spaces/dashes and must stay strings; the
  // RecordId column is inferred as integers — both must compare correctly.
  const RoundTripFixture& fx = Fixture();
  for (size_t r : {size_t{0}, size_t{700}, size_t{1335}}) {
    EXPECT_EQ(fx.umetrics_rt.at(r, "AwardNumber").AsString(),
              fx.original.umetrics.at(r, "AwardNumber").AsString());
    EXPECT_EQ(fx.umetrics_rt.at(r, "RecordId").AsInt(),
              fx.original.umetrics.at(r, "RecordId").AsInt());
  }
}

}  // namespace
}  // namespace emx
