// Equivalence suite for the token-id kernel layer: the interner, the
// id-span set kernels, PreparedColumn/PrepCache, the id-based overlap join,
// and the prepared vectorize path must all produce BIT-IDENTICAL scores and
// candidate sets to the legacy string paths — on a randomized corpus
// including empty, null, all-punctuation, and duplicate-token values, at
// 1/2/8 threads.

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/block/overlap_blocker.h"
#include "src/block/similarity_join.h"
#include "src/core/executor.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/prep/prepared_column.h"
#include "src/table/table.h"
#include "src/text/set_similarity.h"
#include "src/text/token_interner.h"
#include "src/text/tokenizer.h"
#include "src/workflow/em_workflow.h"

namespace emx {
namespace {

// ---------- corpus generation ----------

// Vocabulary with deliberately colliding, short, and punctuation-heavy
// tokens so dedup, empty-token, and qgram edge cases all fire.
std::vector<std::string> Vocab() {
  return {"alpha", "beta",  "gamma", "delta", "ALPHA", "a",  "ab",
          "abc",   "x",     "2008",  "10/1",  "!!",    "--", "award",
          "title", "Title", "fund",  "nsf",   "usda",  "z9"};
}

// A random cell: null, empty, all-punctuation, duplicate-token, numeric, or
// a random token sentence.
Value RandomCell(std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 9);
  switch (kind(rng)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(std::string());
    case 2:
      return Value("!!! ... ---");  // tokens vanish under strip-punct
    case 3:
      return Value("alpha alpha alpha beta");  // duplicate tokens
    case 4:
      return Value(int64_t{20080134});  // numeric formatted to string
    default: {
      auto vocab = Vocab();
      std::uniform_int_distribution<size_t> len(1, 6);
      std::uniform_int_distribution<size_t> pick(0, vocab.size() - 1);
      std::string s;
      size_t n = len(rng);
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) s += ' ';
        s += vocab[pick(rng)];
      }
      return Value(std::move(s));
    }
  }
}

Table RandomTable(size_t rows, uint32_t seed) {
  std::mt19937 rng(seed);
  Schema schema({{"id", DataType::kInt64},
                 {"title", DataType::kAny},
                 {"amount", DataType::kAny},
                 {"date", DataType::kString}});
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    std::uniform_int_distribution<int> amount(0, 5000);
    std::uniform_int_distribution<int> yr(1990, 2020);
    (void)t.AppendRow({Value(static_cast<int64_t>(i)), RandomCell(rng),
                       Value(static_cast<double>(amount(rng))),
                       Value(std::to_string(yr(rng)) + "-07-0" +
                             std::to_string(1 + (i % 9)))});
  }
  return t;
}

std::vector<std::string> RandomTokens(std::mt19937& rng) {
  auto vocab = Vocab();
  std::uniform_int_distribution<size_t> len(0, 8);
  std::uniform_int_distribution<size_t> pick(0, vocab.size() - 1);
  std::vector<std::string> out;
  size_t n = len(rng);
  for (size_t i = 0; i < n; ++i) out.push_back(vocab[pick(rng)]);
  return out;
}

// ---------- interner ----------

TEST(TokenInternerTest, DenseIdsInFirstSeenOrder) {
  TokenInterner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("c"), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.TokenString(1), "b");
  ASSERT_TRUE(interner.Find("c").has_value());
  EXPECT_EQ(*interner.Find("c"), 2u);
  EXPECT_FALSE(interner.Find("zzz").has_value());
}

TEST(TokenInternerTest, StringReferencesStableAcrossGrowth) {
  TokenInterner interner;
  interner.Intern("stable");
  const std::string& ref = interner.TokenString(0);
  for (int i = 0; i < 10000; ++i) interner.Intern("t" + std::to_string(i));
  EXPECT_EQ(ref, "stable");  // deque storage: no reallocation of strings
}

// ---------- id-span kernels vs string kernels ----------

// Interns a token vector and returns its sorted id list (duplicates kept,
// as PreparedColumn does).
std::vector<uint32_t> ToIds(const std::vector<std::string>& tokens,
                            TokenInterner* interner) {
  std::vector<uint32_t> ids;
  for (const auto& t : tokens) ids.push_back(interner->Intern(t));
  std::sort(ids.begin(), ids.end());
  return ids;
}

IdSpan SpanOf(const std::vector<uint32_t>& ids) {
  return {ids.data(), static_cast<uint32_t>(ids.size())};
}

TEST(IdSpanKernelTest, BitIdenticalToStringKernelsOnRandomizedCorpus) {
  std::mt19937 rng(7);
  TokenInterner interner;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::string> a = RandomTokens(rng);
    std::vector<std::string> b = RandomTokens(rng);
    std::vector<uint32_t> ia = ToIds(a, &interner);
    std::vector<uint32_t> ib = ToIds(b, &interner);
    IdSpan sa = SpanOf(ia), sb = SpanOf(ib);
    EXPECT_EQ(OverlapSize(a, b), OverlapSize(sa, sb));
    // EXPECT_EQ on doubles is exact — the contract is bit-identical.
    EXPECT_EQ(JaccardSimilarity(a, b), JaccardSimilarity(sa, sb));
    EXPECT_EQ(OverlapCoefficient(a, b), OverlapCoefficient(sa, sb));
    EXPECT_EQ(DiceSimilarity(a, b), DiceSimilarity(sa, sb));
    EXPECT_EQ(CosineSimilarity(a, b), CosineSimilarity(sa, sb));
  }
}

TEST(IdSpanKernelTest, EmptyAndDuplicateEdgeCases) {
  TokenInterner interner;
  std::vector<uint32_t> empty;
  std::vector<uint32_t> dup = ToIds({"a", "a", "a"}, &interner);
  std::vector<uint32_t> ab = ToIds({"a", "b"}, &interner);
  EXPECT_EQ(JaccardSimilarity(SpanOf(empty), SpanOf(empty)), 1.0);
  EXPECT_EQ(OverlapCoefficient(SpanOf(empty), SpanOf(ab)), 0.0);
  EXPECT_EQ(CosineSimilarity(SpanOf(empty), SpanOf(ab)), 0.0);
  EXPECT_EQ(DiceSimilarity(SpanOf(empty), SpanOf(empty)), 1.0);
  // {a,a,a} deduplicates to {a}: |A|=1, inter with {a,b} = 1.
  EXPECT_EQ(JaccardSimilarity(SpanOf(dup), SpanOf(ab)), 0.5);
  EXPECT_EQ(OverlapCoefficient(SpanOf(dup), SpanOf(ab)), 1.0);
}

// ---------- PreparedColumn / PrepCache ----------

TEST(PreparedColumnTest, MatchesLegacyPrepAndTokenization) {
  Table t = RandomTable(200, 11);
  const std::vector<Value>* col = *t.ColumnByName("title");
  PrepCache cache;
  WhitespaceTokenizer ws;
  PrepOptions opts{/*lowercase=*/true, /*strip_punctuation=*/true};
  auto prep = cache.Get(*col, opts, &ws);

  OverlapBlockerOptions legacy_opts;
  legacy_opts.lowercase = true;
  legacy_opts.strip_punctuation = true;
  auto legacy = internal_block::TokenizeColumn(*col, legacy_opts, ws);

  ASSERT_EQ(prep->rows(), col->size());
  for (size_t r = 0; r < prep->rows(); ++r) {
    EXPECT_EQ(prep->is_null(r), (*col)[r].is_null());
    // Token strings match the legacy tokenization exactly, in order.
    size_t n = 0;
    const std::string* toks = prep->tokens(r, &n);
    ASSERT_EQ(n, legacy[r].size()) << "row " << r;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(toks[i], legacy[r][i]);
    // Id span is the sorted image of the tokens under the interner.
    IdSpan ids = prep->ids(r);
    ASSERT_EQ(ids.size, n);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  }
}

TEST(PrepCacheTest, DeduplicatesByColumnAndConfig) {
  Table t = RandomTable(50, 3);
  const std::vector<Value>* title = *t.ColumnByName("title");
  const std::vector<Value>* date = *t.ColumnByName("date");
  PrepCache cache;
  WhitespaceTokenizer ws;
  PrepOptions a{true, true};
  PrepOptions b{true, false};
  auto p1 = cache.Get(*title, a, &ws);
  auto p2 = cache.Get(*title, a, &ws);
  EXPECT_EQ(p1.get(), p2.get());  // cache hit: same object
  EXPECT_EQ(cache.entries(), 1u);
  cache.Get(*title, b, &ws);        // different normalization
  cache.Get(*title, a, nullptr);    // text-only prep
  cache.Get(*date, a, &ws);         // different column
  EXPECT_EQ(cache.entries(), 4u);
  // Clear drops entries but outstanding references stay readable.
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(p1->rows(), title->size());
}

// ---------- overlap join: id path vs legacy string path ----------

TEST(OverlapJoinTest, IdJoinMatchesStringJoinAt128Threads) {
  Table left = RandomTable(150, 21);
  Table right = RandomTable(170, 22);
  const std::vector<Value>* lcol = *left.ColumnByName("title");
  const std::vector<Value>* rcol = *right.ColumnByName("title");
  OverlapBlockerOptions opts;
  opts.lowercase = true;
  opts.strip_punctuation = true;
  WhitespaceTokenizer ws;
  auto lt = internal_block::TokenizeColumn(*lcol, opts, ws);
  auto rt = internal_block::TokenizeColumn(*rcol, opts, ws);

  PrepCache cache;
  auto lp = cache.Get(*lcol, internal_block::ToPrepOptions(opts), &ws);
  auto rp = cache.Get(*rcol, internal_block::ToPrepOptions(opts), &ws);

  internal_block::OverlapKeepFn keep = [](size_t, size_t, size_t overlap) {
    return overlap >= 1;
  };
  for (size_t threads : {1u, 2u, 8u}) {
    Executor pool(threads);
    ExecutorContext ctx{&pool};
    CandidateSet legacy =
        internal_block::OverlapJoinStrings(lt, rt, keep, ctx);
    CandidateSet ids = internal_block::OverlapJoinIds(*lp, *rp, keep, ctx);
    EXPECT_TRUE(legacy == ids) << "threads=" << threads << " legacy="
                               << legacy.size() << " ids=" << ids.size();
    EXPECT_GT(ids.size(), 0u);  // corpus guarantees some overlap
  }
}

TEST(OverlapBlockerTest, BlockerOutputsIdenticalAcrossThreadCounts) {
  Table left = RandomTable(120, 31);
  Table right = RandomTable(120, 32);
  OverlapBlockerOptions opts;
  opts.left_attr = "title";
  opts.right_attr = "title";
  OverlapBlocker k2(opts, 2);
  OverlapCoefficientBlocker coeff(opts, 0.6);
  JaccardJoinBlocker jac(opts, 0.4);

  Executor pool1(1);
  ExecutorContext ctx1{&pool1};
  auto k2_base = k2.Block(left, right, ctx1);
  auto coeff_base = coeff.Block(left, right, ctx1);
  BlockStats stats_base;
  auto jac_base = jac.BlockWithStats(left, right, &stats_base, ctx1);
  ASSERT_TRUE(k2_base.ok() && coeff_base.ok() && jac_base.ok());

  for (size_t threads : {2u, 8u}) {
    Executor pool(threads);
    ExecutorContext ctx{&pool};
    auto k2_t = k2.Block(left, right, ctx);
    auto coeff_t = coeff.Block(left, right, ctx);
    BlockStats stats;
    auto jac_t = jac.BlockWithStats(left, right, &stats, ctx);
    ASSERT_TRUE(k2_t.ok() && coeff_t.ok() && jac_t.ok());
    EXPECT_TRUE(*k2_base == *k2_t) << "threads=" << threads;
    EXPECT_TRUE(*coeff_base == *coeff_t) << "threads=" << threads;
    EXPECT_TRUE(*jac_base == *jac_t) << "threads=" << threads;
    EXPECT_EQ(stats_base.verified, stats.verified) << "threads=" << threads;
  }
}

// Brute-force jaccard join as ground truth: the prefix filter must be
// lossless under the id representation too.
TEST(JaccardJoinTest, IdPathLosslessVsBruteForce) {
  Table left = RandomTable(80, 41);
  Table right = RandomTable(80, 42);
  OverlapBlockerOptions opts;
  opts.left_attr = "title";
  opts.right_attr = "title";
  double threshold = 0.5;
  JaccardJoinBlocker jac(opts, threshold);
  auto got = jac.Block(left, right);
  ASSERT_TRUE(got.ok());

  WhitespaceTokenizer ws;
  auto lt = internal_block::TokenizeColumn(*(*left.ColumnByName("title")),
                                           opts, ws);
  auto rt = internal_block::TokenizeColumn(*(*right.ColumnByName("title")),
                                           opts, ws);
  std::vector<RecordPair> expected;
  for (size_t l = 0; l < lt.size(); ++l) {
    for (size_t r = 0; r < rt.size(); ++r) {
      if (lt[l].empty() || rt[r].empty()) continue;  // prefix of 0 tokens
      if (JaccardSimilarity(lt[l], rt[r]) >= threshold) {
        expected.push_back(
            {static_cast<uint32_t>(l), static_cast<uint32_t>(r)});
      }
    }
  }
  EXPECT_TRUE(*got == CandidateSet(std::move(expected)));
}

// ---------- vectorize: prepared path vs legacy path ----------

TEST(VectorizeEquivalenceTest, PreparedBitIdenticalToLegacyAt128Threads) {
  Table left = RandomTable(60, 51);
  Table right = RandomTable(60, 52);
  FeatureGenOptions gen;
  gen.exclude = {"id"};
  gen.lowercase_variants = {"title"};
  auto features = GenerateFeatures(left, right, gen);
  ASSERT_TRUE(features.ok());
  // Include the date feature so the fn-only (no prep) path is exercised.
  features->features.push_back(MakeYearDiffFeature("date", "date"));

  // All pairs in a modest cross product, exercising null/empty/punct cells.
  std::vector<RecordPair> all;
  for (uint32_t l = 0; l < 60; ++l) {
    for (uint32_t r = 0; r < 60; r += 3) all.push_back({l, r});
  }
  CandidateSet pairs(std::move(all));

  Executor pool1(1);
  auto legacy =
      VectorizePairsUnprepared(left, right, pairs, *features,
                               ExecutorContext{&pool1});
  ASSERT_TRUE(legacy.ok());

  for (size_t threads : {1u, 2u, 8u}) {
    Executor pool(threads);
    ExecutorContext ctx{&pool};
    auto prepared = VectorizePairs(left, right, pairs, *features, ctx);
    ASSERT_TRUE(prepared.ok());
    ASSERT_EQ(prepared->rows.size(), legacy->rows.size());
    for (size_t r = 0; r < legacy->rows.size(); ++r) {
      for (size_t c = 0; c < legacy->rows[r].size(); ++c) {
        double a = legacy->rows[r][c];
        double b = prepared->rows[r][c];
        // Bitwise comparison (NaN == NaN under this contract).
        EXPECT_TRUE((std::isnan(a) && std::isnan(b)) || a == b)
            << "threads=" << threads << " row=" << r << " col=" << c << " ("
            << legacy->feature_names[c] << "): " << a << " vs " << b;
      }
    }
  }
}

// A workflow-scoped cache shared by two blockers over the same attribute
// performs ONE tokenized-column pass per side, and cached vectorization
// doesn't change workflow output.
TEST(WorkflowPrepCacheTest, BlockersShareOneTokenizePassPerColumn) {
  Table left = RandomTable(100, 61);
  Table right = RandomTable(100, 62);
  OverlapBlockerOptions opts;
  opts.left_attr = "title";
  opts.right_attr = "title";

  EmWorkflow wf;
  wf.AddBlocker(std::make_shared<OverlapBlocker>(opts, 1));
  wf.AddBlocker(std::make_shared<OverlapCoefficientBlocker>(opts, 0.8));
  auto run = wf.Run(left, right);
  ASSERT_TRUE(run.ok());
  // Same attribute + same tokenizer + same normalization on both blockers:
  // exactly one prepared entry per side's column.
  EXPECT_EQ(wf.prep_cache()->entries(), 2u);

  // Output matches standalone blockers (which prep through local caches).
  OverlapBlocker solo_k(opts, 1);
  OverlapCoefficientBlocker solo_c(opts, 0.8);
  auto k = solo_k.Block(left, right);
  auto c = solo_c.Block(left, right);
  ASSERT_TRUE(k.ok() && c.ok());
  EXPECT_TRUE(run->candidates == CandidateSet::Union(*k, *c));

  wf.ClearPrepCache();
  EXPECT_EQ(wf.prep_cache()->entries(), 0u);
}

}  // namespace
}  // namespace emx
