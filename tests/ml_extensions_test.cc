#include <gtest/gtest.h>

#include "src/eval/corleone_estimator.h"
#include "src/ml/decision_tree.h"
#include "src/ml/random_forest.h"
#include "src/ml/threshold.h"

namespace emx {
namespace {

Dataset Blobs(size_t n_pos, size_t n_neg, uint64_t seed) {
  RandomEngine rng(seed);
  Dataset d;
  d.feature_names = {"x", "y"};
  for (size_t i = 0; i < n_pos + n_neg; ++i) {
    bool pos = i < n_pos;
    double c = pos ? 1.5 : -1.5;
    d.x.push_back({c + 0.6 * rng.NextGaussian(), c + 0.6 * rng.NextGaussian()});
    d.y.push_back(pos ? 1 : 0);
  }
  return d;
}

// --- serialization ---------------------------------------------------------

TEST(TreeSerializationTest, RoundTripPredictsIdentically) {
  Dataset d = Blobs(60, 60, 5);
  DecisionTreeMatcher tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  auto restored = DecisionTreeMatcher::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_nodes(), tree.num_nodes());
  Dataset probe = Blobs(25, 25, 6);
  EXPECT_EQ(restored->PredictProba(probe.x), tree.PredictProba(probe.x));
}

TEST(TreeSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DecisionTreeMatcher::Deserialize("").ok());
  EXPECT_FALSE(DecisionTreeMatcher::Deserialize("not a tree\n").ok());
  EXPECT_FALSE(DecisionTreeMatcher::Deserialize(
                   "emx_decision_tree v1 nodes=2 features=1\n0 0.5 0 1 0\n")
                   .ok());  // truncated: header claims 2 nodes
}

TEST(TreeSerializationTest, RejectsOutOfRangeChildren) {
  // An internal node pointing past the node table must not deserialize.
  std::string payload =
      "emx_decision_tree v1 nodes=1 features=1\n"
      "0 0.5 5 6 0\n";
  EXPECT_FALSE(DecisionTreeMatcher::Deserialize(payload).ok());
}

TEST(ForestSerializationTest, RoundTripPredictsIdentically) {
  Dataset d = Blobs(50, 50, 7);
  RandomForestOptions opts;
  opts.num_trees = 9;
  RandomForestMatcher forest(opts);
  ASSERT_TRUE(forest.Fit(d).ok());
  auto restored = RandomForestMatcher::Deserialize(forest.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_trees(), 9u);
  Dataset probe = Blobs(20, 20, 8);
  EXPECT_EQ(restored->PredictProba(probe.x), forest.PredictProba(probe.x));
}

TEST(ForestSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(RandomForestMatcher::Deserialize("").ok());
  EXPECT_FALSE(RandomForestMatcher::Deserialize("nope\n").ok());
  EXPECT_FALSE(
      RandomForestMatcher::Deserialize("emx_random_forest v1 trees=2\n").ok());
}

// --- feature importances ------------------------------------------------------

TEST(ForestImportanceTest, InformativeFeatureDominates) {
  // Feature 0 carries all the signal; feature 1 is constant noise.
  RandomEngine rng(9);
  Dataset d;
  d.feature_names = {"signal", "noise"};
  for (int i = 0; i < 100; ++i) {
    bool pos = i % 2 == 0;
    d.x.push_back({pos ? 1.0 + 0.1 * rng.NextGaussian()
                       : -1.0 + 0.1 * rng.NextGaussian(),
                   42.0});
    d.y.push_back(pos ? 1 : 0);
  }
  RandomForestMatcher forest;
  ASSERT_TRUE(forest.Fit(d).ok());
  auto imp = forest.FeatureImportances(2);
  // With mtry=1, trees whose root draws the constant feature cannot split
  // at all, so the signal share is well below 1 — but the constant feature
  // can never be chosen.
  EXPECT_GT(imp[0], 0.3);
  EXPECT_DOUBLE_EQ(imp[1], 0.0);
  EXPECT_GT(imp[0], 10.0 * imp[1] + 0.1);
}

// --- threshold tuning -----------------------------------------------------------

TEST(SelectThresholdTest, FindsSeparatingThreshold) {
  // Scores cleanly separated at 0.35: default 0.5 would lose two positives.
  std::vector<double> proba = {0.9, 0.8, 0.45, 0.4, 0.2, 0.1, 0.05, 0.02};
  std::vector<int> y = {1, 1, 1, 1, 0, 0, 0, 0};
  ThresholdChoice choice = SelectThreshold(proba, y);
  EXPECT_LT(choice.threshold, 0.4);
  EXPECT_GT(choice.threshold, 0.2);
  EXPECT_DOUBLE_EQ(choice.metrics.F1(), 1.0);
}

TEST(SelectThresholdTest, DefaultWinsWhenAlreadyOptimal) {
  std::vector<double> proba = {0.9, 0.8, 0.2, 0.1};
  std::vector<int> y = {1, 1, 0, 0};
  ThresholdChoice choice = SelectThreshold(proba, y);
  EXPECT_DOUBLE_EQ(choice.threshold, 0.5);  // tie broken toward 0.5
  EXPECT_DOUBLE_EQ(choice.metrics.F1(), 1.0);
}

TEST(SelectThresholdTest, PrecisionAtRecallFloor) {
  // Raising the threshold to 0.75+ gives precision 1.0 but recall 0.5 —
  // below the floor, so the tuner must keep recall >= 0.9.
  std::vector<double> proba = {0.9, 0.8, 0.6, 0.55, 0.58, 0.1};
  std::vector<int> y = {1, 1, 1, 1, 0, 0};
  ThresholdChoice choice = SelectThreshold(
      proba, y, ThresholdObjective::kPrecisionAtRecallFloor, 0.9);
  EXPECT_GE(choice.metrics.Recall(), 0.9);
  // Best achievable with all positives kept: one FP at 0.58.
  EXPECT_DOUBLE_EQ(choice.metrics.Precision(), 4.0 / 5.0);
}

TEST(SelectThresholdTest, EmptyInputYieldsDefault) {
  ThresholdChoice choice = SelectThreshold({}, {});
  EXPECT_DOUBLE_EQ(choice.threshold, 0.5);
}

// --- Wilson intervals ------------------------------------------------------------

TEST(WilsonIntervalTest, NonDegenerateAtPerfectPrecision) {
  CandidateSet predicted(std::vector<RecordPair>{{0, 0}, {1, 1}});
  LabeledSet sample;
  sample.SetLabel({0, 0}, Label::kYes);
  sample.SetLabel({1, 1}, Label::kYes);
  sample.SetLabel({2, 2}, Label::kNo);
  auto wald = EstimateAccuracy(predicted, sample, 1.96, IntervalMethod::kWald);
  auto wilson =
      EstimateAccuracy(predicted, sample, 1.96, IntervalMethod::kWilson);
  ASSERT_TRUE(wald.ok() && wilson.ok());
  // Wald collapses to (1,1); Wilson keeps honest width.
  EXPECT_DOUBLE_EQ(wald->precision.lo, 1.0);
  EXPECT_LT(wilson->precision.lo, 1.0);
  EXPECT_DOUBLE_EQ(wilson->precision.hi, 1.0);
}

TEST(WilsonIntervalTest, ContainsThePointEstimate) {
  CandidateSet predicted(std::vector<RecordPair>{{0, 0}, {1, 1}, {2, 2}});
  LabeledSet sample;
  sample.SetLabel({0, 0}, Label::kYes);
  sample.SetLabel({1, 1}, Label::kNo);
  sample.SetLabel({2, 2}, Label::kYes);
  auto est = EstimateAccuracy(predicted, sample, 1.96, IntervalMethod::kWilson);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(est->precision.lo, est->precision.point);
  EXPECT_GE(est->precision.hi, est->precision.point);
}

}  // namespace
}  // namespace emx
