#include <cmath>

#include <gtest/gtest.h>

#include "src/rules/feature_rules.h"

namespace emx {
namespace {

FeatureMatrix MakeMatrix() {
  FeatureMatrix m;
  m.feature_names = {"title_jac", "yeardiff", "name_sim"};
  m.rows = {
      {0.95, 1.0, 0.9},   // strong match evidence
      {0.95, 6.0, 0.9},   // similar title, far-apart years
      {0.30, 0.0, 0.2},   // weak everything
      {std::numeric_limits<double>::quiet_NaN(), 0.0, 0.99},  // missing title
  };
  return m;
}

TEST(ParseFeatureRuleTest, ParsesConjunction) {
  auto rule = ParseFeatureRule("r", "title_jac > 0.8 AND yeardiff <= 2");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->predicates.size(), 2u);
  EXPECT_EQ(rule->predicates[0].feature, "title_jac");
  EXPECT_EQ(rule->predicates[0].op, FeaturePredicate::Op::kGt);
  EXPECT_DOUBLE_EQ(rule->predicates[0].threshold, 0.8);
  EXPECT_EQ(rule->predicates[1].op, FeaturePredicate::Op::kLe);
}

TEST(ParseFeatureRuleTest, AllOperators) {
  for (const char* op : {">", ">=", "<", "<=", "==", "!="}) {
    auto rule = ParseFeatureRule("r", std::string("f ") + op + " 1");
    EXPECT_TRUE(rule.ok()) << op;
  }
}

TEST(ParseFeatureRuleTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFeatureRule("r", "").ok());
  EXPECT_FALSE(ParseFeatureRule("r", "f >").ok());
  EXPECT_FALSE(ParseFeatureRule("r", "f ~ 1").ok());
  EXPECT_FALSE(ParseFeatureRule("r", "f > abc").ok());
  EXPECT_FALSE(ParseFeatureRule("r", "f > 1 OR g > 2").ok());
  EXPECT_FALSE(ParseFeatureRule("r", "f > 1 AND").ok());
}

TEST(FeaturePredicateTest, NaNNeverHolds) {
  FeaturePredicate p{"f", FeaturePredicate::Op::kNe, 0.0};
  EXPECT_FALSE(p.Holds(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(p.Holds(1.0));
}

TEST(FeatureRuleMatcherTest, DisjunctionOfConjunctions) {
  FeatureRuleMatcher matcher;
  ASSERT_TRUE(matcher.AddRule("strong", "title_jac > 0.9 AND yeardiff <= 2").ok());
  ASSERT_TRUE(matcher.AddRule("by_name", "name_sim >= 0.95").ok());
  FeatureMatrix m = MakeMatrix();
  auto pred = matcher.Predict(m);
  ASSERT_TRUE(pred.ok());
  // Row 0: strong fires. Row 1: years too far; name 0.9 < 0.95 -> no.
  // Row 2: nothing. Row 3: title NaN, but by_name fires.
  EXPECT_EQ(*pred, (std::vector<int>{1, 0, 0, 1}));
}

TEST(FeatureRuleMatcherTest, FiringRuleReportsProvenance) {
  FeatureRuleMatcher matcher;
  ASSERT_TRUE(matcher.AddRule("a", "title_jac > 0.9").ok());
  ASSERT_TRUE(matcher.AddRule("b", "name_sim > 0.95").ok());
  auto firing = matcher.FiringRule(MakeMatrix());
  ASSERT_TRUE(firing.ok());
  EXPECT_EQ((*firing)[0], 0);   // first rule wins
  EXPECT_EQ((*firing)[2], -1);  // none
  EXPECT_EQ((*firing)[3], 1);   // second rule
}

TEST(FeatureRuleMatcherTest, UnknownFeatureIsNotFound) {
  FeatureRuleMatcher matcher;
  ASSERT_TRUE(matcher.AddRule("r", "no_such_feature > 0.5").ok());
  EXPECT_EQ(matcher.Predict(MakeMatrix()).status().code(),
            StatusCode::kNotFound);
}

TEST(FeatureRuleMatcherTest, NoRulesPredictsNothing) {
  FeatureRuleMatcher matcher;
  auto pred = matcher.Predict(MakeMatrix());
  ASSERT_TRUE(pred.ok());
  for (int v : *pred) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace emx
