// Property sweep over generator seeds: every universe the generator can
// produce must satisfy the structural invariants the pipeline depends on.
// Small table sizes keep the 20-seed sweep fast.

#include <gtest/gtest.h>

#include "src/datagen/case_study.h"
#include "src/datagen/iris_matcher.h"
#include "src/datagen/preprocess.h"
#include "src/eval/corleone_estimator.h"
#include "src/rules/match_rules.h"

namespace emx {
namespace {

UniverseOptions SmallOptions(uint64_t seed) {
  UniverseOptions opt;
  opt.seed = seed;
  opt.num_umetrics = 200;
  opt.num_usda = 340;
  opt.num_extra = 40;
  opt.m1_group = 40;
  opt.m4_group = 55;
  opt.title_group = 30;
  opt.typo_group = 6;
  opt.sibling_rows = 30;
  opt.generic_umetrics = 8;
  opt.generic_usda = 6;
  opt.ncnrsp_rows = 3;
  opt.extra_m1 = 6;
  opt.extra_m4 = 5;
  opt.employee_rows = 1200;
  opt.vendor_rows = 150;
  opt.subaward_rows = 80;
  opt.object_code_rows = 30;
  opt.org_unit_rows = 12;
  return opt;
}

class UniversePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniversePropertyTest, StructuralInvariantsHold) {
  auto data = GenerateCaseStudy(SmallOptions(GetParam()));
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  // Table sizes are exactly as requested.
  EXPECT_EQ(data->umetrics_award_agg.num_rows(), 200u);
  EXPECT_EQ(data->usda.num_rows(), 340u);
  EXPECT_EQ(data->extra_umetrics_agg.num_rows(), 40u);

  // Keys unique; gold/ambiguous disjoint; indices in range.
  EXPECT_TRUE(*data->umetrics_award_agg.IsUniqueKey("UniqueAwardNumber"));
  EXPECT_TRUE(*data->usda.IsUniqueKey("AccessionNumber"));
  EXPECT_TRUE(CandidateSet::Intersect(data->gold, data->ambiguous).empty());
  for (const RecordPair& p : data->gold) {
    ASSERT_LT(p.left, 200u);
    ASSERT_LT(p.right, 340u);
  }

  // Group accounting.
  EXPECT_EQ(data->m1_pairs + data->m4_pairs + data->title_pairs +
                data->typo_pairs,
            data->gold.size());
  EXPECT_GE(data->gold.size(), 131u);  // at least one pair per group row
  EXPECT_EQ(data->gold_extra.size(), 11u);
}

TEST_P(UniversePropertyTest, SureRulesStaySound) {
  auto data = GenerateCaseStudy(SmallOptions(GetParam()));
  ASSERT_TRUE(data.ok());
  auto tables = PreprocessCaseStudy(*data);
  ASSERT_TRUE(tables.ok());

  // Positive rules must fire ONLY on gold pairs (no accidental id
  // collisions), on every seed.
  auto sure = ApplyRulesCartesian(PositiveRulesV2(), tables->umetrics,
                                  tables->usda);
  ASSERT_TRUE(sure.ok());
  for (const RecordPair& p : *sure) {
    ASSERT_TRUE(data->gold.Contains(p))
        << "seed " << GetParam() << ": rule fired on non-gold (" << p.left
        << "," << p.right << ")";
  }
  // And they must recover at least the m1+m4 group pairs.
  EXPECT_GE(sure->size(), 95u);

  // IRIS stays perfect-precision on every seed.
  auto iris = RunIrisMatcher(tables->umetrics, tables->usda);
  ASSERT_TRUE(iris.ok());
  GoldMetrics m = ComputeGoldMetrics(*iris, data->gold, data->ambiguous);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
}

TEST_P(UniversePropertyTest, NegativeRulesNeverTouchSureMatches) {
  auto data = GenerateCaseStudy(SmallOptions(GetParam()));
  ASSERT_TRUE(data.ok());
  auto tables = PreprocessCaseStudy(*data);
  ASSERT_TRUE(tables.ok());
  auto sure = ApplyRulesCartesian(PositiveRulesV2(), tables->umetrics,
                                  tables->usda);
  ASSERT_TRUE(sure.ok());
  auto kept = FilterWithNegativeRules(NegativeRules(), tables->umetrics,
                                      tables->usda, *sure, nullptr);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), sure->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniversePropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace emx
