#include <gtest/gtest.h>

#include "src/workflow/cluster_analysis.h"

namespace emx {
namespace {

CandidateSet CS(std::initializer_list<RecordPair> pairs) {
  return CandidateSet(std::vector<RecordPair>(pairs));
}

TEST(CardinalityTest, ClassifiesEveryShape) {
  // left 0 -> rights 0,1 (1:n); lefts 1,2 -> right 2 (n:1);
  // left 3 -> right 3 (1:1); lefts 4,5 <-> rights 4,5 crossed (n:m).
  CandidateSet matches = CS({{0, 0}, {0, 1}, {1, 2}, {2, 2}, {3, 3},
                             {4, 4}, {4, 5}, {5, 4}, {5, 5}});
  CardinalityStats s = AnalyzeCardinality(matches);
  EXPECT_EQ(s.one_to_many, 2u);
  EXPECT_EQ(s.many_to_one, 2u);
  EXPECT_EQ(s.one_to_one, 1u);
  EXPECT_EQ(s.many_to_many, 4u);
  EXPECT_EQ(s.total, 9u);
  EXPECT_NEAR(s.OneToOneShare(), 1.0 / 9.0, 1e-12);
  EXPECT_NE(s.ToString().find("1:1=1"), std::string::npos);
}

TEST(CardinalityTest, EmptySet) {
  CardinalityStats s = AnalyzeCardinality(CandidateSet());
  EXPECT_EQ(s.total, 0u);
  EXPECT_DOUBLE_EQ(s.OneToOneShare(), 0.0);
}

TEST(MatchClustersTest, ConnectedComponentsOfBipartiteGraph) {
  // Component A: {l0, l1} x {r0}; component B: {l5} x {r7, r8};
  // component C: chain l2-r2, r2-l3? (same right) -> l2,l3,r2.
  CandidateSet matches = CS({{0, 0}, {1, 0}, {5, 7}, {5, 8}, {2, 2}, {3, 2}});
  auto clusters = MatchClusters(matches);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0], (std::vector<RecordPair>{{0, 0}, {1, 0}}));
  EXPECT_EQ(clusters[1], (std::vector<RecordPair>{{2, 2}, {3, 2}}));
  EXPECT_EQ(clusters[2], (std::vector<RecordPair>{{5, 7}, {5, 8}}));
}

TEST(MatchClustersTest, TransitiveChainsMerge) {
  // l0-r0, l1-r0, l1-r1, l2-r1: all one component despite no direct edge
  // between l0 and r1.
  CandidateSet matches = CS({{0, 0}, {1, 0}, {1, 1}, {2, 1}});
  auto clusters = MatchClusters(matches);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 4u);
}

TEST(GreedyOneToOneTest, PicksHighestScoresWithoutConflicts) {
  CandidateSet matches = CS({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  // Scores favor the crossed assignment (0,1) and (1,0).
  std::vector<double> scores = {0.2, 0.9, 0.8, 0.3};
  CandidateSet one_to_one = GreedyOneToOne(matches, scores);
  EXPECT_EQ(one_to_one.size(), 2u);
  EXPECT_TRUE(one_to_one.Contains({0, 1}));
  EXPECT_TRUE(one_to_one.Contains({1, 0}));
  // Result is strictly one-to-one.
  CardinalityStats s = AnalyzeCardinality(one_to_one);
  EXPECT_EQ(s.one_to_one, s.total);
}

TEST(GreedyOneToOneTest, DeterministicTieBreak) {
  CandidateSet matches = CS({{0, 0}, {0, 1}});
  std::vector<double> scores = {0.5, 0.5};
  CandidateSet a = GreedyOneToOne(matches, scores);
  CandidateSet b = GreedyOneToOne(matches, scores);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_TRUE(a.Contains({0, 0}));  // earlier pair wins the tie
}

TEST(GreedyOneToOneTest, OneToOneInputPassesThrough) {
  CandidateSet matches = CS({{0, 0}, {1, 1}, {2, 2}});
  std::vector<double> scores = {0.1, 0.2, 0.3};
  EXPECT_EQ(GreedyOneToOne(matches, scores), matches);
}

}  // namespace
}  // namespace emx
