#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/table/csv.h"

namespace emx {
namespace {

TEST(CsvReadTest, BasicWithHeader) {
  auto t = ReadCsvString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->schema().names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(t->at(0, "a").AsInt(), 1);
  EXPECT_EQ(t->at(1, "b").AsString(), "y");
}

TEST(CsvReadTest, NoHeaderGeneratesColumnNames) {
  CsvReadOptions opts;
  opts.has_header = false;
  auto t = ReadCsvString("1,x\n", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().names(), (std::vector<std::string>{"col0", "col1"}));
}

TEST(CsvReadTest, MissingTrailingNewline) {
  auto t = ReadCsvString("a,b\n1,2");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->at(0, "b").AsInt(), 2);
}

TEST(CsvReadTest, QuotedFieldWithDelimiter) {
  auto t = ReadCsvString("a,b\n\"x,y\",2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, "a").AsString(), "x,y");
}

TEST(CsvReadTest, QuotedFieldWithEmbeddedNewline) {
  auto t = ReadCsvString("a,b\n\"line1\nline2\",2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->at(0, "a").AsString(), "line1\nline2");
}

TEST(CsvReadTest, DoubledQuotesEscape) {
  auto t = ReadCsvString("a\n\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, "a").AsString(), "she said \"hi\"");
}

TEST(CsvReadTest, CrLfLineEndings) {
  auto t = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->at(1, "b").AsInt(), 4);
}

TEST(CsvReadTest, EmptyFieldsBecomeNull) {
  auto t = ReadCsvString("a,b,c\n1,,3\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, "b").is_null());
}

TEST(CsvReadTest, TypeInference) {
  auto t = ReadCsvString("i,d,s,mixed\n42,2.5,abc,1a\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, "i").is_int());
  EXPECT_TRUE(t->at(0, "d").is_double());
  EXPECT_TRUE(t->at(0, "s").is_string());
  EXPECT_TRUE(t->at(0, "mixed").is_string());  // "1a" is not numeric
}

TEST(CsvReadTest, NegativeAndSignedNumbers) {
  auto t = ReadCsvString("a,b\n-3,+2.5\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, "a").AsInt(), -3);
  EXPECT_DOUBLE_EQ(t->at(0, "b").AsDouble(), 2.5);
}

TEST(CsvReadTest, InferenceDisabled) {
  CsvReadOptions opts;
  opts.infer_types = false;
  auto t = ReadCsvString("a\n42\n", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, "a").is_string());
  EXPECT_EQ(t->at(0, "a").AsString(), "42");
}

TEST(CsvReadTest, CustomDelimiter) {
  CsvReadOptions opts;
  opts.delimiter = ';';
  auto t = ReadCsvString("a;b\n1;2\n", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, "b").AsInt(), 2);
}

TEST(CsvReadTest, RaggedRowIsParseError) {
  auto t = ReadCsvString("a,b\n1\n");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, UnterminatedQuoteIsParseError) {
  auto t = ReadCsvString("a\n\"oops\n");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

// --- malformed-input corpus: diagnostics must locate the defect ------------------

TEST(CsvMalformedTest, RaggedRowNamesRecordLineAndFieldCounts) {
  // Record 3 (line 3) has 3 fields where the header promised 2.
  auto t = ReadCsvString("a,b\n1,2\n3,4,5\n6,7\n");
  ASSERT_FALSE(t.ok());
  const std::string& msg = t.status().message();
  EXPECT_NE(msg.find("record 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3 fields"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 2"), std::string::npos) << msg;
}

TEST(CsvMalformedTest, ShortRowIsAlsoLocated) {
  auto t = ReadCsvString("a,b,c\n1,2,3\n4,5\n");
  ASSERT_FALSE(t.ok());
  const std::string& msg = t.status().message();
  EXPECT_NE(msg.find("record 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 fields"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 3"), std::string::npos) << msg;
}

TEST(CsvMalformedTest, QuotedNewlinesDoNotSkewLineNumbers) {
  // The quoted field on line 2 spans lines 2-3, so the ragged record 3
  // physically starts on line 4.
  auto t = ReadCsvString("a,b\n\"multi\nline\",x\n1,2,3\n");
  ASSERT_FALSE(t.ok());
  const std::string& msg = t.status().message();
  EXPECT_NE(msg.find("record 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
}

TEST(CsvMalformedTest, UnterminatedQuoteReportsOpeningLine) {
  auto t = ReadCsvString("a,b\n1,2\n3,\"never closed...\nand more\n");
  ASSERT_FALSE(t.ok());
  const std::string& msg = t.status().message();
  EXPECT_NE(msg.find("unterminated quoted field"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(CsvMalformedTest, TruncatedMidRecordIsRagged) {
  // Input cut off mid-record (no trailing newline, missing fields).
  auto t = ReadCsvString("a,b,c\n1,2,3\n4,5");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("record 3"), std::string::npos);
}

TEST(CsvReadTest, EmptyInputYieldsEmptyTable) {
  auto t = ReadCsvString("");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 0u);
  EXPECT_EQ(t->num_columns(), 0u);
}

TEST(CsvReadTest, HeaderOnly) {
  auto t = ReadCsvString("a,b,c\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 0u);
  EXPECT_EQ(t->num_columns(), 3u);
}

TEST(CsvWriteTest, EscapesSpecialFields) {
  Table t(Schema({{"a", DataType::kString}, {"b", DataType::kString}}));
  (void)t.AppendRow({Value("x,y"), Value("say \"hi\"")});
  (void)t.AppendRow({Value("line1\nline2"), Value::Null()});
  std::string csv = WriteCsvString(t);
  EXPECT_EQ(csv,
            "a,b\n"
            "\"x,y\",\"say \"\"hi\"\"\"\n"
            "\"line1\nline2\",\n");
}

TEST(CsvWriteTest, RoundTripPreservesContent) {
  Table t(Schema({{"name", DataType::kString}, {"n", DataType::kInt64}}));
  (void)t.AppendRow({Value("plain"), Value(int64_t{1})});
  (void)t.AppendRow({Value("with,comma"), Value(int64_t{2})});
  (void)t.AppendRow({Value("with \"quote\""), Value::Null()});
  auto back = ReadCsvString(WriteCsvString(t));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(back->at(r, c), t.at(r, c)) << "cell " << r << "," << c;
    }
  }
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/emx_csv_test.csv";
  Table t(Schema({{"k", DataType::kInt64}}));
  (void)t.AppendRow({Value(int64_t{7})});
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, "k").AsInt(), 7);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsNotFoundWithPathAndErrno) {
  auto t = ReadCsvFile("/nonexistent/path/file.csv");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
  EXPECT_NE(t.status().message().find("/nonexistent/path/file.csv"),
            std::string::npos);
  // strerror(ENOENT) detail.
  EXPECT_NE(t.status().message().find("No such file"), std::string::npos);
}

TEST(CsvFileTest, ParseErrorFromFileIsPrefixedWithPath) {
  std::string path = ::testing::TempDir() + "/emx_csv_ragged.csv";
  {
    std::ofstream f(path, std::ios::binary);
    f << "a,b\n1,2,3\n";
  }
  auto t = ReadCsvFile(path);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

// Property: random printable tables round-trip exactly.
class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, RandomTableRoundTrips) {
  RandomEngine rng(GetParam());
  size_t cols = 1 + rng.NextBelow(5);
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("c" + std::to_string(c));
  Table t(Schema::FromNames(names));
  size_t rows = rng.NextBelow(20);
  // No digits: a random string like "019" would read back as the integer
  // 19, which is correct inference but defeats exact text comparison.
  const std::string charset = "abcXYZ ,\"\n;|-";
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < cols; ++c) {
      switch (rng.NextBelow(3)) {
        case 0:
          row.push_back(Value(static_cast<int64_t>(rng.NextInt(-100, 100))));
          break;
        case 1: {
          // Random string over a charset including every CSV special char.
          size_t len = 1 + rng.NextBelow(12);
          std::string s;
          for (size_t i = 0; i < len; ++i) {
            s += charset[rng.NextBelow(charset.size())];
          }
          row.push_back(Value(s));
          break;
        }
        default:
          row.push_back(Value::Null());
          break;
      }
    }
    ASSERT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  auto back = ReadCsvString(WriteCsvString(t));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const Value& orig = t.at(r, c);
      const Value& round = back->at(r, c);
      if (orig.is_string() && orig.AsString().empty()) {
        // Empty strings serialize as empty fields and read back as null —
        // the one documented lossy case.
        EXPECT_TRUE(round.is_null());
      } else if (orig.is_string() &&
                 !round.is_string()) {
        // Strings that LOOK numeric ("42") come back typed; compare text.
        EXPECT_EQ(round.AsString(), orig.AsString());
      } else {
        EXPECT_EQ(round, orig) << "cell " << r << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace emx
