#include <gtest/gtest.h>

#include "src/table/schema.h"
#include "src/table/table.h"
#include "src/table/value.h"

namespace emx {
namespace {

// --- Value ------------------------------------------------------------------

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.AsString("fallback"), "fallback");
  EXPECT_EQ(v.AsInt(-1), -1);
}

TEST(ValueTest, IntAccessors) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 42.0);
  EXPECT_EQ(v.AsString(), "42");
}

TEST(ValueTest, DoubleFormatting) {
  EXPECT_EQ(Value(3.0).AsString(), "3");
  EXPECT_EQ(Value(2.5).AsString(), "2.5");
  EXPECT_EQ(Value(-7.0).AsString(), "-7");
}

TEST(ValueTest, StringAccessors) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.AsStringView(), "hello");
  EXPECT_EQ(v.AsInt(9), 9);  // no coercion from strings
}

TEST(ValueTest, EqualityMixesNumericTypes) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_NE(Value("3"), Value(int64_t{3}));  // string vs numeric differ
}

TEST(ValueTest, OrderingNullNumericString) {
  EXPECT_LT(Value::Null(), Value(int64_t{1}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
  EXPECT_LT(Value(1.0), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
}

// --- Schema -----------------------------------------------------------------

TEST(SchemaTest, IndexLookup) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("c"), -1);
  EXPECT_TRUE(s.Contains("a"));
  EXPECT_FALSE(s.Contains("c"));
}

TEST(SchemaTest, FromNames) {
  Schema s = Schema::FromNames({"x", "y"});
  EXPECT_EQ(s.field(0).type, DataType::kAny);
  EXPECT_EQ(s.names(), (std::vector<std::string>{"x", "y"}));
}

TEST(SchemaTest, AddFieldRejectsDuplicate) {
  Schema s = Schema::FromNames({"x"});
  EXPECT_TRUE(s.AddField({"y", DataType::kDouble}).ok());
  Status dup = s.AddField({"x", DataType::kInt64});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RenameField) {
  Schema s = Schema::FromNames({"x", "y"});
  EXPECT_TRUE(s.RenameField("x", "z").ok());
  EXPECT_EQ(s.IndexOf("z"), 0);
  EXPECT_EQ(s.IndexOf("x"), -1);
  EXPECT_EQ(s.RenameField("missing", "w").code(), StatusCode::kNotFound);
  EXPECT_EQ(s.RenameField("z", "y").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(s.RenameField("y", "y").ok());  // no-op rename
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"x", DataType::kInt64}});
  Schema c({{"x", DataType::kDouble}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// --- Table ------------------------------------------------------------------

Table MakeTestTable() {
  Table t(Schema({{"id", DataType::kInt64}, {"name", DataType::kString}}));
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value("alpha")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value("beta")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value::Null()}).ok());
  return t;
}

TEST(TableTest, AppendAndAccess) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.at(0, 1).AsString(), "alpha");
  EXPECT_EQ(t.at(1, "name").AsString(), "beta");
  EXPECT_TRUE(t.at(2, "name").is_null());
  EXPECT_TRUE(t.at(0, "no_such_column").is_null());
}

TEST(TableTest, AppendRowWidthMismatchFails) {
  Table t = MakeTestTable();
  Status s = t.AppendRow({Value(int64_t{4})});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(TableTest, SetMutatesCell) {
  Table t = MakeTestTable();
  t.set(2, 1, Value("gamma"));
  EXPECT_EQ(t.at(2, "name").AsString(), "gamma");
}

TEST(TableTest, RowMaterialization) {
  Table t = MakeTestTable();
  std::vector<Value> row = t.Row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].AsInt(), 2);
  EXPECT_EQ(row[1].AsString(), "beta");
}

TEST(TableTest, ColumnByName) {
  Table t = MakeTestTable();
  auto col = t.ColumnByName("id");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->size(), 3u);
  EXPECT_EQ(t.ColumnByName("zzz").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, AddColumnWithValues) {
  Table t = MakeTestTable();
  EXPECT_TRUE(t.AddColumn({"score", DataType::kDouble},
                          {Value(1.0), Value(2.0), Value(3.0)})
                  .ok());
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, "score").AsDouble(), 3.0);
  // Wrong length fails.
  EXPECT_EQ(t.AddColumn({"bad", DataType::kDouble}, {Value(1.0)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, AddEmptyColumnIsAllNull) {
  Table t = MakeTestTable();
  ASSERT_TRUE(t.AddColumn({"extra", DataType::kString}).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_TRUE(t.at(r, "extra").is_null());
  }
}

TEST(TableTest, DropColumn) {
  Table t = MakeTestTable();
  ASSERT_TRUE(t.DropColumn("id").ok());
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.schema().IndexOf("name"), 0);
  EXPECT_EQ(t.at(0, 0).AsString(), "alpha");
  EXPECT_EQ(t.DropColumn("id").code(), StatusCode::kNotFound);
}

TEST(TableTest, RenameColumn) {
  Table t = MakeTestTable();
  ASSERT_TRUE(t.RenameColumn("name", "title").ok());
  EXPECT_EQ(t.at(0, "title").AsString(), "alpha");
}

TEST(TableTest, IsUniqueKey) {
  Table t = MakeTestTable();
  EXPECT_TRUE(*t.IsUniqueKey("id"));
  // Nulls disqualify a key.
  EXPECT_FALSE(*t.IsUniqueKey("name"));
  // Duplicates disqualify a key.
  Table d(Schema({{"k", DataType::kInt64}}));
  (void)d.AppendRow({Value(int64_t{1})});
  (void)d.AppendRow({Value(int64_t{1})});
  EXPECT_FALSE(*d.IsUniqueKey("k"));
  EXPECT_EQ(t.IsUniqueKey("zzz").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, IsForeignKeyInto) {
  Table dim(Schema({{"k", DataType::kInt64}}));
  (void)dim.AppendRow({Value(int64_t{1})});
  (void)dim.AppendRow({Value(int64_t{2})});
  Table fact(Schema({{"fk", DataType::kInt64}}));
  (void)fact.AppendRow({Value(int64_t{2})});
  (void)fact.AppendRow({Value::Null()});  // nulls are permitted in FKs
  EXPECT_TRUE(*fact.IsForeignKeyInto("fk", dim, "k"));
  (void)fact.AppendRow({Value(int64_t{9})});
  EXPECT_FALSE(*fact.IsForeignKeyInto("fk", dim, "k"));
}

TEST(TableTest, PreviewTruncates) {
  Table t = MakeTestTable();
  std::string p = t.Preview(2);
  EXPECT_NE(p.find("alpha"), std::string::npos);
  EXPECT_NE(p.find("more rows"), std::string::npos);
  EXPECT_EQ(p.find("gamma"), std::string::npos);
}

TEST(TableTest, EmptyTableBasics) {
  Table t;
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 0u);
  EXPECT_TRUE(t.AppendRow({}).ok());  // zero-width row on zero-width table
}

}  // namespace
}  // namespace emx
