// End-to-end integration tests: the full paper pipeline on the default
// synthetic universe, asserting the qualitative claims of §9-§12 hold:
//   - learning beats the rule-based IRIS baseline on recall,
//   - the case-fix features improve cross-validated F1,
//   - negative rules raise precision at a small recall cost,
//   - workflow patching recovers the matches blocking had lost.

#include <gtest/gtest.h>

#include "src/datagen/case_study.h"
#include "src/datagen/iris_matcher.h"
#include "src/eval/corleone_estimator.h"
#include "src/labeling/sampler.h"
#include "src/rules/match_rules.h"

namespace emx {
namespace {

// The whole pipeline is built once and shared across assertions.
struct PipelineFixture {
  CaseStudyData data;
  ProjectedTables tables;
  BlockingOutputs blocks;
  LabeledSet labels;
  TrainedMatcher trained_plain;   // no case fix
  TrainedMatcher trained_fixed;   // with case fix
  WorkflowRunResult ml_run;       // V2 rules, no negative rules
  WorkflowRunResult final_run;    // V2 rules + negative rules
  CandidateSet iris;
};

const PipelineFixture& Pipeline() {
  static const PipelineFixture& fx = *[] {
    auto* f = new PipelineFixture();
    f->data = std::move(*GenerateCaseStudy());
    f->tables = std::move(*PreprocessCaseStudy(f->data));
    f->blocks = std::move(*RunStandardBlocking(f->tables.umetrics,
                                               f->tables.usda));
    OracleLabeler oracle = MakeOracle(f->data.gold, f->data.ambiguous);
    f->labels = CollectCorrectedLabels(oracle, f->blocks.c, 3, 100, 100);
    f->trained_plain = std::move(*TrainBestMatcher(
        f->tables.umetrics, f->tables.usda, f->labels, PositiveRulesV1(),
        /*case_fix=*/false));
    f->trained_fixed = std::move(*TrainBestMatcher(
        f->tables.umetrics, f->tables.usda, f->labels, PositiveRulesV1(),
        /*case_fix=*/true));
    EmWorkflow ml = BuildCaseStudyWorkflow(PositiveRulesV2(),
                                           f->trained_fixed,
                                           /*with_negative_rules=*/false);
    EmWorkflow full = BuildCaseStudyWorkflow(PositiveRulesV2(),
                                             f->trained_fixed,
                                             /*with_negative_rules=*/true);
    f->ml_run = std::move(*ml.Run(f->tables.umetrics, f->tables.usda));
    f->final_run = std::move(*full.Run(f->tables.umetrics, f->tables.usda));
    f->iris = std::move(*RunIrisMatcher(f->tables.umetrics, f->tables.usda));
    return f;
  }();
  return fx;
}

TEST(IntegrationTest, BlockingKeepsAllTitleFindableGold) {
  const PipelineFixture& fx = Pipeline();
  // Every gold pair is either in C or recoverable via the project-number
  // rule (the §10 retitled pairs).
  auto m4 = ApplyRulesToPairs(
      {MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber")},
      fx.tables.umetrics, fx.tables.usda, fx.data.gold);
  ASSERT_TRUE(m4.ok());
  for (const RecordPair& p : fx.data.gold) {
    EXPECT_TRUE(fx.blocks.c.Contains(p) || m4->Contains(p))
        << "(" << p.left << "," << p.right << ") unreachable";
  }
}

TEST(IntegrationTest, CaseFixImprovesCrossValidation) {
  const PipelineFixture& fx = Pipeline();
  EXPECT_GT(fx.trained_fixed.cv_results.front().mean_f1,
            fx.trained_plain.cv_results.front().mean_f1);
}

TEST(IntegrationTest, TrainingExcludesSureMatchesAndUnsure) {
  const PipelineFixture& fx = Pipeline();
  EXPECT_LT(fx.trained_fixed.train_data.size(),
            fx.labels.size() - fx.labels.CountUnsure() + 1);
  EXPECT_GE(fx.trained_fixed.train_data.size(), 20u);
}

TEST(IntegrationTest, MlRecallFarExceedsIris) {
  const PipelineFixture& fx = Pipeline();
  GoldMetrics ml = ComputeGoldMetrics(fx.ml_run.final_matches, fx.data.gold,
                                      fx.data.ambiguous);
  GoldMetrics iris =
      ComputeGoldMetrics(fx.iris, fx.data.gold, fx.data.ambiguous);
  EXPECT_DOUBLE_EQ(iris.Precision(), 1.0);
  EXPECT_GT(ml.Recall(), iris.Recall() + 0.2);  // "much higher recall"
  EXPECT_GT(ml.Recall(), 0.9);
}

TEST(IntegrationTest, NegativeRulesTradeRecallForPrecision) {
  const PipelineFixture& fx = Pipeline();
  GoldMetrics ml = ComputeGoldMetrics(fx.ml_run.final_matches, fx.data.gold,
                                      fx.data.ambiguous);
  GoldMetrics fin = ComputeGoldMetrics(fx.final_run.final_matches,
                                       fx.data.gold, fx.data.ambiguous);
  EXPECT_GT(fin.Precision(), ml.Precision());
  EXPECT_GT(fin.Precision(), 0.95);       // the §12 claim
  EXPECT_LE(fin.Recall(), ml.Recall());   // small recall cost...
  EXPECT_GT(fin.Recall(), 0.9);           // ...but still high
  // The flipped set is exactly the ML predictions minus survivors.
  EXPECT_EQ(fx.final_run.flipped.size() + fx.final_run.after_rules.size(),
            fx.final_run.ml_predicted.size());
}

TEST(IntegrationTest, FinalBeatsIrisOnF1) {
  const PipelineFixture& fx = Pipeline();
  GoldMetrics fin = ComputeGoldMetrics(fx.final_run.final_matches,
                                       fx.data.gold, fx.data.ambiguous);
  GoldMetrics iris =
      ComputeGoldMetrics(fx.iris, fx.data.gold, fx.data.ambiguous);
  EXPECT_GT(fin.F1(), iris.F1());
}

TEST(IntegrationTest, CorleoneEstimateBracketsTrueValues) {
  const PipelineFixture& fx = Pipeline();
  OracleLabeler oracle = MakeOracle(fx.data.gold, fx.data.ambiguous);
  CandidateSet universe = CandidateSet::Union(fx.ml_run.candidates, fx.iris);
  LabeledSet eval;
  for (const RecordPair& p : SamplePairs(universe, 400, 555, eval)) {
    eval.SetLabel(p, oracle.CorrectedLabel(p));
  }
  auto est = EstimateAccuracy(fx.final_run.final_matches, eval);
  ASSERT_TRUE(est.ok());
  GoldMetrics fin = ComputeGoldMetrics(fx.final_run.final_matches,
                                       fx.data.gold, fx.data.ambiguous);
  // Wald 95% interval with noise-free labels: allow a small tolerance
  // around the bracket.
  EXPECT_GE(fin.Precision(), est->precision.lo - 0.05);
  EXPECT_LE(fin.Precision(), est->precision.hi + 0.05);
  EXPECT_GE(fin.Recall(), est->recall.lo - 0.05);
  EXPECT_LE(fin.Recall(), est->recall.hi + 0.05);
}

TEST(IntegrationTest, ExtraRecordsBranchFindsOnlySureMatches) {
  const PipelineFixture& fx = Pipeline();
  EmWorkflow full = BuildCaseStudyWorkflow(PositiveRulesV2(),
                                           fx.trained_fixed,
                                           /*with_negative_rules=*/true);
  auto run = full.Run(fx.tables.extra, fx.tables.usda);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->sure_matches.size(), fx.data.gold_extra.size());
  // The paper found zero ML matches among the extra records; allow a
  // whisker of slack for matcher variation.
  EXPECT_LE(run->after_rules.size(), 5u);
  GoldMetrics g = ComputeGoldMetrics(run->final_matches, fx.data.gold_extra,
                                     fx.data.ambiguous_extra);
  EXPECT_DOUBLE_EQ(g.Recall(), 1.0);
}

TEST(IntegrationTest, WorkflowIsDeterministic) {
  const PipelineFixture& fx = Pipeline();
  EmWorkflow full = BuildCaseStudyWorkflow(PositiveRulesV2(),
                                           fx.trained_fixed,
                                           /*with_negative_rules=*/true);
  auto again = full.Run(fx.tables.umetrics, fx.tables.usda);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->final_matches, fx.final_run.final_matches);
}

}  // namespace
}  // namespace emx
