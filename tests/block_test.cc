#include <gtest/gtest.h>

#include "src/block/attr_equivalence_blocker.h"
#include "src/block/blocking_debugger.h"
#include "src/block/candidate_set.h"
#include "src/block/overlap_blocker.h"
#include "src/block/rule_blocker.h"
#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/table/csv.h"
#include "src/text/set_similarity.h"

namespace emx {
namespace {

// --- CandidateSet -------------------------------------------------------------

CandidateSet CS(std::initializer_list<RecordPair> pairs) {
  return CandidateSet(std::vector<RecordPair>(pairs));
}

TEST(CandidateSetTest, ConstructorSortsAndDeduplicates) {
  CandidateSet c = CS({{2, 1}, {0, 5}, {2, 1}, {0, 3}});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], (RecordPair{0, 3}));
  EXPECT_EQ(c[1], (RecordPair{0, 5}));
  EXPECT_EQ(c[2], (RecordPair{2, 1}));
}

TEST(CandidateSetTest, Contains) {
  CandidateSet c = CS({{1, 2}, {3, 4}});
  EXPECT_TRUE(c.Contains({1, 2}));
  EXPECT_FALSE(c.Contains({2, 1}));
  EXPECT_FALSE(CandidateSet().Contains({0, 0}));
}

TEST(CandidateSetTest, SetAlgebra) {
  CandidateSet a = CS({{0, 0}, {1, 1}, {2, 2}});
  CandidateSet b = CS({{1, 1}, {3, 3}});
  EXPECT_EQ(CandidateSet::Union(a, b).size(), 4u);
  EXPECT_EQ(CandidateSet::Intersect(a, b), CS({{1, 1}}));
  EXPECT_EQ(CandidateSet::Minus(a, b), CS({{0, 0}, {2, 2}}));
  EXPECT_EQ(CandidateSet::Minus(b, a), CS({{3, 3}}));
}

TEST(CandidateSetTest, UnionAll) {
  CandidateSet a = CS({{0, 0}});
  CandidateSet b = CS({{1, 1}});
  CandidateSet c = CS({{0, 0}, {2, 2}});
  EXPECT_EQ(CandidateSet::UnionAll({&a, &b, &c}).size(), 3u);
  EXPECT_TRUE(CandidateSet::UnionAll({}).empty());
}

TEST(CandidateSetTest, WithLeftOffset) {
  CandidateSet a = CS({{0, 7}, {2, 1}});
  CandidateSet shifted = a.WithLeftOffset(100);
  EXPECT_TRUE(shifted.Contains({100, 7}));
  EXPECT_TRUE(shifted.Contains({102, 1}));
  EXPECT_EQ(shifted.size(), 2u);
}

// Property: standard set-identities hold on random sets.
class CandidateSetPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  CandidateSet Random(RandomEngine& rng) {
    std::vector<RecordPair> pairs;
    size_t n = rng.NextBelow(40);
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back({static_cast<uint32_t>(rng.NextBelow(10)),
                       static_cast<uint32_t>(rng.NextBelow(10))});
    }
    return CandidateSet(std::move(pairs));
  }
};

TEST_P(CandidateSetPropertyTest, AlgebraIdentities) {
  RandomEngine rng(GetParam());
  CandidateSet a = Random(rng), b = Random(rng);
  // |A ∪ B| = |A| + |B| − |A ∩ B|
  EXPECT_EQ(CandidateSet::Union(a, b).size(),
            a.size() + b.size() - CandidateSet::Intersect(a, b).size());
  // (A − B) ∪ (A ∩ B) = A
  EXPECT_EQ(CandidateSet::Union(CandidateSet::Minus(a, b),
                                CandidateSet::Intersect(a, b)),
            a);
  // A − B and B are disjoint.
  EXPECT_TRUE(
      CandidateSet::Intersect(CandidateSet::Minus(a, b), b).empty());
  // Union is commutative; intersect is idempotent.
  EXPECT_EQ(CandidateSet::Union(a, b), CandidateSet::Union(b, a));
  EXPECT_EQ(CandidateSet::Intersect(a, a), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidateSetPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- blockers -------------------------------------------------------------------

Table LeftTable() {
  return *ReadCsvString(
      "Key,Title\n"
      "10.1 A-1,corn fungicide guidelines north central\n"
      "10.2 B-2,swamp dodder ecology\n"
      "10.3 C-3,dairy cattle nutrition study plan\n"
      "10.4 ,empty key row\n");
}

Table RightTable() {
  return *ReadCsvString(
      "Key,Title\n"
      "A-1,Corn Fungicide Guidelines North Central\n"
      "Z-9,unrelated title entirely different\n"
      "C-3,dairy cattle nutrition study plan extended\n"
      "A-1,second record same key\n");
}

TEST(AttrEquivalenceBlockerTest, ExactKeyJoin) {
  Table l = LeftTable(), r = RightTable();
  AttrEquivalenceBlocker blocker(
      "Key", "Key",
      [](const std::string& s) {
        size_t sp = s.find(' ');
        return sp == std::string::npos ? s : s.substr(sp + 1);
      },
      nullptr);
  auto c = blocker.Block(l, r);
  ASSERT_TRUE(c.ok());
  // Row 0 matches right rows 0 and 3 (duplicate key); row 2 matches row 2.
  EXPECT_EQ(c->size(), 3u);
  EXPECT_TRUE(c->Contains({0, 0}));
  EXPECT_TRUE(c->Contains({0, 3}));
  EXPECT_TRUE(c->Contains({2, 2}));
}

TEST(AttrEquivalenceBlockerTest, NullAndEmptyKeysNeverMatch) {
  Table l = *ReadCsvString("K\n\n\n");   // two null keys
  Table r = *ReadCsvString("K\n\nx\n");  // null and 'x'
  AttrEquivalenceBlocker blocker("K", "K");
  auto c = blocker.Block(l, r);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->empty());
}

TEST(AttrEquivalenceBlockerTest, MissingColumnIsNotFound) {
  Table l = LeftTable(), r = RightTable();
  AttrEquivalenceBlocker blocker("Nope", "Key");
  EXPECT_EQ(blocker.Block(l, r).status().code(), StatusCode::kNotFound);
}

TEST(OverlapBlockerTest, ThresholdSemantics) {
  Table l = LeftTable(), r = RightTable();
  OverlapBlockerOptions opts;
  opts.left_attr = "Title";
  opts.right_attr = "Title";
  // K=5: only the pair sharing all five words (case-normalized).
  auto c5 = OverlapBlocker(opts, 5).Block(l, r);
  ASSERT_TRUE(c5.ok());
  EXPECT_TRUE(c5->Contains({0, 0}));
  EXPECT_TRUE(c5->Contains({2, 2}));
  EXPECT_EQ(c5->size(), 2u);
  // K=1 admits more pairs than K=5.
  auto c1 = OverlapBlocker(opts, 1).Block(l, r);
  ASSERT_TRUE(c1.ok());
  EXPECT_GT(c1->size(), c5->size());
}

TEST(OverlapBlockerTest, CaseNormalizationMatters) {
  Table l = *ReadCsvString("T\nCORN FUNGICIDE STUDY\n");
  Table r = *ReadCsvString("T\ncorn fungicide study\n");
  OverlapBlockerOptions opts;
  opts.left_attr = "T";
  opts.right_attr = "T";
  auto with = OverlapBlocker(opts, 3).Block(l, r);
  EXPECT_EQ(with->size(), 1u);
  opts.lowercase = false;
  auto without = OverlapBlocker(opts, 3).Block(l, r);
  EXPECT_TRUE(without->empty());
}

TEST(OverlapCoefficientBlockerTest, AdmitsShortTitles) {
  Table l = *ReadCsvString("T\nlab supplies\nshort one\n");
  Table r = *ReadCsvString("T\nlab supplies and equipment orders\nnothing\n");
  OverlapBlockerOptions opts;
  opts.left_attr = "T";
  opts.right_attr = "T";
  // The raw-overlap blocker at K=3 cannot admit a 2-token title...
  auto raw = OverlapBlocker(opts, 3).Block(l, r);
  EXPECT_TRUE(raw->empty());
  // ...but the coefficient blocker can: overlap 2 / min(2,5) = 1.0.
  auto coeff = OverlapCoefficientBlocker(opts, 0.7).Block(l, r);
  EXPECT_EQ(coeff->size(), 1u);
  EXPECT_TRUE(coeff->Contains({0, 0}));
}

TEST(RuleBlockerTest, PredicateControlsMembership) {
  Table l = LeftTable(), r = RightTable();
  RuleBlocker blocker("same_first_char",
                      [](const Table& lt, size_t lr, const Table& rt,
                         size_t rr) {
                        std::string a = lt.at(lr, "Title").AsString();
                        std::string b = rt.at(rr, "Title").AsString();
                        return !a.empty() && !b.empty() && a[0] == b[0];
                      });
  auto c = blocker.Block(l, r);
  ASSERT_TRUE(c.ok());
  for (const RecordPair& p : *c) {
    EXPECT_EQ(l.at(p.left, "Title").AsString()[0],
              r.at(p.right, "Title").AsString()[0]);
  }
  EXPECT_TRUE(c->Contains({2, 2}));  // "dairy..." vs "dairy..."
}

TEST(RuleBlockerTest, EmptyPredicateIsInvalid) {
  RuleBlocker blocker("null", nullptr);
  Table l = LeftTable(), r = RightTable();
  EXPECT_EQ(blocker.Block(l, r).status().code(),
            StatusCode::kInvalidArgument);
}

// Property: the inverted-index overlap blocker agrees exactly with the
// brute-force definition on random tables.
class OverlapEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverlapEquivalenceTest, IndexedMatchesBruteForce) {
  RandomEngine rng(GetParam());
  auto make_table = [&rng](size_t rows) {
    Table t(Schema({{"T", DataType::kString}}));
    for (size_t i = 0; i < rows; ++i) {
      if (rng.NextBernoulli(0.1)) {
        (void)t.AppendRow({Value::Null()});
        continue;
      }
      size_t words = rng.NextBelow(6);
      std::string s;
      for (size_t w = 0; w < words; ++w) {
        if (!s.empty()) s += ' ';
        s += std::string(1, static_cast<char>('a' + rng.NextBelow(8)));
      }
      (void)t.AppendRow({Value(s)});
    }
    return t;
  };
  Table l = make_table(20), r = make_table(25);
  size_t k = 1 + rng.NextBelow(3);

  OverlapBlockerOptions opts;
  opts.left_attr = "T";
  opts.right_attr = "T";
  auto indexed = OverlapBlocker(opts, k).Block(l, r);
  ASSERT_TRUE(indexed.ok());

  WhitespaceTokenizer tok;
  std::vector<RecordPair> brute;
  for (uint32_t i = 0; i < l.num_rows(); ++i) {
    for (uint32_t j = 0; j < r.num_rows(); ++j) {
      const Value& a = l.at(i, 0);
      const Value& b = r.at(j, 0);
      if (a.is_null() || b.is_null()) continue;
      if (OverlapSize(tok.Tokenize(AsciiToLower(a.AsString())),
                      tok.Tokenize(AsciiToLower(b.AsString()))) >= k) {
        brute.push_back({i, j});
      }
    }
  }
  EXPECT_EQ(*indexed, CandidateSet(std::move(brute)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 25));

// --- single-table dedup ------------------------------------------------------------

TEST(BlockSelfTest, DropsSelfPairsAndCanonicalizes) {
  Table t = *ReadCsvString(
      "City\nMadison\nMiddleton\nMadison\nmadison\n");
  AttrEquivalenceBlocker blocker("City", "City");
  auto dup = BlockSelf(blocker, t);
  ASSERT_TRUE(dup.ok());
  // Rows 0 and 2 share "Madison" exactly; row 3 differs by case (AE is
  // exact). One unordered pair, left < right.
  EXPECT_EQ(dup->size(), 1u);
  EXPECT_TRUE(dup->Contains({0, 2}));
}

TEST(BlockSelfTest, OverlapBlockerDedup) {
  Table t = *ReadCsvString(
      "T\ncorn fungicide guidelines\nCorn Fungicide Guidelines\n"
      "unrelated entry here\n");
  OverlapBlockerOptions opts;
  opts.left_attr = "T";
  opts.right_attr = "T";
  OverlapBlocker blocker(opts, 3);
  auto dup = BlockSelf(blocker, t);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->size(), 1u);
  EXPECT_TRUE(dup->Contains({0, 1}));
  for (const RecordPair& p : *dup) EXPECT_LT(p.left, p.right);
}

TEST(BlockSelfTest, EmptyTable) {
  Table t = *ReadCsvString("City\n");
  AttrEquivalenceBlocker blocker("City", "City");
  auto dup = BlockSelf(blocker, t);
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(dup->empty());
}

// --- blocking debugger ------------------------------------------------------------

TEST(BlockingDebuggerTest, SurfacesExcludedNearDuplicates) {
  Table l = *ReadCsvString(
      "T\nswamp dodder applied ecology management\nunrelated alpha beta\n");
  Table r = *ReadCsvString(
      "T\nSwamp Dodder Applied Ecology Management\ncompletely different "
      "words here\n");
  // Empty candidate set: EVERYTHING was (wrongly) blocked away.
  BlockingDebuggerOptions opts;
  opts.attrs = {{"T", "T"}};
  opts.top_k = 2;
  auto findings = DebugBlocking(l, r, CandidateSet(), opts);
  ASSERT_TRUE(findings.ok());
  ASSERT_GE(findings->size(), 1u);
  // The near-duplicate pair ranks first with a near-1 score.
  EXPECT_EQ((*findings)[0].pair, (RecordPair{0, 0}));
  EXPECT_GT((*findings)[0].score, 0.9);
  // Scores are sorted descending.
  for (size_t i = 1; i < findings->size(); ++i) {
    EXPECT_LE((*findings)[i].score, (*findings)[i - 1].score);
  }
}

TEST(BlockingDebuggerTest, SkipsPairsAlreadyInCandidates) {
  Table l = *ReadCsvString("T\nsame title here\n");
  Table r = *ReadCsvString("T\nsame title here\n");
  BlockingDebuggerOptions opts;
  opts.attrs = {{"T", "T"}};
  auto findings = DebugBlocking(l, r, CS({{0, 0}}), opts);
  ASSERT_TRUE(findings.ok());
  EXPECT_TRUE(findings->empty());
}

TEST(BlockingDebuggerTest, RequiresAttrs) {
  Table l = LeftTable(), r = RightTable();
  BlockingDebuggerOptions opts;  // no attrs
  EXPECT_EQ(DebugBlocking(l, r, CandidateSet(), opts).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace emx
