#include <memory>

#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/core/random.h"
#include "src/ml/cross_validation.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear_regression.h"
#include "src/ml/linear_svm.h"
#include "src/ml/logistic_regression.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"

namespace emx {
namespace {

// --- Dataset & folds ------------------------------------------------------------

Dataset MakeDataset(size_t n_pos, size_t n_neg, uint64_t seed) {
  // Two Gaussian blobs in 3D, linearly separable with margin.
  RandomEngine rng(seed);
  Dataset d;
  d.feature_names = {"x", "y", "z"};
  for (size_t i = 0; i < n_pos + n_neg; ++i) {
    bool pos = i < n_pos;
    double center = pos ? 2.0 : -2.0;
    d.x.push_back({center + 0.5 * rng.NextGaussian(),
                   center + 0.5 * rng.NextGaussian(),
                   0.1 * rng.NextGaussian()});
    d.y.push_back(pos ? 1 : 0);
  }
  return d;
}

TEST(DatasetTest, Subset) {
  Dataset d = MakeDataset(3, 3, 1);
  Dataset s = d.Subset({0, 5});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.y[0], 1);
  EXPECT_EQ(s.y[1], 0);
  EXPECT_EQ(s.x[1], d.x[5]);
}

TEST(StratifiedKFoldTest, PartitionsAllIndicesOnce) {
  std::vector<int> y(50, 0);
  for (int i = 0; i < 15; ++i) y[i] = 1;
  auto folds = StratifiedKFoldIndices(y, 5, 42);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(50, 0);
  for (const auto& fold : folds) {
    for (size_t i : fold) ++seen[i];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(StratifiedKFoldTest, PositiveRateBalancedAcrossFolds) {
  std::vector<int> y(100, 0);
  for (int i = 0; i < 30; ++i) y[i] = 1;
  auto folds = StratifiedKFoldIndices(y, 5, 42);
  for (const auto& fold : folds) {
    size_t pos = 0;
    for (size_t i : fold) pos += static_cast<size_t>(y[i]);
    EXPECT_EQ(pos, 6u);  // 30 positives over 5 folds exactly
  }
}

TEST(StratifiedSplitTest, RespectsFractionPerClass) {
  std::vector<int> y(100, 0);
  for (int i = 0; i < 40; ++i) y[i] = 1;
  TrainTestSplit split = StratifiedSplit(y, 0.25, 7);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  size_t test_pos = 0;
  for (size_t i : split.test) test_pos += static_cast<size_t>(y[i]);
  EXPECT_EQ(test_pos, 10u);
}

// --- metrics --------------------------------------------------------------------

TEST(MetricsTest, ConfusionCounts) {
  BinaryMetrics m = ComputeMetrics({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_DOUBLE_EQ(m.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.F1(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.6);
}

TEST(MetricsTest, DegenerateDenominators) {
  BinaryMetrics m = ComputeMetrics({0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 1.0);
}

// --- every matcher family, via TEST_P --------------------------------------------

struct FamilyCase {
  std::string name;
  MatcherFactory factory;
};

class MatcherFamilyTest : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<FamilyCase> Families() {
    return {
        {"decision_tree", [] { return std::make_unique<DecisionTreeMatcher>(); }},
        {"random_forest", [] { return std::make_unique<RandomForestMatcher>(); }},
        {"logistic_regression",
         [] { return std::make_unique<LogisticRegressionMatcher>(); }},
        {"naive_bayes", [] { return std::make_unique<NaiveBayesMatcher>(); }},
        {"svm", [] { return std::make_unique<LinearSvmMatcher>(); }},
        {"linear_regression",
         [] { return std::make_unique<LinearRegressionMatcher>(); }},
    };
  }
  FamilyCase Case() { return Families()[static_cast<size_t>(GetParam())]; }
};

TEST_P(MatcherFamilyTest, LearnsSeparableBlobs) {
  FamilyCase fc = Case();
  Dataset train = MakeDataset(60, 60, 11);
  Dataset test = MakeDataset(20, 20, 12);
  auto m = fc.factory();
  ASSERT_TRUE(m->Fit(train).ok()) << fc.name;
  BinaryMetrics metrics = ComputeMetrics(test.y, m->Predict(test.x));
  EXPECT_GE(metrics.Accuracy(), 0.95) << fc.name;
}

TEST_P(MatcherFamilyTest, ProbabilitiesInUnitInterval) {
  FamilyCase fc = Case();
  Dataset train = MakeDataset(30, 30, 13);
  auto m = fc.factory();
  ASSERT_TRUE(m->Fit(train).ok());
  for (double p : m->PredictProba(train.x)) {
    EXPECT_GE(p, 0.0) << fc.name;
    EXPECT_LE(p, 1.0) << fc.name;
  }
}

TEST_P(MatcherFamilyTest, EmptyTrainingSetFails) {
  FamilyCase fc = Case();
  auto m = fc.factory();
  EXPECT_FALSE(m->Fit(Dataset{}).ok()) << fc.name;
}

TEST_P(MatcherFamilyTest, DeterministicAcrossRefits) {
  FamilyCase fc = Case();
  Dataset train = MakeDataset(40, 40, 17);
  Dataset probe = MakeDataset(10, 10, 18);
  auto m1 = fc.factory();
  auto m2 = fc.factory();
  ASSERT_TRUE(m1->Fit(train).ok());
  ASSERT_TRUE(m2->Fit(train).ok());
  EXPECT_EQ(m1->Predict(probe.x), m2->Predict(probe.x)) << fc.name;
}

TEST_P(MatcherFamilyTest, SingleClassTrainingPredictsThatClass) {
  FamilyCase fc = Case();
  Dataset train = MakeDataset(30, 0, 19);  // all positive
  auto m = fc.factory();
  Status s = m->Fit(train);
  if (!s.ok()) return;  // rejecting degenerate input is also acceptable
  std::vector<int> pred = m->Predict(train.x);
  size_t pos = 0;
  for (int p : pred) pos += static_cast<size_t>(p);
  EXPECT_GE(pos, pred.size() - pred.size() / 10) << fc.name;
}

INSTANTIATE_TEST_SUITE_P(Families, MatcherFamilyTest, ::testing::Range(0, 6));

// --- decision tree specifics -------------------------------------------------------

TEST(DecisionTreeTest, SingleSplitOnCleanThreshold) {
  Dataset d;
  d.feature_names = {"f"};
  for (int i = 0; i < 10; ++i) {
    d.x.push_back({i < 5 ? 0.0 : 1.0});
    d.y.push_back(i < 5 ? 0 : 1);
  }
  DecisionTreeMatcher tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  EXPECT_EQ(tree.num_nodes(), 3u);  // root + two leaves
  EXPECT_EQ(tree.Predict({{0.2}, {0.9}}), (std::vector<int>{0, 1}));
}

TEST(DecisionTreeTest, MaxDepthLimitsGrowth) {
  Dataset d = MakeDataset(50, 50, 23);
  DecisionTreeOptions opts;
  opts.max_depth = 1;
  DecisionTreeMatcher stump(opts);
  ASSERT_TRUE(stump.Fit(d).ok());
  EXPECT_LE(stump.num_nodes(), 3u);
}

TEST(DecisionTreeTest, DebugStringNamesFeatures) {
  Dataset d;
  d.feature_names = {"title_jaccard"};
  d.x = {{0.1}, {0.9}, {0.2}, {0.8}};
  d.y = {0, 1, 0, 1};
  DecisionTreeMatcher tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  std::string dump = tree.ToDebugString(d.feature_names);
  EXPECT_NE(dump.find("title_jaccard <="), std::string::npos);
  EXPECT_NE(dump.find("leaf"), std::string::npos);
}

TEST(DecisionTreeTest, FeatureSplitShares) {
  Dataset d;
  d.feature_names = {"useless", "useful"};
  d.x = {{5.0, 0.1}, {5.0, 0.9}, {5.0, 0.2}, {5.0, 0.8}};
  d.y = {0, 1, 0, 1};
  DecisionTreeMatcher tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  auto shares = tree.FeatureSplitShares(2);
  EXPECT_DOUBLE_EQ(shares[0], 0.0);
  EXPECT_DOUBLE_EQ(shares[1], 1.0);
}

TEST(RandomForestTest, BuildsRequestedTreeCount) {
  RandomForestOptions opts;
  opts.num_trees = 7;
  RandomForestMatcher forest(opts);
  ASSERT_TRUE(forest.Fit(MakeDataset(20, 20, 29)).ok());
  EXPECT_EQ(forest.num_trees(), 7u);
}

TEST(RandomForestTest, DifferentSeedsDifferentModels) {
  Dataset train = MakeDataset(30, 30, 31);
  // Near-boundary probes where ensemble votes differ.
  std::vector<std::vector<double>> probes;
  RandomEngine rng(33);
  for (int i = 0; i < 200; ++i) {
    probes.push_back({rng.NextGaussian(), rng.NextGaussian(),
                      rng.NextGaussian()});
  }
  RandomForestOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  RandomForestMatcher a(a_opts), b(b_opts);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_NE(a.PredictProba(probes), b.PredictProba(probes));
}

TEST(RandomForestTest, ModelAndPredictionsIdenticalAtAnyThreadCount) {
  // Per-tree RNG streams are derived serially and predictions accumulate
  // in tree order, so the fitted ensemble and its probabilities must be
  // bit-identical whether training runs on 1 or 8 threads.
  Dataset train = MakeDataset(30, 30, 41);
  std::vector<std::vector<double>> probes;
  RandomEngine rng(43);
  for (int i = 0; i < 100; ++i) {
    probes.push_back({rng.NextGaussian(), rng.NextGaussian(),
                      rng.NextGaussian()});
  }
  Executor p1(1), p8(8);
  RandomForestMatcher serial, parallel;
  serial.set_executor(ExecutorContext{&p1});
  parallel.set_executor(ExecutorContext{&p8});
  ASSERT_TRUE(serial.Fit(train).ok());
  ASSERT_TRUE(parallel.Fit(train).ok());
  EXPECT_EQ(serial.Serialize(), parallel.Serialize());
  EXPECT_EQ(serial.PredictProba(probes), parallel.PredictProba(probes));
  // And both match a forest fit without any executor context (shared pool).
  RandomForestMatcher plain;
  ASSERT_TRUE(plain.Fit(train).ok());
  EXPECT_EQ(plain.Serialize(), serial.Serialize());
}

TEST(CrossValidationTest, IdenticalAtAnyThreadCount) {
  Dataset d = MakeDataset(40, 40, 47);
  auto factory = [] { return std::make_unique<RandomForestMatcher>(); };
  Executor p1(1), p8(8);
  auto serial = CrossValidate(factory, d, 5, 123, ExecutorContext{&p1});
  auto parallel = CrossValidate(factory, d, 5, 123, ExecutorContext{&p8});
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->mean_precision, parallel->mean_precision);
  EXPECT_EQ(serial->mean_recall, parallel->mean_recall);
  EXPECT_EQ(serial->mean_f1, parallel->mean_f1);
  ASSERT_EQ(serial->fold_metrics.size(), parallel->fold_metrics.size());
  for (size_t i = 0; i < serial->fold_metrics.size(); ++i) {
    EXPECT_EQ(serial->fold_metrics[i].tp, parallel->fold_metrics[i].tp);
    EXPECT_EQ(serial->fold_metrics[i].fp, parallel->fold_metrics[i].fp);
    EXPECT_EQ(serial->fold_metrics[i].fn, parallel->fold_metrics[i].fn);
    EXPECT_EQ(serial->fold_metrics[i].tn, parallel->fold_metrics[i].tn);
  }
}

// --- linear algebra --------------------------------------------------------------

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {10, 8};
  ASSERT_TRUE(CholeskySolve(a, b, 2).ok());
  EXPECT_NEAR(b[0], 1.75, 1e-12);
  EXPECT_NEAR(b[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  std::vector<double> a = {0, 0, 0, 0};
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(CholeskySolve(a, b, 2).ok());
}

// --- cross-validation ---------------------------------------------------------------

TEST(CrossValidationTest, PerfectSeparationScoresPerfect) {
  Dataset d = MakeDataset(40, 40, 37);
  auto result = CrossValidate(
      [] { return std::make_unique<DecisionTreeMatcher>(); }, d, 5, 41);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fold_metrics.size(), 5u);
  EXPECT_GT(result->mean_f1, 0.95);
  EXPECT_EQ(result->matcher_name, "decision_tree");
}

TEST(CrossValidationTest, RejectsBadK) {
  Dataset d = MakeDataset(10, 10, 39);
  EXPECT_FALSE(CrossValidate(
                   [] { return std::make_unique<DecisionTreeMatcher>(); }, d,
                   1, 41)
                   .ok());
  EXPECT_FALSE(CrossValidate(
                   [] { return std::make_unique<DecisionTreeMatcher>(); }, d,
                   100, 41)
                   .ok());
}

TEST(SelectMatcherTest, RanksByMeanF1Descending) {
  Dataset d = MakeDataset(40, 40, 43);
  std::vector<MatcherFactory> factories = {
      [] { return std::make_unique<DecisionTreeMatcher>(); },
      [] { return std::make_unique<NaiveBayesMatcher>(); },
      [] { return std::make_unique<LogisticRegressionMatcher>(); },
  };
  auto ranked = SelectMatcher(factories, d, 5, 47);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].mean_f1, (*ranked)[i].mean_f1);
  }
}

TEST(LeaveOneOutTest, FlagsPlantedLabelError) {
  // Clean separable data with ONE deliberately flipped label: LOO must
  // predict the true class for that row (the §8 debugging mechanism).
  Dataset d;
  d.feature_names = {"f"};
  for (int i = 0; i < 20; ++i) {
    d.x.push_back({i < 10 ? 0.0 + 0.01 * i : 1.0 + 0.01 * i});
    d.y.push_back(i < 10 ? 0 : 1);
  }
  d.y[5] = 1;  // planted mistake: feature says 0-class
  auto loo = LeaveOneOutPredictions(
      [] { return std::make_unique<DecisionTreeMatcher>(); }, d);
  ASSERT_TRUE(loo.ok());
  EXPECT_EQ((*loo)[5], 0) << "LOO should contradict the planted label";
  // Most other rows agree with their labels.
  size_t agree = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if ((*loo)[i] == d.y[i]) ++agree;
  }
  EXPECT_GE(agree, 18u);
}

}  // namespace
}  // namespace emx
