// Equivalence suite for the sequence-kernel layer: the bit-parallel
// Levenshtein (single-word and blocked), the banded bounded variant, the
// threshold predicate, and every scratch-backed DP measure (Jaro,
// Jaro-Winkler, Needleman-Wunsch, Smith-Waterman, affine gap) must be
// BIT-IDENTICAL to the retained scalar oracles — on a randomized 10k-pair
// corpus covering empty, 1-char, >64-char, >512-char, equal, disjoint, and
// UTF-8-byte strings — at 1/2/8 threads (each thread owns a thread_local
// DpScratch). A grow-count hook (plus a global operator-new counter in
// unsanitized builds) proves the measures allocate nothing after warm-up.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/feature/feature.h"
#include "src/rules/match_rules.h"
#include "src/table/table.h"
#include "src/text/phonetic.h"
#include "src/text/sequence_kernel.h"
#include "src/text/sequence_similarity.h"

// ---------- allocation-counting hook (unsanitized builds only) ----------
//
// Global operator new replacement counting heap allocations made while a
// thread has armed the counter. Sanitizer builds keep their own allocator
// interposition, so the hook compiles away there; the plain CI job still
// runs it, which is what catches a reintroduced per-call std::vector.
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !defined(ADDRESS_SANITIZER) && !defined(THREAD_SANITIZER)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define EMX_COUNT_ALLOCATIONS 1
#endif
#else
#define EMX_COUNT_ALLOCATIONS 1
#endif
#endif

namespace {
thread_local bool t_count_allocs = false;
thread_local size_t t_alloc_count = 0;
}  // namespace

#ifdef EMX_COUNT_ALLOCATIONS
// GCC's -Wmismatched-new-delete cannot see that this replacement operator
// new is malloc-backed, so the free() in operator delete is in fact matched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  if (t_count_allocs) ++t_alloc_count;
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif

namespace emx {
namespace {

// ---------- corpus ----------

// A pair with both sides drawn from one of the deliberate shape classes.
struct StringPair {
  std::string a;
  std::string b;
};

std::string RandomString(std::mt19937& rng, size_t len, char lo, char hi) {
  std::uniform_int_distribution<int> c(lo, hi);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) s += static_cast<char>(c(rng));
  return s;
}

std::string RandomUtf8(std::mt19937& rng, size_t chars) {
  static const char* kGlyphs[] = {"ü", "ß", "é", "λ", "文", "字", "🌽",
                                  "a", "n", " ", "Å", "ç"};
  std::uniform_int_distribution<size_t> pick(0, std::size(kGlyphs) - 1);
  std::string s;
  for (size_t i = 0; i < chars; ++i) s += kGlyphs[pick(rng)];
  return s;
}

// Mutates a few positions/edits so near-duplicates (the interesting regime
// for edit distance) are well represented.
std::string Mutate(std::mt19937& rng, std::string s) {
  if (s.empty()) return s;
  std::uniform_int_distribution<size_t> pos(0, s.size() - 1);
  std::uniform_int_distribution<int> kind(0, 2);
  std::uniform_int_distribution<int> c('a', 'z');
  std::uniform_int_distribution<int> edits(1, 4);
  int n = edits(rng);
  for (int e = 0; e < n && !s.empty(); ++e) {
    size_t p = pos(rng) % s.size();
    switch (kind(rng)) {
      case 0:
        s[p] = static_cast<char>(c(rng));
        break;
      case 1:
        s.erase(p, 1);
        break;
      default:
        s.insert(p, 1, static_cast<char>(c(rng)));
        break;
    }
  }
  return s;
}

std::vector<StringPair> BuildCorpus(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> klass(0, 99);
  std::uniform_int_distribution<size_t> tiny(1, 1);
  std::uniform_int_distribution<size_t> small(2, 64);
  std::uniform_int_distribution<size_t> medium(65, 128);
  std::uniform_int_distribution<size_t> xl(513, 700);
  std::vector<StringPair> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int k = klass(rng);
    StringPair p;
    if (k < 5) {  // empty on at least one side
      p.a = "";
      p.b = k < 2 ? "" : RandomString(rng, small(rng), 'a', 'z');
    } else if (k < 12) {  // 1-char
      p.a = RandomString(rng, tiny(rng), 'a', 'f');
      p.b = RandomString(rng, tiny(rng), 'a', 'f');
    } else if (k < 20) {  // equal
      p.a = RandomString(rng, small(rng), 'a', 'z');
      p.b = p.a;
    } else if (k < 28) {  // near-duplicates
      p.a = RandomString(rng, small(rng), 'a', 'j');
      p.b = Mutate(rng, p.a);
    } else if (k < 36) {  // disjoint alphabets: zero matches
      p.a = RandomString(rng, small(rng), 'a', 'm');
      p.b = RandomString(rng, small(rng), 'n', 'z');
    } else if (k < 44) {  // UTF-8 multi-byte sequences, compared bytewise
      p.a = RandomUtf8(rng, small(rng) / 2 + 1);
      p.b = k % 2 == 0 ? Mutate(rng, p.a) : RandomUtf8(rng, small(rng) / 2 + 1);
    } else if (k < 48) {  // crosses the single-word boundary (>64)
      p.a = RandomString(rng, medium(rng), 'a', 'h');
      p.b = k % 2 == 0 ? Mutate(rng, p.a) : RandomString(rng, medium(rng), 'a', 'h');
    } else if (k < 49) {  // blocked multi-word territory (>512)
      p.a = RandomString(rng, xl(rng), 'a', 'e');
      p.b = k % 2 == 0 ? Mutate(rng, p.a) : RandomString(rng, xl(rng), 'a', 'e');
    } else {  // generic short strings over the full lowercase alphabet
      p.a = RandomString(rng, small(rng), 'a', 'z');
      p.b = RandomString(rng, small(rng), 'a', 'z');
    }
    out.push_back(std::move(p));
  }
  return out;
}

// Bitwise double equality (the measures never produce NaN).
#define EXPECT_BITEQ(x, y, ctx)                                       \
  do {                                                                \
    double vx = (x), vy = (y);                                        \
    EXPECT_EQ(vx, vy) << ctx << " a=\"" << p.a.substr(0, 40) << "\""  \
                      << " b=\"" << p.b.substr(0, 40) << "\""         \
                      << " (lens " << p.a.size() << "/" << p.b.size() \
                      << ")";                                         \
  } while (0)

// Asserts every sequence measure agrees bit-exactly with its oracle on `p`.
// The affine-gap oracle materializes three full tables, so it is skipped on
// the XL class (a dedicated test covers XL affine gap).
void CheckPair(const StringPair& p) {
  EXPECT_EQ(LevenshteinDistance(p.a, p.b),
            oracle::LevenshteinDistance(p.a, p.b))
      << "lev distance a=" << p.a.substr(0, 40) << " b=" << p.b.substr(0, 40);
  EXPECT_BITEQ(LevenshteinSimilarity(p.a, p.b),
               oracle::LevenshteinSimilarity(p.a, p.b), "lev sim");
  EXPECT_BITEQ(JaroSimilarity(p.a, p.b), oracle::JaroSimilarity(p.a, p.b),
               "jaro");
  EXPECT_BITEQ(JaroWinklerSimilarity(p.a, p.b),
               oracle::JaroWinklerSimilarity(p.a, p.b), "jw");
  EXPECT_BITEQ(NeedlemanWunschScore(p.a, p.b),
               oracle::NeedlemanWunschScore(p.a, p.b), "nw score");
  EXPECT_BITEQ(NeedlemanWunschSimilarity(p.a, p.b),
               oracle::NeedlemanWunschSimilarity(p.a, p.b), "nw sim");
  EXPECT_BITEQ(SmithWatermanScore(p.a, p.b),
               oracle::SmithWatermanScore(p.a, p.b), "sw score");
  EXPECT_BITEQ(SmithWatermanSimilarity(p.a, p.b),
               oracle::SmithWatermanSimilarity(p.a, p.b), "sw sim");
  if (p.a.size() <= 256 && p.b.size() <= 256) {
    EXPECT_BITEQ(AffineGapSimilarity(p.a, p.b),
                 oracle::AffineGapSimilarity(p.a, p.b), "affine");
  }
}

// ---------- the randomized property suite, at 1/2/8 threads ----------

TEST(SequenceKernelTest, BitExactVsOracleOnRandomizedCorpusAt128Threads) {
  const std::vector<StringPair> corpus = BuildCorpus(10000, 1234);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Static partition: every thread exercises its own thread_local
        // DpScratch across the full length spectrum.
        for (size_t i = t; i < corpus.size(); i += threads) {
          CheckPair(corpus[i]);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
}

// ---------- scratch reuse: no allocations after warm-up ----------

TEST(DpScratchTest, SequenceMeasuresDoNotAllocateAfterWarmup) {
  std::mt19937 rng(99);
  // Warm-up at the high-water mark every later call stays under.
  const std::string big_a = RandomString(rng, 700, 'a', 'z');
  const std::string big_b = RandomString(rng, 700, 'a', 'z');
  const std::vector<StringPair> corpus = BuildCorpus(400, 4321);
  auto score_all = [&](const StringPair& p) {
    (void)LevenshteinDistance(p.a, p.b);
    (void)LevenshteinSimilarity(p.a, p.b);
    (void)JaroSimilarity(p.a, p.b);
    (void)JaroWinklerSimilarity(p.a, p.b);
    (void)NeedlemanWunschScore(p.a, p.b);
    (void)SmithWatermanScore(p.a, p.b);
    (void)AffineGapSimilarity(p.a, p.b);
    (void)LevenshteinSimilarityAtLeast(p.a, p.b, 0.7);
  };
  score_all({big_a, big_b});
  score_all({big_a, big_b});

  const size_t grows_before = DpScratch::Tls().grow_count();
#ifdef EMX_COUNT_ALLOCATIONS
  t_alloc_count = 0;
  t_count_allocs = true;
#endif
  for (const StringPair& p : corpus) score_all(p);
#ifdef EMX_COUNT_ALLOCATIONS
  t_count_allocs = false;
  EXPECT_EQ(t_alloc_count, 0u)
      << "a sequence measure heap-allocated after warm-up";
#endif
  EXPECT_EQ(DpScratch::Tls().grow_count(), grows_before)
      << "DpScratch grew after warm-up at the high-water mark";
}

TEST(DpScratchTest, GrowCountIsPerThread) {
  // A fresh thread starts with an empty scratch and grows it independently.
  std::thread([] {
    EXPECT_EQ(DpScratch::Tls().grow_count(), 0u);
    (void)LevenshteinDistance("kitten", "sitting");
    (void)JaroSimilarity("martha", "marhta");
    EXPECT_GT(DpScratch::Tls().grow_count(), 0u);
  }).join();
}

// ---------- bounded / threshold kernels ----------

TEST(BoundedLevenshteinTest, ExactCutoffMatchesOracle) {
  std::mt19937 rng(7);
  const std::vector<StringPair> corpus = BuildCorpus(2000, 777);
  std::uniform_int_distribution<int> limits(0, 40);
  for (const StringPair& p : corpus) {
    const int d = oracle::LevenshteinDistance(p.a, p.b);
    const int limit = limits(rng);
    const int want = d <= limit ? d : limit + 1;
    EXPECT_EQ(BoundedLevenshtein(p.a, p.b, limit, &DpScratch::Tls()), want)
        << "limit=" << limit << " true d=" << d;
  }
}

TEST(LevenshteinSimilarityAtLeastTest, DecisionMatchesFullScore) {
  std::mt19937 rng(13);
  const std::vector<StringPair> corpus = BuildCorpus(2000, 555);
  std::uniform_real_distribution<double> thresholds(0.0, 1.0);
  for (const StringPair& p : corpus) {
    const double sim = oracle::LevenshteinSimilarity(p.a, p.b);
    const double t = thresholds(rng);
    EXPECT_EQ(LevenshteinSimilarityAtLeast(p.a, p.b, t), sim >= t)
        << "t=" << t << " sim=" << sim;
    // Boundary thresholds: exactly the score (must pass) and one ulp above
    // (must fail) — the short-circuits may not blur the decision edge.
    EXPECT_TRUE(LevenshteinSimilarityAtLeast(p.a, p.b, sim));
    const double above = std::nextafter(sim, 2.0);
    EXPECT_EQ(LevenshteinSimilarityAtLeast(p.a, p.b, above), sim >= above);
  }
}

TEST(LevenshteinSimilarityUpperBoundTest, BoundsTheTrueSimilarity) {
  const std::vector<StringPair> corpus = BuildCorpus(500, 31);
  for (const StringPair& p : corpus) {
    EXPECT_LE(oracle::LevenshteinSimilarity(p.a, p.b),
              LevenshteinSimilarityUpperBound(p.a.size(), p.b.size()));
  }
}

// ---------- NW/SW orientation (loop-swap satellite) ----------

TEST(AlignmentOrientationTest, ScoresEqualOracleInBothArgumentOrders) {
  const std::vector<StringPair> corpus = BuildCorpus(600, 71);
  for (const StringPair& p : corpus) {
    // Non-default, asymmetric-looking parameters: the orientation swap must
    // hold for any (match, mismatch, gap), not just the defaults.
    EXPECT_EQ(NeedlemanWunschScore(p.a, p.b, 2.0, -1.0, -0.7),
              oracle::NeedlemanWunschScore(p.a, p.b, 2.0, -1.0, -0.7));
    EXPECT_EQ(NeedlemanWunschScore(p.b, p.a, 2.0, -1.0, -0.7),
              oracle::NeedlemanWunschScore(p.b, p.a, 2.0, -1.0, -0.7));
    EXPECT_EQ(SmithWatermanScore(p.a, p.b, 2.0, -1.0, -0.7),
              oracle::SmithWatermanScore(p.a, p.b, 2.0, -1.0, -0.7));
    EXPECT_EQ(SmithWatermanScore(p.b, p.a, 2.0, -1.0, -0.7),
              oracle::SmithWatermanScore(p.b, p.a, 2.0, -1.0, -0.7));
  }
}

// ---------- XL affine gap (skipped in the main sweep for oracle cost) ----

TEST(AffineGapTest, BitExactOnXlStrings) {
  std::mt19937 rng(3);
  for (int i = 0; i < 3; ++i) {
    std::string a = RandomString(rng, 520 + 30 * i, 'a', 'f');
    std::string b = i == 0 ? Mutate(rng, a) : RandomString(rng, 540, 'a', 'f');
    EXPECT_EQ(AffineGapSimilarity(a, b), oracle::AffineGapSimilarity(a, b));
  }
}

// ---------- wiring: feature + rule layers ----------

TEST(AffineGapFeatureTest, ScoresThroughKernelOnBothPaths) {
  Feature f = MakeAffineGapFeature("name", "name", /*lowercase=*/true);
  EXPECT_EQ(f.name, "lc_name_ag");
  ASSERT_TRUE(f.has_prep());
  const Value a(std::string("Smith, J"));
  const Value b(std::string("smith, john r"));
  EXPECT_EQ(f.fn(a, b), AffineGapSimilarity("smith, j", "smith, john r"));
  EXPECT_TRUE(std::isnan(f.fn(Value::Null(), b)));
}

TEST(LevenshteinRuleTest, ShortCircuitMatchesFullPredicate) {
  Schema schema({{"id", DataType::kInt64}, {"title", DataType::kString}});
  Table left(schema), right(schema);
  const char* lt[] = {"applied corn ecology", "swamp dodder study", "", "ab",
                      "a very long award title about maize genetics"};
  const char* rt[] = {"applied corn ecology", "swamp doder study", "x", "ba",
                      "short"};
  for (int i = 0; i < 5; ++i) {
    (void)left.AppendRow({Value(int64_t{i}), Value(std::string(lt[i]))});
    (void)right.AppendRow({Value(int64_t{i}), Value(std::string(rt[i]))});
  }
  for (double t : {0.5, 0.8, 0.95, 1.0}) {
    MatchRule rule = MakeLevenshteinRule("lev_rule", "title", "title", t);
    for (size_t l = 0; l < 5; ++l) {
      for (size_t r = 0; r < 5; ++r) {
        const Value& lv = left.at(l, "title");
        const Value& rv = right.at(r, "title");
        bool expect = !lv.AsString().empty() && !rv.AsString().empty() &&
                      LevenshteinSimilarity(lv.AsString(), rv.AsString()) >= t;
        EXPECT_EQ(rule.fires(left, l, right, r), expect)
            << "t=" << t << " l=" << l << " r=" << r;
      }
    }
  }
}

// ---------- known-value spot checks (kernel path) ----------

TEST(MyersLevenshteinTest, KnownDistancesThroughKernel) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  // Exactly 64 / 65 chars: the single-word/blocked boundary.
  std::string s64(64, 'a'), s65(65, 'a');
  EXPECT_EQ(LevenshteinDistance(s64, s64), 0);
  EXPECT_EQ(LevenshteinDistance(s64, s65), 1);
  EXPECT_EQ(LevenshteinDistance(s65, s65 + "bc"), 2);
}

}  // namespace
}  // namespace emx
