// Million-row-scale subsystem tests: the sharded scale-factor generator's
// determinism contract (bit-identical corpora at any thread count and shard
// size) and the partitioned blocking engine's equivalence to the monolithic
// join (bit-identical candidate sets at any memory budget and thread count,
// on both the case-study corpus and a generated scale corpus).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/block/overlap_blocker.h"
#include "src/block/partitioned_blocker.h"
#include "src/block/similarity_join.h"
#include "src/cli/cli.h"
#include "src/core/executor.h"
#include "src/datagen/case_study.h"
#include "src/datagen/preprocess.h"
#include "src/datagen/scale_corpus.h"
#include "src/prep/prepared_column.h"
#include "src/table/csv.h"
#include "src/text/tokenizer.h"

namespace emx {
namespace {

// --- scale-factor datagen ----------------------------------------------------

ScaleCorpus MustGenerate(const ScaleCorpusOptions& options,
                         const ExecutorContext& ctx = {}) {
  auto corpus = GenerateScaleCorpus(options, ctx);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(*corpus);
}

TEST(ScaleCorpusTest, DeterministicAcrossThreadsAndShardSizes) {
  ScaleCorpusOptions base;
  base.scale_factor = 1.0;
  ScaleCorpus reference = MustGenerate(base);
  std::string ref_left = WriteCsvString(reference.left);
  std::string ref_right = WriteCsvString(reference.right);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t shard_rows : {size_t{7}, size_t{256}, size_t{4096}}) {
      Executor pool(threads);
      ExecutorContext ctx{&pool};
      ScaleCorpusOptions opts = base;
      opts.shard_rows = shard_rows;
      ScaleCorpus corpus = MustGenerate(opts, ctx);
      EXPECT_EQ(WriteCsvString(corpus.left), ref_left)
          << "threads=" << threads << " shard_rows=" << shard_rows;
      EXPECT_EQ(WriteCsvString(corpus.right), ref_right)
          << "threads=" << threads << " shard_rows=" << shard_rows;
      EXPECT_TRUE(corpus.gold == reference.gold)
          << "threads=" << threads << " shard_rows=" << shard_rows;
    }
  }
}

TEST(ScaleCorpusTest, SeedSelectsDistinctCorpora) {
  ScaleCorpusOptions a;
  a.scale_factor = 0.1;  // 100 rows per side
  ScaleCorpusOptions b = a;
  b.seed = a.seed + 1;
  ScaleCorpus ca = MustGenerate(a);
  ScaleCorpus cb = MustGenerate(b);
  EXPECT_NE(WriteCsvString(ca.left), WriteCsvString(cb.left));
  EXPECT_NE(WriteCsvString(ca.right), WriteCsvString(cb.right));
}

TEST(ScaleCorpusTest, ShapeAndGoldRate) {
  ScaleCorpusOptions opts;
  opts.scale_factor = 1.0;
  ScaleCorpus corpus = MustGenerate(opts);
  EXPECT_EQ(corpus.left.num_rows(), 1000u);
  EXPECT_EQ(corpus.right.num_rows(), 1000u);
  // match_rate=0.3 is a per-row Bernoulli; 1000 draws stay well inside
  // [0.2, 0.4] for any reasonable seed.
  EXPECT_GE(corpus.gold.size(), 200u);
  EXPECT_LE(corpus.gold.size(), 400u);
  for (const RecordPair& p : corpus.gold) {
    EXPECT_LT(p.left, corpus.left.num_rows());
    EXPECT_LT(p.right, corpus.right.num_rows());
  }
}

TEST(ScaleCorpusTest, GoldMostlySurvivesOverlapBlocking) {
  ScaleCorpusOptions opts;
  opts.scale_factor = 1.0;
  ScaleCorpus corpus = MustGenerate(opts);
  OverlapBlockerOptions bopts;
  bopts.left_attr = "AwardTitle";
  bopts.right_attr = "AwardTitle";
  OverlapBlocker blocker(bopts, 3);
  auto candidates = blocker.Block(corpus.left, corpus.right);
  ASSERT_TRUE(candidates.ok());
  size_t recovered = 0;
  for (const RecordPair& p : corpus.gold) {
    if (candidates->Contains(p)) ++recovered;
  }
  // Matched titles drift (token drops/swaps/typos) but keep most of the
  // 5-11 source tokens, so K=3 overlap must recover nearly all gold.
  EXPECT_GE(recovered * 10, corpus.gold.size() * 9)
      << recovered << " of " << corpus.gold.size() << " gold pairs blocked";
}

TEST(ScaleCorpusTest, RejectsDegenerateOptions) {
  ScaleCorpusOptions opts;
  opts.scale_factor = 0;
  EXPECT_FALSE(GenerateScaleCorpus(opts).ok());
  opts = ScaleCorpusOptions();
  opts.vocab_size = opts.hot_ranks;  // no cold tail left
  EXPECT_FALSE(GenerateScaleCorpus(opts).ok());
  opts = ScaleCorpusOptions();
  opts.min_title_tokens = 9;
  opts.max_title_tokens = 5;
  EXPECT_FALSE(GenerateScaleCorpus(opts).ok());
}

// --- partition planning ------------------------------------------------------

TEST(PartitionPlanTest, UnboundedIsOnePartition) {
  internal_block::BlockBudget budget;  // 0 bytes = unbounded
  auto plan = internal_block::PlanPartitions(10000, 80000, 5000, budget);
  EXPECT_EQ(plan.num_partitions, 1u);
  EXPECT_EQ(plan.rows_per_partition, 10000u);
}

TEST(PartitionPlanTest, BudgetSplitsAndCoversAllRows) {
  internal_block::BlockBudget budget;
  budget.mem_budget_bytes = 200 * 1024;
  budget.min_partition_rows = 16;
  auto plan = internal_block::PlanPartitions(10000, 80000, 5000, budget);
  EXPECT_GT(plan.num_partitions, 1u);
  EXPECT_GE(plan.rows_per_partition * plan.num_partitions, 10000u);
  EXPECT_LE(plan.estimated_partition_bytes, budget.mem_budget_bytes);
}

TEST(PartitionPlanTest, BudgetBelowFixedCostDegradesToFloor) {
  internal_block::BlockBudget budget;
  budget.mem_budget_bytes = 1;  // below the offsets array alone
  budget.min_partition_rows = 64;
  auto plan = internal_block::PlanPartitions(1000, 8000, 5000, budget);
  EXPECT_EQ(plan.rows_per_partition, 64u);
  EXPECT_EQ(plan.num_partitions, (1000u + 63u) / 64u);
}

TEST(PartitionPlanTest, DeterministicForGivenShape) {
  internal_block::BlockBudget budget;
  budget.mem_budget_bytes = 123456;
  auto a = internal_block::PlanPartitions(9999, 77777, 4321, budget);
  auto b = internal_block::PlanPartitions(9999, 77777, 4321, budget);
  EXPECT_EQ(a.num_partitions, b.num_partitions);
  EXPECT_EQ(a.rows_per_partition, b.rows_per_partition);
}

// --- partitioned == monolithic ----------------------------------------------

struct Prepped {
  std::shared_ptr<PrepCache> cache;
  std::shared_ptr<const PreparedColumn> left;
  std::shared_ptr<const PreparedColumn> right;
};

Prepped PrepTitles(const Table& left, const Table& right) {
  Prepped out;
  out.cache = std::make_shared<PrepCache>();
  auto lcol = left.ColumnByName("AwardTitle");
  auto rcol = right.ColumnByName("AwardTitle");
  EXPECT_TRUE(lcol.ok() && rcol.ok());
  WhitespaceTokenizer tok;
  PrepOptions opts{/*lowercase=*/true, /*strip_punctuation=*/true};
  out.left = out.cache->Get(**lcol, opts, &tok);
  out.right = out.cache->Get(**rcol, opts, &tok);
  return out;
}

// Sweeps the partitioned engine over budgets x thread counts and demands
// bit-identical output to the monolithic oracle under `keep`.
void ExpectPartitionedMatchesMonolithic(const Prepped& p,
                                        const internal_block::OverlapKeepFn& keep,
                                        size_t min_left_tokens) {
  Executor pool1(1);
  ExecutorContext ctx1{&pool1};
  CandidateSet oracle =
      internal_block::OverlapJoinIds(*p.left, *p.right, keep, ctx1);

  // Budget 1B degrades to the min-rows floor (many small partitions);
  // 300KB yields a few mid-sized ones; 0 is the single-partition layout.
  struct Config {
    size_t budget;
    size_t floor;
  };
  for (Config cfg : {Config{0, 1024}, Config{1, 97}, Config{300 * 1024, 256}}) {
    internal_block::BlockBudget budget;
    budget.mem_budget_bytes = cfg.budget;
    budget.min_partition_rows = cfg.floor;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      Executor pool(threads);
      ExecutorContext ctx{&pool};
      internal_block::PartitionedJoinStats stats;
      CandidateSet got = internal_block::PartitionedOverlapJoin(
          *p.left, *p.right, keep, min_left_tokens, budget, ctx, &stats);
      EXPECT_TRUE(got == oracle)
          << "budget=" << cfg.budget << " threads=" << threads << " ("
          << got.size() << " vs " << oracle.size() << " pairs, "
          << stats.num_partitions << " partitions)";
      EXPECT_EQ(stats.partition_ms.size(), stats.num_partitions);
      if (cfg.budget == 1) {
        EXPECT_GT(stats.num_partitions, 1u);
      }
    }
  }
}

TEST(PartitionedBlockerTest, MatchesMonolithicOnCaseStudyOverlapK3) {
  auto data = GenerateCaseStudy();
  ASSERT_TRUE(data.ok());
  auto tables = PreprocessCaseStudy(*data);
  ASSERT_TRUE(tables.ok());
  Prepped p = PrepTitles(tables->umetrics, tables->usda);
  ExpectPartitionedMatchesMonolithic(
      p, [](size_t, size_t, size_t overlap) { return overlap >= 3; },
      /*min_left_tokens=*/3);
}

TEST(PartitionedBlockerTest, MatchesMonolithicOnCaseStudyCoefficient) {
  auto data = GenerateCaseStudy();
  ASSERT_TRUE(data.ok());
  auto tables = PreprocessCaseStudy(*data);
  ASSERT_TRUE(tables.ok());
  Prepped p = PrepTitles(tables->umetrics, tables->usda);
  ExpectPartitionedMatchesMonolithic(
      p,
      [](size_t la, size_t lb, size_t overlap) {
        size_t mn = la < lb ? la : lb;
        return mn > 0 && static_cast<double>(overlap) >=
                             0.7 * static_cast<double>(mn);
      },
      /*min_left_tokens=*/1);
}

TEST(PartitionedBlockerTest, MatchesMonolithicOnScaleCorpusSf10) {
  ScaleCorpusOptions opts;
  opts.scale_factor = 10.0;  // 10k rows per side
  ScaleCorpus corpus = MustGenerate(opts);
  Prepped p = PrepTitles(corpus.left, corpus.right);
  ExpectPartitionedMatchesMonolithic(
      p, [](size_t, size_t, size_t overlap) { return overlap >= 3; },
      /*min_left_tokens=*/3);
}

TEST(PartitionedBlockerTest, OverlapBlockerHonorsMemBudgetOption) {
  ScaleCorpusOptions opts;
  opts.scale_factor = 2.0;
  ScaleCorpus corpus = MustGenerate(opts);
  OverlapBlockerOptions unbounded;
  unbounded.left_attr = "AwardTitle";
  unbounded.right_attr = "AwardTitle";
  OverlapBlockerOptions bounded = unbounded;
  bounded.mem_budget_bytes = 64 * 1024;
  OverlapBlocker a(unbounded, 3);
  OverlapBlocker b(bounded, 3);
  auto ca = a.Block(corpus.left, corpus.right);
  auto cb = b.Block(corpus.left, corpus.right);
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_TRUE(*ca == *cb);
  EXPECT_FALSE(ca->empty());
}

TEST(JaccardJoinTest, BudgetInvariantCandidatesAndVerifiedCount) {
  auto data = GenerateCaseStudy();
  ASSERT_TRUE(data.ok());
  auto tables = PreprocessCaseStudy(*data);
  ASSERT_TRUE(tables.ok());
  OverlapBlockerOptions unbounded;
  unbounded.left_attr = "AwardTitle";
  unbounded.right_attr = "AwardTitle";
  OverlapBlockerOptions bounded = unbounded;
  bounded.mem_budget_bytes = 100 * 1024;
  JaccardJoinBlocker a(unbounded, 0.7);
  JaccardJoinBlocker b(bounded, 0.7);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    Executor pool(threads);
    ExecutorContext ctx{&pool};
    BlockStats sa, sb;
    auto ca = a.BlockWithStats(tables->umetrics, tables->usda, &sa, ctx);
    auto cb = b.BlockWithStats(tables->umetrics, tables->usda, &sb, ctx);
    ASSERT_TRUE(ca.ok() && cb.ok());
    EXPECT_TRUE(*ca == *cb) << "threads=" << threads;
    EXPECT_EQ(sa.verified, sb.verified) << "threads=" << threads;
    EXPECT_FALSE(ca->empty());
  }
}

// --- CLI surface -------------------------------------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CliScaleTest, DatagenWritesIdenticalCsvsAtAnyThreadCount) {
  std::string dir = ::testing::TempDir();
  std::string l1 = dir + "/emx_scale_l1.csv", r1 = dir + "/emx_scale_r1.csv";
  std::string g1 = dir + "/emx_scale_g1.csv";
  std::string l8 = dir + "/emx_scale_l8.csv", r8 = dir + "/emx_scale_r8.csv";
  std::string g8 = dir + "/emx_scale_g8.csv";
  std::string out, err;
  ASSERT_EQ(RunCli({"datagen", "--sf=0.2", "--threads=1",
                    "--out-left=" + l1, "--out-right=" + r1,
                    "--out-gold=" + g1},
                   out, err), 0) << err;
  ASSERT_EQ(RunCli({"datagen", "--sf=0.2", "--threads=8", "--shard-rows=13",
                    "--out-left=" + l8, "--out-right=" + r8,
                    "--out-gold=" + g8},
                   out, err), 0) << err;
  EXPECT_EQ(ReadFileOrDie(l1), ReadFileOrDie(l8));
  EXPECT_EQ(ReadFileOrDie(r1), ReadFileOrDie(r8));
  EXPECT_EQ(ReadFileOrDie(g1), ReadFileOrDie(g8));
}

TEST(CliScaleTest, BlockMemBudgetFlagPreservesOutput) {
  std::string dir = ::testing::TempDir();
  std::string l = dir + "/emx_scale_bl.csv", r = dir + "/emx_scale_br.csv";
  std::string out, err;
  ASSERT_EQ(RunCli({"datagen", "--sf=0.5", "--out-left=" + l,
                    "--out-right=" + r},
                   out, err), 0) << err;
  std::string p0 = dir + "/emx_scale_p0.csv", p1 = dir + "/emx_scale_p1.csv";
  out.clear();
  err.clear();
  ASSERT_EQ(RunCli({"block", l, r, "--method=overlap",
                    "--left-attr=AwardTitle", "--k=3", "--out=" + p0},
                   out, err), 0) << err;
  out.clear();
  err.clear();
  ASSERT_EQ(RunCli({"block", l, r, "--method=overlap",
                    "--left-attr=AwardTitle", "--k=3",
                    "--block-mem-budget=32k", "--out=" + p1},
                   out, err), 0) << err;
  EXPECT_EQ(ReadFileOrDie(p0), ReadFileOrDie(p1));
}

TEST(CliScaleTest, BlockMemBudgetRejectsMalformedSize) {
  std::string dir = ::testing::TempDir();
  std::string l = dir + "/emx_scale_el.csv", r = dir + "/emx_scale_er.csv";
  std::string out, err;
  ASSERT_EQ(RunCli({"datagen", "--sf=0.01", "--out-left=" + l,
                    "--out-right=" + r},
                   out, err), 0) << err;
  out.clear();
  err.clear();
  EXPECT_NE(RunCli({"block", l, r, "--method=overlap",
                    "--left-attr=AwardTitle", "--block-mem-budget=lots"},
                   out, err), 0);
  EXPECT_NE(err.find("block-mem-budget"), std::string::npos) << err;
}

}  // namespace
}  // namespace emx
