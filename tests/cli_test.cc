#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/cli/cli.h"
#include "src/table/csv.h"

namespace emx {
namespace {

// Temp-file helper: writes `content` under the gtest temp dir.
std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "/emx_cli_" + name;
  std::ofstream f(path, std::ios::binary);
  f << content;
  return path;
}

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunEmx(std::vector<std::string> args) {
  CliResult r;
  r.code = RunCli(args, r.out, r.err);
  return r;
}

const char* kLeftCsv =
    "RecordId,Name,City\n"
    "0,Dave Smith,Madison\n"
    "1,Joe Wilson,San Jose\n"
    "2,Dan Smith,Middleton\n";
const char* kRightCsv =
    "RecordId,Name,City\n"
    "0,David D. Smith,Madison\n"
    "1,Daniel W. Smith,Middleton\n";

TEST(CliTest, NoArgsPrintsUsage) {
  CliResult r = RunEmx({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CliResult r = RunEmx({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, ProfilePrintsColumnStats) {
  std::string path = WriteTemp("profile.csv", kLeftCsv);
  CliResult r = RunEmx({"profile", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("rows=3"), std::string::npos);
  EXPECT_NE(r.out.find("City"), std::string::npos);
}

TEST(CliTest, ProfileMissingFileFails) {
  CliResult r = RunEmx({"profile", "/nonexistent.csv"});
  EXPECT_EQ(r.code, 1);
  // A missing file is NotFound (deterministic), not a transient IoError —
  // and the diagnostic names the offending path.
  EXPECT_NE(r.err.find("NotFound"), std::string::npos);
  EXPECT_NE(r.err.find("/nonexistent.csv"), std::string::npos);
}

TEST(CliTest, BlockAeWritesPairs) {
  std::string left = WriteTemp("bl.csv", kLeftCsv);
  std::string right = WriteTemp("br.csv", kRightCsv);
  std::string out_path = ::testing::TempDir() + "/emx_cli_pairs.csv";
  CliResult r = RunEmx({"block", left, right, "--method=ae", "--left-attr=City",
                     "--out=" + out_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("kept 2 of 6"), std::string::npos);
  auto pairs = ReadCsvFile(out_path);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->num_rows(), 2u);
}

TEST(CliTest, BlockRequiresLeftAttr) {
  std::string left = WriteTemp("bl2.csv", kLeftCsv);
  std::string right = WriteTemp("br2.csv", kRightCsv);
  CliResult r = RunEmx({"block", left, right, "--method=ae"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--left-attr"), std::string::npos);
}

TEST(CliTest, BlockRejectsUnknownMethod) {
  std::string left = WriteTemp("bl3.csv", kLeftCsv);
  std::string right = WriteTemp("br3.csv", kRightCsv);
  CliResult r =
      RunEmx({"block", left, right, "--method=magic", "--left-attr=City"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --method"), std::string::npos);
}

TEST(CliTest, MatchEndToEnd) {
  std::string left = WriteTemp("ml.csv", kLeftCsv);
  std::string right = WriteTemp("mr.csv", kRightCsv);
  std::string pairs = WriteTemp("mp.csv",
                                "left_id,right_id\n0,0\n0,1\n2,0\n2,1\n");
  // Labels: same-city pairs are matches.
  std::string labels = WriteTemp(
      "mlabels.csv",
      "left_id,right_id,label\n0,0,yes\n0,1,no\n2,0,no\n2,1,yes\n");
  std::string out_path = ::testing::TempDir() + "/emx_cli_matches.csv";
  CliResult r = RunEmx({"match", left, right, "--pairs=" + pairs,
                     "--labels=" + labels, "--matcher=tree",
                     "--exclude=RecordId", "--out=" + out_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("decision_tree predicted"), std::string::npos);
  auto matches = ReadCsvFile(out_path);
  ASSERT_TRUE(matches.ok());
  // Training data is tiny but cleanly separable by the City exact feature;
  // the tree should reproduce the two labeled matches.
  EXPECT_EQ(matches->num_rows(), 2u);
}

TEST(CliTest, MatchRejectsBadLabel) {
  std::string left = WriteTemp("ml2.csv", kLeftCsv);
  std::string right = WriteTemp("mr2.csv", kRightCsv);
  std::string pairs = WriteTemp("mp2.csv", "left_id,right_id\n0,0\n");
  std::string labels =
      WriteTemp("mlabels2.csv", "left_id,right_id,label\n0,0,maybe\n");
  CliResult r = RunEmx({"match", left, right, "--pairs=" + pairs,
                     "--labels=" + labels});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("bad label"), std::string::npos);
}

TEST(CliTest, DedupeFindsDuplicateRows) {
  std::string table = WriteTemp(
      "dedupe.csv",
      "Name\nDave Smith\nJoe Wilson\nDave Smith\n");
  std::string out_path = ::testing::TempDir() + "/emx_cli_dupes.csv";
  CliResult r = RunEmx({"dedupe", table, "--left-attr=Name", "--method=ae",
                        "--out=" + out_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("found 1 potential duplicate"), std::string::npos);
  auto pairs = ReadCsvFile(out_path);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->num_rows(), 1u);
  EXPECT_EQ(pairs->at(0, "left_id").AsInt(), 0);
  EXPECT_EQ(pairs->at(0, "right_id").AsInt(), 2);
}

TEST(CliTest, DedupeRequiresAttr) {
  std::string table = WriteTemp("dedupe2.csv", "Name\nx\n");
  CliResult r = RunEmx({"dedupe", table});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--left-attr"), std::string::npos);
}

TEST(CliTest, EstimateComputesIntervals) {
  std::string matches = WriteTemp("em.csv", "left_id,right_id\n0,0\n1,1\n");
  std::string sample = WriteTemp(
      "es.csv",
      "left_id,right_id,label\n0,0,yes\n1,1,no\n2,2,yes\n3,3,unsure\n");
  CliResult r = RunEmx({"estimate", "--matches=" + matches,
                     "--sample=" + sample});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("precision 0.500"), std::string::npos);
  EXPECT_NE(r.out.find("recall 0.500"), std::string::npos);
  EXPECT_NE(r.out.find("1 unsure ignored"), std::string::npos);
}

TEST(CliTest, EstimateRequiresBothFlags) {
  CliResult r = RunEmx({"estimate", "--matches=x.csv"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

// --- emx run: end-to-end pipeline with checkpoint/resume -------------------------

std::string FreshRunDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/emx_cli_run_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

// Shared fixtures for the run tests: same-city pairs are matches, and the
// labels are cleanly separable by the City exact-match feature.
struct RunFixture {
  std::string left, right, labels, out_path;
};

RunFixture MakeRunFixture(const std::string& tag) {
  RunFixture f;
  f.left = WriteTemp("run_l_" + tag + ".csv", kLeftCsv);
  f.right = WriteTemp("run_r_" + tag + ".csv", kRightCsv);
  f.labels = WriteTemp(
      "run_lab_" + tag + ".csv",
      "left_id,right_id,label\n0,0,yes\n0,1,no\n2,0,no\n2,1,yes\n");
  f.out_path = ::testing::TempDir() + "/emx_cli_run_out_" + tag + ".csv";
  return f;
}

std::vector<std::string> RunArgs(const RunFixture& f) {
  return {"run",          f.left,
          f.right,        "--method=ae",
          "--left-attr=City", "--labels=" + f.labels,
          "--matcher=tree",   "--exclude=RecordId",
          "--out=" + f.out_path};
}

TEST(CliTest, RunEndToEndWritesProvenancedMatches) {
  RunFixture f = MakeRunFixture("e2e");
  CliResult r = RunEmx(RunArgs(f));
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("final matches"), std::string::npos);
  auto matches = ReadCsvFile(f.out_path);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->num_rows(), 2u);
  ASSERT_TRUE(matches->schema().Contains("provenance"));
  EXPECT_EQ(matches->at(0, "provenance").AsString(), "ml");
}

TEST(CliTest, RunRequiresLabels) {
  RunFixture f = MakeRunFixture("nolabels");
  CliResult r = RunEmx({"run", f.left, f.right, "--left-attr=City"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--labels"), std::string::npos);
}

TEST(CliTest, RunFailPointAbortsThenResumeIsByteIdentical) {
  RunFixture f = MakeRunFixture("resume");
  std::string ckpt = FreshRunDir("resume");

  // Uninterrupted reference output.
  RunFixture ref = MakeRunFixture("resume_ref");
  ASSERT_EQ(RunEmx(RunArgs(ref)).code, 0);
  const std::string want = ReadFileBytes(ref.out_path);
  ASSERT_FALSE(want.empty());

  // Killed at the match stage: the CLI reports the injected failure...
  std::vector<std::string> killed_args = RunArgs(f);
  killed_args.push_back("--checkpoint-dir=" + ckpt);
  killed_args.push_back("--fail-point=workflow/match:error(IoError),count=1");
  CliResult killed = RunEmx(killed_args);
  EXPECT_EQ(killed.code, 1);
  EXPECT_NE(killed.err.find("IoError"), std::string::npos);

  // ...and the resumed run completes with byte-identical output.
  std::vector<std::string> resume_args = RunArgs(f);
  resume_args.push_back("--checkpoint-dir=" + ckpt);
  resume_args.push_back("--resume");
  CliResult resumed = RunEmx(resume_args);
  EXPECT_EQ(resumed.code, 0) << resumed.err;
  EXPECT_EQ(ReadFileBytes(f.out_path), want);
}

TEST(CliTest, RunResumeReusesTrainedModel) {
  RunFixture f = MakeRunFixture("model");
  std::string ckpt = FreshRunDir("model");
  std::vector<std::string> args = RunArgs(f);
  args.push_back("--checkpoint-dir=" + ckpt);
  ASSERT_EQ(RunEmx(args).code, 0);
  args.push_back("--resume");
  CliResult resumed = RunEmx(args);
  EXPECT_EQ(resumed.code, 0) << resumed.err;
  EXPECT_NE(resumed.out.find("resumed trained model"), std::string::npos);
}

TEST(CliTest, RunRejectsBadFailPointSpec) {
  RunFixture f = MakeRunFixture("badspec");
  std::vector<std::string> args = RunArgs(f);
  args.push_back("--fail-point=no-colon-here");
  CliResult r = RunEmx(args);
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("InvalidArgument"), std::string::npos);
}

}  // namespace
}  // namespace emx
