// DeltaTokenIndex property suite: after EVERY operation of a seeded random
// interleaving of Add / Remove / Compact / Probe (>= 10k ops per run), the
// mutable index must answer probes exactly like a from-scratch index built
// over the live record set — the rebuild-equivalence contract MatchService
// leans on. A concurrent section (shared_mutex readers vs one mutator, at
// 1/2/8 reader threads) gives TSan a surface for the serve-mode locking
// pattern.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "src/block/delta_index.h"

namespace emx {
namespace {

IdSpan Span(const std::vector<uint32_t>& ids) {
  return {ids.data(), static_cast<uint32_t>(ids.size())};
}

// Reference model: every record's sorted token multiset + live flag.
struct Model {
  std::vector<std::vector<uint32_t>> records;
  std::vector<bool> live;

  size_t live_count() const {
    size_t n = 0;
    for (bool l : live) n += l;
    return n;
  }
};

// Probe answers as an id → overlap map (ascending by construction).
using ProbeAnswer = std::map<uint32_t, uint32_t>;

ProbeAnswer ProbeIndex(const DeltaTokenIndex& index,
                       const std::vector<uint32_t>& query,
                       DeltaTokenIndex::ProbeScratch* scratch) {
  ProbeAnswer out;
  uint32_t last_emitted = 0;
  bool first = true;
  index.Probe(Span(query), scratch, [&](uint32_t r, uint32_t overlap) {
    if (!first) EXPECT_GT(r, last_emitted) << "emit order must ascend";
    first = false;
    last_emitted = r;
    out[r] = overlap;
  });
  return out;
}

// The oracle: per-occurrence overlap — every query occurrence of token v
// counts every record posting of v, so overlap = sum_v mult_q(v) *
// mult_r(v) (the OverlapJoinIds convention the index documents).
ProbeAnswer ProbeModel(const Model& model,
                       const std::vector<uint32_t>& query) {
  ProbeAnswer out;
  for (uint32_t r = 0; r < model.records.size(); ++r) {
    if (!model.live[r]) continue;
    const std::vector<uint32_t>& rec = model.records[r];
    size_t i = 0, j = 0, overlap = 0;
    while (i < query.size() && j < rec.size()) {
      if (query[i] < rec[j]) {
        ++i;
      } else if (rec[j] < query[i]) {
        ++j;
      } else {
        // Sorted runs of the shared token: multiply their lengths.
        uint32_t v = query[i];
        size_t qi = i, rj = j;
        while (qi < query.size() && query[qi] == v) ++qi;
        while (rj < rec.size() && rec[rj] == v) ++rj;
        overlap += (qi - i) * (rj - j);
        i = qi;
        j = rj;
      }
    }
    if (overlap > 0) out[r] = static_cast<uint32_t>(overlap);
  }
  return out;
}

// A from-scratch index over the live records only, with a mapping from its
// dense ids back to the model's. Probing it must agree with the mutable
// index probed directly — this IS "equals a rebuild of the live set".
ProbeAnswer ProbeFreshRebuild(const Model& model,
                              const std::vector<uint32_t>& query,
                              DeltaTokenIndex::ProbeScratch* scratch) {
  DeltaTokenIndex fresh(0);
  std::vector<uint32_t> dense_to_model;
  for (uint32_t r = 0; r < model.records.size(); ++r) {
    if (!model.live[r]) continue;
    fresh.Add(Span(model.records[r]));
    dense_to_model.push_back(r);
  }
  ProbeAnswer out;
  fresh.Probe(Span(query), scratch, [&](uint32_t r, uint32_t overlap) {
    out[dense_to_model[r]] = overlap;
  });
  return out;
}

std::vector<uint32_t> RandomTokenRun(std::mt19937& rng, size_t universe,
                                     size_t max_len) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<uint32_t> tok_dist(
      0, static_cast<uint32_t>(universe - 1));
  std::vector<uint32_t> ids(len_dist(rng));
  for (uint32_t& id : ids) id = tok_dist(rng);
  std::sort(ids.begin(), ids.end());  // sorted, duplicates preserved
  return ids;
}

// One fuzz campaign: `ops` random operations against one index + model,
// checking equivalence after every single op with a fixed probe battery
// (cheap) and a full fresh-rebuild comparison on a stride (exact but
// heavier). The live set is kept bounded so per-op verification stays
// proportional.
void RunCampaign(uint64_t seed, size_t ops, size_t compact_threshold) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " threshold=" + std::to_string(compact_threshold));
  std::mt19937 rng(seed);
  const size_t kUniverse = 48;  // small → dense overlaps, hot posting lists
  const size_t kMaxLen = 8;
  const size_t kMaxLive = 300;

  DeltaTokenIndex index(compact_threshold);
  Model model;
  DeltaTokenIndex::ProbeScratch scratch, fresh_scratch;

  // Fixed probe battery covering rare and hot tokens, short and long
  // queries, and a query with duplicate occurrences.
  std::vector<std::vector<uint32_t>> battery = {
      {0},
      {1, 2, 3},
      {5, 5, 9},  // duplicate occurrences exercise per-occurrence counts
      {10, 20, 30, 40, 47},
      RandomTokenRun(rng, kUniverse, kMaxLen),
  };

  std::uniform_int_distribution<int> op_dist(0, 99);
  for (size_t step = 0; step < ops; ++step) {
    int roll = op_dist(rng);
    if (roll < 45 && model.live_count() < kMaxLive) {
      std::vector<uint32_t> ids = RandomTokenRun(rng, kUniverse, kMaxLen);
      uint32_t id = index.Add(Span(ids));
      ASSERT_EQ(id, model.records.size());
      model.records.push_back(std::move(ids));
      model.live.push_back(true);
    } else if (roll < 75 && !model.records.empty()) {
      std::uniform_int_distribution<size_t> pick(0, model.records.size() - 1);
      uint32_t victim = static_cast<uint32_t>(pick(rng));
      index.Remove(victim);  // no-op when already dead, like the model
      model.live[victim] = false;
    } else if (roll < 80) {
      index.Compact();
    }
    // else: pure probe step (mutation skipped when Add hit the cap).

    ASSERT_EQ(index.live_rows(), model.live_count()) << "step " << step;
    for (const std::vector<uint32_t>& q : battery) {
      ASSERT_EQ(ProbeIndex(index, q, &scratch), ProbeModel(model, q))
          << "step " << step;
    }
    if (step % 97 == 0) {
      std::vector<uint32_t> q = RandomTokenRun(rng, kUniverse, kMaxLen);
      ProbeAnswer direct = ProbeIndex(index, q, &scratch);
      ASSERT_EQ(direct, ProbeFreshRebuild(model, q, &fresh_scratch))
          << "step " << step;
      ASSERT_EQ(direct, ProbeModel(model, q)) << "step " << step;
    }
  }
  // Terminal state: compact once more and re-verify the whole battery.
  index.Compact();
  for (const std::vector<uint32_t>& q : battery) {
    ASSERT_EQ(ProbeIndex(index, q, &scratch), ProbeModel(model, q));
  }
  EXPECT_EQ(index.delta_postings(), 0u);
  EXPECT_EQ(index.dead_postings(), 0u);
}

// >= 10k ops, split across compaction regimes: manual-only (threshold 0,
// explicit Compact ops hit every interleaving point), hair-trigger
// (threshold 1 — nearly every mutation compacts), and a serving-like
// threshold that compacts mid-sequence.
TEST(DeltaIndexPropertyTest, RandomInterleavingsEqualFreshRebuild) {
  RunCampaign(/*seed=*/2019, /*ops=*/4000, /*compact_threshold=*/0);
  RunCampaign(/*seed=*/7, /*ops=*/3000, /*compact_threshold=*/1);
  RunCampaign(/*seed=*/1336, /*ops=*/3000, /*compact_threshold=*/64);
}

TEST(DeltaIndexPropertyTest, EmptyAndDegenerateShapes) {
  DeltaTokenIndex index(0);
  DeltaTokenIndex::ProbeScratch scratch;
  // Probing an empty index emits nothing.
  EXPECT_TRUE(ProbeIndex(index, {1, 2, 3}, &scratch).empty());
  // Empty record: never emitted, but occupies an id.
  EXPECT_EQ(index.Add({nullptr, 0}), 0u);
  EXPECT_TRUE(ProbeIndex(index, {1, 2, 3}, &scratch).empty());
  // Empty query emits nothing regardless of contents.
  EXPECT_EQ(index.Add(Span(std::vector<uint32_t>{1, 2, 3})), 1u);
  EXPECT_TRUE(ProbeIndex(index, {}, &scratch).empty());
  // Token ids far past the snapshot vocabulary are handled (delta lists
  // grow on demand; CSR bound-checks).
  std::vector<uint32_t> big = {1000000};
  EXPECT_EQ(index.Add(Span(big)), 2u);
  ProbeAnswer hit = ProbeIndex(index, big, &scratch);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit.at(2), 1u);
  index.Compact();
  EXPECT_EQ(ProbeIndex(index, big, &scratch).at(2), 1u);
  // Remove everything; the index answers empty at every compaction state.
  index.Remove(0);
  index.Remove(1);
  index.Remove(2);
  EXPECT_TRUE(ProbeIndex(index, big, &scratch).empty());
  EXPECT_TRUE(ProbeIndex(index, {1, 2, 3}, &scratch).empty());
  index.Compact();
  EXPECT_TRUE(ProbeIndex(index, {1, 2, 3}, &scratch).empty());
  EXPECT_EQ(index.live_rows(), 0u);
}

// Tombstoned ids are never reused and stay addressable across compactions.
TEST(DeltaIndexPropertyTest, RecordIdsStableAcrossCompaction) {
  DeltaTokenIndex index(0);
  std::vector<uint32_t> a = {1, 2, 3}, b = {2, 3, 4}, c = {9};
  EXPECT_EQ(index.Add(Span(a)), 0u);
  EXPECT_EQ(index.Add(Span(b)), 1u);
  index.Remove(0);
  index.Compact();
  EXPECT_EQ(index.Add(Span(c)), 2u) << "ids keep ascending after compaction";
  EXPECT_FALSE(index.live(0));
  EXPECT_TRUE(index.live(1));
  ASSERT_EQ(index.record_ids(1).size, 3u);
  EXPECT_EQ(index.record_ids(1).data[0], 2u);
  DeltaTokenIndex::ProbeScratch scratch;
  ProbeAnswer ans = ProbeIndex(index, {2, 3}, &scratch);
  ASSERT_EQ(ans.size(), 1u);
  EXPECT_EQ(ans.at(1), 2u);
}

// The serve locking pattern under TSan: readers probe under a shared lock
// while one mutator inserts/removes/compacts under the exclusive lock.
// Readers assert internal consistency (live records, positive overlap,
// ascending emit); exact values are racy by design, equivalence is the
// single-threaded suite's job.
TEST(DeltaIndexPropertyTest, ConcurrentLookupsDuringIngest) {
  for (size_t readers : {1u, 2u, 8u}) {
    SCOPED_TRACE("readers=" + std::to_string(readers));
    DeltaTokenIndex index(32);
    std::shared_mutex mu;
    std::mt19937 seed_rng(readers);

    // Seed records so probes hit from the start.
    {
      std::mt19937 rng(99);
      for (int i = 0; i < 64; ++i) {
        std::vector<uint32_t> ids = RandomTokenRun(rng, 48, 8);
        index.Add(Span(ids));
      }
    }

    // Readers do a BOUNDED amount of work (glibc's shared_mutex is
    // reader-preferring; spinning readers would starve the mutator), the
    // mutator runs until every reader finished. Total runtime is bounded
    // by the readers, races are plentiful, and nothing can hang.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> probes{0};
    std::vector<std::thread> pool;
    for (size_t t = 0; t < readers; ++t) {
      pool.emplace_back([&, t] {
        std::mt19937 rng(1000 + t);
        DeltaTokenIndex::ProbeScratch scratch;
        for (int i = 0; i < 400; ++i) {
          std::vector<uint32_t> q = RandomTokenRun(rng, 48, 8);
          std::shared_lock<std::shared_mutex> lock(mu);
          index.Probe(Span(q), &scratch, [&](uint32_t r, uint32_t overlap) {
            EXPECT_TRUE(index.live(r));
            EXPECT_GT(overlap, 0u);
          });
          probes.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::thread mutator([&] {
      std::mt19937 rng(7);
      while (!stop.load(std::memory_order_relaxed)) {
        int roll = static_cast<int>(rng() % 100);
        std::unique_lock<std::shared_mutex> lock(mu);
        if (roll < 55) {
          std::vector<uint32_t> ids = RandomTokenRun(rng, 48, 8);
          index.Add(Span(ids));
        } else if (roll < 90 && index.rows() > 0) {
          index.Remove(static_cast<uint32_t>(rng() % index.rows()));
        } else {
          index.Compact();
        }
      }
    });
    for (std::thread& t : pool) t.join();
    stop.store(true);
    mutator.join();
    EXPECT_GT(probes.load(), 0u);
    // Post-race equivalence: the surviving state still equals a rebuild.
    DeltaTokenIndex::ProbeScratch scratch, fresh_scratch;
    Model model;
    for (uint32_t r = 0; r < index.rows(); ++r) {
      model.records.emplace_back(index.record_ids(r).data,
                                 index.record_ids(r).data +
                                     index.record_ids(r).size);
      model.live.push_back(index.live(r));
    }
    for (int i = 0; i < 20; ++i) {
      std::vector<uint32_t> q = RandomTokenRun(seed_rng, 48, 8);
      EXPECT_EQ(ProbeIndex(index, q, &scratch),
                ProbeFreshRebuild(model, q, &fresh_scratch));
    }
  }
}

}  // namespace
}  // namespace emx
