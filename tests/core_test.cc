#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/core/result.h"
#include "src/core/status.h"
#include "src/core/strings.h"

namespace emx {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::IoError("").code(),         Status::ParseError("").code(),
      Status::FailedPrecondition("").code(), Status::Internal("").code(),
      Status::NotImplemented("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [] { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    EMX_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto outer = []() -> Status {
    EMX_RETURN_IF_ERROR(Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kAlreadyExists);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusCodeTest, FromStringRoundTripsEveryCode) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIoError, StatusCode::kParseError,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kNotImplemented}) {
    StatusCode parsed;
    ASSERT_TRUE(StatusCodeFromString(StatusCodeToString(code), &parsed));
    EXPECT_EQ(parsed, code);
  }
}

TEST(StatusCodeTest, FromStringRejectsUnknownNames) {
  StatusCode parsed = StatusCode::kInternal;
  EXPECT_FALSE(StatusCodeFromString("NotACode", &parsed));
  EXPECT_FALSE(StatusCodeFromString("ioerror", &parsed));  // case-sensitive
  EXPECT_FALSE(StatusCodeFromString("", &parsed));
  EXPECT_EQ(parsed, StatusCode::kInternal);  // untouched on failure
}

TEST(StatusTest, FromCodeBuildsRuntimeChosenErrors) {
  Status s = Status::FromCode(StatusCode::kIoError, "injected");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "injected");
  // kOk is not a legal error code; it degrades to Internal.
  Status bad = Status::FromCode(StatusCode::kOk, "oops");
  EXPECT_EQ(bad.code(), StatusCode::kInternal);
}

// --- Result ---------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r((Status()));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto f = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("no");
    return 10;
  };
  auto g = [&](bool fail) -> Result<int> {
    EMX_ASSIGN_OR_RETURN(int v, f(fail));
    return v * 2;
  };
  EXPECT_EQ(*g(false), 20);
  EXPECT_EQ(g(true).status().code(), StatusCode::kOutOfRange);
}

// Accessing the value of an errored Result aborts, but only after logging
// the underlying status to stderr — a blind SIGABRT with no indication of
// WHICH error was ignored is undebuggable in a long pipeline run.
TEST(ResultDeathTest, ValueOnErrorLogsStatusBeforeAbort) {
  EXPECT_DEATH(
      {
        Result<int> r(Status::IoError("disk on fire"));
        *r;
      },
      "errored Result.*IoError: disk on fire");
}

// --- RandomEngine ----------------------------------------------------------

TEST(RandomEngineTest, DeterministicPerSeed) {
  RandomEngine a(123), b(123), c(124);
  std::vector<uint64_t> va, vb, vc;
  for (int i = 0; i < 32; ++i) {
    va.push_back(a.NextUint64());
    vb.push_back(b.NextUint64());
    vc.push_back(c.NextUint64());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RandomEngineTest, NextBelowRespectsBound) {
  RandomEngine rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RandomEngineTest, NextBelowOneIsAlwaysZero) {
  RandomEngine rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RandomEngineTest, NextIntCoversInclusiveRange) {
  RandomEngine rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(RandomEngineTest, NextDoubleInUnitInterval) {
  RandomEngine rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomEngineTest, BernoulliExtremes) {
  RandomEngine rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RandomEngineTest, BernoulliRateIsRoughlyP) {
  RandomEngine rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomEngineTest, GaussianMoments) {
  RandomEngine rng(17);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RandomEngineTest, ShuffleIsPermutation) {
  RandomEngine rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RandomEngineTest, SampleWithoutReplacementIsDistinct) {
  RandomEngine rng(21);
  auto picks = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(picks.size(), 20u);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t p : picks) EXPECT_LT(p, 50u);
}

TEST(RandomEngineTest, SampleMoreThanPopulationReturnsAll) {
  RandomEngine rng(23);
  auto picks = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(picks.size(), 5u);
}

TEST(RandomEngineTest, ForkedStreamsDiffer) {
  RandomEngine rng(25);
  RandomEngine f1 = rng.Fork(1);
  RandomEngine f2 = rng.Fork(2);
  EXPECT_NE(f1.NextUint64(), f2.NextUint64());
}

// --- strings ---------------------------------------------------------------

TEST(StringsTest, AsciiCase) {
  EXPECT_EQ(AsciiToLower("AbC-123"), "abc-123");
  EXPECT_EQ(AsciiToUpper("AbC-123"), "ABC-123");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\n x\r"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a   b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "|"), "a|b|c");
  EXPECT_EQ(Join({}, "|"), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringsTest, StripPunctuation) {
  EXPECT_EQ(StripPunctuation("a-b (c)! #d"), "a b  c    d");
  EXPECT_EQ(StripPunctuation("Hello World 42"), "Hello World 42");
}

TEST(StringsTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-1"));
}

TEST(StringsTest, ParseByteSize) {
  size_t v = 0;
  EXPECT_TRUE(ParseByteSize("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseByteSize("1048576", &v));
  EXPECT_EQ(v, 1048576u);
  EXPECT_TRUE(ParseByteSize("64M", &v));
  EXPECT_EQ(v, 64u << 20);
  EXPECT_TRUE(ParseByteSize("512kb", &v));
  EXPECT_EQ(v, 512u << 10);
  EXPECT_TRUE(ParseByteSize("2g", &v));
  EXPECT_EQ(v, 2ull << 30);
  EXPECT_TRUE(ParseByteSize("1T", &v));
  EXPECT_EQ(v, 1ull << 40);
  EXPECT_TRUE(ParseByteSize("3B", &v));
  EXPECT_EQ(v, 3u);
}

TEST(StringsTest, ParseByteSizeRejectsMalformedAndOverflow) {
  size_t v = 0;
  EXPECT_FALSE(ParseByteSize("", &v));
  EXPECT_FALSE(ParseByteSize("M", &v));
  EXPECT_FALSE(ParseByteSize("-1", &v));
  EXPECT_FALSE(ParseByteSize("1.5G", &v));
  EXPECT_FALSE(ParseByteSize("64X", &v));
  EXPECT_FALSE(ParseByteSize("64Mb extra", &v));
  EXPECT_FALSE(ParseByteSize("99999999999999999999", &v));  // digit overflow
  EXPECT_FALSE(ParseByteSize("18446744073709551615k", &v));  // mult overflow
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("WIS01040", "WIS"));
  EXPECT_FALSE(StartsWith("WI", "WIS"));
  EXPECT_TRUE(EndsWith("title NC/NRSP", "NC/NRSP"));
  EXPECT_FALSE(EndsWith("NC", "NC/NRSP"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%04d-%s", 7, "x"), "0007-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace emx
