#include <set>

#include <gtest/gtest.h>

#include "src/core/strings.h"
#include "src/datagen/case_study.h"
#include "src/datagen/iris_matcher.h"
#include "src/datagen/preprocess.h"
#include "src/datagen/universe.h"
#include "src/eval/corleone_estimator.h"
#include "src/rules/match_rules.h"
#include "src/table/csv.h"

namespace emx {
namespace {

// One shared universe for the whole file (generation is ~1-2s).
const CaseStudyData& Data() {
  static const CaseStudyData& data = *[] {
    auto r = GenerateCaseStudy();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return new CaseStudyData(std::move(*r));
  }();
  return data;
}

const ProjectedTables& Tables() {
  static const ProjectedTables& tables = *[] {
    auto r = PreprocessCaseStudy(Data());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return new ProjectedTables(std::move(*r));
  }();
  return tables;
}

// --- universe shape ------------------------------------------------------------

TEST(UniverseTest, TableShapesMatchFigure2) {
  const CaseStudyData& d = Data();
  EXPECT_EQ(d.umetrics_award_agg.num_rows(), 1336u);
  EXPECT_EQ(d.umetrics_award_agg.num_columns(), 13u);
  EXPECT_EQ(d.usda.num_rows(), 1915u);
  EXPECT_EQ(d.usda.num_columns(), 78u);
  EXPECT_EQ(d.extra_umetrics_agg.num_rows(), 496u);
  EXPECT_EQ(d.umetrics_object_codes.num_rows(), 4574u);
  EXPECT_EQ(d.umetrics_object_codes.num_columns(), 3u);
  EXPECT_EQ(d.umetrics_org_units.num_rows(), 264u);
  EXPECT_EQ(d.umetrics_org_units.num_columns(), 5u);
  EXPECT_EQ(d.umetrics_subaward.num_columns(), 23u);
  EXPECT_EQ(d.umetrics_vendor.num_columns(), 21u);
  EXPECT_EQ(d.umetrics_employees.num_columns(), 13u);
}

TEST(UniverseTest, DeterministicForSameSeed) {
  UniverseOptions small;
  small.num_umetrics = 150;
  small.num_usda = 260;
  small.num_extra = 30;
  small.m1_group = 30;
  small.m4_group = 40;
  small.title_group = 20;
  small.typo_group = 5;
  small.sibling_rows = 20;
  small.generic_umetrics = 6;
  small.generic_usda = 5;
  small.ncnrsp_rows = 3;
  small.extra_m1 = 5;
  small.extra_m4 = 5;
  small.employee_rows = 800;
  small.vendor_rows = 100;
  small.subaward_rows = 50;
  small.object_code_rows = 20;
  small.org_unit_rows = 10;
  auto a = GenerateCaseStudy(small);
  auto b = GenerateCaseStudy(small);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->gold.pairs(), b->gold.pairs());
  EXPECT_EQ(WriteCsvString(a->usda), WriteCsvString(b->usda));
  small.seed = 999;
  auto c = GenerateCaseStudy(small);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->gold.pairs(), c->gold.pairs());
}

TEST(UniverseTest, ImpossibleOptionsRejected) {
  UniverseOptions bad;
  bad.num_umetrics = 10;  // smaller than the match groups
  auto r = GenerateCaseStudy(bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(UniverseTest, KeysAreUnique) {
  const CaseStudyData& d = Data();
  EXPECT_TRUE(*d.umetrics_award_agg.IsUniqueKey("UniqueAwardNumber"));
  EXPECT_TRUE(*d.usda.IsUniqueKey("AccessionNumber"));
  EXPECT_TRUE(*d.extra_umetrics_agg.IsUniqueKey("UniqueAwardNumber"));
}

TEST(UniverseTest, GoldAndAmbiguousAreDisjoint) {
  const CaseStudyData& d = Data();
  EXPECT_TRUE(CandidateSet::Intersect(d.gold, d.ambiguous).empty());
}

TEST(UniverseTest, GoldIndicesAreInRange) {
  const CaseStudyData& d = Data();
  for (const RecordPair& p : d.gold) {
    EXPECT_LT(p.left, d.umetrics_award_agg.num_rows());
    EXPECT_LT(p.right, d.usda.num_rows());
  }
  for (const RecordPair& p : d.gold_extra) {
    EXPECT_LT(p.left, d.extra_umetrics_agg.num_rows());
    EXPECT_LT(p.right, d.usda.num_rows());
  }
}

TEST(UniverseTest, GroupCountsAddUp) {
  const CaseStudyData& d = Data();
  EXPECT_EQ(d.m1_pairs + d.m4_pairs + d.title_pairs + d.typo_pairs,
            d.gold.size());
  EXPECT_GE(d.m1_pairs, 200u);  // one-to-many can only add pairs
  EXPECT_GE(d.m4_pairs, 450u);
  EXPECT_EQ(d.sibling_pairs, 280u);
}

TEST(UniverseTest, CaseConventionsDiffer) {
  // UMETRICS renders titles in UPPERCASE, USDA in Mixed Case — the driver
  // of the §9 case-fix story.
  const CaseStudyData& d = Data();
  std::string u = d.umetrics_award_agg.at(0, "AwardTitle").AsString();
  EXPECT_EQ(u, AsciiToUpper(u));
  bool any_lower = false;
  for (size_t r = 0; r < 10; ++r) {
    std::string s = d.usda.at(r, "ProjectTitle").AsString();
    if (s != AsciiToUpper(s)) any_lower = true;
  }
  EXPECT_TRUE(any_lower);
}

// --- preprocess -------------------------------------------------------------------

TEST(PreprocessTest, ProjectedSchemas) {
  const ProjectedTables& t = Tables();
  EXPECT_EQ(t.umetrics.schema().names(),
            (std::vector<std::string>{"RecordId", "AwardNumber", "AwardTitle",
                                      "FirstTransDate", "LastTransDate",
                                      "EmployeeName"}));
  EXPECT_EQ(t.usda.schema().names(),
            (std::vector<std::string>{"RecordId", "AwardNumber", "AwardTitle",
                                      "FirstTransDate", "LastTransDate",
                                      "AccessionNumber", "EmployeeName",
                                      "ProjectNumber"}));
  EXPECT_EQ(t.umetrics.num_rows(), 1336u);
  EXPECT_EQ(t.usda.num_rows(), 1915u);
  EXPECT_EQ(t.extra.num_rows(), 496u);
}

TEST(PreprocessTest, RowOrderPreserved) {
  // Gold indices address both raw and projected tables, so row r of the
  // projected table must describe row r of the raw table.
  const CaseStudyData& d = Data();
  const ProjectedTables& t = Tables();
  for (size_t r : {size_t{0}, size_t{100}, size_t{1335}}) {
    EXPECT_EQ(t.umetrics.at(r, "AwardNumber").AsString(),
              d.umetrics_award_agg.at(r, "UniqueAwardNumber").AsString());
    EXPECT_EQ(t.umetrics.at(r, "RecordId").AsInt(), static_cast<int64_t>(r));
  }
  for (size_t r : {size_t{0}, size_t{500}, size_t{1914}}) {
    EXPECT_EQ(t.usda.at(r, "AccessionNumber").AsString(),
              d.usda.at(r, "AccessionNumber").AsString());
  }
}

TEST(PreprocessTest, EmployeeNamesConcatenatedAndDeduplicated) {
  const ProjectedTables& t = Tables();
  size_t with_names = 0;
  for (size_t r = 0; r < t.umetrics.num_rows(); ++r) {
    const Value& v = t.umetrics.at(r, "EmployeeName");
    if (v.is_null()) continue;
    ++with_names;
    // Names are '|'-separated and unique within the cell.
    std::set<std::string> seen;
    for (const auto& name : Split(v.AsString(), '|')) {
      EXPECT_TRUE(seen.insert(name).second)
          << "duplicate employee in row " << r;
    }
  }
  // Every award appears in the employee table, so nearly all rows get names.
  EXPECT_GT(with_names, t.umetrics.num_rows() * 9 / 10);
}

// --- gold semantics: the rules really fire where they should ------------------------

TEST(GoldSemanticsTest, M1RuleFindsOnlyGoldPairs) {
  const CaseStudyData& d = Data();
  const ProjectedTables& t = Tables();
  auto m1 = ApplyRulesCartesian(PositiveRulesV1(), t.umetrics, t.usda);
  ASSERT_TRUE(m1.ok());
  EXPECT_GE(m1->size(), 200u);
  for (const RecordPair& p : *m1) {
    EXPECT_TRUE(d.gold.Contains(p))
        << "M1 fired on a non-gold pair (" << p.left << "," << p.right << ")";
  }
}

TEST(GoldSemanticsTest, SureRulesV2FindOnlyGoldPairs) {
  const CaseStudyData& d = Data();
  const ProjectedTables& t = Tables();
  auto sure = ApplyRulesCartesian(PositiveRulesV2(), t.umetrics, t.usda);
  ASSERT_TRUE(sure.ok());
  EXPECT_GE(sure->size(), 650u);
  for (const RecordPair& p : *sure) {
    EXPECT_TRUE(d.gold.Contains(p));
  }
}

TEST(GoldSemanticsTest, NegativeRulesNeverFireOnSureMatches) {
  const ProjectedTables& t = Tables();
  auto sure = ApplyRulesCartesian(PositiveRulesV2(), t.umetrics, t.usda);
  ASSERT_TRUE(sure.ok());
  auto kept = FilterWithNegativeRules(NegativeRules(), t.umetrics, t.usda,
                                      *sure, nullptr);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), sure->size());
}

// --- IRIS baseline -------------------------------------------------------------------

TEST(IrisMatcherTest, PerfectPrecisionModestRecall) {
  const CaseStudyData& d = Data();
  const ProjectedTables& t = Tables();
  auto iris = RunIrisMatcher(t.umetrics, t.usda);
  ASSERT_TRUE(iris.ok());
  GoldMetrics m = ComputeGoldMetrics(*iris, d.gold, d.ambiguous);
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  // The paper's estimate: recall in the 52-72% band.
  EXPECT_GT(m.Recall(), 0.5);
  EXPECT_LT(m.Recall(), 0.8);
}

// --- blocking over the projected tables -------------------------------------------------

TEST(CaseStudyBlockingTest, ShapesNearThePaper) {
  const ProjectedTables& t = Tables();
  auto blocks = RunStandardBlocking(t.umetrics, t.usda);
  ASSERT_TRUE(blocks.ok());
  // Within a loose factor of the paper's 210 / 2937 / 1375 / 3177.
  EXPECT_NEAR(static_cast<double>(blocks->c1.size()), 210.0, 60.0);
  EXPECT_GT(blocks->c2.size(), 1500u);
  EXPECT_LT(blocks->c2.size(), 6000u);
  EXPECT_GT(blocks->c.size(), 2000u);
  EXPECT_LT(blocks->c.size(), 7000u);
  // C contains C1, C2, C3.
  EXPECT_TRUE(CandidateSet::Minus(blocks->c1, blocks->c).empty());
  EXPECT_TRUE(CandidateSet::Minus(blocks->c2, blocks->c).empty());
  EXPECT_TRUE(CandidateSet::Minus(blocks->c3, blocks->c).empty());
}

TEST(CaseStudyOracleTest, UnsureRateInPaperBallpark) {
  const CaseStudyData& d = Data();
  const ProjectedTables& t = Tables();
  auto blocks = RunStandardBlocking(t.umetrics, t.usda);
  ASSERT_TRUE(blocks.ok());
  OracleLabeler oracle = MakeOracle(d.gold, d.ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  EXPECT_EQ(labels.size(), 300u);
  // Paper: 68 Yes / 200 No / 32 Unsure. Allow generous bands.
  EXPECT_GT(labels.CountYes(), 40u);
  EXPECT_LT(labels.CountYes(), 130u);
  EXPECT_GT(labels.CountUnsure(), 10u);
  EXPECT_LT(labels.CountUnsure(), 70u);
}

}  // namespace
}  // namespace emx
