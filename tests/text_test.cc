#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/datagen/vocab.h"
#include "src/text/numeric_similarity.h"
#include "src/text/sequence_similarity.h"
#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"

namespace emx {
namespace {

// --- tokenizers --------------------------------------------------------------

TEST(TokenizerTest, Whitespace) {
  WhitespaceTokenizer tok;
  EXPECT_EQ(tok.Tokenize("  corn  fungicide guidelines "),
            (std::vector<std::string>{"corn", "fungicide", "guidelines"}));
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("   ").empty());
}

TEST(TokenizerTest, WhitespaceDeduplicatesWhenUnique) {
  WhitespaceTokenizer tok;
  EXPECT_EQ(tok.Tokenize("a b a b c").size(), 3u);
  tok.set_unique(false);
  EXPECT_EQ(tok.Tokenize("a b a b c").size(), 5u);
}

TEST(TokenizerTest, Alphanumeric) {
  AlphanumericTokenizer tok;
  EXPECT_EQ(tok.Tokenize("IPM-based (corn)! 2008"),
            (std::vector<std::string>{"IPM", "based", "corn", "2008"}));
}

TEST(TokenizerTest, QgramWithPadding) {
  QgramTokenizer tok(3);
  // "ab" padded to "##ab$$" -> windows of 3.
  EXPECT_EQ(tok.Tokenize("ab"),
            (std::vector<std::string>{"##a", "#ab", "ab$", "b$$"}));
}

TEST(TokenizerTest, QgramWithoutPadding) {
  QgramTokenizer tok(3, /*pad=*/false);
  EXPECT_EQ(tok.Tokenize("abcd"), (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_TRUE(tok.Tokenize("ab").empty());  // shorter than q
}

TEST(TokenizerTest, QgramOfEmptyString) {
  QgramTokenizer tok(3);
  // Padding alone: "##$$" has windows "##$", "#$$".
  EXPECT_EQ(tok.Tokenize("").size(), 2u);
}

TEST(TokenizerTest, Delimiter) {
  DelimiterTokenizer tok('|');
  EXPECT_EQ(tok.Tokenize("SMITH, J | DOE, A |  | LEE, B"),
            (std::vector<std::string>{"SMITH, J", "DOE, A", "LEE, B"}));
}

TEST(TokenizerTest, Names) {
  EXPECT_EQ(WhitespaceTokenizer().name(), "ws");
  EXPECT_EQ(QgramTokenizer(3).name(), "qgm_3");
  EXPECT_EQ(AlphanumericTokenizer().name(), "alnum");
}

// --- sequence measures: known values -----------------------------------------

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
  // Prefix boost never hurts.
  EXPECT_GE(JaroWinklerSimilarity("prefix_a", "prefix_b"),
            JaroSimilarity("prefix_a", "prefix_b"));
}

TEST(NeedlemanWunschTest, Scores) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("abc", "abc"), 3.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschScore("", "ab"), -1.0);  // two gaps
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("", ""), 1.0);
}

TEST(SmithWatermanTest, LocalAlignmentFindsSubstring) {
  // "corn" inside a longer string aligns perfectly: score 4.
  EXPECT_DOUBLE_EQ(SmithWatermanScore("corn", "popcorn field"), 4.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("corn", "popcorn field"), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanScore("abc", "xyz"), 0.0);
}

TEST(HammingTest, PositionalAgreement) {
  EXPECT_DOUBLE_EQ(HammingSimilarity("abcd", "abcd"), 1.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity("abcd", "abxd"), 0.75);
  EXPECT_DOUBLE_EQ(HammingSimilarity("ab", "abcd"), 0.5);
  EXPECT_DOUBLE_EQ(HammingSimilarity("", ""), 1.0);
}

TEST(ExactMatchTest, Basics) {
  EXPECT_DOUBLE_EQ(ExactMatch("x", "x"), 1.0);
  EXPECT_DOUBLE_EQ(ExactMatch("x", "X"), 0.0);
  EXPECT_DOUBLE_EQ(ExactMatch("", ""), 1.0);
}

// --- sequence measures: properties over random strings -----------------------

class SequencePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::pair<std::string, std::string> RandomPair() {
    RandomEngine rng(GetParam());
    auto make = [&rng] {
      size_t len = rng.NextBelow(24);
      std::string s;
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.NextBelow(6));  // small alphabet
      }
      return s;
    };
    return {make(), make()};
  }
};

TEST_P(SequencePropertyTest, AllMeasuresInUnitRangeAndSymmetric) {
  auto [a, b] = RandomPair();
  using Fn = double (*)(std::string_view, std::string_view);
  for (Fn fn : {static_cast<Fn>(&LevenshteinSimilarity),
                static_cast<Fn>(&JaroSimilarity),
                static_cast<Fn>(&NeedlemanWunschSimilarity),
                static_cast<Fn>(&SmithWatermanSimilarity),
                static_cast<Fn>(&HammingSimilarity)}) {
    double ab = fn(a, b);
    double ba = fn(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, ba) << "asymmetric on '" << a << "' vs '" << b << "'";
  }
}

TEST_P(SequencePropertyTest, IdentityScoresOne) {
  auto [a, b] = RandomPair();
  (void)b;
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity(a, a), 1.0);
}

TEST_P(SequencePropertyTest, LevenshteinTriangleInequality) {
  RandomEngine rng(GetParam() ^ 0xABCD);
  auto make = [&rng] {
    size_t len = rng.NextBelow(12);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextBelow(4));
    }
    return s;
  };
  std::string a = make(), b = make(), c = make();
  EXPECT_LE(LevenshteinDistance(a, c),
            LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequencePropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- set measures -------------------------------------------------------------

std::vector<std::string> V(std::initializer_list<const char*> l) {
  std::vector<std::string> out;
  for (const char* s : l) out.push_back(s);
  return out;
}

TEST(SetSimilarityTest, OverlapSize) {
  EXPECT_EQ(OverlapSize(V({"a", "b", "c"}), V({"b", "c", "d"})), 2u);
  EXPECT_EQ(OverlapSize(V({}), V({"a"})), 0u);
  // Duplicates collapse to set semantics.
  EXPECT_EQ(OverlapSize(V({"a", "a", "b"}), V({"a"})), 1u);
}

TEST(SetSimilarityTest, JaccardKnown) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(V({"a", "b"}), V({"b", "c"})), 1.0 / 3);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(V({}), V({})), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(V({"a"}), V({})), 0.0);
}

TEST(SetSimilarityTest, OverlapCoefficientKnown) {
  // The §7 short-title motivation: 2-token subset of a 4-token title.
  EXPECT_DOUBLE_EQ(OverlapCoefficient(V({"lab", "supplies"}),
                                      V({"lab", "supplies", "and", "more"})),
                   1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(V({}), V({})), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(V({"a"}), V({})), 0.0);
}

TEST(SetSimilarityTest, DiceAndCosineKnown) {
  EXPECT_DOUBLE_EQ(DiceSimilarity(V({"a", "b"}), V({"b", "c"})), 0.5);
  EXPECT_NEAR(CosineSimilarity(V({"a", "b"}), V({"b", "c"})), 0.5, 1e-12);
}

TEST(SetSimilarityTest, MongeElkanIsSymmetrizedAndBounded) {
  auto a = V({"swamp", "dodder"});
  auto b = V({"swamp", "doder", "ecology"});
  double s = MongeElkanSimilarity(a, b);
  EXPECT_GT(s, 0.5);
  EXPECT_LE(s, 1.0);
  EXPECT_DOUBLE_EQ(s, MongeElkanSimilarity(b, a));
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(V({}), V({})), 1.0);
}

TEST(SetSimilarityTest, TfIdfDownweightsCommonTokens) {
  // "of" appears everywhere; "dodder" in one doc.
  std::vector<std::vector<std::string>> corpus = {
      V({"study", "of", "corn"}), V({"analysis", "of", "soy"}),
      V({"ecology", "of", "dodder"}), V({"survey", "of", "wheat"})};
  TfIdfScorer scorer(corpus);
  // Sharing only the ubiquitous "of" scores lower than sharing "dodder".
  double common = scorer.Similarity(V({"of", "corn"}), V({"of", "soy"}));
  double rare = scorer.Similarity(V({"dodder", "corn"}), V({"dodder", "soy"}));
  EXPECT_LT(common, rare);
  EXPECT_DOUBLE_EQ(scorer.Similarity(V({"a"}), V({"a"})), 1.0);
  EXPECT_DOUBLE_EQ(scorer.Similarity(V({}), V({})), 1.0);
  EXPECT_DOUBLE_EQ(scorer.Similarity(V({"x"}), V({})), 0.0);
}

// Ordering property used by blocking: coefficient >= jaccard always (their
// denominators satisfy min <= union).
class SetOrderingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetOrderingTest, CoefficientDominatesDiceDominatesJaccard) {
  RandomEngine rng(GetParam());
  auto make = [&rng] {
    std::vector<std::string> v;
    size_t n = rng.NextBelow(8);
    for (size_t i = 0; i < n; ++i) {
      v.push_back(std::string(1, static_cast<char>('a' + rng.NextBelow(6))));
    }
    return v;
  };
  auto a = make(), b = make();
  double jac = JaccardSimilarity(a, b);
  double dice = DiceSimilarity(a, b);
  double coeff = OverlapCoefficient(a, b);
  double cos = CosineSimilarity(a, b);
  EXPECT_LE(jac, dice + 1e-12);
  EXPECT_LE(dice, coeff + 1e-12);
  EXPECT_LE(cos, coeff + 1e-12);
  EXPECT_GE(jac, 0.0);
  EXPECT_LE(coeff, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOrderingTest,
                         ::testing::Range<uint64_t>(100, 140));

// --- numeric measures ----------------------------------------------------------

TEST(NumericSimilarityTest, AbsoluteDifference) {
  EXPECT_DOUBLE_EQ(AbsoluteDifference(3.0, 5.5), 2.5);
  EXPECT_DOUBLE_EQ(AbsoluteDifference(-1.0, 1.0), 2.0);
}

TEST(NumericSimilarityTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(RelativeDifference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeDifference(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeSimilarity(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeSimilarity(0.0, 10.0), 0.0);
}

TEST(NumericSimilarityTest, ExactMatch) {
  EXPECT_DOUBLE_EQ(NumericExactMatch(2.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericExactMatch(2.0, 2.000001), 0.0);
}

// --- synthetic lexicon ----------------------------------------------------------

TEST(VocabTest, SyntheticTermsAreDistinctAcrossLexicon) {
  std::set<std::string> seen;
  for (size_t i = 0; i < vocab::kSyntheticLexiconSize; ++i) {
    seen.insert(vocab::SyntheticTerm(i));
  }
  // Mixed-radix composition: 20*20*10 = 4000 distinct raw combinations, so
  // the first 1600 indices never collide.
  EXPECT_EQ(seen.size(), vocab::kSyntheticLexiconSize);
}

TEST(VocabTest, SyntheticTermIsPureFunctionOfIndex) {
  EXPECT_EQ(vocab::SyntheticTerm(42), vocab::SyntheticTerm(42));
  EXPECT_NE(vocab::SyntheticTerm(42), vocab::SyntheticTerm(43));
}

TEST(VocabTest, PersonNameFormats) {
  PersonName p{"smith", "john", 'r'};
  EXPECT_EQ(FormatUmetricsName(p), "SMITH, JOHN R");
  EXPECT_EQ(FormatUsdaDirector(p), "Smith, J.R");
}

TEST(VocabTest, TitleCasing) {
  std::vector<std::string> tokens = {"ecology", "of", "swamp", "dodder"};
  EXPECT_EQ(ToUpperTitle(tokens), "ECOLOGY OF SWAMP DODDER");
  EXPECT_EQ(ToMixedTitle(tokens), "Ecology of Swamp Dodder");
}

}  // namespace
}  // namespace emx
