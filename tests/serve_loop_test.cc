// ServeLoop transport + admission-control suite: the line-delimited JSON
// protocol end to end, and the bounded-queue overload contract — a
// saturated loop sheds with a typed Unavailable response, never hangs, and
// never drops an admitted request (failpoint-stalled workers make the
// saturation deterministic).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/block/overlap_blocker.h"
#include "src/core/failpoint.h"
#include "src/ml/decision_tree.h"
#include "src/serve/json.h"
#include "src/serve/serve_loop.h"
#include "src/table/csv.h"
#include "src/workflow/em_workflow.h"

namespace emx {
namespace {

// --- JSON unit tests -------------------------------------------------------------

TEST(ServeJsonTest, ParsesScalarsAndNesting) {
  auto v = ParseJson(R"({"a":1,"b":[true,false,null],"c":{"d":"x\ny"}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("a")->number_value(), 1.0);
  EXPECT_EQ(v->Find("b")->array_items().size(), 3u);
  EXPECT_TRUE(v->Find("b")->array_items()[0].bool_value());
  EXPECT_TRUE(v->Find("b")->array_items()[2].is_null());
  EXPECT_EQ(v->Find("c")->Find("d")->string_value(), "x\ny");
  EXPECT_EQ(v->Find("nope"), nullptr);
}

TEST(ServeJsonTest, RoundTripsThroughDump) {
  const std::string line =
      R"({"id":7,"op":"lookup","record":{"Title":"a \"b\" c","Year":1999}})";
  auto v = ParseJson(line);
  ASSERT_TRUE(v.ok());
  auto again = ParseJson(v->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Dump(), v->Dump());
  EXPECT_EQ(again->Find("record")->Find("Year")->number_value(), 1999.0);
  // Integral numbers print without a decimal point (stable ids).
  EXPECT_NE(v->Dump().find("\"id\":7,"), std::string::npos);
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\":1}trailing", "nul",
        "\"unterminated", "{\"a\" 1}", "01", "1e999"}) {
    auto v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
    EXPECT_EQ(v.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(ServeJsonTest, UnicodeEscapesDecodeToUtf8) {
  auto v = ParseJson(R"({"s":"é中😀"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("s")->string_value(), "\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80");
  // Lone surrogate is malformed.
  EXPECT_FALSE(ParseJson(R"({"s":"\ud83d"})").ok());
}

// --- service fixture -------------------------------------------------------------

// Tiny toy service: title-overlap blocker + a Jaccard tree matcher over a
// four-row corpus (the workflow_test shape).
struct LoopFixture {
  Table left;
  Table corpus;
  EmWorkflow wf;
  std::unique_ptr<MatchService> service;
};

LoopFixture* MakeLoopFixture() {
  auto* f = new LoopFixture();
  f->left = *ReadCsvString(
      "Title\n"
      "alpha beta gamma delta\n"
      "epsilon zeta eta theta\n");
  f->corpus = *ReadCsvString(
      "Title\n"
      "alpha beta gamma delta\n"
      "epsilon zeta eta theta\n"
      "unrelated words here now\n"
      "gamma delta alpha beta\n");
  OverlapBlockerOptions opts;
  opts.left_attr = "Title";
  opts.right_attr = "Title";
  f->wf.AddBlocker(std::make_shared<OverlapBlocker>(opts, 3));
  FeatureSet features;
  features.features.push_back(MakeJaccardFeature("Title", "Title"));
  Dataset d;
  d.feature_names = features.names();
  d.x = {{1.0}, {0.8}, {0.1}, {0.0}};
  d.y = {1, 1, 0, 0};
  FeatureMatrix m;
  m.feature_names = d.feature_names;
  m.rows = d.x;
  MeanImputer imputer;
  imputer.Fit(m);
  auto tree = std::make_shared<DecisionTreeMatcher>();
  EXPECT_TRUE(tree->Fit(d).ok());
  f->wf.SetMatcher(std::move(tree), std::move(features), std::move(imputer));
  auto created = MatchService::Create(f->wf, f->corpus);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  f->service = std::move(created).value();
  return f;
}

const LoopFixture& Fixture() {
  static const LoopFixture& fx = *MakeLoopFixture();
  return fx;
}

std::vector<JsonValue> ParseResponses(const std::string& text) {
  std::vector<JsonValue> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto v = ParseJson(line);
    EXPECT_TRUE(v.ok()) << "bad response line: " << line;
    if (v.ok()) out.push_back(std::move(*v));
  }
  return out;
}

const JsonValue* FindById(const std::vector<JsonValue>& responses, double id) {
  for (const JsonValue& r : responses) {
    const JsonValue* rid = r.Find("id");
    if (rid != nullptr && rid->is_number() && rid->number_value() == id) {
      return &r;
    }
  }
  return nullptr;
}

// --- end-to-end session ----------------------------------------------------------

TEST(ServeLoopTest, EndToEndSessionOverStream) {
  // Fresh service: this session mutates the corpus.
  auto fx = std::unique_ptr<LoopFixture>(MakeLoopFixture());
  std::istringstream in(
      R"({"id":1,"op":"lookup","record":{"Title":"alpha beta gamma delta"}})"
      "\n"
      R"({"id":2,"op":"insert","record":{"Title":"alpha beta gamma echo"}})"
      "\n"
      R"({"id":3,"op":"lookup","record":{"Title":"alpha beta gamma echo"}})"
      "\n"
      R"({"id":4,"op":"remove","record_id":4})"
      "\n"
      R"({"id":5,"op":"lookup","record":{"Title":"alpha beta gamma echo"}})"
      "\n"
      R"({"id":6,"op":"stats"})"
      "\n"
      "this is not json\n"
      R"({"id":8,"op":"frobnicate"})"
      "\n");
  std::ostringstream out;
  ServeLoop loop(fx->service.get(), ServeOptions{}, &out);
  ASSERT_TRUE(loop.Run(in).ok());

  auto responses = ParseResponses(out.str());
  ASSERT_EQ(responses.size(), 8u);
  EXPECT_EQ(loop.counters().admitted.load(), 7u);
  EXPECT_EQ(loop.counters().processed.load(), 7u);
  EXPECT_EQ(loop.counters().shed.load(), 0u);
  EXPECT_EQ(loop.counters().parse_errors.load(), 1u);

  const JsonValue* r1 = FindById(responses, 1);
  ASSERT_NE(r1, nullptr);
  EXPECT_TRUE(r1->Find("ok")->bool_value());
  // Rows 0 and 3 share all four tokens with the query.
  EXPECT_EQ(r1->Find("matches")->array_items().size(), 2u);

  const JsonValue* r2 = FindById(responses, 2);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->Find("record_id")->number_value(), 4.0);

  const JsonValue* r3 = FindById(responses, 3);
  ASSERT_NE(r3, nullptr);
  bool saw_new = false;
  for (const JsonValue& m : r3->Find("matches")->array_items()) {
    if (m.Find("record")->number_value() == 4.0) saw_new = true;
  }
  EXPECT_TRUE(saw_new) << "inserted record must be servable immediately";

  const JsonValue* r5 = FindById(responses, 5);
  ASSERT_NE(r5, nullptr);
  for (const JsonValue& m : r5->Find("matches")->array_items()) {
    EXPECT_NE(m.Find("record")->number_value(), 4.0) << "removed record served";
  }

  const JsonValue* r6 = FindById(responses, 6);
  ASSERT_NE(r6, nullptr);
  EXPECT_EQ(r6->Find("inserts")->number_value(), 1.0);
  EXPECT_EQ(r6->Find("removes")->number_value(), 1.0);
  EXPECT_GE(r6->Find("latency")->Find("total")->Find("count")->number_value(),
            2.0);

  const JsonValue* r8 = FindById(responses, 8);
  ASSERT_NE(r8, nullptr);
  EXPECT_FALSE(r8->Find("ok")->bool_value());
  EXPECT_EQ(r8->Find("error")->string_value(), "InvalidArgument");
}

// --- admission control -----------------------------------------------------------

// Deterministic saturation: a blocked "serve/handle" failpoint parks the
// drain thread on request 1, the queue (capacity 2) absorbs requests 2-3,
// and every further Submit must shed IMMEDIATELY with a typed Unavailable
// response carrying the request's id. Disarming releases the drain thread;
// Stop() then answers everything admitted — 10 submits, 10 responses, no
// hang, no drop.
TEST(ServeLoopAdmissionTest, OverloadShedsTypedUnavailable) {
  const LoopFixture& fx = Fixture();
  FailPointRegistry& registry = FailPointRegistry::Global();
  ASSERT_TRUE(registry.ArmFromSpecList("serve/handle:block,timeout_ms=30000")
                  .ok());

  std::ostringstream out;
  ServeOptions opts;
  opts.queue_capacity = 2;
  opts.batch_max = 1;
  ServeLoop loop(fx.service.get(), opts, &out);
  loop.Start();

  auto request = [](int id) {
    return std::string(R"({"id":)") + std::to_string(id) +
           R"(,"op":"lookup","record":{"Title":"alpha beta gamma delta"}})";
  };

  // fires() is cumulative across re-arms, so all waits are baseline-relative.
  FailPoint* fp = registry.Find("serve/handle");
  ASSERT_NE(fp, nullptr);
  const uint64_t base_fires = fp->fires();

  // Request 1 drains immediately and parks on the failpoint.
  EXPECT_TRUE(loop.Submit(request(1)));
  for (int spin = 0; spin < 4000 && fp->fires() == base_fires; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fp->fires(), base_fires + 1)
      << "drain thread never reached the failpoint";

  // Queue absorbs exactly queue_capacity more.
  EXPECT_TRUE(loop.Submit(request(2)));
  EXPECT_TRUE(loop.Submit(request(3)));
  // Everything beyond is shed synchronously.
  for (int id = 4; id <= 10; ++id) {
    EXPECT_FALSE(loop.Submit(request(id))) << "id " << id;
  }
  EXPECT_EQ(loop.counters().shed.load(), 7u);
  EXPECT_EQ(loop.counters().admitted.load(), 3u);

  // Release the drain thread; Stop() must answer all admitted requests.
  registry.DisarmAll();
  loop.Stop();
  EXPECT_EQ(loop.counters().processed.load(), 3u);

  auto responses = ParseResponses(out.str());
  ASSERT_EQ(responses.size(), 10u);
  for (int id = 1; id <= 10; ++id) {
    const JsonValue* r = FindById(responses, id);
    ASSERT_NE(r, nullptr) << "no response for id " << id;
    if (id <= 3) {
      EXPECT_TRUE(r->Find("ok")->bool_value()) << "id " << id;
    } else {
      EXPECT_FALSE(r->Find("ok")->bool_value()) << "id " << id;
      EXPECT_EQ(r->Find("error")->string_value(), "Unavailable") << "id " << id;
      EXPECT_NE(r->Find("message")->string_value().find("queue full"),
                std::string::npos);
    }
  }
}

// A shed burst followed by normal traffic recovers: the queue drains and
// subsequent requests are admitted and answered.
TEST(ServeLoopAdmissionTest, RecoversAfterShedding) {
  const LoopFixture& fx = Fixture();
  FailPointRegistry& registry = FailPointRegistry::Global();
  ASSERT_TRUE(registry.ArmFromSpecList("serve/handle:block,timeout_ms=30000")
                  .ok());
  std::ostringstream out;
  ServeOptions opts;
  opts.queue_capacity = 1;
  opts.batch_max = 1;
  ServeLoop loop(fx.service.get(), opts, &out);
  loop.Start();
  FailPoint* fp = registry.Find("serve/handle");
  ASSERT_NE(fp, nullptr);
  const uint64_t base_fires = fp->fires();
  EXPECT_TRUE(loop.Submit(R"({"id":1,"op":"stats"})"));
  for (int spin = 0; spin < 4000 && fp->fires() == base_fires; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(fp->fires(), base_fires)
      << "drain thread never reached the failpoint";
  EXPECT_TRUE(loop.Submit(R"({"id":2,"op":"stats"})"));   // fills the queue
  EXPECT_FALSE(loop.Submit(R"({"id":3,"op":"stats"})"));  // shed
  registry.DisarmAll();
  // Wait until the queue drains, then traffic flows again.
  for (int spin = 0; spin < 4000 && loop.counters().processed.load() < 2;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(loop.Submit(R"({"id":4,"op":"stats"})"));
  loop.Stop();
  EXPECT_EQ(loop.counters().admitted.load(), 3u);
  EXPECT_EQ(loop.counters().processed.load(), 3u);
  EXPECT_EQ(loop.counters().shed.load(), 1u);
  auto responses = ParseResponses(out.str());
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(FindById(responses, 4)->Find("ok")->bool_value());
}

// Stop() without traffic, double Stop(), and destruction while started are
// all clean (the dtor stops an un-stopped loop).
TEST(ServeLoopAdmissionTest, LifecycleEdgeCases) {
  const LoopFixture& fx = Fixture();
  std::ostringstream out;
  {
    ServeLoop loop(fx.service.get(), ServeOptions{}, &out);
    loop.Start();
    loop.Stop();
    loop.Stop();
    // Restart after Stop works.
    loop.Start();
    EXPECT_TRUE(loop.Submit(R"({"id":1,"op":"stats"})"));
    loop.Stop();
    EXPECT_EQ(loop.counters().processed.load(), 1u);
  }
  {
    ServeLoop loop(fx.service.get(), ServeOptions{}, &out);
    loop.Start();
    EXPECT_TRUE(loop.Submit(R"({"id":2,"op":"stats"})"));
    // Destructor joins with the request still answered.
  }
  auto responses = ParseResponses(out.str());
  EXPECT_EQ(responses.size(), 2u);
}

// HandleServeRequest surfaces failpoint-injected Status as an error
// response (the transport never loses typed errors).
TEST(ServeLoopAdmissionTest, FailpointErrorBecomesErrorResponse) {
  const LoopFixture& fx = Fixture();
  FailPointRegistry& registry = FailPointRegistry::Global();
  ASSERT_TRUE(registry.ArmFromSpecList("serve/handle:error(Internal)").ok());
  auto req = ParseJson(R"({"id":9,"op":"stats"})");
  ASSERT_TRUE(req.ok());
  JsonValue resp = HandleServeRequest(*fx.service, *req);
  registry.DisarmAll();
  EXPECT_FALSE(resp.Find("ok")->bool_value());
  EXPECT_EQ(resp.Find("error")->string_value(), "Internal");
  EXPECT_EQ(resp.Find("id")->number_value(), 9.0);
}

}  // namespace
}  // namespace emx
