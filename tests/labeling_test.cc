#include <gtest/gtest.h>

#include "src/labeling/label.h"
#include "src/labeling/label_debugger.h"
#include "src/labeling/oracle.h"
#include "src/labeling/sampler.h"
#include "src/ml/decision_tree.h"

namespace emx {
namespace {

CandidateSet CS(std::initializer_list<RecordPair> pairs) {
  return CandidateSet(std::vector<RecordPair>(pairs));
}

// --- LabeledSet ----------------------------------------------------------------

TEST(LabeledSetTest, SetAndGet) {
  LabeledSet s;
  s.SetLabel({1, 2}, Label::kYes);
  s.SetLabel({3, 4}, Label::kUnsure);
  EXPECT_EQ(s.size(), 2u);
  Label l;
  ASSERT_TRUE(s.GetLabel({1, 2}, &l));
  EXPECT_EQ(l, Label::kYes);
  EXPECT_FALSE(s.GetLabel({9, 9}, &l));
  EXPECT_TRUE(s.Contains({3, 4}));
}

TEST(LabeledSetTest, OverwriteUpdatesInPlace) {
  LabeledSet s;
  s.SetLabel({1, 1}, Label::kNo);
  s.SetLabel({1, 1}, Label::kYes);  // the §8 label-correction flow
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.CountYes(), 1u);
  EXPECT_EQ(s.CountNo(), 0u);
}

TEST(LabeledSetTest, Counts) {
  LabeledSet s;
  s.SetLabel({0, 0}, Label::kYes);
  s.SetLabel({0, 1}, Label::kNo);
  s.SetLabel({0, 2}, Label::kNo);
  s.SetLabel({0, 3}, Label::kUnsure);
  EXPECT_EQ(s.CountYes(), 1u);
  EXPECT_EQ(s.CountNo(), 2u);
  EXPECT_EQ(s.CountUnsure(), 1u);
}

TEST(LabeledSetTest, WithoutUnsureDropsOnlyUnsure) {
  LabeledSet s;
  s.SetLabel({0, 0}, Label::kYes);
  s.SetLabel({0, 1}, Label::kUnsure);
  LabeledSet d = s.WithoutUnsure();
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.Contains({0, 0}));
  EXPECT_FALSE(d.Contains({0, 1}));
}

TEST(LabeledSetTest, MergeNewerWins) {
  LabeledSet a, b;
  a.SetLabel({0, 0}, Label::kNo);
  a.SetLabel({0, 1}, Label::kYes);
  b.SetLabel({0, 0}, Label::kYes);
  a.Merge(b);
  Label l;
  ASSERT_TRUE(a.GetLabel({0, 0}, &l));
  EXPECT_EQ(l, Label::kYes);
  EXPECT_EQ(a.size(), 2u);
}

TEST(LabeledSetTest, PairsAsCandidateSet) {
  LabeledSet s;
  s.SetLabel({5, 5}, Label::kYes);
  s.SetLabel({1, 1}, Label::kNo);
  CandidateSet c = s.Pairs();
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.Contains({5, 5}));
}

TEST(LabelTest, Names) {
  EXPECT_EQ(LabelToString(Label::kYes), "Yes");
  EXPECT_EQ(LabelToString(Label::kNo), "No");
  EXPECT_EQ(LabelToString(Label::kUnsure), "Unsure");
}

// --- sampler --------------------------------------------------------------------

TEST(SamplerTest, SampleSizeAndMembership) {
  std::vector<RecordPair> pool;
  for (uint32_t i = 0; i < 100; ++i) pool.push_back({i, i});
  CandidateSet c(pool);
  CandidateSet sample = SamplePairs(c, 30, 7);
  EXPECT_EQ(sample.size(), 30u);
  for (const RecordPair& p : sample) EXPECT_TRUE(c.Contains(p));
}

TEST(SamplerTest, ExcludesAlreadyLabeled) {
  CandidateSet c = CS({{0, 0}, {1, 1}, {2, 2}});
  LabeledSet labeled;
  labeled.SetLabel({1, 1}, Label::kYes);
  CandidateSet sample = SamplePairs(c, 10, 7, labeled);
  EXPECT_EQ(sample.size(), 2u);
  EXPECT_FALSE(sample.Contains({1, 1}));
}

TEST(SamplerTest, DeterministicPerSeed) {
  std::vector<RecordPair> pool;
  for (uint32_t i = 0; i < 200; ++i) pool.push_back({i, 0});
  CandidateSet c(pool);
  EXPECT_EQ(SamplePairs(c, 50, 7).pairs(), SamplePairs(c, 50, 7).pairs());
  EXPECT_NE(SamplePairs(c, 50, 7).pairs(), SamplePairs(c, 50, 8).pairs());
}

TEST(SamplerTest, RequestLargerThanPoolReturnsAll) {
  CandidateSet c = CS({{0, 0}, {1, 1}});
  EXPECT_EQ(SamplePairs(c, 100, 7).size(), 2u);
}

// --- oracle ---------------------------------------------------------------------

TEST(OracleTest, NoiselessOracleMatchesGold) {
  CandidateSet gold = CS({{0, 0}, {1, 1}});
  OracleOptions opts;
  opts.noise_rate = 0.0;
  OracleLabeler oracle(gold, CandidateSet(), opts);
  EXPECT_EQ(oracle.LabelPair({0, 0}), Label::kYes);
  EXPECT_EQ(oracle.LabelPair({0, 1}), Label::kNo);
  EXPECT_EQ(oracle.CorrectedLabel({1, 1}), Label::kYes);
}

TEST(OracleTest, LabelsAreStablePerPair) {
  CandidateSet gold = CS({{0, 0}});
  OracleOptions opts;
  opts.noise_rate = 0.5;
  OracleLabeler oracle(gold, CandidateSet(), opts);
  Label first = oracle.LabelPair({3, 7});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(oracle.LabelPair({3, 7}), first);
}

TEST(OracleTest, AmbiguousPairsMostlyUnsure) {
  std::vector<RecordPair> amb;
  for (uint32_t i = 0; i < 500; ++i) amb.push_back({i, i});
  OracleOptions opts;
  opts.unsure_rate = 0.8;
  OracleLabeler oracle(CandidateSet(), CandidateSet(amb), opts);
  size_t unsure = 0;
  for (uint32_t i = 0; i < 500; ++i) {
    if (oracle.LabelPair({i, i}) == Label::kUnsure) ++unsure;
  }
  EXPECT_NEAR(static_cast<double>(unsure) / 500.0, 0.8, 0.08);
}

TEST(OracleTest, CorrectedLabelRemovesNoiseButKeepsAmbiguity) {
  CandidateSet gold = CS({{0, 0}});
  CandidateSet amb = CS({{5, 5}});
  OracleOptions opts;
  opts.noise_rate = 1.0;  // every decidable first-pass label is wrong
  OracleLabeler oracle(gold, amb, opts);
  EXPECT_EQ(oracle.LabelPair({0, 0}), Label::kNo);        // noisy
  EXPECT_EQ(oracle.CorrectedLabel({0, 0}), Label::kYes);  // fixed
  // Ambiguity survives correction (D1: "even they did not know").
  Label amb_label = oracle.CorrectedLabel({5, 5});
  EXPECT_EQ(amb_label, oracle.LabelPair({5, 5}) == Label::kUnsure
                           ? Label::kUnsure
                           : amb_label);
}

TEST(OracleTest, NoiseRateApproximatelyHonored) {
  CandidateSet gold;  // everything is a true non-match
  OracleOptions opts;
  opts.noise_rate = 0.2;
  OracleLabeler oracle(gold, CandidateSet(), opts);
  size_t wrong = 0;
  for (uint32_t i = 0; i < 2000; ++i) {
    if (oracle.LabelPair({i, i + 1}) == Label::kYes) ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / 2000.0, 0.2, 0.03);
}

// --- label debugger ---------------------------------------------------------------

TEST(LabelDebuggerTest, FindsPlantedMislabel) {
  // One feature cleanly separates; row 3 carries a wrong label.
  std::vector<LabeledPair> pairs;
  std::vector<std::vector<double>> rows;
  for (uint32_t i = 0; i < 20; ++i) {
    bool is_match = i < 10;
    pairs.push_back({{i, i},
                     is_match ? Label::kYes : Label::kNo});
    rows.push_back({is_match ? 0.9 + 0.001 * i : 0.1 + 0.001 * i});
  }
  pairs[3].label = Label::kNo;  // planted error
  auto found = DebugLabels(pairs, rows, [] {
    return std::make_unique<DecisionTreeMatcher>();
  });
  ASSERT_TRUE(found.ok());
  // The planted mistake must be reported (a couple of boundary rows may
  // accompany it, since the wrong label perturbs every fold it trains in).
  EXPECT_LE(found->size(), 4u);
  bool planted_found = false;
  for (const LabelDiscrepancy& d : *found) {
    if (d.pair == (RecordPair{3, 3})) {
      planted_found = true;
      EXPECT_EQ(d.given, Label::kNo);
      EXPECT_EQ(d.predicted, Label::kYes);
    }
  }
  EXPECT_TRUE(planted_found);
}

TEST(LabelDebuggerTest, UnsurePairsAreSkipped) {
  std::vector<LabeledPair> pairs = {{{0, 0}, Label::kYes},
                                    {{1, 1}, Label::kUnsure},
                                    {{2, 2}, Label::kNo},
                                    {{3, 3}, Label::kYes},
                                    {{4, 4}, Label::kNo}};
  std::vector<std::vector<double>> rows = {
      {0.9}, {0.5}, {0.1}, {0.95}, {0.05}};
  auto found = DebugLabels(pairs, rows, [] {
    return std::make_unique<DecisionTreeMatcher>();
  });
  ASSERT_TRUE(found.ok());
  for (const auto& d : *found) {
    EXPECT_NE(d.pair, (RecordPair{1, 1}));
  }
}

TEST(LabelDebuggerTest, MisalignedInputsFail) {
  std::vector<LabeledPair> pairs = {{{0, 0}, Label::kYes}};
  std::vector<std::vector<double>> rows;
  EXPECT_EQ(DebugLabels(pairs, rows,
                        [] { return std::make_unique<DecisionTreeMatcher>(); })
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace emx
