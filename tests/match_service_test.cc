// MatchService oracle suite: a resident service's point lookups must be
// BIT-IDENTICAL to the batch pipeline restricted to one left record — same
// candidate counts, same matched records, same provenance — for every
// record of the case-study and scale corpora, at 1/2/8 threads and at the
// scalar SIMD fallback. Plus: incremental ingest equivalence, the
// zero-re-prep residency contract, and the PipelineRunner::Clear audit.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/block/attr_equivalence_blocker.h"
#include "src/block/overlap_blocker.h"
#include "src/core/executor.h"
#include "src/datagen/case_study.h"
#include "src/datagen/scale_corpus.h"
#include "src/ml/decision_tree.h"
#include "src/serve/match_service.h"
#include "src/table/csv.h"
#include "src/text/batch_kernel.h"
#include "src/text/set_similarity.h"
#include "src/workflow/em_workflow.h"
#include "src/workflow/pipeline_runner.h"

// ---------- allocation-counting hook (unsanitized builds only) ----------
//
// Same global operator new replacement as sequence_kernel_test.cc: counts
// heap allocations made while the calling thread has armed the counter.
// The steady-state regression below asserts a warm lookup allocates
// exactly what the previous warm lookup did — a reintroduced per-lookup
// column re-prep would blow the count up by O(corpus).
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !defined(ADDRESS_SANITIZER) && !defined(THREAD_SANITIZER)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define EMX_COUNT_ALLOCATIONS 1
#endif
#else
#define EMX_COUNT_ALLOCATIONS 1
#endif
#endif

namespace {
thread_local bool t_count_allocs = false;
thread_local size_t t_alloc_count = 0;
}  // namespace

#ifdef EMX_COUNT_ALLOCATIONS
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  if (t_count_allocs) ++t_alloc_count;
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif

namespace emx {
namespace {

// --- oracle machinery ------------------------------------------------------------

// The batch run's answer for one left record: matched right records with
// provenance, plus the candidate and sure counts the service also reports.
struct PerRecordOracle {
  std::map<uint32_t, std::string> matches;  // right record -> provenance
  size_t candidates = 0;
  size_t sure = 0;
};

std::vector<PerRecordOracle> SliceByLeft(const WorkflowRunResult& run,
                                         size_t left_rows) {
  std::vector<PerRecordOracle> out(left_rows);
  for (const RecordPair& p : run.final_matches) {
    out[p.left].matches[p.right] = run.provenance.ProvenanceOf(p);
  }
  for (const RecordPair& p : run.candidates) ++out[p.left].candidates;
  for (const RecordPair& p : run.sure_matches) ++out[p.left].sure;
  return out;
}

// One lookup vs its batch slice. Also checks the result-ordering contract:
// sure matches first (ascending id, score 1.0), then ml by (score
// descending, id ascending) with every score >= 0.5.
void ExpectLookupMatchesOracle(const MatchService& svc, const Table& left,
                               size_t q, const PerRecordOracle& oracle) {
  auto result = svc.Lookup(left, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_candidates, oracle.candidates) << "left row " << q;
  EXPECT_EQ(result->num_sure, oracle.sure) << "left row " << q;
  std::map<uint32_t, std::string> got;
  for (const RankedMatch& m : result->matches) got[m.record] = m.provenance;
  EXPECT_EQ(got, oracle.matches) << "left row " << q;
  for (size_t i = 0; i < result->matches.size(); ++i) {
    const RankedMatch& m = result->matches[i];
    if (i < result->num_sure) {
      EXPECT_EQ(m.provenance, "sure_rule");
      EXPECT_DOUBLE_EQ(m.score, 1.0);
      if (i > 0) EXPECT_GT(m.record, result->matches[i - 1].record);
    } else {
      EXPECT_EQ(m.provenance, "ml");
      EXPECT_GE(m.score, 0.5);
      if (i > result->num_sure) {
        const RankedMatch& prev = result->matches[i - 1];
        EXPECT_TRUE(m.score < prev.score ||
                    (m.score == prev.score && m.record > prev.record));
      }
    }
  }
}

// --- case-study fixture ----------------------------------------------------------
//
// The §7-§12 pipeline, restricted to the serve-compatible stages: the two
// token blockers on AwardTitle (the AE blocker's pairs are covered by the
// V2 positive rules, which serve evaluates directly), the §9 trained
// matcher, and the §12 negative rules.
struct CaseStudyFixture {
  CaseStudyData data;
  ProjectedTables tables;
  TrainedMatcher trained;
  EmWorkflow wf;
  WorkflowRunResult run;
  std::vector<PerRecordOracle> oracle;
};

EmWorkflow BuildServableCaseStudyWorkflow(const TrainedMatcher& trained) {
  EmWorkflow wf;
  for (const MatchRule& r : PositiveRulesV2()) wf.AddPositiveRule(r);
  wf.AddBlocker(MakeTitleOverlapBlocker(3));
  wf.AddBlocker(MakeTitleOverlapCoefficientBlocker(0.7));
  wf.SetMatcher(trained.matcher, trained.features, trained.imputer);
  for (const MatchRule& r : NegativeRules()) wf.AddNegativeRule(r);
  return wf;
}

const CaseStudyFixture& CaseStudy() {
  static const CaseStudyFixture& fx = *[] {
    auto* f = new CaseStudyFixture();
    f->data = std::move(*GenerateCaseStudy());
    f->tables = std::move(*PreprocessCaseStudy(f->data));
    auto blocks = RunStandardBlocking(f->tables.umetrics, f->tables.usda);
    OracleLabeler oracle = MakeOracle(f->data.gold, f->data.ambiguous);
    LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
    f->trained = std::move(*TrainBestMatcher(f->tables.umetrics,
                                             f->tables.usda, labels,
                                             PositiveRulesV1(),
                                             /*case_fix=*/true));
    f->wf = BuildServableCaseStudyWorkflow(f->trained);
    f->run = std::move(*f->wf.Run(f->tables.umetrics, f->tables.usda));
    f->oracle = SliceByLeft(f->run, f->tables.umetrics.num_rows());
    return f;
  }();
  return fx;
}

// --- scale fixture ---------------------------------------------------------------
//
// SF corpus (AwardTitle with NURand token skew) under a blocker+ML
// workflow: overlap K=3 + coefficient 0.7 (sharing one delta index) and a
// title-Jaccard tree matcher. No positive rules — every lookup goes
// through the block → vectorize → score path.
struct ScaleFixture {
  ScaleCorpus corpus;
  EmWorkflow wf;
  WorkflowRunResult run;
  std::vector<PerRecordOracle> oracle;
};

EmWorkflow BuildScaleWorkflow() {
  EmWorkflow wf;
  OverlapBlockerOptions opts;
  opts.left_attr = "AwardTitle";
  opts.right_attr = "AwardTitle";
  opts.lowercase = true;
  wf.AddBlocker(std::make_shared<OverlapBlocker>(opts, 3));
  wf.AddBlocker(std::make_shared<OverlapCoefficientBlocker>(opts, 0.7));
  FeatureSet features;
  // Lowercased: scale-corpus left titles are UPPERCASE, right mixed-case.
  features.features.push_back(
      MakeJaccardFeature("AwardTitle", "AwardTitle", /*qgram=*/0,
                         /*lowercase=*/true));
  Dataset d;
  d.feature_names = features.names();
  d.x = {{1.0}, {0.8}, {0.3}, {0.0}};
  d.y = {1, 1, 0, 0};
  FeatureMatrix m;
  m.feature_names = d.feature_names;
  m.rows = d.x;
  MeanImputer imputer;
  imputer.Fit(m);
  auto tree = std::make_shared<DecisionTreeMatcher>();
  EXPECT_TRUE(tree->Fit(d).ok());
  wf.SetMatcher(std::move(tree), std::move(features), std::move(imputer));
  return wf;
}

const ScaleFixture& Scale() {
  static const ScaleFixture& fx = *[] {
    auto* f = new ScaleFixture();
    ScaleCorpusOptions options;
    options.scale_factor = 10.0;  // 10k rows per side
    f->corpus = std::move(*GenerateScaleCorpus(options));
    f->wf = BuildScaleWorkflow();
    f->run = std::move(*f->wf.Run(f->corpus.left, f->corpus.right));
    f->oracle = SliceByLeft(f->run, f->corpus.left.num_rows());
    return f;
  }();
  return fx;
}

// --- lookup-vs-batch oracle ------------------------------------------------------

TEST(MatchServiceOracleTest, CaseStudyEveryRecordMatchesBatch) {
  const CaseStudyFixture& fx = CaseStudy();
  auto svc = MatchService::Create(fx.wf, fx.tables.usda);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (size_t q = 0; q < fx.tables.umetrics.num_rows(); ++q) {
    ExpectLookupMatchesOracle(**svc, fx.tables.umetrics, q, fx.oracle[q]);
  }
}

TEST(MatchServiceOracleTest, ScaleEveryRecordMatchesBatch) {
  const ScaleFixture& fx = Scale();
  auto svc = MatchService::Create(fx.wf, fx.corpus.right);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (size_t q = 0; q < fx.corpus.left.num_rows(); ++q) {
    ExpectLookupMatchesOracle(**svc, fx.corpus.left, q, fx.oracle[q]);
  }
}

// The batch oracle is computed once on the shared pool; services running
// on private 1/2/8-thread executors must answer identically (the executor
// is pure wall-clock — chunk-order concatenation keeps outputs fixed).
TEST(MatchServiceOracleTest, ThreadCountInvariant) {
  const CaseStudyFixture& cs = CaseStudy();
  const ScaleFixture& sc = Scale();
  for (size_t threads : {1u, 2u, 8u}) {
    Executor pool(threads);
    ExecutorContext ctx{&pool};
    auto csvc = MatchService::Create(cs.wf, cs.tables.usda, {}, ctx);
    ASSERT_TRUE(csvc.ok()) << csvc.status().ToString();
    for (size_t q = 0; q < cs.tables.umetrics.num_rows(); q += 9) {
      ExpectLookupMatchesOracle(**csvc, cs.tables.umetrics, q, cs.oracle[q]);
    }
    auto ssvc = MatchService::Create(sc.wf, sc.corpus.right, {}, ctx);
    ASSERT_TRUE(ssvc.ok()) << ssvc.status().ToString();
    for (size_t q = 0; q < sc.corpus.left.num_rows(); q += 19) {
      ExpectLookupMatchesOracle(**ssvc, sc.corpus.left, q, sc.oracle[q]);
    }
  }
}

// Forcing the scalar kernel tier must not change a single answer (the
// SIMD tiers are bit-equal by contract; this drives the whole serve path
// through the fallback on AVX2 hosts). The batch oracle is recomputed
// under the same forced level so both sides run the tier being tested.
TEST(MatchServiceOracleTest, ScalarSimdInvariant) {
  const CaseStudyFixture& fx = CaseStudy();
  ForceSimdLevel(SimdLevel::kScalar);
  auto run = fx.wf.Run(fx.tables.umetrics, fx.tables.usda);
  ASSERT_TRUE(run.ok());
  std::vector<PerRecordOracle> oracle =
      SliceByLeft(*run, fx.tables.umetrics.num_rows());
  auto svc = MatchService::Create(fx.wf, fx.tables.usda);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (size_t q = 0; q < fx.tables.umetrics.num_rows(); q += 7) {
    ExpectLookupMatchesOracle(**svc, fx.tables.umetrics, q, oracle[q]);
  }
  ResetSimdLevel();
  // And the scalar-tier oracle equals the native-tier oracle (kernel
  // equivalence seen end to end).
  for (size_t q = 0; q < fx.tables.umetrics.num_rows(); ++q) {
    EXPECT_EQ(oracle[q].matches, fx.oracle[q].matches) << "left row " << q;
    EXPECT_EQ(oracle[q].candidates, fx.oracle[q].candidates);
  }
}

// --- incremental ingest ----------------------------------------------------------

// A service grown record by record (with an aggressive compaction
// threshold forcing mid-sequence snapshots) must answer exactly like a
// service Created over the final corpus — the "never rebuilds from
// scratch" index is indistinguishable from the rebuild it replaced.
TEST(MatchServiceIngestTest, InsertDeleteEquivalentToFreshService) {
  const ScaleFixture& fx = Scale();
  // Small slice: base = first 150 right rows, then insert 50 more, then
  // tombstone every 7th record.
  ScaleCorpusOptions options;
  options.scale_factor = 0.2;  // 200 rows per side
  auto small = GenerateScaleCorpus(options);
  ASSERT_TRUE(small.ok());
  const Table& right = small->right;
  const size_t base = 150;
  Table base_table(right.schema());
  for (size_t r = 0; r < base; ++r) {
    ASSERT_TRUE(base_table.AppendRow(right.Row(r)).ok());
  }

  MatchServiceOptions grow_opts;
  grow_opts.compact_threshold = 16;  // compact early and often
  auto grown = MatchService::Create(fx.wf, base_table, grow_opts);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  for (size_t r = base; r < right.num_rows(); ++r) {
    auto id = (*grown)->Insert(right.Row(r));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, r);
  }
  auto fresh = MatchService::Create(fx.wf, right);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  for (uint32_t r = 0; r < right.num_rows(); r += 7) {
    ASSERT_TRUE((*grown)->Remove(r).ok());
    ASSERT_TRUE((*fresh)->Remove(r).ok());
  }
  // Double-remove is NotFound, not silent corruption.
  EXPECT_EQ((*grown)->Remove(0).code(), StatusCode::kNotFound);

  MatchServiceStats grown_stats = (*grown)->Stats();
  EXPECT_GT(grown_stats.compactions, 1u)
      << "threshold 16 over 50 inserts must compact mid-sequence";

  for (size_t q = 0; q < small->left.num_rows(); ++q) {
    auto a = (*grown)->Lookup(small->left, q);
    auto b = (*fresh)->Lookup(small->left, q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->num_candidates, b->num_candidates) << "left row " << q;
    ASSERT_EQ(a->matches.size(), b->matches.size()) << "left row " << q;
    for (size_t i = 0; i < a->matches.size(); ++i) {
      EXPECT_EQ(a->matches[i].record, b->matches[i].record);
      EXPECT_DOUBLE_EQ(a->matches[i].score, b->matches[i].score);
      EXPECT_EQ(a->matches[i].provenance, b->matches[i].provenance);
    }
  }
  // Compacting everything changes nothing further.
  (*grown)->Compact();
  for (size_t q = 0; q < small->left.num_rows(); q += 11) {
    auto a = (*grown)->Lookup(small->left, q);
    auto b = (*fresh)->Lookup(small->left, q);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->matches.size(), b->matches.size());
    for (size_t i = 0; i < a->matches.size(); ++i) {
      EXPECT_EQ(a->matches[i].record, b->matches[i].record);
    }
  }
}

// Removed records disappear from lookups immediately (before any
// compaction) and reappear in no stage.
TEST(MatchServiceIngestTest, RemoveHidesRecordImmediately) {
  const ScaleFixture& fx = Scale();
  ScaleCorpusOptions options;
  options.scale_factor = 0.1;
  auto small = GenerateScaleCorpus(options);
  ASSERT_TRUE(small.ok());
  auto svc = MatchService::Create(fx.wf, small->right);
  ASSERT_TRUE(svc.ok());
  // Find a query with at least one match, remove the matched record.
  for (size_t q = 0; q < small->left.num_rows(); ++q) {
    auto before = (*svc)->Lookup(small->left, q);
    ASSERT_TRUE(before.ok());
    if (before->matches.empty()) continue;
    uint32_t victim = before->matches[0].record;
    ASSERT_TRUE((*svc)->Remove(victim).ok());
    EXPECT_FALSE((*svc)->record_live(victim));
    auto after = (*svc)->Lookup(small->left, q);
    ASSERT_TRUE(after.ok());
    for (const RankedMatch& m : after->matches) {
      EXPECT_NE(m.record, victim);
    }
    EXPECT_EQ(after->matches.size(), before->matches.size() - 1);
    return;
  }
  FAIL() << "no query with matches found";
}

// --- residency / ownership -------------------------------------------------------

// The zero-re-prep contract: after Create, corpus prep work NEVER happens
// on the lookup path. 1000 repeated lookups leave the corpus_preps counter
// untouched, leave the Monge-Elkan memo generation untouched, and (on
// plain builds) settle to an exactly constant per-lookup allocation count
// on the calling thread.
TEST(MatchServiceResidencyTest, RepeatedLookupsDoZeroRePrepWork) {
  const CaseStudyFixture& fx = CaseStudy();
  auto svc = MatchService::Create(fx.wf, fx.tables.usda);
  ASSERT_TRUE(svc.ok());
  const uint64_t preps_after_create = (*svc)->Stats().corpus_preps;
  EXPECT_GT(preps_after_create, 0u);
  const uint64_t memo_gen = MongeElkanMemoGeneration();

  auto one_lookup = [&] {
    auto r = (*svc)->Lookup(fx.tables.umetrics, 17);
    ASSERT_TRUE(r.ok());
  };
  for (int i = 0; i < 3; ++i) one_lookup();  // warm thread-local scratch

#ifdef EMX_COUNT_ALLOCATIONS
  auto count_allocs = [&] {
    t_alloc_count = 0;
    t_count_allocs = true;
    one_lookup();
    t_count_allocs = false;
    return t_alloc_count;
  };
  const size_t warm = count_allocs();
#endif

  for (int i = 0; i < 1000; ++i) one_lookup();

#ifdef EMX_COUNT_ALLOCATIONS
  EXPECT_EQ(count_allocs(), warm)
      << "lookup #1004 allocates more than lookup #4: per-lookup state is "
         "being rebuilt";
#endif
  MatchServiceStats stats = (*svc)->Stats();
  EXPECT_EQ(stats.corpus_preps, preps_after_create)
      << "lookups re-prepped corpus columns";
  EXPECT_EQ(MongeElkanMemoGeneration(), memo_gen)
      << "lookups flushed the Monge-Elkan memo";
  // 3 warm + 1000 steady-state; the two counting lookups exist only on
  // unsanitized builds.
  EXPECT_GE(stats.lookups, 1003u);
  EXPECT_GT(stats.query_preps, 0u);
}

// The satellite-4 audit: PipelineRunner::Run calls PrepCache::Clear on ITS
// OWN workflow cache and bumps the global Monge-Elkan memo generation.
// Because the service owns a private PrepCache and direct segment
// shared_ptrs, an unrelated batch run in the same process must not change
// service answers or re-trigger corpus prep.
TEST(MatchServiceResidencyTest, SurvivesPipelineRunnerClearingCaches) {
  const CaseStudyFixture& fx = CaseStudy();
  auto svc = MatchService::Create(fx.wf, fx.tables.usda);
  ASSERT_TRUE(svc.ok());
  auto before = (*svc)->Lookup(fx.tables.umetrics, 42);
  ASSERT_TRUE(before.ok());
  const uint64_t preps_before = (*svc)->Stats().corpus_preps;
  const uint64_t gen_before = MongeElkanMemoGeneration();

  // An independent batch pipeline runs to completion in-process (its
  // runner Clears its own workflow's cache per run).
  EmWorkflow batch_wf = BuildServableCaseStudyWorkflow(fx.trained);
  PipelineRunner runner(&batch_wf, PipelineOptions{});
  auto run = runner.Run(fx.tables.umetrics, fx.tables.usda);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(MongeElkanMemoGeneration(), gen_before)
      << "expected the batch runner to bump the memo generation (if this "
         "stops holding, the audit premise changed — see DESIGN.md §12)";

  auto after = (*svc)->Lookup(fx.tables.umetrics, 42);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->matches.size(), before->matches.size());
  for (size_t i = 0; i < after->matches.size(); ++i) {
    EXPECT_EQ(after->matches[i].record, before->matches[i].record);
    EXPECT_DOUBLE_EQ(after->matches[i].score, before->matches[i].score);
  }
  EXPECT_EQ((*svc)->Stats().corpus_preps, preps_before);
}

// --- construction / error surface ------------------------------------------------

TEST(MatchServiceCreateTest, RejectsNonTokenBlocker) {
  const CaseStudyFixture& fx = CaseStudy();
  EmWorkflow wf;
  wf.AddBlocker(MakeM1EquivalenceBlocker());
  wf.SetMatcher(fx.trained.matcher, fx.trained.features, fx.trained.imputer);
  auto svc = MatchService::Create(wf, fx.tables.usda);
  EXPECT_FALSE(svc.ok());
  EXPECT_EQ(svc.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatchServiceCreateTest, RejectsMissingCorpusColumn) {
  const CaseStudyFixture& fx = CaseStudy();
  Table tiny = *ReadCsvString("NotTitle\nfoo\n");
  auto svc = MatchService::Create(fx.wf, tiny);
  EXPECT_FALSE(svc.ok());
  EXPECT_EQ(svc.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatchServiceLookupTest, MissingQueryColumnIsError) {
  const ScaleFixture& fx = Scale();
  ScaleCorpusOptions options;
  options.scale_factor = 0.05;
  auto small = GenerateScaleCorpus(options);
  ASSERT_TRUE(small.ok());
  auto svc = MatchService::Create(fx.wf, small->right);
  ASSERT_TRUE(svc.ok());
  Table bogus = *ReadCsvString("WrongColumn\nsome text\n");
  EXPECT_FALSE((*svc)->Lookup(bogus, 0).ok());
  EXPECT_FALSE((*svc)->Lookup(small->left, small->left.num_rows()).ok());
}

}  // namespace
}  // namespace emx
