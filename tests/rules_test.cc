#include <gtest/gtest.h>

#include "src/core/strings.h"
#include "src/rules/match_rules.h"
#include "src/rules/number_pattern.h"
#include "src/table/csv.h"

namespace emx {
namespace {

// --- pattern signatures (the §12 examples, verbatim) -------------------------

TEST(PatternSignatureTest, PaperExamples) {
  EXPECT_EQ(PatternSignature("03-CS-112313000-031"), "##-XX-#########-###");
  EXPECT_EQ(PatternSignature("2001-34101-10526"), "YYYY-#####-#####");
  EXPECT_EQ(PatternSignature("WIS01560"), "XXX#####");
  EXPECT_EQ(PatternSignature("WIS04509"), "XXX#####");
}

TEST(PatternSignatureTest, YearDetectionBounds) {
  EXPECT_EQ(PatternSignature("1899-1"), "####-#");   // below year range
  EXPECT_EQ(PatternSignature("2101-1"), "####-#");   // above year range
  EXPECT_EQ(PatternSignature("1997-1"), "YYYY-#");
  EXPECT_EQ(PatternSignature("2100"), "YYYY");
  // A five-digit leading group is not a year.
  EXPECT_EQ(PatternSignature("20011-3"), "#####-#");
}

TEST(PatternSignatureTest, EmptyAndPlain) {
  EXPECT_EQ(PatternSignature(""), "");
  EXPECT_EQ(PatternSignature("abc"), "XXX");
  EXPECT_EQ(PatternSignature("a-1 b"), "X-# X");
}

TEST(ComparableTest, PaperSemantics) {
  // Same pattern, different values: comparable (and the §12 rule fires).
  EXPECT_TRUE(ArePatternComparable("WIS01560", "WIS04509"));
  // Different patterns: not comparable.
  EXPECT_FALSE(ArePatternComparable("03-CS-112313000-031",
                                    "2001-34101-10526"));
  EXPECT_FALSE(ArePatternComparable("", "WIS01560"));
  EXPECT_TRUE(ArePatternComparable("2001-34101-10526", "2008-34103-19449"));
}

TEST(AwardNumberSuffixTest, SplitsOnFirstWhitespace) {
  EXPECT_EQ(AwardNumberSuffix("10.200 2008-34103-19449"), "2008-34103-19449");
  EXPECT_EQ(AwardNumberSuffix("10.203 WIS01040"), "WIS01040");
  EXPECT_EQ(AwardNumberSuffix("no-space-here"), "no-space-here");
  EXPECT_EQ(AwardNumberSuffix("a b c"), "b c");
  EXPECT_EQ(AwardNumberSuffix("trailing "), "");
}

// --- rules over tables ---------------------------------------------------------

Table RuleLeft() {
  return *ReadCsvString(
      "AwardNumber,Title\n"
      "10.200 2008-34103-19449,corn guidelines\n"
      "10.203 WIS01040,swamp dodder\n"
      "10.100 MSN000111,title evidence only\n"
      ",null award\n");
}

Table RuleRight() {
  return *ReadCsvString(
      "AwardNumber,ProjectNumber,Title\n"
      "2008-34103-19449,WIS09999,Corn Guidelines\n"
      ",WIS01040,Swamp Dodder\n"
      ",WIS04509,unrelated\n"
      "2008-34103-19440,WIS08888,typo sibling\n");
}

TEST(MatchRulesTest, M1FiresOnSuffixEquality) {
  MatchRule m1 = MakeM1AwardNumberRule("AwardNumber", "AwardNumber");
  Table l = RuleLeft(), r = RuleRight();
  EXPECT_TRUE(m1.fires(l, 0, r, 0));
  EXPECT_FALSE(m1.fires(l, 0, r, 3));  // one digit differs
  EXPECT_FALSE(m1.fires(l, 1, r, 0));
  EXPECT_FALSE(m1.fires(l, 3, r, 0));  // null left award
  EXPECT_FALSE(m1.fires(l, 0, r, 1));  // null right award
}

TEST(MatchRulesTest, M4FiresOnProjectNumberEquality) {
  MatchRule m4 = MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber");
  Table l = RuleLeft(), r = RuleRight();
  EXPECT_TRUE(m4.fires(l, 1, r, 1));
  EXPECT_FALSE(m4.fires(l, 1, r, 2));  // different WIS number
  EXPECT_FALSE(m4.fires(l, 0, r, 0));  // federal vs WIS
}

TEST(MatchRulesTest, NegativeRuleOnlyFiresWhenComparable) {
  auto suffix = [](const std::string& s) { return AwardNumberSuffix(s); };
  MatchRule neg = MakeComparableMismatchRule("neg", "AwardNumber",
                                             "ProjectNumber", suffix, nullptr);
  Table l = RuleLeft(), r = RuleRight();
  // WIS01040 vs WIS04509: comparable and different -> fires.
  EXPECT_TRUE(neg.fires(l, 1, r, 2));
  // WIS01040 vs WIS01040: equal -> does not fire.
  EXPECT_FALSE(neg.fires(l, 1, r, 1));
  // MSN000111 vs WIS04509: different patterns -> does not fire.
  EXPECT_FALSE(neg.fires(l, 2, r, 2));
  // Null side -> does not fire.
  EXPECT_FALSE(neg.fires(l, 3, r, 2));
}

TEST(MatchRulesTest, ApplyRulesCartesianCollectsAllFirings) {
  Table l = RuleLeft(), r = RuleRight();
  std::vector<MatchRule> rules = {
      MakeM1AwardNumberRule("AwardNumber", "AwardNumber"),
      MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber")};
  auto sure = ApplyRulesCartesian(rules, l, r);
  ASSERT_TRUE(sure.ok());
  EXPECT_EQ(sure->size(), 2u);
  EXPECT_TRUE(sure->Contains({0, 0}));
  EXPECT_TRUE(sure->Contains({1, 1}));
}

TEST(MatchRulesTest, ApplyRulesToPairsRestrictsScope) {
  Table l = RuleLeft(), r = RuleRight();
  std::vector<MatchRule> rules = {
      MakeM1AwardNumberRule("AwardNumber", "AwardNumber")};
  CandidateSet scope(std::vector<RecordPair>{{1, 1}, {2, 2}});
  auto hits = ApplyRulesToPairs(rules, l, r, scope);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());  // the firing pair (0,0) is out of scope
}

TEST(MatchRulesTest, FilterWithNegativeRulesPartitions) {
  Table l = RuleLeft(), r = RuleRight();
  auto suffix = [](const std::string& s) { return AwardNumberSuffix(s); };
  std::vector<MatchRule> neg = {
      MakeComparableMismatchRule("neg_award", "AwardNumber", "AwardNumber",
                                 suffix, nullptr),
      MakeComparableMismatchRule("neg_proj", "AwardNumber", "ProjectNumber",
                                 suffix, nullptr)};
  CandidateSet matches(
      std::vector<RecordPair>{{0, 0}, {0, 3}, {1, 2}, {2, 2}});
  CandidateSet flipped;
  auto kept = FilterWithNegativeRules(neg, l, r, matches, &flipped);
  ASSERT_TRUE(kept.ok());
  // (0,3): comparable federal numbers differing by a digit -> flipped.
  // (1,2): comparable WIS numbers differing -> flipped.
  EXPECT_TRUE(flipped.Contains({0, 3}));
  EXPECT_TRUE(flipped.Contains({1, 2}));
  EXPECT_TRUE(kept->Contains({0, 0}));
  EXPECT_TRUE(kept->Contains({2, 2}));
  EXPECT_EQ(kept->size() + flipped.size(), matches.size());
}

TEST(MatchRulesTest, EqualityRuleWithBothTransforms) {
  Table l = *ReadCsvString("K\nABC-1\n");
  Table r = *ReadCsvString("K\nabc-1\n");
  MatchRule rule = MakeEqualityRule(
      "ci", "K", "K",
      [](const std::string& s) { return AsciiToLower(s); },
      [](const std::string& s) { return AsciiToLower(s); });
  EXPECT_TRUE(rule.fires(l, 0, r, 0));
}

}  // namespace
}  // namespace emx
