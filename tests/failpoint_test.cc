#include "src/core/failpoint.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/result.h"

namespace emx {
namespace {

// Each test arms points under its own names and disarms everything on exit,
// because the registry is process-global.
class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

Result<int> GuardedFunction() {
  EMX_FAILPOINT("fp_test/macro");
  return 7;
}

TEST_F(FailPointTest, DisarmedCheckIsOk) {
  FailPoint& fp = FailPointRegistry::Global().GetOrCreate("fp_test/disarmed");
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(fp.Check().ok());
  // Disarmed checks don't count as hits — the fast path touches nothing.
  EXPECT_EQ(fp.hits(), 0u);
  EXPECT_EQ(fp.fires(), 0u);
}

TEST_F(FailPointTest, ErrorModeFiresEveryHit) {
  FailPoint& fp = FailPointRegistry::Global().GetOrCreate("fp_test/error");
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kError;
  cfg.code = StatusCode::kIoError;
  fp.Arm(cfg);
  for (int i = 0; i < 3; ++i) {
    Status s = fp.Check();
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    EXPECT_NE(s.message().find("fp_test/error"), std::string::npos);
  }
  EXPECT_EQ(fp.hits(), 3u);
  EXPECT_EQ(fp.fires(), 3u);
  fp.Disarm();
  EXPECT_TRUE(fp.Check().ok());
}

TEST_F(FailPointTest, CountLimitsFiresThenAutoDisarms) {
  FailPoint& fp = FailPointRegistry::Global().GetOrCreate("fp_test/count");
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kError;
  cfg.count = 2;
  fp.Arm(cfg);
  EXPECT_FALSE(fp.Check().ok());
  EXPECT_FALSE(fp.Check().ok());
  // Exhausted: auto-disarmed, every later check passes.
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(fp.Check().ok());
  EXPECT_EQ(fp.fires(), 2u);
}

TEST_F(FailPointTest, OffModeCountsHitsWithoutFiring) {
  FailPoint& fp = FailPointRegistry::Global().GetOrCreate("fp_test/off");
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kOff;
  fp.Arm(cfg);
  EXPECT_TRUE(fp.Check().ok());
  EXPECT_TRUE(fp.Check().ok());
  EXPECT_EQ(fp.hits(), 2u);
  EXPECT_EQ(fp.fires(), 0u);
}

TEST_F(FailPointTest, ProbModeIsDeterministicPerSeed) {
  auto fire_pattern = [](uint64_t seed) {
    FailPoint& fp = FailPointRegistry::Global().GetOrCreate("fp_test/prob");
    FailPointConfig cfg;
    cfg.mode = FailPointMode::kProb;
    cfg.probability = 0.5;
    cfg.seed = seed;
    fp.Arm(cfg);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!fp.Check().ok());
    fp.Disarm();
    return fired;
  };
  std::vector<bool> a = fire_pattern(123);
  std::vector<bool> b = fire_pattern(123);
  EXPECT_EQ(a, b);
  // p=0.5 over 64 draws fires at least once and passes at least once.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FailPointTest, ProbZeroNeverFiresProbOneAlwaysFires) {
  FailPoint& fp = FailPointRegistry::Global().GetOrCreate("fp_test/prob01");
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kProb;
  cfg.probability = 0.0;
  fp.Arm(cfg);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(fp.Check().ok());
  cfg.probability = 1.0;
  fp.Arm(cfg);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(fp.Check().ok());
}

TEST_F(FailPointTest, ArmResetsCountersAndCount) {
  FailPoint& fp = FailPointRegistry::Global().GetOrCreate("fp_test/rearm");
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kError;
  cfg.count = 1;
  fp.Arm(cfg);
  EXPECT_FALSE(fp.Check().ok());
  EXPECT_TRUE(fp.Check().ok());  // exhausted
  fp.Arm(cfg);                   // re-arming restores the budget
  EXPECT_FALSE(fp.Check().ok());
}

TEST_F(FailPointTest, MacroReturnsInjectedStatusFromEnclosingFunction) {
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("fp_test/macro:error(ParseError)")
                  .ok());
  Result<int> r = GuardedFunction();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  FailPointRegistry::Global().DisarmAll();
  EXPECT_EQ(*GuardedFunction(), 7);
}

// --- spec parsing ----------------------------------------------------------------

TEST_F(FailPointTest, ArmFromSpecErrorWithCount) {
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("fp_test/spec:error(IoError),count=2")
                  .ok());
  FailPoint* fp = FailPointRegistry::Global().Find("fp_test/spec");
  ASSERT_NE(fp, nullptr);
  EXPECT_TRUE(fp->armed());
  EXPECT_EQ(fp->Check().code(), StatusCode::kIoError);
  EXPECT_EQ(fp->Check().code(), StatusCode::kIoError);
  EXPECT_TRUE(fp->Check().ok());
}

TEST_F(FailPointTest, ArmFromSpecOffAndProb) {
  ASSERT_TRUE(FailPointRegistry::Global().ArmFromSpec("fp_test/o:off").ok());
  EXPECT_TRUE(FailPointRegistry::Global().Find("fp_test/o")->Check().ok());
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("fp_test/p:prob(1.0),seed=9,count=1")
                  .ok());
  FailPoint* p = FailPointRegistry::Global().Find("fp_test/p");
  EXPECT_FALSE(p->Check().ok());
  EXPECT_TRUE(p->Check().ok());  // count exhausted
}

TEST_F(FailPointTest, ArmFromSpecRejectsBadSyntax) {
  auto& reg = FailPointRegistry::Global();
  EXPECT_EQ(reg.ArmFromSpec("no-colon").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.ArmFromSpec("x:bogus()").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.ArmFromSpec("x:error(NotACode)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.ArmFromSpec("x:error(Ok)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.ArmFromSpec("x:prob(2.0)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.ArmFromSpec("x:error(IoError),count=zero").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailPointTest, ArmFromSpecListArmsEverySegment) {
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpecList(
                      "fp_test/l1:error(IoError);;fp_test/l2:error(NotFound)")
                  .ok());
  auto armed = FailPointRegistry::Global().ArmedNames();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "fp_test/l1"), armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "fp_test/l2"), armed.end());
  EXPECT_EQ(FailPointRegistry::Global().Find("fp_test/l2")->Check().code(),
            StatusCode::kNotFound);
}

TEST_F(FailPointTest, ArmFromEnvReadsEmxFailpoints) {
  ::setenv("EMX_FAILPOINTS", "fp_test/env:error(Internal)", 1);
  Status s = FailPointRegistry::Global().ArmFromEnv();
  ::unsetenv("EMX_FAILPOINTS");
  ASSERT_TRUE(s.ok()) << s.ToString();
  FailPoint* fp = FailPointRegistry::Global().Find("fp_test/env");
  ASSERT_NE(fp, nullptr);
  EXPECT_EQ(fp->Check().code(), StatusCode::kInternal);
}

TEST_F(FailPointTest, DisarmAllDisarmsEverything) {
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpecList("fp_test/d1:error(IoError);fp_test/d2:off")
                  .ok());
  FailPointRegistry::Global().DisarmAll();
  EXPECT_TRUE(FailPointRegistry::Global().ArmedNames().empty());
  EXPECT_TRUE(FailPointRegistry::Global().Find("fp_test/d1")->Check().ok());
}

// Hammering one armed point from many threads must neither crash nor fire
// more than `count` times (the budget is decremented under the lock).
TEST_F(FailPointTest, ConcurrentChecksRespectCount) {
  FailPoint& fp =
      FailPointRegistry::Global().GetOrCreate("fp_test/concurrent");
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kError;
  cfg.count = 5;
  fp.Arm(cfg);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (!fp.Check().ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 5);
  EXPECT_EQ(fp.fires(), 5u);
}

}  // namespace
}  // namespace emx
