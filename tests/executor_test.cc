#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/executor.h"

namespace emx {
namespace {

// --- lifecycle -------------------------------------------------------------------

TEST(ExecutorTest, ConstructsAndJoinsAtAnySize) {
  for (size_t n : {1u, 2u, 4u, 8u}) {
    Executor pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }  // destructor joins; a hang here fails via test timeout
}

TEST(ExecutorTest, ZeroMeansDefaultThreadCount) {
  Executor pool(0);
  EXPECT_EQ(pool.num_threads(), Executor::DefaultThreadCount());
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ExecutorTest, DefaultThreadCountHonorsEmxThreads) {
  const char* old = std::getenv("EMX_THREADS");
  std::string saved = old ? old : "";
  setenv("EMX_THREADS", "3", 1);
  EXPECT_EQ(Executor::DefaultThreadCount(), 3u);
  setenv("EMX_THREADS", "0", 1);  // non-positive → ignored
  EXPECT_GE(Executor::DefaultThreadCount(), 1u);
  setenv("EMX_THREADS", "junk", 1);
  EXPECT_GE(Executor::DefaultThreadCount(), 1u);
  if (old) {
    setenv("EMX_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("EMX_THREADS");
  }
}

TEST(ExecutorTest, IdleDestructionDoesNotHang) {
  // A pool that never ran a loop must still shut down cleanly.
  Executor pool(8);
}

// --- ParallelFor coverage --------------------------------------------------------

// Every index in [begin, end) visited exactly once, any grain.
void CheckCoverage(Executor& pool, size_t begin, size_t end, size_t grain) {
  std::vector<std::atomic<int>> visits(end);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(begin, end, grain, [&](size_t lo, size_t hi) {
    ASSERT_LE(begin, lo);
    ASSERT_LE(lo, hi);
    ASSERT_LE(hi, end);
    for (size_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < begin; ++i) EXPECT_EQ(visits[i].load(), 0) << i;
  for (size_t i = begin; i < end; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ExecutorTest, ParallelForCoversRangeOnce) {
  Executor pool(4);
  CheckCoverage(pool, 0, 1000, 0);   // automatic grain
  CheckCoverage(pool, 0, 1000, 1);   // one index per chunk
  CheckCoverage(pool, 0, 1000, 7);   // uneven tail chunk
  CheckCoverage(pool, 0, 10, 100);   // grain > n → single chunk, serial
  CheckCoverage(pool, 0, 1, 0);      // single element
  CheckCoverage(pool, 5, 17, 3);     // begin != 0
}

TEST(ExecutorTest, EmptyRangeNeverInvokesBody) {
  Executor pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 0, [&](size_t, size_t) { calls.fetch_add(1); });
  pool.ParallelFor(9, 9, 2, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ExecutorTest, SingleThreadRunsInline) {
  // At 1 thread the whole range arrives as ONE chunk on the calling thread.
  Executor pool(1);
  std::vector<std::pair<size_t, size_t>> chunks;
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 100, 10, [&](size_t lo, size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    chunks.push_back({lo, hi});
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{0, 100}));
}

// --- exceptions ------------------------------------------------------------------

TEST(ExecutorTest, ExceptionPropagatesToCaller) {
  Executor pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t lo, size_t) {
                         if (lo == 42) throw std::runtime_error("chunk 42");
                       }),
      std::runtime_error);
}

TEST(ExecutorTest, FirstChunkOrderExceptionWins) {
  // Several chunks throw; the rethrown one must be the LOWEST chunk, no
  // matter which thread finished first.
  Executor pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    try {
      pool.ParallelFor(0, 64, 1, [&](size_t lo, size_t) {
        if (lo == 7 || lo == 31 || lo == 55)
          throw std::runtime_error("chunk " + std::to_string(lo));
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 7");
    }
  }
}

TEST(ExecutorTest, PoolUsableAfterException) {
  Executor pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 8, 1,
                                [](size_t, size_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The failed loop must not wedge the workers.
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

// --- nesting ---------------------------------------------------------------------

TEST(ExecutorTest, NestedParallelForRunsInlineWithoutDeadlock) {
  Executor pool(4);
  std::vector<std::atomic<int>> visits(32 * 32);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(0, 32, 1, [&](size_t olo, size_t ohi) {
    for (size_t o = olo; o < ohi; ++o) {
      std::thread::id outer = std::this_thread::get_id();
      // The nested loop must stay on the worker that issued it.
      pool.ParallelFor(0, 32, 1, [&, o](size_t ilo, size_t ihi) {
        EXPECT_EQ(std::this_thread::get_id(), outer);
        for (size_t i = ilo; i < ihi; ++i) visits[o * 32 + i].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < visits.size(); ++i)
    ASSERT_EQ(visits[i].load(), 1) << i;
}

// --- determinism across thread counts -------------------------------------------

TEST(ExecutorTest, ParallelMapIdenticalAcrossThreadCounts) {
  auto compute = [](Executor& pool) {
    return pool.ParallelMap(1000, 0, [](size_t i) {
      double v = 1.0;
      for (size_t k = 0; k < i % 13; ++k) v = v * 1.0000001 + 1e-9;
      return v * static_cast<double>(i);
    });
  };
  Executor p1(1), p2(2), p8(8);
  std::vector<double> r1 = compute(p1);
  EXPECT_EQ(r1, compute(p2));
  EXPECT_EQ(r1, compute(p8));
}

TEST(ExecutorTest, ParallelFlatMapIdenticalAcrossThreadCountsAndGrains) {
  // Chunk-order concatenation: output sequence must not depend on how the
  // range was chunked or which worker ran which chunk.
  auto compute = [](Executor& pool, size_t grain) {
    return pool.ParallelFlatMap(257, grain, [](size_t lo, size_t hi) {
      std::vector<size_t> part;
      for (size_t i = lo; i < hi; ++i) {
        if (i % 3 != 1) part.push_back(i * i);  // uneven per-chunk sizes
      }
      return part;
    });
  };
  Executor p1(1), p2(2), p8(8);
  std::vector<size_t> expect = compute(p1, 0);
  for (size_t grain : {0u, 1u, 5u, 64u, 1000u}) {
    EXPECT_EQ(compute(p1, grain), expect) << grain;
    EXPECT_EQ(compute(p2, grain), expect) << grain;
    EXPECT_EQ(compute(p8, grain), expect) << grain;
  }
}

TEST(ExecutorTest, ParallelMapHandlesEmptyAndMoveOnlyFriendlyTypes) {
  Executor pool(4);
  EXPECT_TRUE(pool.ParallelMap(0, 0, [](size_t i) { return i; }).empty());
  auto strings = pool.ParallelMap(
      100, 3, [](size_t i) { return std::string(i % 7, 'x'); });
  ASSERT_EQ(strings.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(strings[i].size(), i % 7);
}

TEST(ExecutorTest, DefaultPoolIsShared) {
  Executor& a = Executor::Default();
  Executor& b = Executor::Default();
  EXPECT_EQ(&a, &b);
  ExecutorContext ctx;  // default context resolves to the shared pool
  EXPECT_EQ(&ctx.get(), &a);
  Executor mine(2);
  ExecutorContext pinned{&mine};
  EXPECT_EQ(&pinned.get(), &mine);
}

TEST(ExecutorTest, HeavyConcurrentUseSumsCorrectly) {
  Executor pool(8);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<uint64_t> out(997);
    pool.ParallelFor(0, out.size(), 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) out[i] = i;
    });
    uint64_t sum = std::accumulate(out.begin(), out.end(), uint64_t{0});
    ASSERT_EQ(sum, uint64_t{997} * 996 / 2);
  }
}

}  // namespace
}  // namespace emx
