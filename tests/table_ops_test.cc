#include <gtest/gtest.h>

#include "src/table/csv.h"
#include "src/table/profile.h"
#include "src/table/table_ops.h"

namespace emx {
namespace {

Table People() {
  return *ReadCsvString(
      "id,name,dept,salary\n"
      "1,ann,cs,100\n"
      "2,bob,econ,90\n"
      "3,cal,cs,\n"
      "4,dee,bio,80\n");
}

Table Depts() {
  return *ReadCsvString(
      "dept,building\n"
      "cs,noland\n"
      "econ,social science\n");
}

// --- Project / Rename -----------------------------------------------------------

TEST(ProjectTest, KeepsRequestedColumnsInOrder) {
  auto t = Project(People(), {"salary", "id"});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().names(), (std::vector<std::string>{"salary", "id"}));
  EXPECT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->at(0, "salary").AsInt(), 100);
}

TEST(ProjectTest, MissingColumnFails) {
  EXPECT_EQ(Project(People(), {"nope"}).status().code(),
            StatusCode::kNotFound);
}

TEST(RenameColumnsTest, PairwiseRenames) {
  auto t = RenameColumns(People(), {{"name", "full_name"}, {"dept", "unit"}});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->schema().Contains("full_name"));
  EXPECT_TRUE(t->schema().Contains("unit"));
  EXPECT_FALSE(t->schema().Contains("name"));
}

// --- Select ---------------------------------------------------------------------

TEST(SelectTest, PredicateFilter) {
  Table t = Select(People(), [](const Table& tab, size_t r) {
    return tab.at(r, "dept").AsString() == "cs";
  });
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, "name").AsString(), "ann");
  EXPECT_EQ(t.at(1, "name").AsString(), "cal");
}

// --- HashJoin -------------------------------------------------------------------

TEST(HashJoinTest, InnerJoinSemantics) {
  auto j = HashJoin(People(), "dept", Depts(), "dept");
  ASSERT_TRUE(j.ok());
  // bio has no department row; cs matches twice.
  EXPECT_EQ(j->num_rows(), 3u);
  EXPECT_TRUE(j->schema().Contains("building"));
  EXPECT_EQ(j->at(0, "building").AsString(), "noland");
}

TEST(HashJoinTest, NullKeysNeverJoin) {
  Table l = *ReadCsvString("k,v\n,1\nx,2\n");
  Table r = *ReadCsvString("k,w\n,9\nx,8\n");
  auto j = HashJoin(l, "k", r, "k");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 1u);
  EXPECT_EQ(j->at(0, "w").AsInt(), 8);
}

TEST(HashJoinTest, NameCollisionGetsSuffix) {
  Table l = *ReadCsvString("k,v\nx,1\n");
  Table r = *ReadCsvString("k,v\nx,2\n");
  auto j = HashJoin(l, "k", r, "k");
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j->schema().Contains("v"));
  EXPECT_TRUE(j->schema().Contains("v_right"));
  EXPECT_EQ(j->at(0, "v").AsInt(), 1);
  EXPECT_EQ(j->at(0, "v_right").AsInt(), 2);
}

// --- GroupConcat -----------------------------------------------------------------

TEST(GroupConcatTest, ConcatenatesPerKey) {
  Table t = *ReadCsvString(
      "award,person\nA,ann\nA,bob\nB,cal\nA,ann\n,ghost\nB,\n");
  auto g = GroupConcat(t, "award", "person", "|");
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 2u);  // null keys/values dropped
  EXPECT_EQ(g->at(0, "award").AsString(), "A");
  EXPECT_EQ(g->at(0, "person").AsString(), "ann|bob|ann");
  EXPECT_EQ(g->at(1, "person").AsString(), "cal");
}

// --- AddIdColumn / ConcatRows -------------------------------------------------------

TEST(AddIdColumnTest, PrependsSequentialIds) {
  auto t = AddIdColumn(People(), "RecordId");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().IndexOf("RecordId"), 0);
  for (size_t r = 0; r < t->num_rows(); ++r) {
    EXPECT_EQ(t->at(r, "RecordId").AsInt(), static_cast<int64_t>(r));
  }
  EXPECT_EQ(AddIdColumn(*t, "RecordId").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(ConcatRowsTest, RequiresEqualSchemas) {
  Table a = People();
  auto both = ConcatRows(a, a);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->num_rows(), 8u);
  EXPECT_EQ(ConcatRows(a, Depts()).status().code(),
            StatusCode::kInvalidArgument);
}

// --- profiling -------------------------------------------------------------------

TEST(ProfileTest, ColumnStatistics) {
  auto p = ProfileColumn(People(), "salary");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->count, 4u);
  EXPECT_EQ(p->missing, 1u);
  EXPECT_EQ(p->unique, 3u);
  EXPECT_EQ(p->numeric_count, 3u);
  EXPECT_DOUBLE_EQ(p->mean, 90.0);
  EXPECT_DOUBLE_EQ(p->median, 90.0);
  EXPECT_DOUBLE_EQ(p->min, 80.0);
  EXPECT_DOUBLE_EQ(p->max, 100.0);
}

TEST(ProfileTest, TopValuesSortedByFrequency) {
  Table t = *ReadCsvString("d\ncs\ncs\necon\nbio\ncs\necon\n");
  auto p = ProfileColumn(t, "d", {.top_k = 2});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->top_values.size(), 2u);
  EXPECT_EQ(p->top_values[0].first, "cs");
  EXPECT_EQ(p->top_values[0].second, 3u);
  EXPECT_EQ(p->top_values[1].first, "econ");
}

TEST(ProfileTest, EvenCountMedianAverages) {
  Table t = *ReadCsvString("n\n1\n2\n3\n4\n");
  auto p = ProfileColumn(t, "n");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->median, 2.5);
}

TEST(ProfileTest, WholeTable) {
  TableProfile tp = ProfileTable(People());
  EXPECT_EQ(tp.num_rows, 4u);
  EXPECT_EQ(tp.num_columns, 4u);
  EXPECT_EQ(tp.columns.size(), 4u);
  EXPECT_NE(tp.ToString().find("salary"), std::string::npos);
}

}  // namespace
}  // namespace emx
