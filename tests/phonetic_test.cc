#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/text/phonetic.h"

namespace emx {
namespace {

TEST(SoundexTest, ClassicReferenceCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(Soundex("o'brien"), Soundex("OBrien"));
  EXPECT_EQ(Soundex("SMITH"), Soundex("smith"));
}

TEST(SoundexTest, ShortAndEmptyInputs) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex("a"), "A000");
  EXPECT_EQ(Soundex("ab"), "A100");
}

TEST(SoundexSimilarityTest, MatchesHomophones) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Smith", "Smyth"), 1.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Smith", "Jones"), 0.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("", "Smith"), 0.0);
}

TEST(AffineGapTest, IdentityAndEmpty) {
  EXPECT_DOUBLE_EQ(AffineGapSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(AffineGapSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(AffineGapSimilarity("", "abc"), 0.0);
}

TEST(AffineGapTest, OneLongGapBeatsScatteredEdits) {
  // "Smith, J" embedded in "Smith, John R": one long insertion.
  double contiguous = AffineGapSimilarity("Smith, J", "Smith, John R");
  // Same number of extra characters but scattered through the string.
  double scattered = AffineGapSimilarity("Smith, J", "Samibtahr, nJ");
  EXPECT_GT(contiguous, scattered);
  EXPECT_GT(contiguous, 0.7);
}

TEST(AffineGapTest, SymmetricAndBounded) {
  const char* samples[] = {"kermicle", "kurmickle", "colquhoun", "a", ""};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double ab = AffineGapSimilarity(a, b);
      EXPECT_DOUBLE_EQ(ab, AffineGapSimilarity(b, a));
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

// Property sweep: codes are always deterministic, four characters, and
// shaped "letter + 3 digits" for any alphabetic-containing input.
class SoundexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundexPropertyTest, CodeShapeInvariant) {
  RandomEngine rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    size_t len = 1 + rng.NextBelow(12);
    std::string s;
    for (size_t c = 0; c < len; ++c) {
      s += static_cast<char>('a' + rng.NextBelow(26));
    }
    std::string code = Soundex(s);
    ASSERT_EQ(code.size(), 4u) << s;
    EXPECT_GE(code[0], 'A');
    EXPECT_LE(code[0], 'Z');
    for (size_t c = 1; c < 4; ++c) {
      EXPECT_GE(code[c], '0') << s;
      EXPECT_LE(code[c], '6') << s;
    }
    EXPECT_EQ(code, Soundex(s));                  // deterministic
    EXPECT_EQ(code, Soundex(AsciiToUpper(s)));    // case-insensitive
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundexPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace emx
