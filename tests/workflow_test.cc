#include <gtest/gtest.h>

#include "src/block/attr_equivalence_blocker.h"
#include "src/block/overlap_blocker.h"
#include "src/core/executor.h"
#include "src/ml/decision_tree.h"
#include "src/rules/match_rules.h"
#include "src/rules/number_pattern.h"
#include "src/table/csv.h"
#include "src/workflow/em_workflow.h"
#include "src/workflow/match_set.h"

namespace emx {
namespace {

CandidateSet CS(std::initializer_list<RecordPair> pairs) {
  return CandidateSet(std::vector<RecordPair>(pairs));
}

// --- MatchSet --------------------------------------------------------------------

TEST(MatchSetTest, AddAndProvenance) {
  MatchSet m;
  m.Add(CS({{0, 0}, {1, 1}}), "sure_rule");
  m.Add(CS({{2, 2}}), "ml");
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.ProvenanceOf({0, 0}), "sure_rule");
  EXPECT_EQ(m.ProvenanceOf({2, 2}), "ml");
  EXPECT_EQ(m.ProvenanceOf({9, 9}), "");
}

TEST(MatchSetTest, FirstWriterWinsByDefault) {
  MatchSet m;
  m.Add(CS({{0, 0}}), "old");
  m.Add(CS({{0, 0}}), "new");
  EXPECT_EQ(m.ProvenanceOf({0, 0}), "old");
  EXPECT_EQ(m.size(), 1u);
}

TEST(MatchSetTest, OverwriteImplementsNewerWorkflowWins) {
  MatchSet m;
  m.Add(CS({{0, 0}}), "old");
  m.Add(CS({{0, 0}}), "patch", /*overwrite=*/true);
  EXPECT_EQ(m.ProvenanceOf({0, 0}), "patch");
}

TEST(MatchSetTest, RemoveAndCounts) {
  MatchSet m;
  m.Add(CS({{0, 0}, {1, 1}}), "a");
  m.Add(CS({{2, 2}}), "b");
  m.Remove(CS({{1, 1}}));
  EXPECT_EQ(m.size(), 2u);
  auto counts = m.CountsByProvenance();
  EXPECT_EQ(counts["a"], 1u);
  EXPECT_EQ(counts["b"], 1u);
  CandidateSet as_set = m.AsCandidateSet();
  EXPECT_TRUE(as_set.Contains({0, 0}));
  EXPECT_FALSE(as_set.Contains({1, 1}));
}

// --- EmWorkflow -------------------------------------------------------------------

Table WfLeft() {
  return *ReadCsvString(
      "AwardNumber,Title\n"
      "10.1 F-100,alpha beta gamma delta\n"      // sure match to row 0
      "10.2 MSN000111,epsilon zeta eta theta\n"  // ML-findable to row 1
      "10.3 WIS00002,iota kappa lambda mu\n"     // sibling bait vs row 3
      "10.4 MSN000009,loner title entirely\n");
}

Table WfRight() {
  return *ReadCsvString(
      "AwardNumber,ProjectNumber,Title\n"
      "F-100,WIS99999,alpha beta gamma delta\n"
      ",WIS77777,epsilon zeta eta theta\n"
      ",WIS66666,unrelated words here now\n"
      ",WIS00005,iota kappa lambda mu\n");  // comparable-mismatch with left 2
}

// Installs a matcher trained to call high title-Jaccard a match.
void InstallTitleMatcher(EmWorkflow& wf) {
  FeatureSet features;
  features.features.push_back(MakeJaccardFeature("Title", "Title"));
  // Train on a tiny synthetic set: jaccard 1 -> match, 0 -> non-match.
  Dataset d;
  d.feature_names = features.names();
  d.x = {{1.0}, {0.9}, {0.05}, {0.0}};
  d.y = {1, 1, 0, 0};
  FeatureMatrix m;
  m.feature_names = d.feature_names;
  m.rows = d.x;
  MeanImputer imputer;
  imputer.Fit(m);
  auto tree = std::make_shared<DecisionTreeMatcher>();
  ASSERT_TRUE(tree->Fit(d).ok());
  wf.SetMatcher(std::move(tree), std::move(features), std::move(imputer));
}

EmWorkflow BuildToyWorkflow(bool with_negative_rules) {
  EmWorkflow wf;
  wf.AddPositiveRule(MakeM1AwardNumberRule("AwardNumber", "AwardNumber"));
  OverlapBlockerOptions opts;
  opts.left_attr = "Title";
  opts.right_attr = "Title";
  wf.AddBlocker(std::make_shared<OverlapBlocker>(opts, 3));
  if (with_negative_rules) {
    auto suffix = [](const std::string& s) { return AwardNumberSuffix(s); };
    wf.AddNegativeRule(MakeComparableMismatchRule(
        "neg", "AwardNumber", "ProjectNumber", suffix, nullptr));
  }
  return wf;
}

TEST(EmWorkflowTest, StagesComposeEndToEnd) {
  Table l = WfLeft(), r = WfRight();
  EmWorkflow wf = BuildToyWorkflow(/*with_negative_rules=*/true);
  InstallTitleMatcher(wf);

  auto run = wf.Run(l, r);
  ASSERT_TRUE(run.ok());
  // Sure match via M1.
  EXPECT_TRUE(run->sure_matches.Contains({0, 0}));
  EXPECT_EQ(run->sure_matches.size(), 1u);
  // ML finds the identical-title pair (1,1); the sibling pair (2,3) is
  // predicted but flipped by the negative rule (WIS00002 vs WIS00005).
  EXPECT_TRUE(run->ml_predicted.Contains({1, 1}));
  EXPECT_TRUE(run->ml_predicted.Contains({2, 3}));
  EXPECT_TRUE(run->flipped.Contains({2, 3}));
  EXPECT_TRUE(run->after_rules.Contains({1, 1}));
  EXPECT_FALSE(run->after_rules.Contains({2, 3}));
  // Final = sure ∪ surviving ML.
  EXPECT_TRUE(run->final_matches.Contains({0, 0}));
  EXPECT_TRUE(run->final_matches.Contains({1, 1}));
  EXPECT_EQ(run->final_matches.size(), 2u);
  // Provenance.
  EXPECT_EQ(run->provenance.ProvenanceOf({0, 0}), "sure_rule");
  EXPECT_EQ(run->provenance.ProvenanceOf({1, 1}), "ml");
}

TEST(EmWorkflowTest, SureMatchesAreNeverFlipped) {
  // A sure-rule pair that ALSO trips the negative rule stays a match:
  // Figure 10 applies negative rules to R1/R2 only.
  Table l = *ReadCsvString("AwardNumber,Title\n10.1 WIS00001,t t t\n");
  Table r = *ReadCsvString(
      "AwardNumber,ProjectNumber,Title\nWIS00001,WIS00002,t t t\n");
  EmWorkflow wf;
  wf.AddPositiveRule(MakeM1AwardNumberRule("AwardNumber", "AwardNumber"));
  auto suffix = [](const std::string& s) { return AwardNumberSuffix(s); };
  wf.AddNegativeRule(MakeComparableMismatchRule(
      "neg", "AwardNumber", "ProjectNumber", suffix, nullptr));
  auto run = wf.Run(l, r);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->final_matches.Contains({0, 0}));
}

TEST(EmWorkflowTest, RuleOnlyWorkflowNeedsNoMatcher) {
  Table l = WfLeft(), r = WfRight();
  EmWorkflow wf;
  wf.AddPositiveRule(MakeM1AwardNumberRule("AwardNumber", "AwardNumber"));
  auto run = wf.Run(l, r);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->final_matches.size(), 1u);
  EXPECT_TRUE(run->ml_predicted.empty());
}

TEST(EmWorkflowTest, EmptyWorkflowProducesNothing) {
  Table l = WfLeft(), r = WfRight();
  EmWorkflow wf;
  auto run = wf.Run(l, r);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->final_matches.empty());
  EXPECT_TRUE(run->candidates.empty());
}

TEST(EmWorkflowTest, RunIsIdenticalAtAnyThreadCount) {
  // The executor's determinism guarantee, end to end: the same workflow
  // pinned to 1-, 2-, and 8-thread pools must produce bit-identical runs.
  Table l = WfLeft(), r = WfRight();
  auto run_with = [&](Executor& pool) {
    EmWorkflow wf = BuildToyWorkflow(/*with_negative_rules=*/true);
    InstallTitleMatcher(wf);
    wf.SetExecutor(ExecutorContext{&pool});
    auto run = wf.Run(l, r);
    EXPECT_TRUE(run.ok());
    return std::move(*run);
  };
  Executor p1(1), p2(2), p8(8);
  WorkflowRunResult base = run_with(p1);
  for (Executor* pool : {&p2, &p8}) {
    WorkflowRunResult got = run_with(*pool);
    EXPECT_EQ(got.sure_matches, base.sure_matches);
    EXPECT_EQ(got.candidates, base.candidates);
    EXPECT_EQ(got.ml_input, base.ml_input);
    EXPECT_EQ(got.ml_predicted, base.ml_predicted);
    EXPECT_EQ(got.flipped, base.flipped);
    EXPECT_EQ(got.after_rules, base.after_rules);
    EXPECT_EQ(got.final_matches, base.final_matches);
    EXPECT_EQ(got.provenance.CountsByProvenance(),
              base.provenance.CountsByProvenance());
  }
}

TEST(EmWorkflowTest, DescribeListsEveryStage) {
  EmWorkflow wf = BuildToyWorkflow(/*with_negative_rules=*/true);
  InstallTitleMatcher(wf);
  std::string desc = wf.Describe();
  EXPECT_NE(desc.find("M1_award_number"), std::string::npos);
  EXPECT_NE(desc.find("overlap(Title"), std::string::npos);
  EXPECT_NE(desc.find("decision_tree"), std::string::npos);
  EXPECT_NE(desc.find("neg"), std::string::npos);
}

TEST(EmWorkflowTest, DescribeWithoutMatcher) {
  EmWorkflow wf;
  EXPECT_NE(wf.Describe().find("matcher: (none)"), std::string::npos);
}

TEST(MergeBranchesTest, NewerSureRuleOverridesOlderMl) {
  WorkflowRunResult old_run, patch_run;
  old_run.after_rules = CS({{0, 0}, {1, 1}});
  patch_run.sure_matches = CS({{0, 0}});
  MatchSet merged = MergeBranches({&old_run, &patch_run});
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.ProvenanceOf({0, 0}), "sure_rule");
  EXPECT_EQ(merged.ProvenanceOf({1, 1}), "ml");
}

}  // namespace
}  // namespace emx
