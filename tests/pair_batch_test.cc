// Equivalence suite for the columnar batch-scoring layer: every batch
// similarity kernel in src/text/batch_kernel.h must be BIT-IDENTICAL to the
// emx::oracle scalars on a randomized 10k-pair corpus (empty, 1-char,
// >64-char, UTF-8, equal, disjoint lanes) at 1/2/8 threads and at every
// SIMD dispatch level — including a forced-scalar run, so the scalar
// fallback is exercised even on AVX2 hardware. The same suite pins down the
// PairBatch container, the batched vectorizer/imputer, the flattened-forest
// scorer (incl. NaN routing and deserialize), the rule-matcher batch
// overloads, and the Monge-Elkan memo flush hook.

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/random.h"
#include "src/feature/feature_gen.h"
#include "src/feature/pair_batch.h"
#include "src/feature/vectorizer.h"
#include "src/ml/forest_flat.h"
#include "src/ml/random_forest.h"
#include "src/prep/prepared_column.h"
#include "src/rules/feature_rules.h"
#include "src/table/csv.h"
#include "src/text/batch_kernel.h"
#include "src/text/phonetic.h"
#include "src/text/sequence_similarity.h"
#include "src/text/set_similarity.h"

namespace emx {
namespace {

// ---------- corpus ----------

struct StringPair {
  std::string a;
  std::string b;
};

std::string RandomString(std::mt19937& rng, size_t len, char lo, char hi) {
  std::uniform_int_distribution<int> c(lo, hi);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) s += static_cast<char>(c(rng));
  return s;
}

std::string RandomUtf8(std::mt19937& rng, size_t chars) {
  static const char* kGlyphs[] = {"ü", "ß", "é", "λ", "文", "字", "🌽",
                                  "a", "n", " ", "Å", "ç"};
  std::uniform_int_distribution<size_t> pick(0, std::size(kGlyphs) - 1);
  std::string s;
  for (size_t i = 0; i < chars; ++i) s += kGlyphs[pick(rng)];
  return s;
}

std::string Mutate(std::mt19937& rng, std::string s) {
  if (s.empty()) return s;
  std::uniform_int_distribution<size_t> pos(0, s.size() - 1);
  std::uniform_int_distribution<int> kind(0, 2);
  std::uniform_int_distribution<int> c('a', 'z');
  std::uniform_int_distribution<int> edits(1, 4);
  int n = edits(rng);
  for (int e = 0; e < n && !s.empty(); ++e) {
    size_t p = pos(rng) % s.size();
    switch (kind(rng)) {
      case 0:
        s[p] = static_cast<char>(c(rng));
        break;
      case 1:
        s.erase(p, 1);
        break;
      default:
        s.insert(p, 1, static_cast<char>(c(rng)));
        break;
    }
  }
  return s;
}

// The shape classes the batch kernels must cover: empty, 1-char, equal,
// near-duplicate, disjoint-alphabet (zero matches), multi-byte UTF-8, and
// >64-char lanes, mixed in one corpus so a single batch call sees the full
// length spectrum (which is what stresses the length-sorted scheduling and
// the 4-lane padding).
std::vector<StringPair> BuildCorpus(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> klass(0, 99);
  std::uniform_int_distribution<size_t> small(2, 64);
  std::uniform_int_distribution<size_t> medium(65, 128);
  std::vector<StringPair> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int k = klass(rng);
    StringPair p;
    if (k < 6) {  // empty on at least one side
      p.a = "";
      p.b = k < 3 ? "" : RandomString(rng, small(rng), 'a', 'z');
    } else if (k < 14) {  // 1-char
      p.a = RandomString(rng, 1, 'a', 'f');
      p.b = RandomString(rng, 1, 'a', 'f');
    } else if (k < 24) {  // equal
      p.a = RandomString(rng, small(rng), 'a', 'z');
      p.b = p.a;
    } else if (k < 36) {  // near-duplicates
      p.a = RandomString(rng, small(rng), 'a', 'j');
      p.b = Mutate(rng, p.a);
    } else if (k < 46) {  // disjoint alphabets: zero matches
      p.a = RandomString(rng, small(rng), 'a', 'm');
      p.b = RandomString(rng, small(rng), 'n', 'z');
    } else if (k < 56) {  // UTF-8 multi-byte sequences, compared bytewise
      p.a = RandomUtf8(rng, small(rng) / 2 + 1);
      p.b = k % 2 == 0 ? Mutate(rng, p.a) : RandomUtf8(rng, small(rng) / 2 + 1);
    } else if (k < 66) {  // >64-char lanes
      p.a = RandomString(rng, medium(rng), 'a', 'h');
      p.b = k % 2 == 0 ? Mutate(rng, p.a)
                       : RandomString(rng, medium(rng), 'a', 'h');
    } else {  // generic short strings
      p.a = RandomString(rng, small(rng), 'a', 'z');
      p.b = RandomString(rng, small(rng), 'a', 'z');
    }
    out.push_back(std::move(p));
  }
  return out;
}

// NaN-aware bitwise double equality.
bool BitEq(double x, double y) {
  return std::memcmp(&x, &y, sizeof(double)) == 0;
}

// ---------- PairBatch container ----------

TEST(PairBatchTest, ColumnMajorLayoutAndAccessors) {
  PairBatch batch(3, 2);
  batch.feature_names = {"f0", "f1"};
  for (size_t i = 0; i < 3; ++i) {
    batch.At(i, 0) = static_cast<double>(i);
    batch.At(i, 1) = 10.0 + static_cast<double>(i);
  }
  EXPECT_EQ(batch.num_pairs(), 3u);
  EXPECT_EQ(batch.num_features(), 2u);
  // Column(f) is contiguous over pairs: the batch-kernel contract.
  const double* c1 = batch.Column(1);
  EXPECT_DOUBLE_EQ(c1[0], 10.0);
  EXPECT_DOUBLE_EQ(c1[2], 12.0);
  EXPECT_EQ(batch.Column(1), batch.Column(0) + batch.num_pairs());
  double row[2];
  batch.RowTo(1, row);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 11.0);
}

TEST(PairBatchTest, RoundTripsPreserveValuesAndNames) {
  FeatureMatrix m;
  m.feature_names = {"a", "b", "c"};
  double nan = std::numeric_limits<double>::quiet_NaN();
  m.rows = {{1.0, nan, 3.0}, {4.0, 5.0, nan}};
  PairBatch batch = PairBatch::FromMatrix(m);
  EXPECT_EQ(batch.feature_names, m.feature_names);
  FeatureMatrix back = batch.ToMatrix();
  ASSERT_EQ(back.rows.size(), m.rows.size());
  for (size_t i = 0; i < m.rows.size(); ++i) {
    for (size_t f = 0; f < m.feature_names.size(); ++f) {
      EXPECT_TRUE(BitEq(back.rows[i][f], m.rows[i][f])) << i << "," << f;
      EXPECT_TRUE(BitEq(batch.At(i, f), m.rows[i][f])) << i << "," << f;
    }
  }
  std::vector<std::vector<double>> rows = batch.ToRows();
  std::vector<std::vector<double>> again = PairBatch::FromRows(rows).ToRows();
  ASSERT_EQ(rows.size(), again.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t f = 0; f < rows[i].size(); ++f) {
      EXPECT_TRUE(BitEq(rows[i][f], again[i][f])) << i << "," << f;
    }
  }
}

TEST(PairBatchTest, EmptyMatrixKeepsFeatureWidth) {
  FeatureMatrix m;
  m.feature_names = {"a", "b"};
  PairBatch batch = PairBatch::FromMatrix(m);
  EXPECT_EQ(batch.num_pairs(), 0u);
  EXPECT_EQ(batch.num_features(), 2u);
}

// ---------- batch kernels vs oracle, across SIMD levels and threads ----------

using BatchFn = void (*)(const std::string_view*, const std::string_view*,
                         size_t, double*);

struct KernelCase {
  const char* name;
  BatchFn batch;
  double (*scalar)(std::string_view, std::string_view);
};

double OracleExact(std::string_view a, std::string_view b) {
  return ExactMatch(a, b);  // trivially scalar; no oracle twin exists
}
double OracleJw(std::string_view a, std::string_view b) {
  return oracle::JaroWinklerSimilarity(a, b);
}
double OracleAffine(std::string_view a, std::string_view b) {
  return oracle::AffineGapSimilarity(a, b);
}
void JwBatch(const std::string_view* a, const std::string_view* b, size_t n,
             double* out) {
  JaroWinklerSimilarityBatch(a, b, n, out);
}

const KernelCase kKernels[] = {
    {"exact", &ExactMatchBatch, &OracleExact},
    {"lev", &LevenshteinSimilarityBatch, &oracle::LevenshteinSimilarity},
    {"jaro", &JaroSimilarityBatch, &oracle::JaroSimilarity},
    {"jw", &JwBatch, &OracleJw},
    {"nw", &NeedlemanWunschSimilarityBatch, &oracle::NeedlemanWunschSimilarity},
    {"sw", &SmithWatermanSimilarityBatch, &oracle::SmithWatermanSimilarity},
    {"affine", &AffineGapSimilarityBatch, &OracleAffine},
};

class SimdLevelGuard {
 public:
  explicit SimdLevelGuard(SimdLevel level) { ForceSimdLevel(level); }
  ~SimdLevelGuard() { ResetSimdLevel(); }
};

TEST(BatchKernelTest, BitExactVsOracleAtAllSimdLevelsAnd128Threads) {
  const std::vector<StringPair> corpus = BuildCorpus(10000, 20260809);
  std::vector<std::string_view> av, bv;
  av.reserve(corpus.size());
  bv.reserve(corpus.size());
  for (const StringPair& p : corpus) {
    av.push_back(p.a);
    bv.push_back(p.b);
  }

  // Oracle expectations, once, single-threaded.
  std::vector<std::vector<double>> expected(std::size(kKernels));
  for (size_t k = 0; k < std::size(kKernels); ++k) {
    expected[k].resize(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      expected[k][i] = kKernels[k].scalar(av[i], bv[i]);
    }
  }

  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    SimdLevelGuard guard(level);  // clamped to the hardware level internally
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (size_t k = 0; k < std::size(kKernels); ++k) {
        std::vector<double> out(corpus.size(),
                                std::numeric_limits<double>::quiet_NaN());
        std::atomic<size_t> mismatches{0};
        std::atomic<long> first_bad{-1};
        std::vector<std::thread> workers;
        for (size_t t = 0; t < threads; ++t) {
          workers.emplace_back([&, t] {
            // Contiguous slice per thread: each thread issues its own batch
            // call over its own thread_local scratch.
            size_t lo = corpus.size() * t / threads;
            size_t hi = corpus.size() * (t + 1) / threads;
            if (lo == hi) return;
            kKernels[k].batch(av.data() + lo, bv.data() + lo, hi - lo,
                              out.data() + lo);
            for (size_t i = lo; i < hi; ++i) {
              if (!BitEq(out[i], expected[k][i])) {
                ++mismatches;
                long want = -1;
                first_bad.compare_exchange_strong(want,
                                                  static_cast<long>(i));
              }
            }
          });
        }
        for (auto& w : workers) w.join();
        EXPECT_EQ(mismatches.load(), 0u)
            << kKernels[k].name << " diverges from oracle at simd level "
            << static_cast<int>(level) << ", " << threads
            << " threads; first bad pair " << first_bad.load() << " a=\""
            << (first_bad >= 0 ? corpus[first_bad].a.substr(0, 40) : "")
            << "\" b=\""
            << (first_bad >= 0 ? corpus[first_bad].b.substr(0, 40) : "")
            << "\"";
      }
    }
  }
}

TEST(BatchKernelTest, ForcedScalarNeverExceedsDetectedLevel) {
  {
    SimdLevelGuard guard(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  {
    SimdLevelGuard guard(SimdLevel::kAvx2);
    EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
              static_cast<int>(DetectedSimdLevel()));
  }
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectedSimdLevel()));
}

// ---------- flattened forest ----------

std::vector<std::vector<double>> ForestProbe(size_t n, uint64_t seed) {
  std::mt19937 rng(static_cast<uint32_t>(seed));
  std::uniform_real_distribution<double> v(-4.0, 4.0);
  std::uniform_int_distribution<int> poison(0, 9);
  std::vector<std::vector<double>> rows;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row = {v(rng), v(rng), v(rng)};
    // NaN lanes: the flat walk must route NaN to the right child exactly
    // like the pointer walk's `(v <= thr) ? left : right`.
    if (poison(rng) == 0) row[static_cast<size_t>(poison(rng)) % 3] = nan;
    rows.push_back(std::move(row));
  }
  return rows;
}

Dataset ForestTrainSet(size_t n_pos, size_t n_neg, uint64_t seed) {
  RandomEngine rng(seed);
  Dataset d;
  d.feature_names = {"x", "y", "z"};
  for (size_t i = 0; i < n_pos + n_neg; ++i) {
    bool pos = i < n_pos;
    double center = pos ? 2.0 : -2.0;
    d.x.push_back({center + 0.5 * rng.NextGaussian(),
                   center + 0.5 * rng.NextGaussian(),
                   0.1 * rng.NextGaussian()});
    d.y.push_back(pos ? 1 : 0);
  }
  return d;
}

TEST(FlatForestTest, BitExactVsTreeWalkIncludingNaNRouting) {
  RandomForestOptions opts;
  opts.num_trees = 16;
  opts.seed = 99;
  RandomForestMatcher forest(opts);
  ASSERT_TRUE(forest.Fit(ForestTrainSet(80, 80, 7)).ok());
  EXPECT_FALSE(forest.flat_forest().empty());
  EXPECT_EQ(forest.flat_forest().num_trees(), 16u);

  const std::vector<std::vector<double>> probe = ForestProbe(500, 31);
  const std::vector<double> walk = forest.PredictProbaTreeWalk(probe);
  const std::vector<double> flat = forest.PredictProba(probe);
  ASSERT_EQ(walk.size(), flat.size());
  for (size_t i = 0; i < walk.size(); ++i) {
    EXPECT_TRUE(BitEq(walk[i], flat[i]))
        << "row " << i << ": walk=" << walk[i] << " flat=" << flat[i];
  }

  // The columnar entry point reads strided columns — same doubles.
  const std::vector<double> batch =
      forest.PredictProbaBatch(PairBatch::FromRows(probe));
  for (size_t i = 0; i < walk.size(); ++i) {
    EXPECT_TRUE(BitEq(walk[i], batch[i])) << "row " << i;
  }
}

TEST(FlatForestTest, RebuiltAfterDeserialize) {
  RandomForestOptions opts;
  opts.num_trees = 8;
  opts.seed = 5;
  RandomForestMatcher forest(opts);
  ASSERT_TRUE(forest.Fit(ForestTrainSet(40, 40, 3)).ok());
  auto restored = RandomForestMatcher::Deserialize(forest.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->flat_forest().empty());
  const std::vector<std::vector<double>> probe = ForestProbe(200, 77);
  const std::vector<double> before = forest.PredictProba(probe);
  const std::vector<double> after = restored->PredictProba(probe);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(BitEq(before[i], after[i])) << "row " << i;
  }
}

// ---------- batched vectorizer + imputer ----------

Table BatchLeft() {
  return *ReadCsvString(
      "RecordId,Title,Code,Amount\n"
      "0,Applied CORN Ecology,WIS01,100\n"
      "1,swamp dodder study,WIS02,250\n"
      "2,,WIS03,\n"
      "3,maize genetics of inbred lines,WIS04,75\n");
}

Table BatchRight() {
  return *ReadCsvString(
      "RecordId,Title,Code,Amount\n"
      "0,applied corn ecology,WIS01,100\n"
      "1,swamp doder study,WIS09,\n"
      "2,unrelated title entirely,WIS03,80\n"
      "3,,WIS04,75\n");
}

TEST(VectorizerBatchTest, BatchEqualsLegacyPathBitForBit) {
  Table l = BatchLeft(), r = BatchRight();
  auto set = GenerateFeatures(
      l, r, {.exclude = {"RecordId"}, .lowercase_variants = {"Title"}});
  ASSERT_TRUE(set.ok());
  std::vector<RecordPair> all;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) all.push_back({i, j});
  }
  CandidateSet pairs(std::move(all));

  PrepCache cache;
  auto batch = VectorizePairsBatch(l, r, pairs, *set, {}, &cache);
  ASSERT_TRUE(batch.ok());
  auto legacy = VectorizePairsUnprepared(l, r, pairs, *set);
  ASSERT_TRUE(legacy.ok());

  ASSERT_EQ(batch->num_pairs(), legacy->num_rows());
  ASSERT_EQ(batch->num_features(), legacy->num_features());
  EXPECT_EQ(batch->feature_names, legacy->feature_names);
  for (size_t i = 0; i < batch->num_pairs(); ++i) {
    for (size_t f = 0; f < batch->num_features(); ++f) {
      EXPECT_TRUE(BitEq(batch->At(i, f), legacy->rows[i][f]))
          << "pair " << i << " feature " << legacy->feature_names[f];
    }
  }

  // And the row-major wrapper is exactly the transpose.
  auto matrix = VectorizePairs(l, r, pairs, *set, {}, &cache);
  ASSERT_TRUE(matrix.ok());
  FeatureMatrix transposed = batch->ToMatrix();
  for (size_t i = 0; i < matrix->num_rows(); ++i) {
    for (size_t f = 0; f < matrix->num_features(); ++f) {
      EXPECT_TRUE(BitEq(matrix->rows[i][f], transposed.rows[i][f]))
          << "pair " << i << " feature " << f;
    }
  }
}

TEST(ImputerBatchTest, FitAndTransformMatchMatrixOverloads) {
  FeatureMatrix m;
  m.feature_names = {"f0", "f1", "f2"};
  double nan = std::numeric_limits<double>::quiet_NaN();
  m.rows = {{1.0, nan, nan}, {3.0, 4.0, nan}, {nan, 8.0, nan}, {0.5, 0.25, nan}};

  MeanImputer from_matrix, from_batch;
  from_matrix.Fit(m);
  from_batch.Fit(PairBatch::FromMatrix(m));
  ASSERT_EQ(from_matrix.means().size(), from_batch.means().size());
  for (size_t f = 0; f < from_matrix.means().size(); ++f) {
    EXPECT_TRUE(BitEq(from_matrix.means()[f], from_batch.means()[f])) << f;
  }

  FeatureMatrix mm = m;
  PairBatch batch = PairBatch::FromMatrix(m);
  ASSERT_TRUE(from_matrix.Transform(mm).ok());
  ASSERT_TRUE(from_matrix.Transform(batch).ok());
  for (size_t i = 0; i < mm.rows.size(); ++i) {
    for (size_t f = 0; f < mm.feature_names.size(); ++f) {
      EXPECT_TRUE(BitEq(mm.rows[i][f], batch.At(i, f))) << i << "," << f;
    }
  }

  PairBatch wrong(2, 2);
  EXPECT_EQ(from_matrix.Transform(wrong).code(), StatusCode::kInvalidArgument);
}

// ---------- rule-matcher batch overloads ----------

TEST(FeatureRulesBatchTest, PredictAndFiringRuleMatchMatrixOverloads) {
  FeatureRuleMatcher rules;
  ASSERT_TRUE(rules.AddRule("strong", "sim > 0.9 AND diff <= 1").ok());
  ASSERT_TRUE(rules.AddRule("loose", "sim >= 0.4").ok());

  FeatureMatrix m;
  m.feature_names = {"diff", "sim"};
  double nan = std::numeric_limits<double>::quiet_NaN();
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> sim(0.0, 1.0);
  std::uniform_int_distribution<int> diff(0, 3);
  for (int i = 0; i < 500; ++i) {
    double s = i % 11 == 0 ? nan : sim(rng);
    m.rows.push_back({static_cast<double>(diff(rng)), s});
  }

  auto firing_m = rules.FiringRule(m);
  auto firing_b = rules.FiringRule(PairBatch::FromMatrix(m));
  ASSERT_TRUE(firing_m.ok());
  ASSERT_TRUE(firing_b.ok());
  EXPECT_EQ(*firing_m, *firing_b);

  auto pred_m = rules.Predict(m);
  auto pred_b = rules.Predict(PairBatch::FromMatrix(m));
  ASSERT_TRUE(pred_m.ok());
  ASSERT_TRUE(pred_b.ok());
  EXPECT_EQ(*pred_m, *pred_b);
}

TEST(FeatureRulesBatchTest, UnknownFeatureIsNotFound) {
  FeatureRuleMatcher rules;
  ASSERT_TRUE(rules.AddRule("r", "ghost > 0.5").ok());
  PairBatch batch(1, 1);
  batch.feature_names = {"real"};
  EXPECT_EQ(rules.Predict(batch).status().code(), StatusCode::kNotFound);
}

// ---------- Monge-Elkan memo flush ----------

TEST(MongeElkanMemoTest, ClearFlushesStaleEntries) {
  static_assert(kMongeElkanMemoMaxEntries > 0);
  const uint64_t uid = 0xE1DB7u;
  const std::string a1[] = {"martha"};
  const std::string b1[] = {"marhta"};
  const uint32_t aid[] = {0};
  const uint32_t bid[] = {1};
  const double v1 = MongeElkanSimilarityMemo(a1, aid, 1, b1, bid, 1, uid);
  EXPECT_EQ(v1, MongeElkanSimilarity(a1, 1, b1, 1));

  // Same ids + same uid but different strings: the memo (by design) serves
  // the stale score — ids are the key, strings only feed misses.
  const std::string a2[] = {"zzzz"};
  const std::string b2[] = {"qqqq"};
  EXPECT_EQ(MongeElkanSimilarityMemo(a2, aid, 1, b2, bid, 1, uid), v1);

  // After the flush the very same call recomputes from the strings.
  ClearMongeElkanMemo();
  const double fresh = MongeElkanSimilarityMemo(a2, aid, 1, b2, bid, 1, uid);
  EXPECT_EQ(fresh, MongeElkanSimilarity(a2, 1, b2, 1));
  EXPECT_NE(fresh, v1);
}

TEST(MongeElkanMemoTest, PrepCacheClearFlushesTheMemo) {
  const uint64_t uid = 0xCAC4Eu;
  const std::string a1[] = {"hello"};
  const std::string b1[] = {"hallo"};
  const uint32_t aid[] = {3};
  const uint32_t bid[] = {4};
  const double v1 = MongeElkanSimilarityMemo(a1, aid, 1, b1, bid, 1, uid);

  PrepCache cache;
  cache.Clear();  // must invalidate every thread's memo

  const std::string a2[] = {"aaaa"};
  const std::string b2[] = {"bbbb"};
  const double fresh = MongeElkanSimilarityMemo(a2, aid, 1, b2, bid, 1, uid);
  EXPECT_EQ(fresh, MongeElkanSimilarity(a2, 1, b2, 1));
  EXPECT_NE(fresh, v1);
}

}  // namespace
}  // namespace emx
