#include <gtest/gtest.h>

#include "src/eval/accuracy_monitor.h"

namespace emx {
namespace {

CandidateSet MakeBatch(uint32_t n, uint32_t offset = 0) {
  std::vector<RecordPair> pairs;
  for (uint32_t i = 0; i < n; ++i) pairs.push_back({offset + i, i});
  return CandidateSet(std::move(pairs));
}

// A labeler that calls a fixed fraction of pairs false positives (left
// index below the cutoff -> true match).
AccuracyMonitor::Labeler FractionLabeler(uint32_t true_below) {
  return [true_below](const RecordPair& p) {
    return p.left < true_below ? Label::kYes : Label::kNo;
  };
}

TEST(AccuracyMonitorTest, HighPrecisionBatchPassesQuietly) {
  AccuracyMonitor monitor({.sample_size = 50, .precision_alert = 0.9},
                          FractionLabeler(100));
  auto report = monitor.Observe(MakeBatch(100));  // all true
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->precision.point, 1.0);
  EXPECT_FALSE(report->alert);
  EXPECT_FALSE(monitor.alert_active());
  EXPECT_EQ(report->labeled, 50u);
}

TEST(AccuracyMonitorTest, DriftRaisesAlert) {
  AccuracyMonitor monitor({.sample_size = 60, .precision_alert = 0.9},
                          FractionLabeler(50));
  // Batch 1: pairs 0..99 -> about half are false positives.
  auto report = monitor.Observe(MakeBatch(100));
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->precision.point, 0.9);
  EXPECT_TRUE(report->alert);
  EXPECT_TRUE(monitor.alert_active());
}

TEST(AccuracyMonitorTest, HistoryAccumulatesAcrossBatches) {
  AccuracyMonitor monitor({.sample_size = 20, .precision_alert = 0.5},
                          FractionLabeler(1000));
  ASSERT_TRUE(monitor.Observe(MakeBatch(40)).ok());
  ASSERT_TRUE(monitor.Observe(MakeBatch(40, 100)).ok());
  ASSERT_EQ(monitor.history().size(), 2u);
  EXPECT_EQ(monitor.history()[0].batch, 0u);
  EXPECT_EQ(monitor.history()[1].batch, 1u);
  std::string log = monitor.HistoryToString();
  EXPECT_NE(log.find("batch 0"), std::string::npos);
  EXPECT_NE(log.find("batch 1"), std::string::npos);
  EXPECT_NE(log.find("[ok]"), std::string::npos);
}

TEST(AccuracyMonitorTest, UnsureLabelsAreDiscarded) {
  AccuracyMonitor monitor(
      {.sample_size = 30, .precision_alert = 0.5},
      [](const RecordPair& p) {
        return p.left % 3 == 0 ? Label::kUnsure : Label::kYes;
      });
  auto report = monitor.Observe(MakeBatch(30));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->unsure, 10u);
  EXPECT_EQ(report->labeled, 20u);
  EXPECT_DOUBLE_EQ(report->precision.point, 1.0);
}

TEST(AccuracyMonitorTest, EmptyBatchRejected) {
  AccuracyMonitor monitor({}, FractionLabeler(1));
  EXPECT_EQ(monitor.Observe(CandidateSet()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AccuracyMonitorTest, MissingLabelerRejected) {
  AccuracyMonitor monitor({}, nullptr);
  EXPECT_EQ(monitor.Observe(MakeBatch(5)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AccuracyMonitorTest, SampleSmallerThanBatchSamplesWithoutReplacement) {
  AccuracyMonitor monitor({.sample_size = 200, .precision_alert = 0.5},
                          FractionLabeler(1000));
  auto report = monitor.Observe(MakeBatch(80));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->labeled, 80u);  // capped at batch size
}

}  // namespace
}  // namespace emx
