#include "src/workflow/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/block/candidate_set.h"
#include "src/block/overlap_blocker.h"
#include "src/core/executor.h"
#include "src/core/failpoint.h"
#include "src/ml/decision_tree.h"
#include "src/rules/match_rules.h"
#include "src/rules/number_pattern.h"
#include "src/table/csv.h"
#include "src/workflow/em_workflow.h"
#include "src/workflow/pipeline_runner.h"

namespace emx {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/emx_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

void WriteRaw(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << content;
}

std::string ReadRaw(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

// Locates the single artifact file for `stage` inside a store directory.
std::string ArtifactFileFor(const std::string& dir, const std::string& stage) {
  for (const auto& e : fs::directory_iterator(dir)) {
    std::string name = e.path().filename().string();
    if (name.rfind(stage + "-", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".art") {
      return e.path().string();
    }
  }
  return "";
}

// --- hashing ---------------------------------------------------------------------

TEST(HashTest, Fnv1a64KnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(HashHex(0), "0000000000000000");
  EXPECT_EQ(HashHex(0xdeadbeefull), "00000000deadbeef");
}

// --- CandidateSet serialization --------------------------------------------------

TEST(CandidateSerializationTest, RoundTrips) {
  CandidateSet original(std::vector<RecordPair>{{0, 0}, {3, 1}, {2, 7}});
  std::string text = SerializeCandidateSet(original);
  auto back = DeserializeCandidateSet(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(SerializeCandidateSet(*back), text);
  EXPECT_EQ(back->size(), 3u);
  EXPECT_TRUE(back->Contains({3, 1}));
}

TEST(CandidateSerializationTest, RoundTripsEmpty) {
  auto back = DeserializeCandidateSet(SerializeCandidateSet(CandidateSet()));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(CandidateSerializationTest, RejectsMalformedInput) {
  EXPECT_EQ(DeserializeCandidateSet("").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(DeserializeCandidateSet("not-the-header\n0\n").status().code(),
            StatusCode::kParseError);
  // Count promises two pairs, body has one: truncated artifact.
  std::string truncated = "emx-candidates v1\n2\n0 0\n";
  auto r = DeserializeCandidateSet(truncated);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
  // Garbage pair line.
  EXPECT_FALSE(
      DeserializeCandidateSet("emx-candidates v1\n1\nx y\n").ok());
  EXPECT_FALSE(
      DeserializeCandidateSet("emx-candidates v1\n1\n1 -2\n").ok());
}

// --- CheckpointStore -------------------------------------------------------------

TEST(CheckpointStoreTest, PutGetRoundTrip) {
  std::string dir = FreshDir("roundtrip");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store->Put("candidates", "fp1", "payload bytes").ok());
  EXPECT_TRUE(store->Has("candidates"));
  auto got = store->Get("candidates", "fp1");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "payload bytes");
}

TEST(CheckpointStoreTest, GetMissesAreNotFound) {
  std::string dir = FreshDir("misses");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->Get("nope", "fp").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store->Put("stage", "fp1", "v1").ok());
  // Stale fingerprint — present but computed from different inputs.
  EXPECT_EQ(store->Get("stage", "other-fp").status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, PersistsAcrossReopen) {
  std::string dir = FreshDir("reopen");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put("stage", "fp1", "persisted").ok());
  }
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 1u);
  auto got = store->Get("stage", "fp1");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "persisted");
}

TEST(CheckpointStoreTest, PutOverwritesPreviousVersion) {
  std::string dir = FreshDir("overwrite");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("stage", "fp1", "old").ok());
  ASSERT_TRUE(store->Put("stage", "fp2", "new").ok());
  EXPECT_EQ(store->Get("stage", "fp1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*store->Get("stage", "fp2"), "new");
}

TEST(CheckpointStoreTest, WritesLeaveNoTempFiles) {
  std::string dir = FreshDir("atomic");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("a", "fp", "one").ok());
  ASSERT_TRUE(store->Put("b", "fp", "two").ok());
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().extension(), e.path().filename() == "MANIFEST"
                                        ? ""
                                        : ".art")
        << "unexpected file " << e.path();
  }
}

TEST(CheckpointStoreTest, TruncatedArtifactIsCorruption) {
  std::string dir = FreshDir("truncated");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("stage", "fp", "a longer artifact payload").ok());
  std::string artifact = ArtifactFileFor(dir, "stage");
  ASSERT_FALSE(artifact.empty());
  WriteRaw(artifact, "a longer art");  // truncate
  auto got = store->Get("stage", "fp");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(got.status().message().find("bytes"), std::string::npos);
}

TEST(CheckpointStoreTest, FlippedByteFailsChecksum) {
  std::string dir = FreshDir("bitflip");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("stage", "fp", "pristine artifact bytes").ok());
  std::string artifact = ArtifactFileFor(dir, "stage");
  ASSERT_FALSE(artifact.empty());
  std::string bytes = ReadRaw(artifact);
  bytes[3] ^= 0x40;  // same length, different content
  WriteRaw(artifact, bytes);
  auto got = store->Get("stage", "fp");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(got.status().message().find("checksum"), std::string::npos);
}

TEST(CheckpointStoreTest, DeletedArtifactIsAnIoErrorNotACrash) {
  std::string dir = FreshDir("deleted");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("stage", "fp", "bytes").ok());
  fs::remove(ArtifactFileFor(dir, "stage"));
  auto got = store->Get("stage", "fp");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().code() == StatusCode::kIoError ||
              got.status().code() == StatusCode::kNotFound)
      << got.status().ToString();
}

TEST(CheckpointStoreTest, CorruptManifestYieldsEmptyStore) {
  std::string dir = FreshDir("badmanifest");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put("stage", "fp", "bytes").ok());
  }
  WriteRaw(dir + "/MANIFEST", "this is not a manifest\ngarbage\n");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->size(), 0u);
}

TEST(CheckpointStoreTest, WriteFailpointFailsThePut) {
  std::string dir = FreshDir("wfp");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("checkpoint/write:error(IoError),count=1")
                  .ok());
  Status s = store->Put("stage", "fp", "bytes");
  FailPointRegistry::Global().DisarmAll();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_FALSE(store->Has("stage"));
}

// --- PipelineRunner: checkpoint/resume end to end --------------------------------

Table PipeLeft() {
  return *ReadCsvString(
      "AwardNumber,Title\n"
      "10.1 F-100,alpha beta gamma delta\n"
      "10.2 MSN000111,epsilon zeta eta theta\n"
      "10.3 WIS00002,iota kappa lambda mu\n"
      "10.4 MSN000009,loner title entirely\n");
}

Table PipeRight() {
  return *ReadCsvString(
      "AwardNumber,ProjectNumber,Title\n"
      "F-100,WIS99999,alpha beta gamma delta\n"
      ",WIS77777,epsilon zeta eta theta\n"
      ",WIS66666,unrelated words here now\n"
      ",WIS00005,iota kappa lambda mu\n");
}

// Full Figure-10 topology: positive rule, blocker, matcher, negative rule —
// so every checkpointed stage produces non-trivial output.
EmWorkflow BuildPipelineWorkflow() {
  EmWorkflow wf;
  wf.AddPositiveRule(MakeM1AwardNumberRule("AwardNumber", "AwardNumber"));
  OverlapBlockerOptions opts;
  opts.left_attr = "Title";
  opts.right_attr = "Title";
  wf.AddBlocker(std::make_shared<OverlapBlocker>(opts, 3));
  auto suffix = [](const std::string& s) { return AwardNumberSuffix(s); };
  wf.AddNegativeRule(MakeComparableMismatchRule(
      "neg", "AwardNumber", "ProjectNumber", suffix, nullptr));

  FeatureSet features;
  features.features.push_back(MakeJaccardFeature("Title", "Title"));
  Dataset d;
  d.feature_names = features.names();
  d.x = {{1.0}, {0.9}, {0.05}, {0.0}};
  d.y = {1, 1, 0, 0};
  FeatureMatrix m;
  m.feature_names = d.feature_names;
  m.rows = d.x;
  MeanImputer imputer;
  imputer.Fit(m);
  auto tree = std::make_shared<DecisionTreeMatcher>();
  EXPECT_TRUE(tree->Fit(d).ok());
  wf.SetMatcher(std::move(tree), std::move(features), std::move(imputer));
  return wf;
}

// Bit-exact comparison key for a whole run: every stage's serialized pairs
// plus the provenance tag of every final match.
std::string RunDigest(const WorkflowRunResult& r) {
  std::string out;
  out += SerializeCandidateSet(r.sure_matches);
  out += SerializeCandidateSet(r.candidates);
  out += SerializeCandidateSet(r.ml_input);
  out += SerializeCandidateSet(r.ml_predicted);
  out += SerializeCandidateSet(r.flipped);
  out += SerializeCandidateSet(r.after_rules);
  out += SerializeCandidateSet(r.final_matches);
  for (const RecordPair& p : r.final_matches) {
    out += r.provenance.ProvenanceOf(p) + "\n";
  }
  return out;
}

class PipelineResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

TEST_F(PipelineResumeTest, MatchesDirectRunWithAndWithoutCheckpoints) {
  Table l = PipeLeft(), r = PipeRight();
  EmWorkflow wf = BuildPipelineWorkflow();
  auto direct = wf.Run(l, r);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_FALSE(direct->final_matches.empty());

  // No checkpoint dir: pure pass-through.
  auto plain = PipelineRunner(&wf).Run(l, r);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(RunDigest(*plain), RunDigest(*direct));

  // Checkpointing cold, then resuming warm — all three identical.
  PipelineOptions opts;
  opts.checkpoint_dir = FreshDir("passthrough");
  auto cold = PipelineRunner(&wf, opts).Run(l, r);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(RunDigest(*cold), RunDigest(*direct));
  opts.resume = true;
  auto warm = PipelineRunner(&wf, opts).Run(l, r);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(RunDigest(*warm), RunDigest(*direct));
}

// The tentpole guarantee: kill the pipeline at EVERY stage boundary, at one
// and at eight threads, resume, and demand bit-identical output.
TEST_F(PipelineResumeTest, KillAtAnyStageThenResumeIsBitIdentical) {
  Table l = PipeLeft(), r = PipeRight();
  const char* kStagePoints[] = {
      "workflow/positive_rules",
      "workflow/block",
      "workflow/match",
      "workflow/negative_rules",
  };
  for (size_t threads : {size_t(1), size_t(8)}) {
    Executor pool(threads);
    ExecutorContext ctx;
    ctx.executor = &pool;
    EmWorkflow wf = BuildPipelineWorkflow();
    wf.SetExecutor(ctx);
    auto baseline = wf.Run(l, r);
    ASSERT_TRUE(baseline.ok());
    const std::string want = RunDigest(*baseline);

    for (const char* point : kStagePoints) {
      SCOPED_TRACE(std::string(point) + " @" + std::to_string(threads) +
                   " threads");
      PipelineOptions opts;
      opts.checkpoint_dir =
          FreshDir(std::string("kill_") + std::to_string(threads) + "_" +
                   std::string(point).substr(9));
      // First run dies at the armed stage...
      ASSERT_TRUE(FailPointRegistry::Global()
                      .ArmFromSpec(std::string(point) +
                                   ":error(IoError),count=1")
                      .ok());
      auto killed = PipelineRunner(&wf, opts).Run(l, r);
      FailPointRegistry::Global().DisarmAll();
      ASSERT_FALSE(killed.ok());
      EXPECT_EQ(killed.status().code(), StatusCode::kIoError);
      // ...the rerun resumes the completed prefix and finishes identically.
      opts.resume = true;
      auto resumed = PipelineRunner(&wf, opts).Run(l, r);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      EXPECT_EQ(RunDigest(*resumed), want);
    }
  }
}

// An injected executor-dispatch fault surfaces as a contained Internal
// error, and the rerun recovers.
TEST_F(PipelineResumeTest, ExecutorDispatchFaultIsContainedAndResumable) {
  Table l = PipeLeft(), r = PipeRight();
  Executor pool(8);
  ExecutorContext ctx;
  ctx.executor = &pool;
  EmWorkflow wf = BuildPipelineWorkflow();
  wf.SetExecutor(ctx);
  auto baseline = wf.Run(l, r);
  ASSERT_TRUE(baseline.ok());

  PipelineOptions opts;
  opts.checkpoint_dir = FreshDir("dispatch");
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("executor/dispatch:error(IoError),count=1")
                  .ok());
  auto killed = PipelineRunner(&wf, opts).Run(l, r);
  FailPointRegistry::Global().DisarmAll();
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kInternal);
  EXPECT_NE(killed.status().message().find("threw"), std::string::npos);

  opts.resume = true;
  auto resumed = PipelineRunner(&wf, opts).Run(l, r);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(RunDigest(*resumed), RunDigest(*baseline));
}

// Corrupting checkpoint artifacts must never break a resume — each defect
// degrades to recomputation with identical output.
TEST_F(PipelineResumeTest, CorruptArtifactsDegradeToRecomputation) {
  Table l = PipeLeft(), r = PipeRight();
  EmWorkflow wf = BuildPipelineWorkflow();
  auto baseline = wf.Run(l, r);
  ASSERT_TRUE(baseline.ok());
  const std::string want = RunDigest(*baseline);

  PipelineOptions opts;
  opts.checkpoint_dir = FreshDir("corrupt");
  ASSERT_TRUE(PipelineRunner(&wf, opts).Run(l, r).ok());
  opts.resume = true;

  // Truncate one artifact.
  std::string candidates = ArtifactFileFor(opts.checkpoint_dir, "candidates");
  ASSERT_FALSE(candidates.empty());
  std::string pristine = ReadRaw(candidates);
  WriteRaw(candidates, pristine.substr(0, pristine.size() / 2));
  auto after_truncation = PipelineRunner(&wf, opts).Run(l, r);
  ASSERT_TRUE(after_truncation.ok()) << after_truncation.status().ToString();
  EXPECT_EQ(RunDigest(*after_truncation), want);

  // Flip a byte in another (same length, wrong checksum). The resumed run
  // above rewrote the candidates artifact, so only corrupt ml_predicted.
  std::string predicted =
      ArtifactFileFor(opts.checkpoint_dir, "ml_predicted");
  ASSERT_FALSE(predicted.empty());
  std::string bytes = ReadRaw(predicted);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  WriteRaw(predicted, bytes);
  auto after_bitflip = PipelineRunner(&wf, opts).Run(l, r);
  ASSERT_TRUE(after_bitflip.ok()) << after_bitflip.status().ToString();
  EXPECT_EQ(RunDigest(*after_bitflip), want);
}

// Changing an input table changes every fingerprint: stale checkpoints are
// ignored wholesale and the run reflects the new data.
TEST_F(PipelineResumeTest, StaleFingerprintsForceRecomputation) {
  Table l = PipeLeft(), r = PipeRight();
  EmWorkflow wf = BuildPipelineWorkflow();
  PipelineOptions opts;
  opts.checkpoint_dir = FreshDir("stale");
  ASSERT_TRUE(PipelineRunner(&wf, opts).Run(l, r).ok());

  // New right-hand table: one extra row that ML should match to left row 3.
  Table r2 = *ReadCsvString(
      "AwardNumber,ProjectNumber,Title\n"
      "F-100,WIS99999,alpha beta gamma delta\n"
      ",WIS77777,epsilon zeta eta theta\n"
      ",WIS66666,unrelated words here now\n"
      ",WIS00005,iota kappa lambda mu\n"
      ",WIS00009,loner title entirely\n");
  auto fresh = wf.Run(l, r2);
  ASSERT_TRUE(fresh.ok());
  opts.resume = true;
  auto resumed = PipelineRunner(&wf, opts).Run(l, r2);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(RunDigest(*resumed), RunDigest(*fresh));
  EXPECT_TRUE(resumed->final_matches.Contains({3, 4}));
}

}  // namespace
}  // namespace emx
