// Blocking-debugger demo (the MatchCatcher-style §7 step 4 tool).
//
// A deliberately over-aggressive blocker (overlap K=7) kills several true
// matches; the debugger scans the excluded pairs and surfaces them in its
// top-ranked findings, telling the user the blocking pipeline needs to be
// loosened. The standard pipeline (K=3 + coefficient blocker) then shows a
// clean debugger report.
//
// Run:  ./build/examples/blocking_debugger

#include <cstdio>

#include "src/block/blocking_debugger.h"
#include "src/datagen/case_study.h"

using namespace emx;

namespace {

size_t CountGoldInTop(const std::vector<DebuggerFinding>& findings,
                      const CandidateSet& gold) {
  size_t n = 0;
  for (const DebuggerFinding& f : findings) {
    if (gold.Contains(f.pair)) ++n;
  }
  return n;
}

}  // namespace

int main() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;

  BlockingDebuggerOptions dbg;
  dbg.attrs = {{"AwardTitle", "AwardTitle"}};
  dbg.top_k = 50;

  // Round 1: too-aggressive blocking.
  auto tight = MakeTitleOverlapBlocker(7)->Block(u, s);
  if (!tight.ok()) return 1;
  auto findings = DebugBlocking(u, s, *tight, dbg);
  if (!findings.ok()) return 1;
  std::printf("overlap K=7 kept %zu pairs; debugger top-%zu contains %zu "
              "true matches -> blocking too aggressive\n",
              tight->size(), dbg.top_k,
              CountGoldInTop(*findings, data->gold));
  std::printf("sample finding (score %.2f):\n  U: %s\n  S: %s\n\n",
              (*findings)[0].score,
              u.at((*findings)[0].pair.left, "AwardTitle").AsString().c_str(),
              s.at((*findings)[0].pair.right, "AwardTitle").AsString().c_str());

  // Round 2: the standard pipeline.
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  auto findings2 = DebugBlocking(u, s, blocks->c, dbg);
  if (!findings2.ok()) return 1;
  std::printf("standard pipeline kept %zu pairs; debugger top-%zu contains "
              "%zu true matches -> blocking accepted\n",
              blocks->c.size(), dbg.top_k,
              CountGoldInTop(*findings2, data->gold));
  return 0;
}
