// Production accuracy monitoring (§12 "The Next Steps", footnote 11).
//
// After the workflow ships, new data slices keep arriving; this example
// simulates the production loop the paper sketches: run the packaged
// workflow on each incoming slice, sample its predicted matches, label the
// sample (here: the domain-expert oracle), and track estimated precision.
// A mid-stream data-quality regression (a batch whose award numbers were
// corrupted upstream) trips the monitor's alert — the signal to "move back
// to the development stage and update the EM workflow".
//
// Run:  ./build/examples/accuracy_monitoring

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/eval/accuracy_monitor.h"

using namespace emx;

int main() {
  // Build and "package" the workflow once (development stage).
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) return 1;
  EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                         /*with_negative_rules=*/true);

  // Production: the monitor labels samples through the domain experts.
  AccuracyMonitor monitor({.sample_size = 60, .precision_alert = 0.9},
                          [&](const RecordPair& p) {
                            return oracle.CorrectedLabel(p);
                          });

  // Slice 1-2: healthy data (different seeds simulate different slices).
  for (uint64_t seed : {3001ULL, 3002ULL}) {
    UniverseOptions opts;
    opts.seed = seed;
    auto slice = GenerateCaseStudy(opts);
    if (!slice.ok()) return 1;
    auto slice_tables = PreprocessCaseStudy(*slice);
    if (!slice_tables.ok()) return 1;
    auto run = wf.Run(slice_tables->umetrics, slice_tables->usda);
    if (!run.ok()) return 1;
    OracleLabeler slice_oracle = MakeOracle(slice->gold, slice->ambiguous);
    AccuracyMonitor::Labeler labeler = [&](const RecordPair& p) {
      return slice_oracle.CorrectedLabel(p);
    };
    AccuracyMonitor slice_monitor({.sample_size = 60, .precision_alert = 0.9},
                                  labeler);
    auto report = slice_monitor.Observe(run->final_matches);
    if (!report.ok()) return 1;
    std::printf("slice %llu: %zu matches, precision %.3f %s %s\n",
                static_cast<unsigned long long>(seed),
                run->final_matches.size(), report->precision.point,
                report->precision.ToString().c_str(),
                report->alert ? "[ALERT]" : "[ok]");
  }

  // Slice 3: degraded data — upstream corrupted the award numbers, so the
  // sure-match rules misfire and ML carries everything. Simulate by
  // disabling the data's number evidence: a universe where the M1/M4
  // groups are empty (all matching must ride on titles).
  UniverseOptions degraded;
  degraded.seed = 3003;
  degraded.m1_group = 0;
  degraded.m4_group = 0;
  degraded.title_group = 650;
  degraded.typo_group = 30;
  degraded.sibling_rows = 450;  // and the sibling load grew
  auto bad = GenerateCaseStudy(degraded);
  if (!bad.ok()) return 1;
  auto bad_tables = PreprocessCaseStudy(*bad);
  if (!bad_tables.ok()) return 1;
  auto run = wf.Run(bad_tables->umetrics, bad_tables->usda);
  if (!run.ok()) return 1;
  OracleLabeler bad_oracle = MakeOracle(bad->gold, bad->ambiguous);
  AccuracyMonitor bad_monitor({.sample_size = 60, .precision_alert = 0.9},
                              [&](const RecordPair& p) {
                                return bad_oracle.CorrectedLabel(p);
                              });
  auto report = bad_monitor.Observe(run->final_matches);
  if (!report.ok()) return 1;
  std::printf("slice 3003 (degraded): %zu matches, precision %.3f %s %s\n",
              run->final_matches.size(), report->precision.point,
              report->precision.ToString().c_str(),
              report->alert ? "[ALERT -> back to development]" : "[ok]");
  return 0;
}
