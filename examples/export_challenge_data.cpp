// Exports the synthetic UMETRICS/USDA challenge dataset as CSV files —
// the analogue of the paper's final contribution ("we provide all data
// underlying this case study ... to serve as a good challenge problem for
// EM researchers"). Unlike the real release, this one ships ground truth.
//
// Run:  ./build/examples/export_challenge_data [output_dir]
//
// Writes: the seven raw tables of Figure 2, the extra-records batch, the
// two projected tables, and gold/ambiguous pair lists (as RecordId pairs).

#include <cstdio>
#include <filesystem>

#include "src/datagen/preprocess.h"
#include "src/datagen/universe.h"
#include "src/table/csv.h"

using namespace emx;

namespace {

Status WritePairs(const CandidateSet& pairs, const std::string& path) {
  Table t(Schema({{"umetrics_record_id", DataType::kInt64},
                  {"usda_record_id", DataType::kInt64}}));
  for (const RecordPair& p : pairs) {
    EMX_RETURN_IF_ERROR(t.AppendRow({Value(static_cast<int64_t>(p.left)),
                                     Value(static_cast<int64_t>(p.right))}));
  }
  return WriteCsvFile(t, path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "umetrics_challenge";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;

  struct Item {
    const Table* table;
    const char* file;
  };
  const Item items[] = {
      {&data->umetrics_award_agg, "UMETRICSAwardAggMatching.csv"},
      {&data->umetrics_employees, "UMETRICSEmployeesMatching.csv"},
      {&data->umetrics_object_codes, "UMETRICSObjectCodesMatching.csv"},
      {&data->umetrics_org_units, "UMETRICSOrgUnitMatching.csv"},
      {&data->umetrics_subaward, "UMETRICSSubAwardMatching.csv"},
      {&data->umetrics_vendor, "UMETRICSVendorMatching.csv"},
      {&data->usda, "USDAAwardMatching.csv"},
      {&data->extra_umetrics_agg, "UMETRICSAwardAggMatching_extra.csv"},
      {&tables->umetrics, "UMETRICSProjected.csv"},
      {&tables->usda, "USDAProjected.csv"},
      {&tables->extra, "ExtraProjected.csv"},
  };
  for (const Item& item : items) {
    std::string path = dir + "/" + item.file;
    Status s = WriteCsvFile(*item.table, path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %-42s %7zu rows x %zu cols\n", item.file,
                item.table->num_rows(), item.table->num_columns());
  }

  if (!WritePairs(data->gold, dir + "/gold_matches.csv").ok() ||
      !WritePairs(data->gold_extra, dir + "/gold_matches_extra.csv").ok() ||
      !WritePairs(data->ambiguous, dir + "/ambiguous_pairs.csv").ok()) {
    return 1;
  }
  std::printf("wrote gold_matches.csv (%zu), gold_matches_extra.csv (%zu), "
              "ambiguous_pairs.csv (%zu)\n",
              data->gold.size(), data->gold_extra.size(),
              data->ambiguous.size());
  std::printf("challenge data in %s/\n", dir.c_str());
  return 0;
}
