// Quickstart: the Figure 1 toy example, end to end.
//
// Two small person tables are matched with the standard emx pipeline:
// block on city, auto-generate features, train a decision tree on a few
// labeled pairs, and predict. Expected output: (a1,b1) and (a3,b2) match.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/block/attr_equivalence_blocker.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/ml/decision_tree.h"
#include "src/table/csv.h"

using namespace emx;

int main() {
  // Figure 1's tables, as CSV (any real application would ReadCsvFile).
  auto table_a = ReadCsvString(
      "Name,City,State\n"
      "Dave Smith,Madison,WI\n"
      "Joe Wilson,San Jose,CA\n"
      "Dan Smith,Middleton,WI\n");
  auto table_b = ReadCsvString(
      "Name,City,State\n"
      "David D. Smith,Madison,WI\n"
      "Daniel W. Smith,Middleton,WI\n");
  if (!table_a.ok() || !table_b.ok()) return 1;

  // Step 1 — blocking: only people in the same city can match.
  AttrEquivalenceBlocker blocker("City", "City");
  auto candidates = blocker.Block(*table_a, *table_b);
  if (!candidates.ok()) return 1;
  std::printf("blocking kept %zu of %zu pairs\n", candidates->size(),
              table_a->num_rows() * table_b->num_rows());

  // Step 2 — features: generated automatically from the shared schema.
  auto features = GenerateFeatures(*table_a, *table_b);
  if (!features.ok()) return 1;
  auto matrix = VectorizePairs(*table_a, *table_b, *candidates, *features);
  if (!matrix.ok()) return 1;
  MeanImputer imputer;
  imputer.Fit(*matrix);
  if (!imputer.Transform(*matrix).ok()) return 1;

  // Step 3 — train a matcher on labeled examples. Real projects sample and
  // label candidate pairs (see examples/umetrics_case_study.cpp); here we
  // label the two candidates by hand and add synthetic non-match vectors so
  // the toy tree has both classes.
  Dataset train;
  train.feature_names = matrix->feature_names;
  train.x = matrix->rows;                 // (a1,b1), (a3,b2): true matches
  train.y = {1, 1};
  std::vector<double> negative(matrix->feature_names.size(), 0.0);
  train.x.push_back(negative);            // an all-dissimilar pair
  train.y.push_back(0);

  DecisionTreeMatcher matcher;
  if (!matcher.Fit(train).ok()) return 1;

  // Step 4 — predict on the candidates.
  std::vector<int> pred = matcher.Predict(matrix->rows);
  std::printf("matches:\n");
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] != 1) continue;
    const RecordPair& p = (*candidates)[i];
    std::printf("  (a%u, b%u): \"%s\" == \"%s\"\n", p.left + 1, p.right + 1,
                table_a->at(p.left, "Name").AsString().c_str(),
                table_b->at(p.right, "Name").AsString().c_str());
  }
  return 0;
}
