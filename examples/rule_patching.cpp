// Workflow patching demo (§10's "handling changes along the way").
//
// Requirements changed twice mid-project: a new positive rule was
// discovered, and 496 extra records arrived. Instead of redoing blocking /
// sampling / labeling, the existing workflow is left alone and PATCHED:
// a new rule-only workflow runs beside it, extra data runs through the same
// trained workflow as a second branch, and MergeBranches resolves overlaps
// with newer-workflow-wins semantics.
//
// Run:  ./build/examples/rule_patching

#include <cstdio>

#include "src/datagen/case_study.h"

using namespace emx;

int main() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;

  // The original workflow (Figure 8): M1 rule + blocking + trained matcher.
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) return 1;
  EmWorkflow v1 = BuildCaseStudyWorkflow(PositiveRulesV1(), *trained,
                                         /*with_negative_rules=*/false);
  auto v1_run = v1.Run(u, s);
  if (!v1_run.ok()) return 1;
  std::printf("v1 workflow: %zu matches (%zu sure + %zu ML)\n",
              v1_run->final_matches.size(), v1_run->sure_matches.size(),
              v1_run->after_rules.size());

  // Complication 1: a new positive rule is discovered. The PATCH is a
  // rule-only workflow — no re-blocking, no new labels.
  EmWorkflow patch;
  patch.AddPositiveRule(
      MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber"));
  auto patch_run = patch.Run(u, s);
  if (!patch_run.ok()) return 1;
  std::printf("patch workflow (new rule only): %zu sure matches\n",
              patch_run->sure_matches.size());

  // Complication 2: extra records arrive; the SAME workflows run on them.
  auto v1_extra = v1.Run(tables->extra, s);
  auto patch_extra = patch.Run(tables->extra, s);
  if (!v1_extra.ok() || !patch_extra.ok()) return 1;
  std::printf("extra-records branch: %zu (v1) + %zu (patch) matches\n",
              v1_extra->final_matches.size(),
              patch_extra->sure_matches.size());

  // Merge with newer-workflow-wins semantics: if a pair is predicted by
  // both the old and the new workflow, the new workflow's verdict stands.
  MatchSet merged = MergeBranches({&*v1_run, &*patch_run});
  std::printf("merged original-tables matches: %zu\n", merged.size());
  for (const auto& [tag, count] : merged.CountsByProvenance()) {
    std::printf("  provenance %-10s %zu\n", tag.c_str(), count);
  }
  return 0;
}
