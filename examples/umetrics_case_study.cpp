// The full UMETRICS/USDA case study, end to end, narrated.
//
// This walks the exact arc of the paper on the synthetic universe:
// understand (§4) -> pre-process (§6) -> block (§7) -> sample & label (§8)
// -> select & train a matcher (§9) -> handle complications (§10) -> apply
// negative rules (§12), finishing with the final match set written to CSV.
//
// Run:  ./build/examples/umetrics_case_study [output.csv]

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/datagen/iris_matcher.h"
#include "src/eval/corleone_estimator.h"
#include "src/table/csv.h"

using namespace emx;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "umetrics_usda_matches.csv";

  // §4 — receive & understand the raw tables.
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  std::printf("[1/6] raw tables: UMETRICS agg %zu rows, USDA %zu rows, "
              "extra batch %zu rows\n",
              data->umetrics_award_agg.num_rows(), data->usda.num_rows(),
              data->extra_umetrics_agg.num_rows());

  // §6 — pre-process into two aligned tables.
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  std::printf("[2/6] projected: UMETRICSProjected %zux%zu, USDAProjected "
              "%zux%zu\n",
              u.num_rows(), u.num_columns(), s.num_rows(), s.num_columns());

  // §7 — blocking.
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  std::printf("[3/6] blocking: C1=%zu C2=%zu C3=%zu -> C=%zu of %zu pairs\n",
              blocks->c1.size(), blocks->c2.size(), blocks->c3.size(),
              blocks->c.size(), u.num_rows() * s.num_rows());

  // §8 — sample and label with the domain experts (simulated oracle).
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  std::printf("[4/6] labels: %zu Yes / %zu No / %zu Unsure\n",
              labels.CountYes(), labels.CountNo(), labels.CountUnsure());

  // §9 — select & train the best matcher (with the case-fix features).
  // Training excludes the M1 sure matches, as in the paper's first pass;
  // when the second positive rule appears (§10) the workflow is patched
  // WITHOUT retraining or relabeling ("we did not have to label any new
  // pairs").
  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  std::printf("[5/6] matcher: %s (cv F1 %.1f%%)\n",
              trained->cv_results.front().matcher_name.c_str(),
              trained->cv_results.front().mean_f1 * 100.0);

  // §10/§12 — final workflow with positive AND negative rules, over both
  // the original and extra-record branches.
  EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                         /*with_negative_rules=*/true);
  auto run = wf.Run(u, s);
  auto run_extra = wf.Run(tables->extra, s);
  if (!run.ok() || !run_extra.ok()) return 1;

  auto iris = RunIrisMatcher(u, s);
  GoldMetrics ours =
      ComputeGoldMetrics(run->final_matches, data->gold, data->ambiguous);
  GoldMetrics base = ComputeGoldMetrics(*iris, data->gold, data->ambiguous);
  std::printf("[6/6] final: %zu + %zu matches; ours P=%.1f%% R=%.1f%% vs "
              "IRIS P=%.1f%% R=%.1f%%\n",
              run->final_matches.size(), run_extra->final_matches.size(),
              ours.Precision() * 100.0, ours.Recall() * 100.0,
              base.Precision() * 100.0, base.Recall() * 100.0);

  // Deliver the matches the way the paper did: a CSV of
  // (UniqueAwardNumber, AccessionNumber) pairs.
  Table out(Schema({{"UniqueAwardNumber", DataType::kString},
                    {"AccessionNumber", DataType::kString},
                    {"Provenance", DataType::kString}}));
  for (const RecordPair& p : run->final_matches) {
    (void)out.AppendRow({Value(u.at(p.left, "AwardNumber").AsString()),
                         Value(s.at(p.right, "AccessionNumber").AsString()),
                         Value(run->provenance.ProvenanceOf(p))});
  }
  for (const RecordPair& p : run_extra->final_matches) {
    (void)out.AppendRow(
        {Value(tables->extra.at(p.left, "AwardNumber").AsString()),
         Value(s.at(p.right, "AccessionNumber").AsString()),
         Value(run_extra->provenance.ProvenanceOf(p))});
  }
  if (!WriteCsvFile(out, out_path).ok()) {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %zu matches to %s\n", out.num_rows(), out_path);
  return 0;
}
