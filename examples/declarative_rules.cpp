// Declarative feature rules (the "hand-crafted rules" half of §12's
// learning+rules lesson, in the form Magellan users write them).
//
// Instead of (or alongside) a trained model, a domain expert writes
// boolean expressions over the auto-generated feature table:
//
//   match_by_title: lc_AwardTitle_jac_ws > 0.85 AND lc_EmployeeName_jac_qgm3 > 0.3
//
// This example compares three matchers on the case-study candidate set:
// expert rules alone, the trained tree alone, and "rules guard the tree"
// (tree prediction AND no negative comparability firing).
//
// Run:  ./build/examples/declarative_rules

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/eval/corleone_estimator.h"
#include "src/rules/feature_rules.h"

using namespace emx;

int main() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;

  // Feature vectors over the whole candidate set.
  auto features = CaseStudyFeatures(u, s, /*case_fix=*/true);
  if (!features.ok()) return 1;
  auto matrix = VectorizePairs(u, s, blocks->c, *features);
  if (!matrix.ok()) return 1;
  // NOTE: rules see raw features; NaN predicates never fire, so no
  // imputation is needed (or wanted) for the rule matcher.

  // Expert rules, written against generated feature names.
  FeatureRuleMatcher rules;
  if (!rules.AddRule("identical_title", "lc_AwardTitle_jac_ws >= 0.99").ok()) {
    return 1;
  }
  if (!rules
           .AddRule("title_and_pi",
                    "lc_AwardTitle_jac_ws > 0.75 AND lc_EmployeeName_jac_qgm3 "
                    "> 0.35")
           .ok()) {
    return 1;
  }
  auto rule_pred = rules.Predict(*matrix);
  if (!rule_pred.ok()) {
    std::fprintf(stderr, "%s\n", rule_pred.status().ToString().c_str());
    return 1;
  }

  std::vector<RecordPair> rule_matches;
  for (size_t i = 0; i < rule_pred->size(); ++i) {
    if ((*rule_pred)[i] == 1) rule_matches.push_back(blocks->c[i]);
  }
  CandidateSet rule_set(std::move(rule_matches));

  // The trained tree, for comparison.
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) return 1;
  EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                         /*with_negative_rules=*/true);
  auto run = wf.Run(u, s);
  if (!run.ok()) return 1;

  GoldMetrics g_rules = ComputeGoldMetrics(rule_set, data->gold,
                                           data->ambiguous);
  GoldMetrics g_wf = ComputeGoldMetrics(run->final_matches, data->gold,
                                        data->ambiguous);
  std::printf("expert rules alone:      %5zu matches  P=%5.1f%% R=%5.1f%%\n",
              rule_set.size(), g_rules.Precision() * 100.0,
              g_rules.Recall() * 100.0);
  std::printf("learning + rules (full): %5zu matches  P=%5.1f%% R=%5.1f%%\n",
              run->final_matches.size(), g_wf.Precision() * 100.0,
              g_wf.Recall() * 100.0);
  std::printf("\nrule provenance on the first few rule matches:\n");
  auto firing = rules.FiringRule(*matrix);
  size_t shown = 0;
  for (size_t i = 0; i < firing->size() && shown < 3; ++i) {
    if ((*firing)[i] < 0) continue;
    const RecordPair& p = blocks->c[i];
    std::printf("  rule #%d: \"%s\" ~ \"%s\"\n", (*firing)[i],
                u.at(p.left, "AwardTitle").AsString().c_str(),
                s.at(p.right, "AwardTitle").AsString().c_str());
    ++shown;
  }
  return 0;
}
