// P3 — matcher train/predict throughput on the case study's real feature
// matrix: how expensive is each of the six §9 families to cross-validate,
// and how fast is bulk prediction over the candidate set.
//
// Modes:
//   bench_matchers                   google-benchmark micro-benches (as
//                                    before)
//   bench_matchers --forest          flattened-forest before/after on the
//                                    case-study fixture: single-thread
//                                    pointer-walk vs flat vs columnar batch
//                                    inference; writes BENCH_forest.json
//   bench_matchers --smoke BASELINE  small deterministic fixture; writes
//                                    BENCH_forest.json, compares the
//                                    measured flat-vs-treewalk speedup
//                                    against "speedup_flat_vs_treewalk" in
//                                    BASELINE and exits 1 when flat
//                                    inference has regressed more than 2x
//                                    vs it

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

#include "src/core/executor.h"
#include "src/core/random.h"
#include "src/datagen/case_study.h"
#include "src/datagen/preprocess.h"
#include "src/feature/pair_batch.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear_regression.h"
#include "src/ml/linear_svm.h"
#include "src/ml/logistic_regression.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"

namespace {

using namespace emx;

struct Fixture {
  Dataset train;
  std::vector<std::vector<double>> predict_rows;
};

const Fixture& GetFixture() {
  static const Fixture& f = *[] {
    auto data = GenerateCaseStudy();
    auto tables = PreprocessCaseStudy(*data);
    const Table& u = tables->umetrics;
    const Table& s = tables->usda;
    auto blocks = RunStandardBlocking(u, s);
    OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
    LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
    auto trained =
        TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
    auto features = CaseStudyFeatures(u, s, /*case_fix=*/true);
    auto matrix = VectorizePairs(u, s, blocks->c, *features);
    MeanImputer imputer;
    imputer.Fit(*matrix);
    (void)imputer.Transform(*matrix);
    return new Fixture{trained->train_data, std::move(matrix->rows)};
  }();
  return f;
}

template <typename M>
void FitBench(benchmark::State& state, M make) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto m = make();
    (void)m->Fit(f.train);
    benchmark::DoNotOptimize(m.get());
  }
}

void BM_FitDecisionTree(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<DecisionTreeMatcher>(); });
}
void BM_FitRandomForest(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<RandomForestMatcher>(); });
}
void BM_FitLogisticRegression(benchmark::State& state) {
  FitBench(state,
           [] { return std::make_unique<LogisticRegressionMatcher>(); });
}
void BM_FitNaiveBayes(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<NaiveBayesMatcher>(); });
}
void BM_FitLinearSvm(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<LinearSvmMatcher>(); });
}
void BM_FitLinearRegression(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<LinearRegressionMatcher>(); });
}
BENCHMARK(BM_FitDecisionTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitRandomForest)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLogisticRegression)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNaiveBayes)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLinearSvm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLinearRegression)->Unit(benchmark::kMillisecond);

// Bulk prediction over the full candidate set (~3.5K pairs, 35 features).
void BM_PredictCandidateSet(benchmark::State& state) {
  const Fixture& f = GetFixture();
  RandomForestMatcher forest;
  (void)forest.Fit(f.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(f.predict_rows));
  }
}
BENCHMARK(BM_PredictCandidateSet)->Unit(benchmark::kMillisecond);

// Thread-count sweep: random-forest training and bulk prediction pinned to
// 1/2/4/8-thread executors. The fitted ensemble and the predictions are
// bit-identical across the sweep; only wall-clock should move.
void BM_FitRandomForestThreads(benchmark::State& state) {
  const Fixture& f = GetFixture();
  Executor pool(static_cast<size_t>(state.range(0)));
  ExecutorContext ctx{&pool};
  for (auto _ : state) {
    RandomForestMatcher forest;
    forest.set_executor(ctx);
    (void)forest.Fit(f.train);
    benchmark::DoNotOptimize(forest.num_trees());
  }
}
BENCHMARK(BM_FitRandomForestThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PredictRandomForestThreads(benchmark::State& state) {
  const Fixture& f = GetFixture();
  Executor pool(static_cast<size_t>(state.range(0)));
  ExecutorContext ctx{&pool};
  RandomForestMatcher forest;
  forest.set_executor(ctx);
  (void)forest.Fit(f.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(f.predict_rows));
  }
}
BENCHMARK(BM_PredictRandomForestThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- flattened-forest before/after (--forest / --smoke) ---------------------

double TimeMs(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct ForestMeasurement {
  size_t rows = 0;
  size_t trees = 0;
  size_t nodes = 0;
  double treewalk_ms = 0;  // pointer-walking baseline, 1 thread
  double flat_ms = 0;      // flattened nodes, row-major input, 1 thread
  double batch_ms = 0;     // flattened nodes, columnar PairBatch, 1 thread
  double speedup() const {
    return flat_ms > 0 ? treewalk_ms / flat_ms : 0;
  }
  double batch_speedup() const {
    return batch_ms > 0 ? treewalk_ms / batch_ms : 0;
  }
};

// Single-thread inference over `rows`: the pointer walk (ParallelMap per
// tree + per-tree probability vectors, the pre-flattening engine, retained
// as PredictProbaTreeWalk) vs the flattened forest, through both the
// row-major and the columnar entry points. All three produce bit-identical
// probabilities — only wall-clock differs.
ForestMeasurement MeasureForest(const RandomForestMatcher& forest,
                                const std::vector<std::vector<double>>& rows,
                                int reps) {
  ForestMeasurement m;
  m.rows = rows.size();
  m.trees = forest.num_trees();
  m.nodes = forest.flat_forest().num_nodes();
  PairBatch batch = PairBatch::FromRows(rows);
  m.treewalk_ms =
      TimeMs([&] { benchmark::DoNotOptimize(forest.PredictProbaTreeWalk(rows)); },
             reps);
  m.flat_ms = TimeMs(
      [&] { benchmark::DoNotOptimize(forest.PredictProba(rows)); }, reps);
  m.batch_ms = TimeMs(
      [&] { benchmark::DoNotOptimize(forest.PredictProbaBatch(batch)); }, reps);
  return m;
}

int WriteForestJson(const ForestMeasurement& m, const char* fixture) {
  std::FILE* f = std::fopen("BENCH_forest.json", "w");
  if (!f) return 1;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"fixture\": \"%s\",\n", fixture);
  std::fprintf(f, "  \"rows\": %zu,\n", m.rows);
  std::fprintf(f, "  \"trees\": %zu,\n", m.trees);
  std::fprintf(f, "  \"flat_nodes\": %zu,\n", m.nodes);
  std::fprintf(f, "  \"speedup_flat_vs_treewalk\": %.2f,\n", m.speedup());
  std::fprintf(f, "  \"speedup_batch_vs_treewalk\": %.2f,\n",
               m.batch_speedup());
  std::fprintf(f, "  \"results\": [\n");
  std::fprintf(f,
               "    {\"stage\": \"predict_treewalk\", \"threads\": 1, "
               "\"wall_ms\": %.3f},\n",
               m.treewalk_ms);
  std::fprintf(f,
               "    {\"stage\": \"predict_flat\", \"threads\": 1, "
               "\"wall_ms\": %.3f},\n",
               m.flat_ms);
  std::fprintf(f,
               "    {\"stage\": \"predict_flat_batch\", \"threads\": 1, "
               "\"wall_ms\": %.3f}\n",
               m.batch_ms);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_forest.json\n");
  return 0;
}

void PrintForest(const ForestMeasurement& m) {
  std::printf("rows=%zu trees=%zu flat_nodes=%zu\n", m.rows, m.trees, m.nodes);
  std::printf("%-22s %10s\n", "stage", "wall_ms");
  std::printf("%-22s %10.3f\n", "predict_treewalk", m.treewalk_ms);
  std::printf("%-22s %10.3f\n", "predict_flat", m.flat_ms);
  std::printf("%-22s %10.3f\n", "predict_flat_batch", m.batch_ms);
  std::printf("speedup_flat_vs_treewalk=%.2fx (1 thread)\n", m.speedup());
  std::printf("speedup_batch_vs_treewalk=%.2fx (1 thread)\n",
              m.batch_speedup());
}

int RunForest() {
  const Fixture& f = GetFixture();
  Executor pool1(1);
  ExecutorContext ctx1{&pool1};
  RandomForestMatcher forest;
  forest.set_executor(ctx1);
  if (!forest.Fit(f.train).ok()) return 1;
  ForestMeasurement m = MeasureForest(forest, f.predict_rows, /*reps=*/20);
  PrintForest(m);
  return WriteForestJson(m, "case_study");
}

// Extracts "key": <number> from a JSON file with a text scan (no JSON dep).
bool ReadJsonNumber(const char* path, const char* key, double* out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string needle = std::string("\"") + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + 1, nullptr);
  return true;
}

// Small deterministic fixture for CI: Gaussian blobs wide enough that the
// forest grows real depth, and a probe set large enough to time — no
// case-study generation, so the smoke run stays fast.
Dataset SmokeTrainSet(size_t n_pos, size_t n_neg, uint64_t seed) {
  RandomEngine rng(seed);
  Dataset d;
  d.feature_names = {"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"};
  for (size_t i = 0; i < n_pos + n_neg; ++i) {
    bool pos = i < n_pos;
    double center = pos ? 1.0 : -1.0;
    std::vector<double> row;
    for (size_t k = 0; k < 8; ++k) {
      row.push_back(center + 1.2 * rng.NextGaussian());
    }
    d.x.push_back(std::move(row));
    d.y.push_back(pos ? 1 : 0);
  }
  return d;
}

int RunSmoke(const char* baseline_path) {
  double baseline = 0;
  if (!ReadJsonNumber(baseline_path, "speedup_flat_vs_treewalk", &baseline) ||
      baseline <= 0) {
    std::fprintf(stderr,
                 "smoke: cannot read speedup_flat_vs_treewalk from %s\n",
                 baseline_path);
    return 1;
  }

  Executor pool1(1);
  ExecutorContext ctx1{&pool1};
  RandomForestMatcher forest;
  forest.set_executor(ctx1);
  if (!forest.Fit(SmokeTrainSet(300, 300, 77)).ok()) return 1;
  Dataset probe = SmokeTrainSet(4000, 4000, 78);
  ForestMeasurement m = MeasureForest(forest, probe.x, /*reps=*/10);
  PrintForest(m);

  double measured = m.speedup();
  std::printf("smoke: measured flat speedup %.2fx, baseline %.2fx\n", measured,
              baseline);
  // The gate is a RATIO of two same-host measurements, so it transfers
  // across hardware: flat inference losing >2x of its advantage over the
  // retained pointer walk (vs what the baseline recorded) fails the build.
  if (measured < baseline / 2.0) {
    std::fprintf(stderr,
                 "smoke: FAIL — flat-vs-treewalk speedup %.2fx fell below "
                 "half the baseline %.2fx (flat inference regressed >2x)\n",
                 measured, baseline);
    return (void)WriteForestJson(m, "smoke"), 1;
  }
  std::printf("smoke: OK\n");
  return WriteForestJson(m, "smoke");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--forest") == 0) return RunForest();
  if (argc == 3 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke(argv[2]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
