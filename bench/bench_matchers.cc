// P3 — matcher train/predict throughput on the case study's real feature
// matrix: how expensive is each of the six §9 families to cross-validate,
// and how fast is bulk prediction over the candidate set.

#include <benchmark/benchmark.h>

#include "src/core/executor.h"
#include "src/datagen/case_study.h"
#include "src/datagen/preprocess.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear_regression.h"
#include "src/ml/linear_svm.h"
#include "src/ml/logistic_regression.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"

namespace {

using namespace emx;

struct Fixture {
  Dataset train;
  std::vector<std::vector<double>> predict_rows;
};

const Fixture& GetFixture() {
  static const Fixture& f = *[] {
    auto data = GenerateCaseStudy();
    auto tables = PreprocessCaseStudy(*data);
    const Table& u = tables->umetrics;
    const Table& s = tables->usda;
    auto blocks = RunStandardBlocking(u, s);
    OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
    LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
    auto trained =
        TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
    auto features = CaseStudyFeatures(u, s, /*case_fix=*/true);
    auto matrix = VectorizePairs(u, s, blocks->c, *features);
    MeanImputer imputer;
    imputer.Fit(*matrix);
    (void)imputer.Transform(*matrix);
    return new Fixture{trained->train_data, std::move(matrix->rows)};
  }();
  return f;
}

template <typename M>
void FitBench(benchmark::State& state, M make) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto m = make();
    (void)m->Fit(f.train);
    benchmark::DoNotOptimize(m.get());
  }
}

void BM_FitDecisionTree(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<DecisionTreeMatcher>(); });
}
void BM_FitRandomForest(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<RandomForestMatcher>(); });
}
void BM_FitLogisticRegression(benchmark::State& state) {
  FitBench(state,
           [] { return std::make_unique<LogisticRegressionMatcher>(); });
}
void BM_FitNaiveBayes(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<NaiveBayesMatcher>(); });
}
void BM_FitLinearSvm(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<LinearSvmMatcher>(); });
}
void BM_FitLinearRegression(benchmark::State& state) {
  FitBench(state, [] { return std::make_unique<LinearRegressionMatcher>(); });
}
BENCHMARK(BM_FitDecisionTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitRandomForest)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLogisticRegression)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitNaiveBayes)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLinearSvm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FitLinearRegression)->Unit(benchmark::kMillisecond);

// Bulk prediction over the full candidate set (~3.5K pairs, 35 features).
void BM_PredictCandidateSet(benchmark::State& state) {
  const Fixture& f = GetFixture();
  RandomForestMatcher forest;
  (void)forest.Fit(f.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(f.predict_rows));
  }
}
BENCHMARK(BM_PredictCandidateSet)->Unit(benchmark::kMillisecond);

// Thread-count sweep: random-forest training and bulk prediction pinned to
// 1/2/4/8-thread executors. The fitted ensemble and the predictions are
// bit-identical across the sweep; only wall-clock should move.
void BM_FitRandomForestThreads(benchmark::State& state) {
  const Fixture& f = GetFixture();
  Executor pool(static_cast<size_t>(state.range(0)));
  ExecutorContext ctx{&pool};
  for (auto _ : state) {
    RandomForestMatcher forest;
    forest.set_executor(ctx);
    (void)forest.Fit(f.train);
    benchmark::DoNotOptimize(forest.num_trees());
  }
}
BENCHMARK(BM_FitRandomForestThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PredictRandomForestThreads(benchmark::State& state) {
  const Fixture& f = GetFixture();
  Executor pool(static_cast<size_t>(state.range(0)));
  ExecutorContext ctx{&pool};
  RandomForestMatcher forest;
  forest.set_executor(ctx);
  (void)forest.Fit(f.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(f.predict_rows));
  }
}
BENCHMARK(BM_PredictRandomForestThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
