// Vectorize before/after bench for the token-id kernel layer.
//
// Measures, on the case-study candidate set and feature set:
//   - prep_ms:        one cold PrepCache pass over every (column, prep spec)
//                     the feature set binds (the amortized one-time cost)
//   - vectorize_legacy:   VectorizePairsUnprepared — per-pair normalize +
//                         tokenize + hash-set scoring (the pre-kernel path)
//   - vectorize_prepared: VectorizePairs against a warm cache — merge-based
//                         id-span scoring, zero per-pair prep
// at 1 thread (the headline before/after), then sweeps the prepared path
// across 1/2/4/8 threads.
//
// Emits BENCH_vectorize.json in the working directory. host_cpus is
// recorded because the thread sweep is meaningless on a 1-core host
// (sweep_reliable=false flags it); the single-thread before/after ratio is
// hardware-independent and is what the CI perf-smoke gate checks.
//
// Usage:
//   bench_vectorize                      full bench, writes BENCH_vectorize.json
//   bench_vectorize --smoke BASELINE     small fixture; compares the measured
//                                        prepared-vs-legacy speedup against
//                                        "speedup_prepared_vs_legacy" in
//                                        BASELINE and exits 1 when vectorize
//                                        has regressed more than 2x vs it

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/executor.h"
#include "src/datagen/case_study.h"
#include "src/datagen/preprocess.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/prep/prepared_column.h"
#include "src/table/table.h"
#include "src/text/tokenizer.h"

namespace {

using namespace emx;

double TimeMs(const std::function<void()>& fn) {
  // Best of 3: the min is the least scheduler-noisy estimate on a busy host.
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// Builds every prepared column the feature set will bind, into `cache`.
void WarmCache(const Table& left, const Table& right, const FeatureSet& features,
               PrepCache* cache) {
  for (const Feature& f : features.features) {
    if (!f.has_prep()) continue;
    auto lcol = left.ColumnByName(f.left_attr);
    auto rcol = right.ColumnByName(f.right_attr);
    if (!lcol.ok() || !rcol.ok()) std::abort();
    std::unique_ptr<Tokenizer> tok;
    if (f.prep.tokenize) {
      if (f.prep.qgram > 0) {
        tok = std::make_unique<QgramTokenizer>(f.prep.qgram);
      } else {
        tok = std::make_unique<WhitespaceTokenizer>();
      }
    }
    PrepOptions opts{f.prep.lowercase, /*strip_punctuation=*/false};
    cache->Get(**lcol, opts, tok.get());
    cache->Get(**rcol, opts, tok.get());
  }
}

struct Measurement {
  double prep_ms = 0;
  double legacy_ms = 0;            // 1 thread, unprepared
  double prepared_ms = 0;          // 1 thread, warm cache
  double batch_ms = 0;             // 1 thread, warm cache, columnar SoA
  size_t pairs = 0;
  std::vector<std::pair<size_t, double>> sweep;  // (threads, prepared wall_ms)
  double speedup() const { return legacy_ms / prepared_ms; }
  double batch_speedup() const {
    return batch_ms > 0 ? legacy_ms / batch_ms : 0;
  }
};

Measurement Measure(const Table& left, const Table& right,
                    const CandidateSet& pairs, const FeatureSet& features,
                    bool sweep_threads) {
  Measurement m;
  m.pairs = pairs.size();

  Executor pool1(1);
  ExecutorContext ctx1{&pool1};

  m.prep_ms = TimeMs([&] {
    PrepCache cold;
    WarmCache(left, right, features, &cold);
  });

  m.legacy_ms = TimeMs([&] {
    auto r = VectorizePairsUnprepared(left, right, pairs, features, ctx1);
    if (!r.ok() || r->rows.empty()) std::abort();
  });

  PrepCache warm;
  WarmCache(left, right, features, &warm);
  m.prepared_ms = TimeMs([&] {
    auto r = VectorizePairs(left, right, pairs, features, ctx1, &warm);
    if (!r.ok() || r->rows.empty()) std::abort();
  });

  // The columnar hot path: SoA output, feature-major evaluation, batch
  // similarity kernels. Same doubles as the two row-major stages above.
  m.batch_ms = TimeMs([&] {
    auto r = VectorizePairsBatch(left, right, pairs, features, ctx1, &warm);
    if (!r.ok() || r->empty()) std::abort();
  });

  if (sweep_threads) {
    for (size_t t : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      Executor pool(t);
      ExecutorContext ctx{&pool};
      double ms = TimeMs([&] {
        auto r = VectorizePairs(left, right, pairs, features, ctx, &warm);
        if (!r.ok()) std::abort();
      });
      m.sweep.push_back({t, ms});
    }
  }
  return m;
}

double PairsPerSec(size_t pairs, double wall_ms) {
  return wall_ms > 0 ? static_cast<double>(pairs) / (wall_ms / 1000.0) : 0.0;
}

// --- full mode -------------------------------------------------------------

int RunFull() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  auto features = CaseStudyFeatures(u, s, /*case_fix=*/true);
  if (!features.ok()) return 1;

  Measurement m = Measure(u, s, blocks->c, *features, /*sweep_threads=*/true);

  unsigned host_cpus = std::thread::hardware_concurrency();
  bool sweep_reliable = host_cpus > 1;
  std::printf("host_cpus=%u%s\n", host_cpus,
              sweep_reliable ? "" : "  (1 CPU: thread sweep UNRELIABLE)");
  std::printf("pairs=%zu  features=%zu\n", m.pairs,
              features->features.size());
  std::printf("%-22s %10s %14s\n", "stage", "wall_ms", "pairs_per_sec");
  std::printf("%-22s %10.2f %14s\n", "prep_cold", m.prep_ms, "-");
  std::printf("%-22s %10.2f %14.0f\n", "vectorize_legacy", m.legacy_ms,
              PairsPerSec(m.pairs, m.legacy_ms));
  std::printf("%-22s %10.2f %14.0f\n", "vectorize_prepared", m.prepared_ms,
              PairsPerSec(m.pairs, m.prepared_ms));
  std::printf("%-22s %10.2f %14.0f\n", "vectorize_batch", m.batch_ms,
              PairsPerSec(m.pairs, m.batch_ms));
  std::printf("speedup_prepared_vs_legacy=%.2fx (1 thread)\n", m.speedup());
  std::printf("speedup_batch_vs_legacy=%.2fx (1 thread)\n", m.batch_speedup());
  for (auto& [t, ms] : m.sweep) {
    std::printf("prepared @%zu threads: %10.2f ms  %14.0f pairs/s\n", t, ms,
                PairsPerSec(m.pairs, ms));
  }

  std::FILE* f = std::fopen("BENCH_vectorize.json", "w");
  if (!f) return 1;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(f, "  \"sweep_reliable\": %s,\n",
               sweep_reliable ? "true" : "false");
  std::fprintf(f, "  \"pairs\": %zu,\n", m.pairs);
  std::fprintf(f, "  \"features\": %zu,\n", features->features.size());
  std::fprintf(f, "  \"prep_ms\": %.2f,\n", m.prep_ms);
  std::fprintf(f, "  \"speedup_prepared_vs_legacy\": %.2f,\n", m.speedup());
  std::fprintf(f, "  \"speedup_batch_vs_legacy\": %.2f,\n", m.batch_speedup());
  std::fprintf(f, "  \"results\": [\n");
  std::fprintf(f,
               "    {\"stage\": \"vectorize_legacy\", \"threads\": 1, "
               "\"wall_ms\": %.2f, \"pairs_per_sec\": %.0f},\n",
               m.legacy_ms, PairsPerSec(m.pairs, m.legacy_ms));
  std::fprintf(f,
               "    {\"stage\": \"vectorize_batch\", \"threads\": 1, "
               "\"wall_ms\": %.2f, \"pairs_per_sec\": %.0f},\n",
               m.batch_ms, PairsPerSec(m.pairs, m.batch_ms));
  for (size_t i = 0; i < m.sweep.size(); ++i) {
    auto& [t, ms] = m.sweep[i];
    std::fprintf(f,
                 "    {\"stage\": \"vectorize_prepared\", \"threads\": %zu, "
                 "\"wall_ms\": %.2f, \"pairs_per_sec\": %.0f}%s\n",
                 t, ms, PairsPerSec(m.pairs, ms),
                 i + 1 == m.sweep.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_vectorize.json\n");
  return 0;
}

// --- smoke mode ------------------------------------------------------------

// Small deterministic fixture: token sentences with heavy vocabulary reuse,
// all-pairs candidates. Big enough to measure, small enough for CI.
Table SmokeTable(size_t rows, uint32_t seed) {
  const char* vocab[] = {"alpha", "beta",  "gamma",   "delta", "study",
                         "of",    "swamp", "dodder",  "award", "applied",
                         "corn",  "yield", "ecology", "title", "fund"};
  const size_t nv = sizeof(vocab) / sizeof(vocab[0]);
  Table t(Schema({{"RecordId", DataType::kInt64},
                  {"Title", DataType::kString}}));
  uint64_t state = seed;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<size_t>(state >> 33);
  };
  for (size_t i = 0; i < rows; ++i) {
    std::string title;
    size_t len = 4 + next() % 8;
    for (size_t w = 0; w < len; ++w) {
      if (w > 0) title += ' ';
      title += vocab[next() % nv];
    }
    (void)t.AppendRow({Value(static_cast<int64_t>(i)), Value(title)});
  }
  return t;
}

// Extracts "key": <number> from a JSON file with a text scan (no JSON dep).
bool ReadJsonNumber(const char* path, const char* key, double* out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string needle = std::string("\"") + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + 1, nullptr);
  return true;
}

int RunSmoke(const char* baseline_path) {
  double baseline = 0;
  if (!ReadJsonNumber(baseline_path, "speedup_prepared_vs_legacy", &baseline) ||
      baseline <= 0) {
    std::fprintf(stderr, "smoke: cannot read speedup_prepared_vs_legacy from %s\n",
                 baseline_path);
    return 1;
  }

  Table left = SmokeTable(300, 1);
  Table right = SmokeTable(300, 2);
  FeatureGenOptions opts;
  opts.exclude = {"RecordId"};
  auto features = GenerateFeatures(left, right, opts);
  if (!features.ok()) return 1;
  std::vector<RecordPair> all;
  for (uint32_t l = 0; l < 300; ++l) {
    for (uint32_t r = 0; r < 300; r += 5) all.push_back({l, r});
  }
  CandidateSet pairs(std::move(all));

  Measurement m =
      Measure(left, right, pairs, *features, /*sweep_threads=*/false);

  double measured = m.speedup();
  unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host_cpus=%u\n", host_cpus);
  std::printf(
      "smoke: pairs=%zu features=%zu legacy=%.2fms prepared=%.2fms "
      "batch=%.2fms (batch %.2fx)\n",
      m.pairs, features->features.size(), m.legacy_ms, m.prepared_ms,
      m.batch_ms, m.batch_speedup());
  std::printf("smoke: measured speedup %.2fx, baseline %.2fx\n", measured,
              baseline);
  // The gate is a RATIO of two same-host measurements, so it transfers
  // across hardware: prepared vectorize regressing >2x relative to legacy
  // (vs what the baseline recorded) fails the build.
  if (measured < baseline / 2.0) {
    std::fprintf(stderr,
                 "smoke: FAIL — prepared-vs-legacy speedup %.2fx fell below "
                 "half the baseline %.2fx (vectorize regressed >2x)\n",
                 measured, baseline);
    return 1;
  }
  std::printf("smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke(argv[2]);
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--smoke BASELINE.json]\n", argv[0]);
    return 2;
  }
  return RunFull();
}
