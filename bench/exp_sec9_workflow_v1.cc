// E6 — reproduces the §9/Figure 8 initial workflow numbers:
//   210 record pairs in C satisfy the positive rule M1 (removed as sure
//   matches); the trained decision tree predicts 807 matches on the rest;
//   total 1,017 matches shared with the UMETRICS team.

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/eval/corleone_estimator.h"

namespace {

using namespace emx;

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;

  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);

  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.status().ToString().c_str());
    return 1;
  }

  EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV1(), *trained,
                                         /*with_negative_rules=*/false);
  auto run = wf.Run(u, s);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("=== E6: Figure 8 initial EM workflow ===\n");
  std::printf("candidate set C:            %zu   [3177]\n",
              run->candidates.size());
  std::printf("sure matches (M1 rule):     %zu   [210]\n",
              run->sure_matches.size());
  std::printf("ML input (C - sure):        %zu   [2967]\n",
              run->ml_input.size());
  std::printf("ML-predicted matches:       %zu   [807]\n",
              run->ml_predicted.size());
  std::printf("total matches:              %zu   [1017]\n",
              run->final_matches.size());

  GoldMetrics gm =
      ComputeGoldMetrics(run->final_matches, data->gold, data->ambiguous);
  std::printf(
      "vs gold (synthetic only): P=%.1f%% R=%.1f%% F1=%.1f%% "
      "(tp=%zu fp=%zu fn=%zu)\n",
      gm.Precision() * 100.0, gm.Recall() * 100.0, gm.F1() * 100.0, gm.tp,
      gm.fp, gm.fn);
  return 0;
}

}  // namespace

int main() { return Run(); }
