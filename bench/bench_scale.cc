// Million-row-scale workload harness for the sharded datagen + partitioned
// blocking engine.
//
// Full mode generates scale-factor corpora (SF 1/10/100 by default; pass
// --sf=N to run a single SF, e.g. 1000 for the 1M+1M configuration) and
// times each phase:
//   - datagen:   sharded GenerateScaleCorpus on all host threads
//   - prep:      cold PrepCache tokenize/intern pass over both title columns
//   - blocking:  the K=3 overlap join — monolithic single-thread reference,
//                then the partitioned engine under a fixed memory budget
//                swept across 1/2/4/8 threads
// Per SF it records the partition count, peak index bytes, and the
// p50/p99 per-partition wall times from the engine's stats, and HARD-FAILS
// if the partitioned candidate set diverges from the monolithic oracle.
// Emits BENCH_scale.json in the working directory. host_cpus and
// sweep_reliable are recorded because thread-sweep speedups are meaningless
// on a 1-core host; the single-thread partitioned-vs-monolithic ratio is
// hardware-independent and is what the CI smoke gate checks.
//
// Usage:
//   bench_scale                   full bench, writes BENCH_scale.json
//   bench_scale --sf=N            full bench at one scale factor only
//   bench_scale --smoke BASELINE  tiny corpus, budget forced to >=4
//                                 partitions; verifies partitioned ==
//                                 monolithic and compares the measured
//                                 "partitioned_vs_monolithic" ratio against
//                                 BASELINE, exiting 1 on a >2x regression

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/block/overlap_blocker.h"
#include "src/block/partitioned_blocker.h"
#include "src/core/executor.h"
#include "src/datagen/scale_corpus.h"
#include "src/prep/prepared_column.h"
#include "src/text/tokenizer.h"

namespace {

using namespace emx;

// Scale stages run once, not best-of-3: each is seconds long at SF>=100,
// so scheduler noise is small relative to the measurement and repeats
// would triple an already long run.
double OnceMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// K=3 title-overlap keep, the paper's blocking threshold.
constexpr size_t kOverlapK = 3;
bool KeepK(size_t, size_t, size_t overlap) { return overlap >= kOverlapK; }

struct PreppedCorpus {
  std::shared_ptr<const PreparedColumn> left;
  std::shared_ptr<const PreparedColumn> right;
  std::shared_ptr<PrepCache> cache;  // owns the interner the spans view
};

PreppedCorpus Prep(const ScaleCorpus& corpus) {
  PreppedCorpus out;
  out.cache = std::make_shared<PrepCache>();
  auto lcol = corpus.left.ColumnByName("AwardTitle");
  auto rcol = corpus.right.ColumnByName("AwardTitle");
  if (!lcol.ok() || !rcol.ok()) std::abort();
  WhitespaceTokenizer tok;
  PrepOptions opts{/*lowercase=*/true, /*strip_punctuation=*/true};
  out.left = out.cache->Get(**lcol, opts, &tok);
  out.right = out.cache->Get(**rcol, opts, &tok);
  return out;
}

struct SfResult {
  double sf = 0;
  size_t rows_per_side = 0;
  double datagen_ms = 0;
  double prep_ms = 0;
  double block_mono_ms = 0;  // 1 thread, unbounded single partition
  size_t candidates = 0;
  size_t num_partitions = 0;
  size_t peak_index_bytes = 0;
  double partition_p50_ms = 0;
  double partition_p99_ms = 0;
  std::vector<std::pair<size_t, double>> sweep;  // (threads, partitioned ms)
  double speedup_8t() const {
    double t1 = 0, t8 = 0;
    for (auto& [t, ms] : sweep) {
      if (t == 1) t1 = ms;
      if (t == 8) t8 = ms;
    }
    return t8 > 0 ? t1 / t8 : 0;
  }
};

// Peak working-set budget for the partitioned sweep. 2 MiB: well below the
// single-partition footprint at SF>=100 (~3.4 MB at SF=100, ~10x that at
// SF=1000, so the out-of-core path genuinely engages at scale) while
// keeping SF 1/10 in one partition.
constexpr size_t kMemBudgetBytes = 2ull << 20;

SfResult RunSf(double sf) {
  SfResult res;
  res.sf = sf;

  ScaleCorpusOptions opts;
  opts.scale_factor = sf;
  res.rows_per_side = internal_datagen::ScaleRows(opts);

  ScaleCorpus corpus;
  res.datagen_ms = OnceMs([&] {
    auto c = GenerateScaleCorpus(opts);
    if (!c.ok()) std::abort();
    corpus = std::move(*c);
  });

  PreppedCorpus prepped;
  res.prep_ms = OnceMs([&] { prepped = Prep(corpus); });

  Executor pool1(1);
  ExecutorContext ctx1{&pool1};
  internal_block::BlockBudget unbounded;  // 0 = monolithic single partition
  CandidateSet mono;
  res.block_mono_ms = OnceMs([&] {
    mono = internal_block::PartitionedOverlapJoin(
        *prepped.left, *prepped.right, KeepK, kOverlapK, unbounded, ctx1);
  });
  res.candidates = mono.size();

  internal_block::BlockBudget budget;
  budget.mem_budget_bytes = kMemBudgetBytes;
  for (size_t t : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Executor pool(t);
    ExecutorContext ctx{&pool};
    internal_block::PartitionedJoinStats stats;
    CandidateSet part;
    double ms = OnceMs([&] {
      part = internal_block::PartitionedOverlapJoin(
          *prepped.left, *prepped.right, KeepK, kOverlapK, budget, ctx,
          &stats);
    });
    if (!(part == mono)) {
      std::fprintf(stderr,
                   "FATAL: partitioned blocking diverged from monolithic at "
                   "sf=%g threads=%zu (%zu vs %zu pairs)\n",
                   sf, t, part.size(), mono.size());
      std::abort();
    }
    res.sweep.push_back({t, ms});
    res.num_partitions = stats.num_partitions;
    res.peak_index_bytes = stats.peak_index_bytes;
    res.partition_p50_ms = Percentile(stats.partition_ms, 0.50);
    res.partition_p99_ms = Percentile(stats.partition_ms, 0.99);
  }
  return res;
}

int RunFull(const std::vector<double>& sfs) {
  unsigned host_cpus = std::thread::hardware_concurrency();
  bool sweep_reliable = host_cpus > 1;
  std::printf("host_cpus=%u%s\n", host_cpus,
              sweep_reliable ? "" : "  (1 CPU: thread sweep UNRELIABLE)");

  std::vector<SfResult> results;
  for (double sf : sfs) {
    SfResult r = RunSf(sf);
    std::printf(
        "sf=%-6g rows/side=%-8zu datagen=%.0fms prep=%.0fms "
        "block_mono@1t=%.0fms candidates=%zu partitions=%zu "
        "peak_index=%.1fMB part_p50=%.1fms part_p99=%.1fms\n",
        r.sf, r.rows_per_side, r.datagen_ms, r.prep_ms, r.block_mono_ms,
        r.candidates, r.num_partitions,
        static_cast<double>(r.peak_index_bytes) / (1 << 20),
        r.partition_p50_ms, r.partition_p99_ms);
    for (auto& [t, ms] : r.sweep) {
      std::printf("  partitioned @%zu threads: %10.1f ms\n", t, ms);
    }
    std::printf("  speedup @8 threads: %.2fx\n", r.speedup_8t());
    results.push_back(std::move(r));
  }

  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (!f) return 1;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(f, "  \"sweep_reliable\": %s,\n",
               sweep_reliable ? "true" : "false");
  std::fprintf(f, "  \"block_mem_budget_bytes\": %zu,\n", kMemBudgetBytes);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SfResult& r = results[i];
    std::fprintf(f, "    {\"sf\": %g, \"rows_per_side\": %zu,\n", r.sf,
                 r.rows_per_side);
    std::fprintf(f,
                 "     \"datagen_ms\": %.1f, \"prep_ms\": %.1f, "
                 "\"block_mono_ms\": %.1f, \"candidates\": %zu,\n",
                 r.datagen_ms, r.prep_ms, r.block_mono_ms, r.candidates);
    std::fprintf(f,
                 "     \"num_partitions\": %zu, \"peak_index_bytes\": %zu, "
                 "\"partition_p50_ms\": %.2f, \"partition_p99_ms\": %.2f,\n",
                 r.num_partitions, r.peak_index_bytes, r.partition_p50_ms,
                 r.partition_p99_ms);
    std::fprintf(f, "     \"speedup_8t\": %.2f, \"sweep\": [", r.speedup_8t());
    for (size_t j = 0; j < r.sweep.size(); ++j) {
      std::fprintf(f, "{\"threads\": %zu, \"wall_ms\": %.1f}%s",
                   r.sweep[j].first, r.sweep[j].second,
                   j + 1 == r.sweep.size() ? "" : ", ");
    }
    std::fprintf(f, "]}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_scale.json\n");
  return 0;
}

// --- smoke mode ------------------------------------------------------------

// Extracts "key": <number> from a JSON file with a text scan (no JSON dep).
bool ReadJsonNumber(const char* path, const char* key, double* out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string needle = std::string("\"") + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + 1, nullptr);
  return true;
}

int RunSmoke(const char* baseline_path) {
  double baseline = 0;
  if (!ReadJsonNumber(baseline_path, "partitioned_vs_monolithic", &baseline) ||
      baseline <= 0) {
    std::fprintf(stderr,
                 "smoke: cannot read partitioned_vs_monolithic from %s\n",
                 baseline_path);
    return 1;
  }

  // SF=2 corpus (2000 rows per side) with the partition floor lowered so a
  // small budget genuinely exercises the multi-partition path in CI.
  ScaleCorpusOptions opts;
  opts.scale_factor = 2.0;
  auto corpus = GenerateScaleCorpus(opts);
  if (!corpus.ok()) return 1;
  PreppedCorpus prepped = Prep(*corpus);

  Executor pool1(1);
  ExecutorContext ctx1{&pool1};
  internal_block::BlockBudget unbounded;
  CandidateSet mono;
  // Best of 3 here: smoke corpora are milliseconds-scale, where the min is
  // the least scheduler-noisy estimate.
  double mono_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    mono_ms = std::min(mono_ms, OnceMs([&] {
      mono = internal_block::PartitionedOverlapJoin(
          *prepped.left, *prepped.right, KeepK, kOverlapK, unbounded, ctx1);
    }));
  }

  // A 1-byte budget is below the fixed index cost, so the plan degrades to
  // the floor (logged) — 500-row partitions, exactly 4 over the SF=2
  // corpus, independent of the corpus' vocabulary shape.
  internal_block::BlockBudget tight;
  tight.min_partition_rows = 500;
  tight.mem_budget_bytes = 1;
  internal_block::PartitionedJoinStats stats;
  CandidateSet part;
  double part_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    part_ms = std::min(part_ms, OnceMs([&] {
      part = internal_block::PartitionedOverlapJoin(
          *prepped.left, *prepped.right, KeepK, kOverlapK, tight, ctx1,
          &stats);
    }));
  }
  if (stats.num_partitions < 4) {
    std::fprintf(stderr, "smoke: FAIL — expected >=4 partitions, got %zu\n",
                 stats.num_partitions);
    return 1;
  }
  if (!(part == mono)) {
    std::fprintf(stderr,
                 "smoke: FAIL — partitioned blocking diverged from "
                 "monolithic (%zu vs %zu pairs)\n",
                 part.size(), mono.size());
    return 1;
  }

  double measured = part_ms > 0 ? mono_ms / part_ms : 0;
  unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host_cpus=%u\n", host_cpus);
  std::printf(
      "smoke: rows/side=%zu candidates=%zu partitions=%zu mono=%.2fms "
      "partitioned=%.2fms\n",
      corpus->left.num_rows(), mono.size(), stats.num_partitions, mono_ms,
      part_ms);
  std::printf("smoke: measured partitioned_vs_monolithic %.2fx, baseline %.2fx\n",
              measured, baseline);
  // The gate is a RATIO of two same-host measurements, so it transfers
  // across hardware: the partitioned engine's overhead growing >2x relative
  // to the monolithic join (vs what the baseline recorded) fails the build.
  if (measured < baseline / 2.0) {
    std::fprintf(stderr,
                 "smoke: FAIL — partitioned/monolithic ratio %.2fx fell "
                 "below half the baseline %.2fx (partitioned engine "
                 "regressed >2x)\n",
                 measured, baseline);
    return 1;
  }
  std::printf("smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke(argv[2]);
  }
  if (argc == 2 && std::strncmp(argv[1], "--sf=", 5) == 0) {
    double sf = std::atof(argv[1] + 5);
    if (sf <= 0) {
      std::fprintf(stderr, "bad --sf\n");
      return 2;
    }
    return RunFull({sf});
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--sf=N | --smoke BASELINE.json]\n",
                 argv[0]);
    return 2;
  }
  return RunFull({1, 10, 100});
}
