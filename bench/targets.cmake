# Experiment harnesses (one per paper table/figure) and perf benches.
# All binaries land in build/bench/ and run standalone with no arguments.

function(emx_add_experiment name)
  add_executable(${name} bench/${name}.cc)
  target_link_libraries(${name} PRIVATE emx_datagen emx_eval)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

emx_add_experiment(exp_sec7_blocking)
emx_add_experiment(exp_sec9_matchers)
emx_add_experiment(exp_sec9_workflow_v1)
emx_add_experiment(exp_sec10_workflow_v2)
emx_add_experiment(exp_sec11_accuracy)
emx_add_experiment(exp_sec12_negative_rules)
emx_add_experiment(exp_fig2_tables)
emx_add_experiment(exp_sec6_preprocess)
emx_add_experiment(exp_sec8_labeling)

function(emx_add_gbench name)
  add_executable(${name} bench/${name}.cc)
  target_link_libraries(${name} PRIVATE emx_datagen emx_eval benchmark::benchmark)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

emx_add_gbench(bench_similarity)
emx_add_gbench(bench_blocking)
emx_add_gbench(bench_matchers)
emx_add_experiment(exp_sec10_clusters)
emx_add_experiment(exp_ablation_features)
emx_add_experiment(exp_label_budget)
emx_add_experiment(bench_parallel)
emx_add_experiment(bench_vectorize)
emx_add_experiment(bench_scale)
