// E4 — reproduces the §8 sampling-and-labeling loop:
//   * iteration 0: 100 pairs labeled by the (noisy) domain-expert student;
//     the EM team's cross-check finds ~22 mismatched labels; after a
//     face-to-face the labels settle at 15 Yes / 66 No / 19 Unsure;
//   * iterations 1-2: 100 pairs each (29/64/7 and 24/72/4 in the paper);
//   * 300 total: 68 Yes / 200 No / 32 Unsure;
//   * leave-one-out cross-validation over the decided labels surfaces the
//     D1 (NC/NRSP), D2 (comparable-number mismatch), D3 (missing number,
//     similar title) discrepancy families.

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/feature/vectorizer.h"
#include "src/labeling/label_debugger.h"
#include "src/labeling/sampler.h"
#include "src/ml/random_forest.h"
#include "src/rules/number_pattern.h"

namespace {

using namespace emx;

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;

  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous,
                                    /*noise_rate=*/0.08);

  std::printf("=== E4: Section 8 sampling and labeling ===\n");
  LabeledSet first_pass;  // the student's raw labels
  LabeledSet labels;      // cross-checked labels
  for (size_t round = 0; round < 3; ++round) {
    CandidateSet sample = SamplePairs(blocks->c, 100, 100 + round, labels);
    size_t yes = 0, no = 0, unsure = 0, mismatches = 0;
    for (const RecordPair& p : sample) {
      Label raw = oracle.LabelPair(p);
      Label corrected = oracle.CorrectedLabel(p);
      if (raw != corrected) ++mismatches;
      first_pass.SetLabel(p, raw);
      labels.SetLabel(p, corrected);
      switch (corrected) {
        case Label::kYes: ++yes; break;
        case Label::kNo: ++no; break;
        case Label::kUnsure: ++unsure; break;
      }
    }
    const char* paper = round == 0   ? "[15/66/19, 22 label disagreements]"
                        : round == 1 ? "[29/64/7]"
                                     : "[24/72/4]";
    std::printf(
        "iteration %zu: %zu Yes / %zu No / %zu Unsure; first-pass vs "
        "cross-checked disagreements: %zu  %s\n",
        round, yes, no, unsure, mismatches, paper);
  }
  std::printf("total: %zu labeled = %zu Yes / %zu No / %zu Unsure  "
              "[300 = 68/200/32]\n\n",
              labels.size(), labels.CountYes(), labels.CountNo(),
              labels.CountUnsure());

  // §8 "Debugging the Labeled Sample": leave-one-out CV with a random
  // forest over the decided, non-sure-match pairs — run on the FIRST-PASS
  // labels, as the paper did (the D1-D3 discrepancies below drove the
  // corrections that produce the composition printed above).
  auto features = CaseStudyFeatures(u, s, /*case_fix=*/true);
  if (!features.ok()) return 1;
  std::vector<MatchRule> m1 = PositiveRulesV1();
  std::vector<LabeledPair> pairs;
  for (const LabeledPair& item : first_pass.items()) {
    if (m1[0].fires(u, item.pair.left, s, item.pair.right)) continue;
    pairs.push_back(item);
  }
  std::vector<RecordPair> just_pairs;
  for (const auto& item : pairs) just_pairs.push_back(item.pair);
  CandidateSet pair_set(just_pairs);
  auto matrix = VectorizePairs(u, s, pair_set, *features);
  if (!matrix.ok()) return 1;
  MeanImputer imputer;
  imputer.Fit(*matrix);
  if (!imputer.Transform(*matrix).ok()) return 1;
  // Align rows with `pairs` (VectorizePairs follows pair_set's sorted
  // order; our pairs vector must match it).
  std::vector<LabeledPair> sorted_pairs;
  for (const RecordPair& p : pair_set) {
    Label l;
    first_pass.GetLabel(p, &l);
    sorted_pairs.push_back({p, l});
  }
  auto discrepancies = DebugLabels(sorted_pairs, matrix->rows, [] {
    RandomForestOptions o;
    o.num_trees = 30;
    return std::make_unique<RandomForestMatcher>(o);
  });
  if (!discrepancies.ok()) {
    std::fprintf(stderr, "debug: %s\n",
                 discrepancies.status().ToString().c_str());
    return 1;
  }

  // Classify each discrepancy into the paper's D1/D2/D3 families.
  size_t d1 = 0, d2 = 0, d3 = 0, other = 0;
  for (const LabelDiscrepancy& d : *discrepancies) {
    std::string usda_title = s.at(d.pair.right, "AwardTitle").AsString();
    const Value& u_award = u.at(d.pair.left, "AwardNumber");
    const Value& s_award = s.at(d.pair.right, "AwardNumber");
    if (usda_title.size() > 7 &&
        usda_title.substr(usda_title.size() - 7) == "NC/NRSP") {
      ++d1;  // D1: similar titles, NC/NRSP suffix
    } else if (!u_award.is_null() && !s_award.is_null() &&
               ArePatternComparable(AwardNumberSuffix(u_award.AsString()),
                                    s_award.AsString())) {
      ++d2;  // D2: comparable-but-different numbers, similar titles
    } else if (s_award.is_null()) {
      ++d3;  // D3: missing USDA award number, similar titles
    } else {
      ++other;
    }
  }
  std::printf("--- §8 label debugging (leave-one-out CV, random forest) ---\n");
  std::printf("discrepancies: %zu total — D1(NC/NRSP)=%zu, "
              "D2(comparable numbers differ)=%zu, D3(missing number)=%zu, "
              "other=%zu\n",
              discrepancies->size(), d1, d2, d3, other);
  std::printf("[the paper found the same three families; D1 -> Unsure, D2 "
              "-> keep No, D3 -> Yes when dates within ~2 years]\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
