// P2 — blocking throughput and the inverted-index ablation: the overlap
// blocker's inverted index vs the naive all-pairs loop (via RuleBlocker
// computing the same predicate over the Cartesian product). This is the
// design choice that makes blocking cheaper than matching in the first
// place.

#include <benchmark/benchmark.h>

#include <thread>

#include "src/block/overlap_blocker.h"
#include "src/block/rule_blocker.h"
#include "src/block/similarity_join.h"
#include "src/core/executor.h"
#include "src/core/failpoint.h"
#include "src/datagen/case_study.h"
#include "src/datagen/preprocess.h"
#include "src/text/set_similarity.h"

namespace {

using namespace emx;

struct Fixture {
  Table umetrics;
  Table usda;
};

const Fixture& GetFixture() {
  static const Fixture& f = *[] {
    auto data = GenerateCaseStudy();
    auto tables = PreprocessCaseStudy(*data);
    auto* fx = new Fixture{std::move(tables->umetrics),
                           std::move(tables->usda)};
    return fx;
  }();
  return f;
}

void BM_AttrEquivalenceBlocker(benchmark::State& state) {
  const Fixture& f = GetFixture();
  auto blocker = MakeM1EquivalenceBlocker();
  for (auto _ : state) {
    auto c = blocker->Block(f.umetrics, f.usda);
    benchmark::DoNotOptimize(c->size());
  }
}
BENCHMARK(BM_AttrEquivalenceBlocker)->Unit(benchmark::kMillisecond);

void BM_OverlapBlockerIndexed(benchmark::State& state) {
  const Fixture& f = GetFixture();
  auto blocker = MakeTitleOverlapBlocker(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto c = blocker->Block(f.umetrics, f.usda);
    benchmark::DoNotOptimize(c->size());
  }
}
BENCHMARK(BM_OverlapBlockerIndexed)->Arg(1)->Arg(3)->Arg(7)
    ->Unit(benchmark::kMillisecond);

// Ablation: the identical K=3 predicate evaluated over the full Cartesian
// product (no inverted index).
void BM_OverlapBlockerNaive(benchmark::State& state) {
  const Fixture& f = GetFixture();
  // Precompute token sets once (both variants share this cost in spirit;
  // the ablated difference is the pair enumeration strategy).
  OverlapBlockerOptions opts;
  opts.left_attr = "AwardTitle";
  opts.right_attr = "AwardTitle";
  WhitespaceTokenizer tok;
  auto lt = internal_block::TokenizeColumn(
      *f.umetrics.ColumnByName("AwardTitle").value(), opts, tok);
  auto rt = internal_block::TokenizeColumn(
      *f.usda.ColumnByName("AwardTitle").value(), opts, tok);
  for (auto _ : state) {
    size_t kept = 0;
    for (const auto& a : lt) {
      for (const auto& b : rt) {
        if (OverlapSize(a, b) >= 3) ++kept;
      }
    }
    benchmark::DoNotOptimize(kept);
  }
}
BENCHMARK(BM_OverlapBlockerNaive)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_OverlapCoefficientBlocker(benchmark::State& state) {
  const Fixture& f = GetFixture();
  auto blocker = MakeTitleOverlapCoefficientBlocker(0.7);
  for (auto _ : state) {
    auto c = blocker->Block(f.umetrics, f.usda);
    benchmark::DoNotOptimize(c->size());
  }
}
BENCHMARK(BM_OverlapCoefficientBlocker)->Unit(benchmark::kMillisecond);

// Jaccard similarity join: prefix + size filtering vs verified-pair count.
void BM_JaccardJoin(benchmark::State& state) {
  const Fixture& f = GetFixture();
  OverlapBlockerOptions opts;
  opts.left_attr = "AwardTitle";
  opts.right_attr = "AwardTitle";
  double threshold = static_cast<double>(state.range(0)) / 10.0;
  JaccardJoinBlocker join(opts, threshold);
  size_t verified = 0;
  for (auto _ : state) {
    BlockStats stats;
    auto c = join.BlockWithStats(f.umetrics, f.usda, &stats);
    benchmark::DoNotOptimize(c->size());
    verified = stats.verified;
  }
  state.counters["verified_pairs"] =
      static_cast<double>(verified);
  state.counters["cartesian"] = static_cast<double>(
      f.umetrics.num_rows() * f.usda.num_rows());
}
BENCHMARK(BM_JaccardJoin)->Arg(5)->Arg(7)->Arg(9)
    ->Unit(benchmark::kMillisecond);

// Thread-count sweep over the §7 blockers: the same blocking runs pinned
// to 1/2/4/8-thread executors. Outputs are identical across the sweep (the
// executor's determinism guarantee); only wall-clock should move. The
// sweep_reliable counter mirrors BENCH_vectorize/BENCH_scale: 0 on a
// 1-core host, where every point in the sweep reads the same wall-clock
// no matter how well the pool scales.
void AnnotateSweep(benchmark::State& state) {
  unsigned host_cpus = std::thread::hardware_concurrency();
  state.counters["host_cpus"] = static_cast<double>(host_cpus);
  state.counters["sweep_reliable"] = host_cpus > 1 ? 1.0 : 0.0;
}

void BM_OverlapBlockerThreads(benchmark::State& state) {
  const Fixture& f = GetFixture();
  Executor pool(static_cast<size_t>(state.range(0)));
  ExecutorContext ctx{&pool};
  auto blocker = MakeTitleOverlapBlocker(3);
  for (auto _ : state) {
    auto c = blocker->Block(f.umetrics, f.usda, ctx);
    benchmark::DoNotOptimize(c->size());
  }
  AnnotateSweep(state);
}
BENCHMARK(BM_OverlapBlockerThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_JaccardJoinThreads(benchmark::State& state) {
  const Fixture& f = GetFixture();
  Executor pool(static_cast<size_t>(state.range(0)));
  ExecutorContext ctx{&pool};
  OverlapBlockerOptions opts;
  opts.left_attr = "AwardTitle";
  opts.right_attr = "AwardTitle";
  JaccardJoinBlocker join(opts, 0.7);
  for (auto _ : state) {
    auto c = join.Block(f.umetrics, f.usda, ctx);
    benchmark::DoNotOptimize(c->size());
  }
  AnnotateSweep(state);
}
BENCHMARK(BM_JaccardJoinThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SortedNeighborhood(benchmark::State& state) {
  const Fixture& f = GetFixture();
  SortedNeighborhoodBlocker blocker("AwardTitle", "AwardTitle",
                                    static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto c = blocker.Block(f.umetrics, f.usda);
    benchmark::DoNotOptimize(c->size());
  }
}
BENCHMARK(BM_SortedNeighborhood)->Arg(5)->Arg(20)
    ->Unit(benchmark::kMillisecond);

// Disarmed-failpoint overhead: the EMX_FAILPOINT sites sprinkled through
// csv/workflow/checkpoint code must cost one atomic load + branch when no
// fault is armed. This measures that fast path so a regression (e.g. someone
// adding a lock to Check()) is visible next to the blocking numbers it would
// tax.
void BM_FailpointDisarmedCheck(benchmark::State& state) {
  FailPoint& fp =
      FailPointRegistry::Global().GetOrCreate("bench/disarmed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp.Check().ok());
  }
}
BENCHMARK(BM_FailpointDisarmedCheck);

// The same blocking workload as BM_OverlapBlockerIndexed but running through
// an armed-but-inert failpoint configuration, demonstrating that even ARMED
// kOff points don't measurably tax the pipeline.
void BM_OverlapBlockerWithDisarmedFailpoints(benchmark::State& state) {
  const Fixture& f = GetFixture();
  auto blocker = MakeTitleOverlapBlocker(3);
  for (auto _ : state) {
    auto c = blocker->Block(f.umetrics, f.usda);
    benchmark::DoNotOptimize(c->size());
  }
}
BENCHMARK(BM_OverlapBlockerWithDisarmedFailpoints)
    ->Unit(benchmark::kMillisecond);

void BM_CandidateSetUnion(benchmark::State& state) {
  const Fixture& f = GetFixture();
  auto c1 = MakeM1EquivalenceBlocker()->Block(f.umetrics, f.usda).value();
  auto c2 = MakeTitleOverlapBlocker(3)->Block(f.umetrics, f.usda).value();
  auto c3 =
      MakeTitleOverlapCoefficientBlocker(0.7)->Block(f.umetrics, f.usda)
          .value();
  for (auto _ : state) {
    CandidateSet c = CandidateSet::UnionAll({&c1, &c2, &c3});
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_CandidateSetUnion);

}  // namespace

BENCHMARK_MAIN();
