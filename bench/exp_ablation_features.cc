// Ablation — which evidence carries the case study? The paper's debugging
// narrative credits specific design choices (case-insensitive features,
// the employee-name join, the negative rules); this harness removes each
// in turn and measures the final workflow against the synthetic gold
// standard. It is the quantified version of the §9/§12 design rationale.
//
// Configurations:
//   full            — case-fix features, EmployeeName joined, negative rules
//   no_case_fix     — auto features only (the pre-debugging state)
//   no_employee     — EmployeeName excluded from feature generation
//   no_neg_rules    — ML predictions taken as-is (Figure 9, not Figure 10)
//   rules_only      — positive rules alone (no ML stage at all)

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/eval/corleone_estimator.h"

namespace {

using namespace emx;

struct Config {
  const char* name;
  bool case_fix;
  bool use_employee;
  bool negative_rules;
  bool ml_stage;
};

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);

  const Config configs[] = {
      {"full", true, true, true, true},
      {"no_case_fix", false, true, true, true},
      {"no_employee", true, false, true, true},
      {"no_neg_rules", true, true, false, true},
      {"rules_only", true, true, false, false},
  };

  std::printf("=== Ablation: which evidence carries the case study? ===\n");
  std::printf("%-14s %8s %9s %9s %9s\n", "config", "matches", "precision",
              "recall", "F1");
  for (const Config& cfg : configs) {
    EmWorkflow wf;
    for (const MatchRule& r : PositiveRulesV2()) wf.AddPositiveRule(r);
    wf.AddBlocker(MakeM1EquivalenceBlocker());
    wf.AddBlocker(MakeTitleOverlapBlocker(3));
    wf.AddBlocker(MakeTitleOverlapCoefficientBlocker(0.7));
    if (cfg.negative_rules) {
      for (const MatchRule& r : NegativeRules()) wf.AddNegativeRule(r);
    }
    if (cfg.ml_stage) {
      // Train under this configuration's feature set. The employee
      // ablation drops the column from BOTH tables so feature generation
      // never sees it.
      Table u_cfg = u, s_cfg = s;
      if (!cfg.use_employee) {
        (void)u_cfg.DropColumn("EmployeeName");
        (void)s_cfg.DropColumn("EmployeeName");
      }
      auto trained = TrainBestMatcher(u_cfg, s_cfg, labels, PositiveRulesV1(),
                                      cfg.case_fix);
      if (!trained.ok()) {
        std::fprintf(stderr, "%s: %s\n", cfg.name,
                     trained.status().ToString().c_str());
        continue;
      }
      wf.SetMatcher(trained->matcher, trained->features, trained->imputer);
      auto run = wf.Run(u_cfg, s_cfg);
      if (!run.ok()) continue;
      GoldMetrics g =
          ComputeGoldMetrics(run->final_matches, data->gold, data->ambiguous);
      std::printf("%-14s %8zu %8.1f%% %8.1f%% %8.1f%%\n", cfg.name,
                  run->final_matches.size(), g.Precision() * 100.0,
                  g.Recall() * 100.0, g.F1() * 100.0);
    } else {
      auto run = wf.Run(u, s);
      if (!run.ok()) continue;
      GoldMetrics g =
          ComputeGoldMetrics(run->final_matches, data->gold, data->ambiguous);
      std::printf("%-14s %8zu %8.1f%% %8.1f%% %8.1f%%\n", cfg.name,
                  run->final_matches.size(), g.Precision() * 100.0,
                  g.Recall() * 100.0, g.F1() * 100.0);
    }
  }
  std::printf(
      "\n[expected shape: rules_only = IRIS-like (perfect P, low R); "
      "removing negative rules costs precision; removing the case fix or "
      "the employee join costs recall and/or precision]\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
