// E7 — reproduces the §10 / Figure 9 updated-workflow numbers after two
// complications: the newly discovered positive rule (award number ==
// project number) and the 496 late-arriving UMETRICS records.
//
// Paper values: 473 pairs in the original Cartesian product satisfy the
// new rule vs only 411 in C (so blocking had discarded some); sure matches
// 683 (original) + 55 (extra); candidate sets 2556 + 1220 after removing
// sure matches; the re-trained matcher adds 399 + 0 matches; 1,137 total.

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/eval/corleone_estimator.h"
#include "src/rules/match_rules.h"

namespace {

using namespace emx;

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  const Table& extra = tables->extra;

  std::printf("=== E7: Figure 9 updated EM workflow ===\n");

  // How the new positive rule interacts with the old blocking (§10).
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  std::vector<MatchRule> m4 = {
      MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber")};
  auto m4_cart = ApplyRulesCartesian(m4, u, s);
  auto m4_in_c = ApplyRulesToPairs(m4, u, s, blocks->c);
  std::printf("pairs satisfying new rule in Cartesian product: %zu  [473]\n",
              m4_cart->size());
  std::printf("pairs satisfying new rule in candidate set C:   %zu  [411]\n",
              m4_in_c->size());
  std::printf("=> blocking discarded %zu rule-satisfying pairs; the rule "
              "must be applied to the input tables directly\n",
              m4_cart->size() - m4_in_c->size());

  // Label + train once (labels are reused across branches, §10: "we did
  // not have to label any new pairs").
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.status().ToString().c_str());
    return 1;
  }

  EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                         /*with_negative_rules=*/false);
  auto original = wf.Run(u, s);
  auto patch = wf.Run(extra, s);
  if (!original.ok() || !patch.ok()) return 1;

  std::printf("--- original tables branch ---\n");
  std::printf("sure matches (M1 + new rule): %zu  [683]\n",
              original->sure_matches.size());
  std::printf("candidate set minus sure:     %zu  [2556]\n",
              original->ml_input.size());
  std::printf("ML-predicted matches:         %zu  [399]\n",
              original->ml_predicted.size());
  std::printf("--- extra-records branch ---\n");
  std::printf("sure matches:                 %zu  [55]\n",
              patch->sure_matches.size());
  std::printf("candidate set minus sure:     %zu  [1220]\n",
              patch->ml_input.size());
  std::printf("ML-predicted matches:         %zu  [0]\n",
              patch->ml_predicted.size());

  size_t total = original->final_matches.size() + patch->final_matches.size();
  std::printf("total matches:                %zu  [1137]\n", total);

  GoldMetrics g1 =
      ComputeGoldMetrics(original->final_matches, data->gold, data->ambiguous);
  GoldMetrics g2 = ComputeGoldMetrics(patch->final_matches, data->gold_extra,
                                      data->ambiguous_extra);
  std::printf(
      "vs gold (synthetic only): original P=%.1f%% R=%.1f%%; extra P=%.1f%% "
      "R=%.1f%%\n",
      g1.Precision() * 100.0, g1.Recall() * 100.0, g2.Precision() * 100.0,
      g2.Recall() * 100.0);
  return 0;
}

}  // namespace

int main() { return Run(); }
