// A2 — labeling-budget sensitivity. Labeling is the paper's costliest pain
// point ("while labeling a small number of pairs seems trivial, in practice
// it can take days"), and the team deliberately labeled in 100-pair
// iterations, stopping at 300. This harness quantifies that decision: how
// do the selected matcher and the final-workflow accuracy move as the
// labeled budget grows from 100 to 500 pairs?

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/eval/corleone_estimator.h"

namespace {

using namespace emx;

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);

  std::printf("=== A2: labeling-budget sensitivity ===\n");
  std::printf("%8s %10s %-20s %9s %9s %9s\n", "labels", "usable", "selected",
              "precision", "recall", "F1");
  for (size_t rounds = 1; rounds <= 5; ++rounds) {
    LabeledSet labels =
        CollectCorrectedLabels(oracle, blocks->c, rounds, 100, 100);
    auto trained =
        TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
    if (!trained.ok()) {
      std::printf("%8zu  (training failed: %s)\n", labels.size(),
                  trained.status().message().c_str());
      continue;
    }
    EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                           /*with_negative_rules=*/true);
    auto run = wf.Run(u, s);
    if (!run.ok()) continue;
    GoldMetrics g =
        ComputeGoldMetrics(run->final_matches, data->gold, data->ambiguous);
    std::printf("%8zu %10zu %-20s %8.1f%% %8.1f%% %8.1f%%\n", labels.size(),
                trained->train_data.size(),
                trained->cv_results.front().matcher_name.c_str(),
                g.Precision() * 100.0, g.Recall() * 100.0, g.F1() * 100.0);
  }
  std::printf(
      "\n[the paper stopped at 300 labels; the curve shows the marginal "
      "value of each additional 100-pair labeling session]\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
