// E3 — reproduces the §7 blocking numbers (and footnote 3):
//   Cartesian ~2.5M; overlap K sweep (K=1 ~200K, K=3 -> C2=2937, K=7 ->
//   "a few hundred"); overlap-coefficient 0.7 -> C3=1375; |C2∩C3|=1140,
//   |C2−C3|=1797, |C3−C2|=235; C = C1∪C2∪C3 = 3177; blocking-debugger
//   top-100 contains no missed true matches.

#include <cstdio>

#include "src/block/blocking_debugger.h"
#include "src/datagen/case_study.h"
#include "src/rules/match_rules.h"

namespace {

int Run() {
  using namespace emx;
  auto data_r = GenerateCaseStudy();
  if (!data_r.ok()) {
    std::fprintf(stderr, "generate: %s\n", data_r.status().ToString().c_str());
    return 1;
  }
  const CaseStudyData& data = *data_r;
  auto tables_r = PreprocessCaseStudy(data);
  if (!tables_r.ok()) {
    std::fprintf(stderr, "preprocess: %s\n",
                 tables_r.status().ToString().c_str());
    return 1;
  }
  const Table& u = tables_r->umetrics;
  const Table& s = tables_r->usda;

  std::printf("=== E3: Section 7 blocking (paper values in brackets) ===\n");
  std::printf("Cartesian product: %zu pairs  [~2.5M]\n",
              u.num_rows() * s.num_rows());

  auto c1 = MakeM1EquivalenceBlocker()->Block(u, s);
  std::printf("C1  attribute-equivalence on award-number suffix: %zu  [~210]\n",
              c1->size());

  std::printf("--- overlap blocker threshold sweep (AwardTitle, word tokens) ---\n");
  for (size_t k : {1, 2, 3, 5, 7}) {
    auto ck = MakeTitleOverlapBlocker(k)->Block(u, s);
    const char* note = k == 1   ? "[~200K]"
                       : k == 3 ? "[2937]"
                       : k == 7 ? "[a few hundred]"
                                : "";
    std::printf("K=%zu: %8zu pairs  %s\n", k, ck->size(), note);
  }

  auto c2 = MakeTitleOverlapBlocker(3)->Block(u, s);
  auto c3 = MakeTitleOverlapCoefficientBlocker(0.7)->Block(u, s);
  std::printf("C2  overlap K=3:            %zu  [2937]\n", c2->size());
  std::printf("C3  overlap-coefficient 0.7: %zu  [1375]\n", c3->size());
  std::printf("|C2 ∩ C3| = %zu  [1140]\n",
              emx::CandidateSet::Intersect(*c2, *c3).size());
  std::printf("|C2 − C3| = %zu  [1797]\n",
              emx::CandidateSet::Minus(*c2, *c3).size());
  std::printf("|C3 − C2| = %zu  [235]\n",
              emx::CandidateSet::Minus(*c3, *c2).size());

  CandidateSet c = CandidateSet::UnionAll({&*c1, &*c2, &*c3});
  std::printf("C = C1 ∪ C2 ∪ C3: %zu pairs  [3177]\n", c.size());

  // How many true matches survive blocking (the study could not know this).
  // The shortfall is exactly the retitled project-number pairs that only
  // the §10 positive rule can recover — the paper's 473-vs-411 discovery.
  size_t gold_in_c = 0, gold_rule_only = 0;
  auto m4 = ApplyRulesToPairs(
      {MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber")}, u, s,
      data.gold);
  for (const RecordPair& p : data.gold) {
    if (c.Contains(p)) {
      ++gold_in_c;
    } else if (m4->Contains(p)) {
      ++gold_rule_only;
    }
  }
  std::printf(
      "gold recall of C: %zu / %zu (%.1f%%); all %zu missed pairs carry "
      "project-number evidence (recovered by the Section 10 rule)\n",
      gold_in_c, data.gold.size(),
      100.0 * static_cast<double>(gold_in_c) /
          static_cast<double>(data.gold.size()),
      gold_rule_only);

  // §7 step 4: blocking debugger over the excluded pairs.
  BlockingDebuggerOptions dbg;
  dbg.attrs = {{"AwardTitle", "AwardTitle"}};
  dbg.top_k = 100;
  auto findings = DebugBlocking(u, s, c, dbg);
  if (!findings.ok()) {
    std::fprintf(stderr, "debugger: %s\n",
                 findings.status().ToString().c_str());
    return 1;
  }
  size_t missed_gold = 0;
  for (const DebuggerFinding& f : *findings) {
    if (data.gold.Contains(f.pair)) ++missed_gold;
  }
  std::printf(
      "blocking debugger: %zu candidate misses scored; true matches in "
      "top-100: %zu  [0 -> blocking accepted]\n",
      findings->size(), missed_gold);
  return 0;
}

}  // namespace

int main() { return Run(); }
