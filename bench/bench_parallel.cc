// Parallel-execution sweep: wall-clock for the three parallelized stages
// (overlap blocking, pair vectorization, random-forest training) pinned to
// 1/2/4/8-thread executors, on the case-study tables.
//
// Emits BENCH_parallel.json in the working directory — one record per
// (stage, threads) with wall_ms and speedup vs the same stage at 1 thread —
// plus host_cpus, because speedup is bounded by the physical cores the
// host actually grants (a 1-core container shows ~1.0 across the sweep no
// matter how well the pool scales elsewhere).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/executor.h"
#include "src/datagen/case_study.h"
#include "src/datagen/preprocess.h"
#include "src/feature/vectorizer.h"
#include "src/ml/random_forest.h"

namespace {

using namespace emx;

double TimeMs(const std::function<void()>& fn) {
  // Best of 3: the min is the least scheduler-noisy estimate on a busy host.
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Record {
  std::string stage;
  size_t threads;
  double wall_ms;
  double speedup;
};

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  auto features = CaseStudyFeatures(u, s, /*case_fix=*/true);
  if (!features.ok()) return 1;
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) return 1;
  const Dataset& train = trained->train_data;

  auto blocker = MakeTitleOverlapBlocker(3);
  const size_t sweep[] = {1, 2, 4, 8};
  std::vector<Record> records;

  for (size_t t : sweep) {
    Executor pool(t);
    ExecutorContext ctx{&pool};

    double block_ms = TimeMs([&] {
      auto c = blocker->Block(u, s, ctx);
      if (!c.ok() || c->empty()) std::abort();
    });
    records.push_back({"overlap_block", t, block_ms, 0.0});

    double vec_ms = TimeMs([&] {
      auto m = VectorizePairs(u, s, blocks->c, *features, ctx);
      if (!m.ok() || m->rows.empty()) std::abort();
    });
    records.push_back({"vectorize", t, vec_ms, 0.0});

    double fit_ms = TimeMs([&] {
      RandomForestMatcher forest;
      forest.set_executor(ctx);
      if (!forest.Fit(train).ok()) std::abort();
    });
    records.push_back({"rf_fit", t, fit_ms, 0.0});
  }

  // speedup = wall_ms at 1 thread / wall_ms at N threads, per stage.
  for (Record& r : records) {
    for (const Record& base : records) {
      if (base.stage == r.stage && base.threads == 1) {
        r.speedup = base.wall_ms / r.wall_ms;
      }
    }
  }

  unsigned host_cpus = std::thread::hardware_concurrency();
  // Same flag BENCH_vectorize records: on a 1-core host every speedup in
  // this sweep reads ~1.0 no matter how well the pool scales, so consumers
  // must not treat the numbers as a scaling measurement.
  bool sweep_reliable = host_cpus > 1;
  std::printf("host_cpus=%u%s\n", host_cpus,
              sweep_reliable ? "" : "  (1 CPU: thread sweep UNRELIABLE)");
  std::printf("%-14s %8s %10s %8s\n", "stage", "threads", "wall_ms",
              "speedup");
  for (const Record& r : records) {
    std::printf("%-14s %8zu %10.2f %8.2f\n", r.stage.c_str(), r.threads,
                r.wall_ms, r.speedup);
  }

  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (!f) return 1;
  std::fprintf(f,
               "{\n  \"host_cpus\": %u,\n  \"sweep_reliable\": %s,\n"
               "  \"results\": [\n",
               host_cpus, sweep_reliable ? "true" : "false");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"stage\": \"%s\", \"threads\": %zu, "
                 "\"wall_ms\": %.2f, \"speedup\": %.2f}%s\n",
                 r.stage.c_str(), r.threads, r.wall_ms, r.speedup,
                 i + 1 == records.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_parallel.json\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
