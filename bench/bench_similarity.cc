// P1 — similarity-measure throughput. Feature generation evaluates these
// measures millions of times across the candidate set; these benches show
// the per-call cost hierarchy (exact < jaro < levenshtein < token-set <
// monge-elkan) that motivates using cheap measures inside blocking and the
// expensive ones only on surviving pairs.

#include <benchmark/benchmark.h>

#include "src/core/random.h"
#include "src/datagen/vocab.h"
#include "src/text/sequence_similarity.h"
#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"

namespace {

using namespace emx;

// A deterministic pool of realistic title pairs.
std::vector<std::pair<std::string, std::string>> MakePairs(size_t n) {
  RandomEngine rng(99);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto a = MakeTitleTokens(rng);
    auto b = rng.NextBernoulli(0.5) ? a : MakeTitleTokens(rng);
    std::string sa, sb;
    for (const auto& t : a) {
      if (!sa.empty()) sa += ' ';
      sa += t;
    }
    for (const auto& t : b) {
      if (!sb.empty()) sb += ' ';
      sb += t;
    }
    out.push_back({sa, sb});
  }
  return out;
}

const auto& Pairs() {
  static const auto& pairs = *new auto(MakePairs(512));
  return pairs;
}

template <double (*Fn)(std::string_view, std::string_view)>
void BM_StringMeasure(benchmark::State& state) {
  const auto& pairs = Pairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(Fn(a, b));
  }
}

BENCHMARK(BM_StringMeasure<ExactMatch>);
BENCHMARK(BM_StringMeasure<JaroSimilarity>);
BENCHMARK(BM_StringMeasure<LevenshteinSimilarity>);
BENCHMARK(BM_StringMeasure<NeedlemanWunschSimilarity>);
BENCHMARK(BM_StringMeasure<SmithWatermanSimilarity>);

void BM_JaccardWs(benchmark::State& state) {
  const auto& pairs = Pairs();
  WhitespaceTokenizer tok;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(
        JaccardSimilarity(tok.Tokenize(a), tok.Tokenize(b)));
  }
}
BENCHMARK(BM_JaccardWs);

void BM_JaccardQgram3(benchmark::State& state) {
  const auto& pairs = Pairs();
  QgramTokenizer tok(3);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(
        JaccardSimilarity(tok.Tokenize(a), tok.Tokenize(b)));
  }
}
BENCHMARK(BM_JaccardQgram3);

void BM_MongeElkan(benchmark::State& state) {
  const auto& pairs = Pairs();
  WhitespaceTokenizer tok;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(
        MongeElkanSimilarity(tok.Tokenize(a), tok.Tokenize(b)));
  }
}
BENCHMARK(BM_MongeElkan);

// Tokenization alone, to separate its cost from the set measures.
void BM_TokenizeWhitespace(benchmark::State& state) {
  const auto& pairs = Pairs();
  WhitespaceTokenizer tok;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Tokenize(pairs[i++ & 511].first));
  }
}
BENCHMARK(BM_TokenizeWhitespace);

void BM_TokenizeQgram3(benchmark::State& state) {
  const auto& pairs = Pairs();
  QgramTokenizer tok(3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Tokenize(pairs[i++ & 511].first));
  }
}
BENCHMARK(BM_TokenizeQgram3);

}  // namespace

BENCHMARK_MAIN();
