// P1 — similarity-measure throughput. Feature generation evaluates these
// measures millions of times across the candidate set; these benches show
// the per-call cost hierarchy (exact < jaro < levenshtein < token-set <
// monge-elkan) that motivates using cheap measures inside blocking and the
// expensive ones only on surviving pairs.
//
// Modes:
//   bench_similarity                   google-benchmark micro-benches (as
//                                      before)
//   bench_similarity --seq             sequence-kernel before/after: times
//                                      every sequence measure through both
//                                      the scalar oracle and the bit-parallel
//                                      / scratch-backed kernel over the
//                                      case-study candidate-pair corpus and
//                                      writes BENCH_sequence.json
//   bench_similarity --smoke BASELINE  small deterministic fixture; compares
//                                      the measured kernel-vs-scalar
//                                      Levenshtein speedup against
//                                      "speedup_kernel_vs_scalar_lev" in
//                                      BASELINE and exits 1 when the kernel
//                                      has regressed more than 2x vs it

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/random.h"
#include "src/datagen/case_study.h"
#include "src/datagen/preprocess.h"
#include "src/datagen/vocab.h"
#include "src/text/batch_kernel.h"
#include "src/text/phonetic.h"
#include "src/text/sequence_kernel.h"
#include "src/text/sequence_similarity.h"
#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"

namespace {

using namespace emx;

// A deterministic pool of realistic title pairs.
std::vector<std::pair<std::string, std::string>> MakePairs(size_t n) {
  RandomEngine rng(99);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto a = MakeTitleTokens(rng);
    auto b = rng.NextBernoulli(0.5) ? a : MakeTitleTokens(rng);
    std::string sa, sb;
    for (const auto& t : a) {
      if (!sa.empty()) sa += ' ';
      sa += t;
    }
    for (const auto& t : b) {
      if (!sb.empty()) sb += ' ';
      sb += t;
    }
    out.push_back({sa, sb});
  }
  return out;
}

const auto& Pairs() {
  static const auto& pairs = *new auto(MakePairs(512));
  return pairs;
}

template <double (*Fn)(std::string_view, std::string_view)>
void BM_StringMeasure(benchmark::State& state) {
  const auto& pairs = Pairs();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(Fn(a, b));
  }
}

BENCHMARK(BM_StringMeasure<ExactMatch>);
BENCHMARK(BM_StringMeasure<JaroSimilarity>);
BENCHMARK(BM_StringMeasure<LevenshteinSimilarity>);
BENCHMARK(BM_StringMeasure<NeedlemanWunschSimilarity>);
BENCHMARK(BM_StringMeasure<SmithWatermanSimilarity>);

// The retained scalar oracles, for an always-available before/after in the
// micro-bench output too.
BENCHMARK(BM_StringMeasure<oracle::LevenshteinSimilarity>);
BENCHMARK(BM_StringMeasure<oracle::JaroSimilarity>);

void BM_JaccardWs(benchmark::State& state) {
  const auto& pairs = Pairs();
  WhitespaceTokenizer tok;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(
        JaccardSimilarity(tok.Tokenize(a), tok.Tokenize(b)));
  }
}
BENCHMARK(BM_JaccardWs);

void BM_JaccardQgram3(benchmark::State& state) {
  const auto& pairs = Pairs();
  QgramTokenizer tok(3);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(
        JaccardSimilarity(tok.Tokenize(a), tok.Tokenize(b)));
  }
}
BENCHMARK(BM_JaccardQgram3);

void BM_MongeElkan(benchmark::State& state) {
  const auto& pairs = Pairs();
  WhitespaceTokenizer tok;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(
        MongeElkanSimilarity(tok.Tokenize(a), tok.Tokenize(b)));
  }
}
BENCHMARK(BM_MongeElkan);

// Tokenization alone, to separate its cost from the set measures.
void BM_TokenizeWhitespace(benchmark::State& state) {
  const auto& pairs = Pairs();
  WhitespaceTokenizer tok;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Tokenize(pairs[i++ & 511].first));
  }
}
BENCHMARK(BM_TokenizeWhitespace);

void BM_TokenizeQgram3(benchmark::State& state) {
  const auto& pairs = Pairs();
  QgramTokenizer tok(3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Tokenize(pairs[i++ & 511].first));
  }
}
BENCHMARK(BM_TokenizeQgram3);

// --- sequence-kernel before/after (--seq / --smoke) -------------------------

using PairCorpus = std::vector<std::pair<std::string, std::string>>;

// Times `fn` once over the whole corpus, best of `reps`, returns ns/pair.
double NsPerPair(const PairCorpus& corpus, int reps,
                 const std::function<double(std::string_view,
                                            std::string_view)>& fn) {
  double best = 1e300;
  double sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& [a, b] : corpus) sink += fn(a, b);
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  benchmark::DoNotOptimize(sink);
  return corpus.empty() ? 0.0 : best / static_cast<double>(corpus.size());
}

using BatchSimFn = void (*)(const std::string_view*, const std::string_view*,
                            size_t, double*);

// Times one columnar batch call over the whole corpus, best of `reps`,
// returns ns/pair. The lane arrays are built once outside the timed region —
// in production VectorizePairsBatch amortizes the gather the same way.
double NsPerPairBatch(const PairCorpus& corpus, int reps, BatchSimFn fn) {
  std::vector<std::string_view> av, bv;
  av.reserve(corpus.size());
  bv.reserve(corpus.size());
  for (const auto& [a, b] : corpus) {
    av.push_back(a);
    bv.push_back(b);
  }
  std::vector<double> out(corpus.size());
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    fn(av.data(), bv.data(), av.size(), out.data());
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  benchmark::DoNotOptimize(out.data());
  return corpus.empty() ? 0.0 : best / static_cast<double>(corpus.size());
}

struct MeasureRow {
  const char* name;
  double scalar_ns = 0;
  double kernel_ns = 0;
  double batch_ns = 0;
  double speedup() const { return kernel_ns > 0 ? scalar_ns / kernel_ns : 0; }
  double batch_speedup() const {
    return batch_ns > 0 ? scalar_ns / batch_ns : 0;
  }
};

// One before/after row per sequence measure over `corpus`.
std::vector<MeasureRow> MeasureSequenceKernels(const PairCorpus& corpus,
                                               int reps) {
  std::vector<MeasureRow> rows;
  auto add = [&](const char* name,
                 double (*kernel)(std::string_view, std::string_view),
                 double (*scalar)(std::string_view, std::string_view),
                 BatchSimFn batch) {
    MeasureRow r{name};
    // Warm-up pass grows every thread-local scratch lane to its high-water
    // mark so the kernel numbers reflect steady state, as in feature gen.
    for (const auto& [a, b] : corpus) benchmark::DoNotOptimize(kernel(a, b));
    r.kernel_ns = NsPerPair(corpus, reps, kernel);
    r.scalar_ns = NsPerPair(corpus, reps, scalar);
    r.batch_ns = NsPerPairBatch(corpus, reps, batch);
    rows.push_back(r);
  };
  add("levenshtein", LevenshteinSimilarity, oracle::LevenshteinSimilarity,
      LevenshteinSimilarityBatch);
  add("jaro", JaroSimilarity, oracle::JaroSimilarity, JaroSimilarityBatch);
  add("jaro_winkler",
      [](std::string_view a, std::string_view b) {
        return JaroWinklerSimilarity(a, b);
      },
      [](std::string_view a, std::string_view b) {
        return oracle::JaroWinklerSimilarity(a, b);
      },
      [](const std::string_view* a, const std::string_view* b, size_t n,
         double* out) { JaroWinklerSimilarityBatch(a, b, n, out); });
  add("needleman_wunsch",
      [](std::string_view a, std::string_view b) {
        return NeedlemanWunschSimilarity(a, b);
      },
      [](std::string_view a, std::string_view b) {
        return oracle::NeedlemanWunschSimilarity(a, b);
      },
      NeedlemanWunschSimilarityBatch);
  add("smith_waterman",
      [](std::string_view a, std::string_view b) {
        return SmithWatermanSimilarity(a, b);
      },
      [](std::string_view a, std::string_view b) {
        return oracle::SmithWatermanSimilarity(a, b);
      },
      SmithWatermanSimilarityBatch);
  add("affine_gap",
      [](std::string_view a, std::string_view b) {
        return AffineGapSimilarity(a, b);
      },
      [](std::string_view a, std::string_view b) {
        return oracle::AffineGapSimilarity(a, b);
      },
      AffineGapSimilarityBatch);
  return rows;
}

double BatchSpeedupOf(const std::vector<MeasureRow>& rows, const char* name) {
  for (const auto& r : rows) {
    if (std::strcmp(r.name, name) == 0) return r.batch_speedup();
  }
  return 0;
}

double LevSpeedup(const std::vector<MeasureRow>& rows) {
  for (const auto& r : rows) {
    if (std::strcmp(r.name, "levenshtein") == 0) return r.speedup();
  }
  return 0;
}

// The case-study pair corpus: the attribute-value pairs feature generation
// actually scores — (AwardTitle, AwardTitle) and (EmployeeName,
// EmployeeName) for every candidate pair the standard blockers emit. Titles
// are long (often crossing the 64-char single-word boundary); names are
// short — together they cover both kernel paths with production strings.
bool BuildCaseStudyCorpus(PairCorpus* out) {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return false;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return false;
  auto blocks = RunStandardBlocking(tables->umetrics, tables->usda);
  if (!blocks.ok()) return false;
  for (const char* attr : {"AwardTitle", "EmployeeName"}) {
    for (const RecordPair& p : blocks->c) {
      const Value& a = tables->umetrics.at(p.left, attr);
      const Value& b = tables->usda.at(p.right, attr);
      if (a.is_null() || b.is_null()) continue;
      out->push_back({a.AsString(), b.AsString()});
    }
  }
  return !out->empty();
}

int RunSeq() {
  PairCorpus corpus;
  if (!BuildCaseStudyCorpus(&corpus)) {
    std::fprintf(stderr, "--seq: failed to build case-study corpus\n");
    return 1;
  }
  std::vector<MeasureRow> rows = MeasureSequenceKernels(corpus, /*reps=*/5);

  unsigned host_cpus = std::thread::hardware_concurrency();
  // The numbers are single-thread, but on a 1-CPU host even those fight the
  // rest of the system for the core; flag them like the vectorize sweep.
  bool sweep_reliable = host_cpus > 1;
  std::printf("host_cpus=%u%s\n", host_cpus,
              sweep_reliable ? "" : "  (1 CPU: timings UNRELIABLE)");
  std::printf("pairs=%zu (case-study candidate set, title + name attrs)\n",
              corpus.size());
  std::printf("simd_level=%d (0=scalar 1=sse2 2=avx2)\n",
              static_cast<int>(ActiveSimdLevel()));
  std::printf("%-18s %12s %12s %12s %8s %8s\n", "measure", "scalar_ns",
              "kernel_ns", "batch_ns", "kernel", "batch");
  for (const auto& r : rows) {
    std::printf("%-18s %12.1f %12.1f %12.1f %7.2fx %7.2fx\n", r.name,
                r.scalar_ns, r.kernel_ns, r.batch_ns, r.speedup(),
                r.batch_speedup());
  }

  std::FILE* f = std::fopen("BENCH_sequence.json", "w");
  if (!f) return 1;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(f, "  \"sweep_reliable\": %s,\n",
               sweep_reliable ? "true" : "false");
  std::fprintf(f, "  \"pairs\": %zu,\n", corpus.size());
  std::fprintf(f, "  \"simd_level\": %d,\n",
               static_cast<int>(ActiveSimdLevel()));
  std::fprintf(f, "  \"speedup_kernel_vs_scalar_lev\": %.2f,\n",
               LevSpeedup(rows));
  std::fprintf(f, "  \"speedup_batch_vs_scalar_jaro\": %.2f,\n",
               BatchSpeedupOf(rows, "jaro"));
  std::fprintf(f, "  \"speedup_batch_vs_scalar_nw\": %.2f,\n",
               BatchSpeedupOf(rows, "needleman_wunsch"));
  std::fprintf(f, "  \"speedup_batch_vs_scalar_sw\": %.2f,\n",
               BatchSpeedupOf(rows, "smith_waterman"));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"measure\": \"%s\", \"scalar_ns_per_pair\": %.1f, "
                 "\"kernel_ns_per_pair\": %.1f, \"batch_ns_per_pair\": %.1f, "
                 "\"speedup\": %.2f, \"batch_speedup\": %.2f}%s\n",
                 r.name, r.scalar_ns, r.kernel_ns, r.batch_ns, r.speedup(),
                 r.batch_speedup(), i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_sequence.json\n");
  return 0;
}

// Extracts "key": <number> from a JSON file with a text scan (no JSON dep).
bool ReadJsonNumber(const char* path, const char* key, double* out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string needle = std::string("\"") + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + 1, nullptr);
  return true;
}

// Small deterministic fixture for CI: title-like strings 20–70 chars over a
// reused vocabulary, half near-duplicates — the regime the Levenshtein
// kernel exists for.
PairCorpus SmokeCorpus(size_t n) {
  const char* vocab[] = {"applied", "corn",  "ecology", "swamp", "dodder",
                         "study",   "award", "yield",   "title", "genetics",
                         "of",      "the",   "maize",   "fund",  "research"};
  const size_t nv = sizeof(vocab) / sizeof(vocab[0]);
  uint64_t state = 42;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<size_t>(state >> 33);
  };
  auto sentence = [&] {
    std::string s;
    size_t words = 3 + next() % 6;
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) s += ' ';
      s += vocab[next() % nv];
    }
    return s;
  };
  PairCorpus out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string a = sentence();
    std::string b = a;
    if (next() % 2 == 0) {
      b = sentence();
    } else if (!b.empty()) {
      b[next() % b.size()] = 'x';  // near-duplicate: one substitution
    }
    out.push_back({std::move(a), std::move(b)});
  }
  return out;
}

int RunSmoke(const char* baseline_path) {
  double baseline = 0;
  if (!ReadJsonNumber(baseline_path, "speedup_kernel_vs_scalar_lev",
                      &baseline) ||
      baseline <= 0) {
    std::fprintf(stderr,
                 "smoke: cannot read speedup_kernel_vs_scalar_lev from %s\n",
                 baseline_path);
    return 1;
  }

  PairCorpus corpus = SmokeCorpus(4000);
  std::vector<MeasureRow> rows = MeasureSequenceKernels(corpus, /*reps=*/5);
  double measured = LevSpeedup(rows);

  std::printf("host_cpus=%u\n", std::thread::hardware_concurrency());
  for (const auto& r : rows) {
    std::printf(
        "smoke: %-18s scalar=%.1fns kernel=%.1fns batch=%.1fns "
        "%.2fx/%.2fx\n",
        r.name, r.scalar_ns, r.kernel_ns, r.batch_ns, r.speedup(),
        r.batch_speedup());
  }
  std::printf("smoke: measured lev speedup %.2fx, baseline %.2fx\n", measured,
              baseline);
  // The gate is a RATIO of two same-host measurements, so it transfers
  // across hardware: the bit-parallel kernel losing >2x of its advantage
  // over the retained scalar oracle (vs what the baseline recorded) fails
  // the build. The DP-parity measures (NW/SW/affine) are reported but not
  // gated — their kernel is the same O(mn) recurrence, so their ratio sits
  // near 1x inside scheduler noise.
  if (measured < baseline / 2.0) {
    std::fprintf(stderr,
                 "smoke: FAIL — kernel-vs-scalar Levenshtein speedup %.2fx "
                 "fell below half the baseline %.2fx (kernel regressed >2x)\n",
                 measured, baseline);
    return 1;
  }
  std::printf("smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--seq") == 0) return RunSeq();
  if (argc == 3 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke(argv[2]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
