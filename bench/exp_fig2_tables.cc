// E1 — reproduces Figure 2 (the raw-table inventory the UMETRICS team
// shipped) plus the §4 data-understanding pass: row/column counts for all
// seven tables and a pandas-profiling-style summary of the key columns.
//
// The employee/vendor/subaward tables are generated at a reduced scale by
// default (the paper's 1.45M-row employee table adds nothing but time);
// paper-scale counts are shown alongside.

#include <cstdio>

#include "src/datagen/universe.h"
#include "src/table/profile.h"

namespace {

using namespace emx;

void PrintRow(const char* name, const Table& t, size_t paper_rows,
              size_t paper_cols) {
  std::printf("%-34s %9zu %6zu   [%9zu %6zu]\n", name, t.num_rows(),
              t.num_columns(), paper_rows, paper_cols);
}

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::printf("=== E1: Figure 2 — table summary (generated vs [paper]) ===\n");
  std::printf("%-34s %9s %6s   [%9s %6s]\n", "table", "rows", "cols", "rows",
              "cols");
  PrintRow("UMETRICSAwardAggMatching", data->umetrics_award_agg, 1336, 13);
  PrintRow("UMETRICSEmployeesMatching", data->umetrics_employees, 1454070, 13);
  PrintRow("UMETRICSObjectCodesMatching", data->umetrics_object_codes, 4574, 3);
  PrintRow("UMETRICSOrgUnitMatching", data->umetrics_org_units, 264, 5);
  PrintRow("UMETRICSSubAwardMatching", data->umetrics_subaward, 21470, 23);
  PrintRow("UMETRICSVendorMatching", data->umetrics_vendor, 377746, 21);
  PrintRow("USDAAwardMatching", data->usda, 1915, 78);
  PrintRow("(extra UMETRICS records, §10)", data->extra_umetrics_agg, 496, 13);
  std::printf("(employee/vendor/subaward generated at reduced scale; set "
              "UniverseOptions::paper_scale for full size)\n\n");

  std::printf("--- §4 exploration: UMETRICSAwardAggMatching profile ---\n");
  std::printf("%s\n", ProfileTable(data->umetrics_award_agg).ToString().c_str());

  std::printf("--- §4 exploration: USDAAwardMatching key columns ---\n");
  for (const char* col : {"AccessionNumber", "ProjectTitle", "AwardNumber",
                          "ProjectNumber", "ProjectDirector"}) {
    auto p = ProfileColumn(data->usda, col);
    if (!p.ok()) continue;
    std::printf("  %-18s missing=%-5zu unique=%zu\n", p->name.c_str(),
                p->missing, p->unique);
  }

  std::printf("\n--- sample rows (Figure 3/4 analogues) ---\n");
  std::printf("%s\n", data->umetrics_award_agg.Preview(3).c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
