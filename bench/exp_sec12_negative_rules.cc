// E9 — reproduces the §12 / Figure 10 final workflow: the hand-crafted
// negative comparability rules are applied to the learning-based matcher's
// predictions (R1, R2), trading a little recall for a large precision gain.
//
// Paper values (Corleone estimates on the same 400 labeled pairs):
//   ML + negative rules: P(96.7, 98.8)  R(94.2, 97.05); final 845 matches
//   ML only:             P(75.2, 80.3)  R(98.1, 99.6)
//   IRIS:                P(100, 100)    R(65.1, 71.8)

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/datagen/iris_matcher.h"
#include "src/eval/corleone_estimator.h"
#include "src/labeling/sampler.h"

namespace {

using namespace emx;

void PrintEstimate(const char* who, const AccuracyEstimate& est,
                   const char* paper) {
  std::printf("%-22s precision %s  recall %s   %s\n", who,
              est.precision.ToString().c_str(), est.recall.ToString().c_str(),
              paper);
}

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;
  const Table& extra = tables->extra;

  const uint32_t off = static_cast<uint32_t>(u.num_rows());
  CandidateSet gold_all =
      CandidateSet::Union(data->gold, data->gold_extra.WithLeftOffset(off));
  CandidateSet amb_all = CandidateSet::Union(
      data->ambiguous, data->ambiguous_extra.WithLeftOffset(off));
  OracleLabeler oracle = MakeOracle(gold_all, amb_all);

  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  LabeledSet train_labels =
      CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained = TrainBestMatcher(u, s, train_labels, PositiveRulesV1(),
                                  /*case_fix=*/true);
  if (!trained.ok()) return 1;

  // The same workflow, with and without the negative-rule stage.
  EmWorkflow ml_only = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                              /*with_negative_rules=*/false);
  EmWorkflow with_rules = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                                 /*with_negative_rules=*/true);
  auto ml_run = ml_only.Run(u, s);
  auto ml_run_extra = ml_only.Run(extra, s);
  auto rule_run = with_rules.Run(u, s);
  auto rule_run_extra = with_rules.Run(extra, s);
  if (!ml_run.ok() || !ml_run_extra.ok() || !rule_run.ok() ||
      !rule_run_extra.ok()) {
    return 1;
  }

  std::printf("=== E9: Figure 10 final workflow (ML + negative rules) ===\n");
  std::printf("selected matcher: %s (cv F1 %.1f%%) on %zu usable labels\n",
              trained->cv_results.front().matcher_name.c_str(),
              trained->cv_results.front().mean_f1 * 100.0,
              trained->train_data.size());
  std::printf("negative rules flipped %zu of %zu ML matches\n",
              rule_run->flipped.size(), rule_run->ml_predicted.size());
  size_t final_total =
      rule_run->final_matches.size() + rule_run_extra->final_matches.size();
  std::printf("final match set: %zu (original) + %zu (extra) = %zu  [845]\n",
              rule_run->final_matches.size(),
              rule_run_extra->final_matches.size(), final_total);

  // Both systems' matches over both branches, in one universe.
  CandidateSet ours_rules = CandidateSet::Union(
      rule_run->final_matches,
      rule_run_extra->final_matches.WithLeftOffset(off));
  CandidateSet ours_ml = CandidateSet::Union(
      ml_run->final_matches, ml_run_extra->final_matches.WithLeftOffset(off));
  auto iris_orig = RunIrisMatcher(u, s);
  auto iris_extra = RunIrisMatcher(extra, s);
  if (!iris_orig.ok() || !iris_extra.ok()) return 1;
  CandidateSet iris =
      CandidateSet::Union(*iris_orig, iris_extra->WithLeftOffset(off));
  CandidateSet universe = CandidateSet::Union(ml_run->candidates, iris);
  universe = CandidateSet::Union(universe,
                                 ml_run_extra->candidates.WithLeftOffset(off));

  // Corleone estimates on a 400-pair labeled sample of the same universe
  // (the §12 evaluation reuses the §11 labels — same seed here).
  LabeledSet eval_labels;
  for (const RecordPair& p : SamplePairs(universe, 400, 4040, eval_labels)) {
    eval_labels.SetLabel(p, oracle.CorrectedLabel(p));
  }
  std::printf("\n--- Corleone estimates, 400 labeled pairs ---\n");
  auto est_rules = EstimateAccuracy(ours_rules, eval_labels);
  auto est_ml = EstimateAccuracy(ours_ml, eval_labels);
  auto est_iris = EstimateAccuracy(iris, eval_labels);
  PrintEstimate("ML + negative rules", *est_rules,
                "[P(96.7,98.8) R(94.2,97.05)]");
  PrintEstimate("ML only", *est_ml, "[P(75.2,80.3) R(98.1,99.6)]");
  PrintEstimate("IRIS", *est_iris, "[P(100,100)   R(65.1,71.8)]");

  std::printf("\n--- exact values against the synthetic gold standard ---\n");
  GoldMetrics g_rules = ComputeGoldMetrics(ours_rules, gold_all, amb_all);
  GoldMetrics g_ml = ComputeGoldMetrics(ours_ml, gold_all, amb_all);
  GoldMetrics g_iris = ComputeGoldMetrics(iris, gold_all, amb_all);
  std::printf("ML + negative rules: P=%.1f%% R=%.1f%%\n",
              g_rules.Precision() * 100.0, g_rules.Recall() * 100.0);
  std::printf("ML only:             P=%.1f%% R=%.1f%%\n",
              g_ml.Precision() * 100.0, g_ml.Recall() * 100.0);
  std::printf("IRIS:                P=%.1f%% R=%.1f%%\n",
              g_iris.Precision() * 100.0, g_iris.Recall() * 100.0);
  return 0;
}

}  // namespace

int main() { return Run(); }
