// E7b — reproduces the §10 "Should We Match at the Cluster Level?"
// analysis. The UMETRICS team wanted one-to-one matches; the EM team
// instead quantified the one-to-many structure of the predicted match set
// and showed it affects few matches ("probably would have an insignificant
// effect on their domain science"), so record-level matching was kept.
//
// This harness prints that analysis — the cardinality histogram, the
// sub-award cluster size distribution — and ALSO runs the cluster-level
// alternative (greedy one-to-one restriction by match score) to show what
// would have been lost had the team insisted.

#include <cstdio>
#include <map>

#include "src/datagen/case_study.h"
#include "src/eval/corleone_estimator.h"
#include "src/workflow/cluster_analysis.h"

namespace {

using namespace emx;

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;

  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels = CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained =
      TrainBestMatcher(u, s, labels, PositiveRulesV1(), /*case_fix=*/true);
  if (!trained.ok()) return 1;
  EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                         /*with_negative_rules=*/true);
  auto run = wf.Run(u, s);
  if (!run.ok()) return 1;

  std::printf("=== E7b: Section 10 cluster-level analysis ===\n");
  CardinalityStats stats = AnalyzeCardinality(run->final_matches);
  std::printf("match cardinality: %s\n", stats.ToString().c_str());
  std::printf("[the paper's conclusion: one-to-many affects few matches, "
              "so record-level matching was kept]\n\n");

  // Sub-award cluster sizes (connected components of the match graph).
  auto clusters = MatchClusters(run->final_matches);
  std::map<size_t, size_t> size_histogram;
  for (const auto& c : clusters) ++size_histogram[c.size()];
  std::printf("clusters: %zu components over %zu match pairs\n",
              clusters.size(), run->final_matches.size());
  for (const auto& [size, count] : size_histogram) {
    std::printf("  %zu-pair clusters: %zu\n", size, count);
  }

  // The counterfactual: force one-to-one greedily by matcher confidence.
  std::vector<double> scores(run->final_matches.size(), 1.0);
  {
    // Sure matches get confidence 1; ML matches their predicted proba.
    auto matrix = VectorizePairs(u, s, run->final_matches, trained->features);
    if (matrix.ok()) {
      (void)trained->imputer.Transform(*matrix);
      std::vector<double> proba = trained->matcher->PredictProba(matrix->rows);
      for (size_t i = 0; i < scores.size(); ++i) {
        if (!run->sure_matches.Contains(run->final_matches[i])) {
          scores[i] = proba[i];
        }
      }
    }
  }
  CandidateSet one_to_one = GreedyOneToOne(run->final_matches, scores);
  GoldMetrics record_level =
      ComputeGoldMetrics(run->final_matches, data->gold, data->ambiguous);
  GoldMetrics cluster_level =
      ComputeGoldMetrics(one_to_one, data->gold, data->ambiguous);
  std::printf("\n--- record-level vs forced one-to-one (counterfactual) ---\n");
  std::printf("record-level: %zu matches, P=%.1f%% R=%.1f%%\n",
              run->final_matches.size(), record_level.Precision() * 100.0,
              record_level.Recall() * 100.0);
  std::printf("one-to-one:   %zu matches, P=%.1f%% R=%.1f%%\n",
              one_to_one.size(), cluster_level.Precision() * 100.0,
              cluster_level.Recall() * 100.0);
  std::printf("=> forcing one-to-one drops %zu legitimate sub-award pairs "
              "(the reason the team kept record-level matching)\n",
              run->final_matches.size() - one_to_one.size());
  return 0;
}

}  // namespace

int main() { return Run(); }
