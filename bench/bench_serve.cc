// Resident-service latency harness: MatchService point lookups vs the
// batch pipeline on the scale-factor corpus.
//
// Full mode builds the servable scale workflow (overlap K=3 + overlap
// coefficient 0.7 on AwardTitle, title-Jaccard decision tree), times the
// batch run as the reference, then stands up a MatchService over the right
// table and sweeps a point lookup over every left record. Every lookup is
// checked against the batch run restricted to that record — matched ids,
// provenance, candidate and sure counts — and any divergence is a HARD
// FAIL: the bench measures a service that answers bit-identically or it
// measures nothing. It then exercises the delta path (insert + remove +
// compact) and reports:
//   - per-stage p50/p99 from the service's latency rings
//     (block / vectorize / score / rules / total)
//   - lookup throughput and the service_vs_batch ratio
//     (batch wall / total lookup wall; > 1 means the resident service
//     answered the same workload faster than one batch run)
//   - ingest op costs and post-compaction index state
// Emits BENCH_serve.json in the working directory.
//
// Usage:
//   bench_serve                   full bench at SF=1, writes BENCH_serve.json
//   bench_serve --sf=N            full bench at scale factor N
//   bench_serve --smoke BASELINE  tiny corpus; verifies service == batch for
//                                 every record and compares the measured
//                                 "service_vs_batch" ratio against BASELINE,
//                                 exiting 1 on a >2x relative regression

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/block/overlap_blocker.h"
#include "src/core/executor.h"
#include "src/datagen/scale_corpus.h"
#include "src/feature/feature.h"
#include "src/ml/decision_tree.h"
#include "src/serve/match_service.h"
#include "src/workflow/em_workflow.h"

namespace {

using namespace emx;

double OnceMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// The same serve-compatible workflow the oracle tests use: both blockers
// share one delta token index inside the service; the matcher path runs
// block -> vectorize -> score for every lookup (no sure rules).
EmWorkflow BuildScaleWorkflow() {
  EmWorkflow wf;
  OverlapBlockerOptions opts;
  opts.left_attr = "AwardTitle";
  opts.right_attr = "AwardTitle";
  opts.lowercase = true;
  wf.AddBlocker(std::make_shared<OverlapBlocker>(opts, 3));
  wf.AddBlocker(std::make_shared<OverlapCoefficientBlocker>(opts, 0.7));
  FeatureSet features;
  features.features.push_back(
      MakeJaccardFeature("AwardTitle", "AwardTitle", /*qgram=*/0,
                         /*lowercase=*/true));
  Dataset d;
  d.feature_names = features.names();
  d.x = {{1.0}, {0.8}, {0.3}, {0.0}};
  d.y = {1, 1, 0, 0};
  FeatureMatrix m;
  m.feature_names = d.feature_names;
  m.rows = d.x;
  MeanImputer imputer;
  imputer.Fit(m);
  auto tree = std::make_shared<DecisionTreeMatcher>();
  if (!tree->Fit(d).ok()) std::abort();
  wf.SetMatcher(std::move(tree), std::move(features), std::move(imputer));
  return wf;
}

// Batch answer for one left record, for the divergence check.
struct Slice {
  std::map<uint32_t, std::string> matches;
  size_t candidates = 0;
  size_t sure = 0;
};

std::vector<Slice> SliceByLeft(const WorkflowRunResult& run,
                               size_t left_rows) {
  std::vector<Slice> out(left_rows);
  for (const RecordPair& p : run.final_matches) {
    out[p.left].matches[p.right] = run.provenance.ProvenanceOf(p);
  }
  for (const RecordPair& p : run.candidates) ++out[p.left].candidates;
  for (const RecordPair& p : run.sure_matches) ++out[p.left].sure;
  return out;
}

// Lookup vs batch slice; divergence is fatal (prints and returns false).
bool CheckLookup(const MatchService& svc, const Table& left, size_t q,
                 const Slice& want, LookupResult* out) {
  auto result = svc.Lookup(left, q);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: lookup %zu failed: %s\n", q,
                 result.status().ToString().c_str());
    return false;
  }
  std::map<uint32_t, std::string> got;
  for (const RankedMatch& m : result->matches) got[m.record] = m.provenance;
  if (got != want.matches || result->num_candidates != want.candidates ||
      result->num_sure != want.sure) {
    std::fprintf(stderr,
                 "FATAL: lookup %zu diverged from batch (matches %zu vs %zu, "
                 "candidates %zu vs %zu, sure %zu vs %zu)\n",
                 q, got.size(), want.matches.size(), result->num_candidates,
                 want.candidates, result->num_sure, want.sure);
    return false;
  }
  if (out) *out = std::move(result).value();
  return true;
}

struct BenchResult {
  double sf = 0;
  size_t rows_per_side = 0;
  double batch_ms = 0;         // one full batch pipeline run
  double create_ms = 0;        // MatchService::Create (prep + index build)
  double lookup_total_ms = 0;  // sweep over every left record
  size_t lookups = 0;
  size_t total_matches = 0;
  double insert_ms = 0;  // per-op mean over the ingest burst
  double remove_ms = 0;
  double compact_ms = 0;
  MatchServiceStats stats;  // latency rings + index state after the sweep
  double service_vs_batch() const {
    return lookup_total_ms > 0 ? batch_ms / lookup_total_ms : 0;
  }
};

// Runs the full sweep at one scale factor. `stride` > 1 checks a subset of
// records against the oracle (the sweep still times every lookup).
bool RunAt(double sf, size_t check_stride, BenchResult* out) {
  ScaleCorpusOptions options;
  options.scale_factor = sf;
  auto corpus = GenerateScaleCorpus(options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 corpus.status().ToString().c_str());
    return false;
  }
  EmWorkflow wf = BuildScaleWorkflow();

  out->sf = sf;
  out->rows_per_side = corpus->right.num_rows();

  WorkflowRunResult run;
  out->batch_ms = OnceMs([&] {
    auto r = wf.Run(corpus->left, corpus->right);
    if (!r.ok()) std::abort();
    run = std::move(r).value();
  });
  std::vector<Slice> oracle = SliceByLeft(run, corpus->left.num_rows());

  std::unique_ptr<MatchService> svc;
  out->create_ms = OnceMs([&] {
    auto created = MatchService::Create(wf, corpus->right);
    if (!created.ok()) {
      std::fprintf(stderr, "Create failed: %s\n",
                   created.status().ToString().c_str());
      std::abort();
    }
    svc = std::move(created).value();
  });

  // Warm thread-local scratch so the timed sweep measures steady state.
  (void)svc->Lookup(corpus->left, 0);

  bool ok = true;
  out->lookup_total_ms = OnceMs([&] {
    for (size_t q = 0; q < corpus->left.num_rows(); ++q) {
      LookupResult r;
      if (q % check_stride == 0) {
        if (!CheckLookup(*svc, corpus->left, q, oracle[q], &r)) {
          ok = false;
          return;
        }
      } else {
        auto res = svc->Lookup(corpus->left, q);
        if (!res.ok()) {
          ok = false;
          return;
        }
        r = std::move(res).value();
      }
      out->total_matches += r.matches.size();
      ++out->lookups;
    }
  });
  if (!ok) return false;

  // Ingest burst: clone rows from the right table, then remove them — the
  // delta postings + tombstones force at least one compaction pass.
  const size_t burst = std::min<size_t>(200, corpus->right.num_rows());
  std::vector<uint32_t> ids;
  out->insert_ms = OnceMs([&] {
                    for (size_t i = 0; i < burst; ++i) {
                      auto id = svc->Insert(corpus->right.Row(i));
                      if (!id.ok()) std::abort();
                      ids.push_back(*id);
                    }
                  }) /
                  static_cast<double>(burst);
  out->remove_ms = OnceMs([&] {
                    for (uint32_t id : ids) {
                      if (!svc->Remove(id).ok()) std::abort();
                    }
                  }) /
                  static_cast<double>(burst);
  out->compact_ms = OnceMs([&] { svc->Compact(); });

  out->stats = svc->Stats();
  return true;
}

void PrintLatency(const char* stage, const LatencySummary& s) {
  std::printf("  %-10s p50=%8.1fus  p99=%8.1fus  (n=%llu)\n", stage, s.p50_us,
              s.p99_us, static_cast<unsigned long long>(s.count));
}

int WriteJson(const BenchResult& r) {
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (!f) return 1;
  const MatchServiceStats& s = r.stats;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"sf\": %g,\n", r.sf);
  std::fprintf(f, "  \"rows_per_side\": %zu,\n", r.rows_per_side);
  std::fprintf(f, "  \"batch_ms\": %.1f,\n", r.batch_ms);
  std::fprintf(f, "  \"create_ms\": %.1f,\n", r.create_ms);
  std::fprintf(f, "  \"lookup_total_ms\": %.1f,\n", r.lookup_total_ms);
  std::fprintf(f, "  \"lookups\": %zu,\n", r.lookups);
  std::fprintf(f, "  \"total_matches\": %zu,\n", r.total_matches);
  std::fprintf(f, "  \"service_vs_batch\": %.3f,\n", r.service_vs_batch());
  std::fprintf(f, "  \"insert_us\": %.1f,\n", r.insert_ms * 1000.0);
  std::fprintf(f, "  \"remove_us\": %.1f,\n", r.remove_ms * 1000.0);
  std::fprintf(f, "  \"compact_ms\": %.2f,\n", r.compact_ms);
  std::fprintf(f, "  \"compactions\": %llu,\n",
               static_cast<unsigned long long>(s.compactions));
  std::fprintf(f, "  \"latency_us\": {\n");
  const struct {
    const char* name;
    const LatencySummary* s;
  } stages[] = {{"block", &s.block},
                {"vectorize", &s.vectorize},
                {"score", &s.score},
                {"rules", &s.rules},
                {"total", &s.total}};
  for (size_t i = 0; i < 5; ++i) {
    std::fprintf(f, "    \"%s\": {\"p50\": %.1f, \"p99\": %.1f}%s\n",
                 stages[i].name, stages[i].s->p50_us, stages[i].s->p99_us,
                 i + 1 == 5 ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

int RunFull(double sf) {
  BenchResult r;
  // Full mode verifies a 1-in-7 sample against the oracle; the tests cover
  // every record, the bench's check is a tripwire against bad builds.
  if (!RunAt(sf, /*check_stride=*/7, &r)) return 1;
  std::printf(
      "sf=%-4g rows/side=%-7zu batch=%.0fms create=%.0fms "
      "lookups=%zu in %.0fms (%.2fms/lookup)  matches=%zu\n",
      r.sf, r.rows_per_side, r.batch_ms, r.create_ms, r.lookups,
      r.lookup_total_ms,
      r.lookup_total_ms / static_cast<double>(std::max<size_t>(1, r.lookups)),
      r.total_matches);
  std::printf("  service_vs_batch: %.3fx   insert=%.0fus remove=%.0fus "
              "compact=%.1fms compactions=%llu\n",
              r.service_vs_batch(), r.insert_ms * 1000.0, r.remove_ms * 1000.0,
              r.compact_ms,
              static_cast<unsigned long long>(r.stats.compactions));
  PrintLatency("block", r.stats.block);
  PrintLatency("vectorize", r.stats.vectorize);
  PrintLatency("score", r.stats.score);
  PrintLatency("rules", r.stats.rules);
  PrintLatency("total", r.stats.total);
  return WriteJson(r);
}

// --- smoke mode ------------------------------------------------------------

bool ReadJsonNumber(const char* path, const char* key, double* out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string needle = std::string("\"") + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + 1, nullptr);
  return true;
}

int RunSmoke(const char* baseline_path) {
  double baseline = 0;
  if (!ReadJsonNumber(baseline_path, "service_vs_batch", &baseline) ||
      baseline <= 0) {
    std::fprintf(stderr, "smoke: cannot read service_vs_batch from %s\n",
                 baseline_path);
    return 1;
  }
  // Tiny corpus, EVERY record oracle-checked: the smoke gate is first a
  // correctness gate (any divergence exits 1 inside RunAt) and only then a
  // latency-ratio gate.
  BenchResult r;
  if (!RunAt(/*sf=*/0.2, /*check_stride=*/1, &r)) {
    std::fprintf(stderr, "smoke: FAIL — service diverged from batch\n");
    return 1;
  }
  double measured = r.service_vs_batch();
  std::printf(
      "smoke: rows/side=%zu lookups=%zu matches=%zu batch=%.1fms "
      "sweep=%.1fms\n",
      r.rows_per_side, r.lookups, r.total_matches, r.batch_ms,
      r.lookup_total_ms);
  std::printf("smoke: measured service_vs_batch %.3fx, baseline %.3fx\n",
              measured, baseline);
  if (r.total_matches == 0) {
    std::fprintf(stderr, "smoke: FAIL — sweep produced zero matches "
                         "(vacuous oracle)\n");
    return 1;
  }
  // Only a 2x relative regression of the service against the batch
  // pipeline (vs what the baseline recorded) fails the build — absolute
  // wall times vary too much across CI hosts to gate on.
  if (measured < baseline / 2.0) {
    std::fprintf(stderr,
                 "smoke: FAIL — service_vs_batch %.3fx fell below half the "
                 "baseline %.3fx (lookup path regressed)\n",
                 measured, baseline);
    return 1;
  }
  std::printf("smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke(argv[2]);
  }
  double sf = 1.0;
  if (argc == 2 && std::strncmp(argv[1], "--sf=", 5) == 0) {
    sf = std::strtod(argv[1] + 5, nullptr);
    if (sf <= 0) {
      std::fprintf(stderr, "bad --sf\n");
      return 1;
    }
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--sf=N | --smoke BASELINE.json]\n",
                 argv[0]);
    return 1;
  }
  return RunFull(sf);
}
