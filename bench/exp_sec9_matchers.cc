// E5 — reproduces the §9 matcher-selection story:
//   * 5-fold cross-validation of six learning-based matchers on the labeled
//     set (minus Unsure pairs and sure matches),
//   * first with the automatically generated features (where case
//     differences between the ALL-CAPS UMETRICS titles and Mixed-Case USDA
//     titles hurt every string measure),
//   * then after the debugging fix that adds case-insensitive features,
//     where the paper reports the decision tree winning at P=97% R=95%
//     F1=94.7%.

#include <cstdio>

#include "src/datagen/case_study.h"

namespace {

using namespace emx;

void PrintCvTable(const std::vector<CvResult>& results) {
  std::printf("%-22s %10s %10s %10s\n", "matcher", "precision", "recall",
              "F1");
  for (const CvResult& r : results) {
    std::printf("%-22s %9.1f%% %9.1f%% %9.1f%%\n", r.matcher_name.c_str(),
                r.mean_precision * 100.0, r.mean_recall * 100.0,
                r.mean_f1 * 100.0);
  }
}

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;

  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;

  OracleLabeler oracle = MakeOracle(data->gold, data->ambiguous);
  LabeledSet labels =
      CollectCorrectedLabels(oracle, blocks->c, /*rounds=*/3,
                             /*per_round=*/100, /*seed=*/100);
  std::printf("=== E5: Section 9 matcher selection ===\n");
  std::printf("labeled pairs: %zu = %zu Yes / %zu No / %zu Unsure  "
              "[300 = 68/200/32]\n\n",
              labels.size(), labels.CountYes(), labels.CountNo(),
              labels.CountUnsure());

  std::printf("--- before the case fix (auto-generated features only) ---\n");
  auto before = TrainBestMatcher(u, s, labels, PositiveRulesV1(),
                                 /*case_fix=*/false);
  if (!before.ok()) {
    std::fprintf(stderr, "train: %s\n", before.status().ToString().c_str());
    return 1;
  }
  PrintCvTable(before->cv_results);
  std::printf("best: %s (F1 %.1f%%)\n\n",
              before->cv_results.front().matcher_name.c_str(),
              before->cv_results.front().mean_f1 * 100.0);

  std::printf(
      "--- after the case fix (lowercase title/name features added) ---\n");
  auto after = TrainBestMatcher(u, s, labels, PositiveRulesV1(),
                                /*case_fix=*/true);
  if (!after.ok()) {
    std::fprintf(stderr, "train: %s\n", after.status().ToString().c_str());
    return 1;
  }
  PrintCvTable(after->cv_results);
  std::printf("best: %s (F1 %.1f%%)  [decision tree, P=97%% R=95%% F1=94.7%%]\n",
              after->cv_results.front().matcher_name.c_str(),
              after->cv_results.front().mean_f1 * 100.0);
  std::printf("features: %zu before fix, %zu after fix\n",
              before->features.features.size(),
              after->features.features.size());
  return 0;
}

}  // namespace

int main() { return Run(); }
