// E8 — reproduces the §11 Corleone-style accuracy estimation: label a
// random sample of the consolidated candidate set E = C1∪C2∪D1∪D2, then
// estimate precision/recall of our matcher and of the production IRIS
// matcher, first with 200 labeled pairs, then with 400.
//
// Paper values:
//   200 labels: ours P(79.6, 86.0) R(96.8, 99.4); IRIS P(100,100) R(52.7, 62.1)
//   400 labels: ours P(75.2, 80.3) R(98.1, 99.6); IRIS P(100,100) R(65.1, 71.8)
//   (400 labels = 92 Yes / 292 No / 16 Unsure)

#include <cstdio>

#include "src/datagen/case_study.h"
#include "src/datagen/iris_matcher.h"
#include "src/eval/corleone_estimator.h"
#include "src/labeling/sampler.h"

namespace {

using namespace emx;

void PrintEstimate(const char* who, const AccuracyEstimate& est,
                   const char* paper) {
  std::printf("%-14s precision %s  recall %s   %s\n", who,
              est.precision.ToString().c_str(), est.recall.ToString().c_str(),
              paper);
}

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) return 1;
  const Table& u = tables->umetrics;
  const Table& s = tables->usda;

  const Table& extra = tables->extra;
  const uint32_t off = static_cast<uint32_t>(u.num_rows());

  // One oracle over both branches: the extra branch's pairs live at a
  // left-index offset so the two Cartesian spaces stay disjoint.
  CandidateSet gold_all =
      CandidateSet::Union(data->gold, data->gold_extra.WithLeftOffset(off));
  CandidateSet amb_all = CandidateSet::Union(
      data->ambiguous, data->ambiguous_extra.WithLeftOffset(off));
  OracleLabeler oracle = MakeOracle(gold_all, amb_all);

  auto blocks = RunStandardBlocking(u, s);
  if (!blocks.ok()) return 1;
  LabeledSet train_labels =
      CollectCorrectedLabels(oracle, blocks->c, 3, 100, 100);
  auto trained = TrainBestMatcher(u, s, train_labels, PositiveRulesV1(),
                                  /*case_fix=*/true);
  if (!trained.ok()) return 1;

  EmWorkflow wf = BuildCaseStudyWorkflow(PositiveRulesV2(), *trained,
                                         /*with_negative_rules=*/false);
  auto run = wf.Run(u, s);
  auto run_extra = wf.Run(extra, s);
  if (!run.ok() || !run_extra.ok()) return 1;
  CandidateSet ours = CandidateSet::Union(
      run->final_matches, run_extra->final_matches.WithLeftOffset(off));

  // The IRIS baseline over both branches.
  auto iris_orig = RunIrisMatcher(u, s);
  auto iris_extra = RunIrisMatcher(extra, s);
  if (!iris_orig.ok() || !iris_extra.ok()) return 1;
  CandidateSet iris =
      CandidateSet::Union(*iris_orig, iris_extra->WithLeftOffset(off));

  // §11 step 1: the evaluation universe E = C1∪C2∪D1∪D2 must contain both
  // systems' matches.
  CandidateSet universe = CandidateSet::UnionAll(
      {&run->candidates, &iris});
  universe = CandidateSet::Union(universe,
                                 run_extra->candidates.WithLeftOffset(off));

  std::printf("=== E8: Section 11 accuracy estimation (Corleone sampling) ===\n");
  std::printf("evaluation universe E: %zu pairs; our matches: %zu; IRIS "
              "matches: %zu\n\n",
              universe.size(), ours.size(), iris.size());

  // 200-pair labeled sample, then extend to 400 (§11 steps 2-3).
  LabeledSet eval_labels;
  for (const RecordPair& p : SamplePairs(universe, 200, 4040, eval_labels)) {
    eval_labels.SetLabel(p, oracle.CorrectedLabel(p));
  }
  auto ours200 = EstimateAccuracy(ours, eval_labels);
  auto iris200 = EstimateAccuracy(iris, eval_labels);
  std::printf("--- 200 labeled pairs ---\n");
  PrintEstimate("our matcher", *ours200, "[P(79.6,86.0) R(96.8,99.4)]");
  PrintEstimate("IRIS matcher", *iris200, "[P(100,100)   R(52.7,62.1)]");

  for (const RecordPair& p : SamplePairs(universe, 200, 4041, eval_labels)) {
    eval_labels.SetLabel(p, oracle.CorrectedLabel(p));
  }
  std::printf("\n--- 400 labeled pairs: %zu Yes / %zu No / %zu Unsure "
              "[92/292/16] ---\n",
              eval_labels.CountYes(), eval_labels.CountNo(),
              eval_labels.CountUnsure());
  auto ours400 = EstimateAccuracy(ours, eval_labels);
  auto iris400 = EstimateAccuracy(iris, eval_labels);
  PrintEstimate("our matcher", *ours400, "[P(75.2,80.3) R(98.1,99.6)]");
  PrintEstimate("IRIS matcher", *iris400, "[P(100,100)   R(65.1,71.8)]");

  // Ground truth (unavailable to the original study).
  GoldMetrics ours_gold = ComputeGoldMetrics(ours, gold_all, amb_all);
  GoldMetrics iris_gold = ComputeGoldMetrics(iris, gold_all, amb_all);
  std::printf("\n--- exact values against the synthetic gold standard ---\n");
  std::printf("our matcher:  P=%.1f%% R=%.1f%%\n", ours_gold.Precision() * 100.0,
              ours_gold.Recall() * 100.0);
  std::printf("IRIS matcher: P=%.1f%% R=%.1f%%\n",
              iris_gold.Precision() * 100.0, iris_gold.Recall() * 100.0);
  return 0;
}

}  // namespace

int main() { return Run(); }
