// E2 — reproduces the §6 pre-processing pipeline: key/foreign-key checks,
// subsetting to the relevant tables, projection, renaming to the aligned
// schema, the employee-name group-concat join, and RecordId assignment.
// Output shapes: UMETRICSProjected 1336 rows, USDAProjected 1915 rows, with
// the Figure 7 schemas.

#include <cstdio>

#include "src/datagen/preprocess.h"
#include "src/datagen/universe.h"
#include "src/table/table_ops.h"

namespace {

using namespace emx;

int Run() {
  auto data = GenerateCaseStudy();
  if (!data.ok()) return 1;

  std::printf("=== E2: Section 6 pre-processing ===\n");

  // §6 step 2: validate the keys the matching document names.
  auto u_key = data->umetrics_award_agg.IsUniqueKey("UniqueAwardNumber");
  auto s_key = data->usda.IsUniqueKey("AccessionNumber");
  std::printf("UniqueAwardNumber is a key of UMETRICSAwardAggMatching: %s\n",
              u_key.ok() && *u_key ? "yes" : "NO");
  std::printf("AccessionNumber   is a key of USDAAwardMatching:        %s\n",
              s_key.ok() && *s_key ? "yes" : "NO");
  auto fk = data->umetrics_employees.IsForeignKeyInto(
      "UniqueAwardNumber", data->umetrics_award_agg, "UniqueAwardNumber");
  std::printf("Employees.UniqueAwardNumber ⊆ AwardAgg.UniqueAwardNumber:  "
              "%s\n",
              fk.ok() && *fk ? "yes" : "no (extra-batch awards join later)");

  // §6 step 3: the vendor table's org columns share no values with the
  // USDA recipient columns, so the table is dropped from matching.
  auto vendor_orgs = data->umetrics_vendor.ColumnByName("OrgName");
  auto usda_orgs = data->usda.ColumnByName("RecipientOrganization");
  if (vendor_orgs.ok() && usda_orgs.ok()) {
    size_t overlap = 0;
    for (const Value& v : **vendor_orgs) {
      if (v.is_null()) continue;
      for (const Value& w : **usda_orgs) {
        if (!w.is_null() && v == w) {
          ++overlap;
          break;
        }
      }
      if (overlap > 0) break;
    }
    std::printf("Vendor.OrgName ∩ USDA.RecipientOrganization values: %s  "
                "[none -> vendor table not useful for matching]\n",
                overlap == 0 ? "none" : "SOME");
  }

  // §6 step 4: projection + rename + employee concat + ids.
  auto tables = PreprocessCaseStudy(*data);
  if (!tables.ok()) {
    std::fprintf(stderr, "preprocess: %s\n",
                 tables.status().ToString().c_str());
    return 1;
  }
  std::printf("\nUMETRICSProjected: %zu rows x %zu cols  [1336 x 6]\n",
              tables->umetrics.num_rows(), tables->umetrics.num_columns());
  std::printf("USDAProjected:     %zu rows x %zu cols  [1915 x 7 (+ProjectNumber)]\n",
              tables->usda.num_rows(), tables->usda.num_columns());
  std::printf("ExtraProjected:    %zu rows x %zu cols  [496 x 6]\n\n",
              tables->extra.num_rows(), tables->extra.num_columns());

  std::printf("--- Figure 7 analogue: sample projected rows ---\n");
  std::printf("%s\n", tables->umetrics.Preview(3).c_str());
  std::printf("%s\n", tables->usda.Preview(3).c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
