#include "src/table/value.h"

#include <cmath>
#include <cstdio>

namespace emx {

std::string_view DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kAny:
      return "any";
  }
  return "?";
}

int64_t Value::AsInt(int64_t fallback) const {
  if (is_int()) return std::get<int64_t>(v_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(v_));
  return fallback;
}

double Value::AsDouble(double fallback) const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  if (is_double()) return std::get<double>(v_);
  return fallback;
}

std::string Value::AsString(std::string_view fallback) const {
  if (is_string()) return std::get<std::string>(v_);
  if (is_int()) return std::to_string(std::get<int64_t>(v_));
  if (is_double()) {
    char buf[32];
    double d = std::get<double>(v_);
    // Integral doubles print without the trailing ".000000" noise.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.0f", d);
    } else {
      std::snprintf(buf, sizeof(buf), "%g", d);
    }
    return buf;
  }
  return std::string(fallback);
}

std::string_view Value::AsStringView() const {
  if (is_string()) return std::get<std::string>(v_);
  return {};
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    return AsDouble() == other.AsDouble();
  }
  if (is_string() && other.is_string()) {
    return std::get<std::string>(v_) == std::get<std::string>(other.v_);
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb;
  if (ra == 1) return AsDouble() < other.AsDouble();
  if (ra == 2) {
    return std::get<std::string>(v_) < std::get<std::string>(other.v_);
  }
  return false;  // both null
}

}  // namespace emx
