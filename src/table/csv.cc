#include "src/table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "src/core/failpoint.h"
#include "src/core/fileio.h"

namespace emx {

namespace {

// One raw record plus the 1-based line its first character sits on, so
// parse errors can point at the offending row of the source file.
struct RawRecord {
  std::vector<std::string> fields;
  size_t line = 0;
};

// Splits raw CSV content into records of fields, honoring quoting.
Result<std::vector<RawRecord>> Tokenize(const std::string& content,
                                        char delim) {
  std::vector<RawRecord> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_field = false;
  size_t line = 1;              // current 1-based line
  size_t record_line = 1;       // line the current record started on
  size_t quote_open_line = 0;   // line of the last still-open quote

  auto end_field = [&]() {
    record.push_back(field);
    field.clear();
    field_was_quoted = false;
    any_field = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back({std::move(record), record_line});
    record.clear();
  };

  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && content[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        if (c == '\n') ++line;  // embedded newline inside quotes
        field += c;
        ++i;
      }
    } else {
      if (c == '"' && field.empty() && !field_was_quoted) {
        in_quotes = true;
        field_was_quoted = true;
        any_field = true;
        quote_open_line = line;
        ++i;
      } else if (c == delim) {
        end_field();
        any_field = true;  // a delimiter implies a following (maybe empty) field
        ++i;
      } else if (c == '\r') {
        // Swallow; \r\n and bare \r both end the record at the \n / next char.
        ++i;
        if (i < n && content[i] == '\n') continue;  // handled by \n branch
        end_record();
        ++line;
        record_line = line;
      } else if (c == '\n') {
        end_record();
        ++i;
        ++line;
        record_line = line;
      } else {
        field += c;
        any_field = true;
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError(
        "unterminated quoted field (quote opened on line " +
        std::to_string(quote_open_line) + ") at end of input");
  }
  // Flush a final record that lacked a trailing newline.
  if (any_field || !field.empty() || !record.empty()) {
    end_record();
  }
  return records;
}

// Returns a typed Value for an unquoted CSV field.
Value InferValue(const std::string& field) {
  if (field.empty()) return Value::Null();
  // Fast reject: numerics start with digit, sign, or dot.
  char c0 = field[0];
  if (!(c0 == '-' || c0 == '+' || c0 == '.' || (c0 >= '0' && c0 <= '9'))) {
    return Value(field);
  }
  errno = 0;
  char* end = nullptr;
  long long ll = std::strtoll(field.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value(static_cast<int64_t>(ll));
  }
  errno = 0;
  double d = std::strtod(field.c_str(), &end);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value(d);
  }
  return Value(field);
}

}  // namespace

Result<Table> ReadCsvString(const std::string& content,
                            const CsvReadOptions& options) {
  EMX_ASSIGN_OR_RETURN(std::vector<RawRecord> records,
                       Tokenize(content, options.delimiter));
  if (records.empty()) return Table();

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0].fields;
    first_data = 1;
  } else {
    for (size_t i = 0; i < records[0].fields.size(); ++i) {
      names.push_back("col" + std::to_string(i));
    }
  }
  Table table(Schema::FromNames(names));
  for (size_t r = first_data; r < records.size(); ++r) {
    const std::vector<std::string>& rec = records[r].fields;
    if (rec.size() != names.size()) {
      return Status::ParseError(
          "record " + std::to_string(r + 1) + " (line " +
          std::to_string(records[r].line) + ") has " +
          std::to_string(rec.size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    std::vector<Value> row;
    row.reserve(rec.size());
    for (const auto& f : rec) {
      if (f.empty()) {
        row.push_back(Value::Null());
      } else if (options.infer_types) {
        row.push_back(InferValue(f));
      } else {
        row.push_back(Value(f));
      }
    }
    EMX_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

namespace {

// One read attempt, instrumented for fault injection. Kept separate from
// ReadCsvFile so the retry loop wraps exactly the transient part (the file
// I/O), never the parse.
Result<std::string> ReadCsvAttempt(const std::string& path) {
  EMX_FAILPOINT("csv/read");
  return ReadFileToString(path);
}

}  // namespace

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  EMX_ASSIGN_OR_RETURN(
      std::string content,
      Retry<std::string>(options.retry, "read " + path,
                         [&path] { return ReadCsvAttempt(path); }));
  Result<Table> table = ReadCsvString(content, options);
  if (!table.ok() && table.status().code() == StatusCode::kParseError) {
    // Anchor parse diagnostics to the file they came from.
    return Status::ParseError(path + ": " + table.status().message());
  }
  return table;
}

namespace {

void AppendEscaped(const std::string& field, char delim, std::string& out) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string WriteCsvString(const Table& table, const CsvWriteOptions& options) {
  std::string out;
  const auto names = table.schema().names();
  if (options.write_header) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += options.delimiter;
      AppendEscaped(names[i], options.delimiter, out);
    }
    out += '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      const Value& v = table.at(r, c);
      if (!v.is_null()) AppendEscaped(v.AsString(), options.delimiter, out);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options) {
  std::string payload = WriteCsvString(table, options);
  return RetryStatus(options.retry, "write " + path, [&]() -> Status {
    EMX_FAILPOINT("csv/write");
    return WriteStringToFile(payload, path);
  });
}

}  // namespace emx
