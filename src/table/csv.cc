#include "src/table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace emx {

namespace {

// Splits raw CSV content into records of fields, honoring quoting.
Result<std::vector<std::vector<std::string>>> Tokenize(
    const std::string& content, char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_field = false;

  auto end_field = [&]() {
    record.push_back(field);
    field.clear();
    field_was_quoted = false;
    any_field = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && content[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else {
      if (c == '"' && field.empty() && !field_was_quoted) {
        in_quotes = true;
        field_was_quoted = true;
        any_field = true;
        ++i;
      } else if (c == delim) {
        end_field();
        any_field = true;  // a delimiter implies a following (maybe empty) field
        ++i;
      } else if (c == '\r') {
        // Swallow; \r\n and bare \r both end the record at the \n / next char.
        ++i;
        if (i < n && content[i] == '\n') continue;  // handled by \n branch
        end_record();
      } else if (c == '\n') {
        end_record();
        ++i;
      } else {
        field += c;
        any_field = true;
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field at end of input");
  }
  // Flush a final record that lacked a trailing newline.
  if (any_field || !field.empty() || !record.empty()) {
    end_record();
  }
  return records;
}

// Returns a typed Value for an unquoted CSV field.
Value InferValue(const std::string& field) {
  if (field.empty()) return Value::Null();
  // Fast reject: numerics start with digit, sign, or dot.
  char c0 = field[0];
  if (!(c0 == '-' || c0 == '+' || c0 == '.' || (c0 >= '0' && c0 <= '9'))) {
    return Value(field);
  }
  errno = 0;
  char* end = nullptr;
  long long ll = std::strtoll(field.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value(static_cast<int64_t>(ll));
  }
  errno = 0;
  double d = std::strtod(field.c_str(), &end);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value(d);
  }
  return Value(field);
}

}  // namespace

Result<Table> ReadCsvString(const std::string& content,
                            const CsvReadOptions& options) {
  EMX_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> records,
                       Tokenize(content, options.delimiter));
  if (records.empty()) return Table();

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t i = 0; i < records[0].size(); ++i) {
      names.push_back("col" + std::to_string(i));
    }
  }
  Table table(Schema::FromNames(names));
  for (size_t r = first_data; r < records.size(); ++r) {
    const auto& rec = records[r];
    if (rec.size() != names.size()) {
      return Status::ParseError(
          "record " + std::to_string(r) + " has " +
          std::to_string(rec.size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    std::vector<Value> row;
    row.reserve(rec.size());
    for (const auto& f : rec) {
      if (f.empty()) {
        row.push_back(Value::Null());
      } else if (options.infer_types) {
        row.push_back(InferValue(f));
      } else {
        row.push_back(Value(f));
      }
    }
    EMX_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ReadCsvString(ss.str(), options);
}

namespace {

void AppendEscaped(const std::string& field, char delim, std::string& out) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string WriteCsvString(const Table& table, const CsvWriteOptions& options) {
  std::string out;
  const auto names = table.schema().names();
  if (options.write_header) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += options.delimiter;
      AppendEscaped(names[i], options.delimiter, out);
    }
    out += '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      const Value& v = table.at(r, c);
      if (!v.is_null()) AppendEscaped(v.AsString(), options.delimiter, out);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsvString(table, options);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace emx
