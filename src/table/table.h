#ifndef EMX_TABLE_TABLE_H_
#define EMX_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "src/core/result.h"
#include "src/core/status.h"
#include "src/table/schema.h"
#include "src/table/value.h"

namespace emx {

// A column-oriented in-memory table.
//
// Columns are vectors of Value aligned by row index. Column orientation
// keeps profiling, blocking-attribute scans, and feature extraction cache
// friendly; rows are materialized on demand.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  // Appends a row; `row` must have exactly num_columns() values.
  Status AppendRow(std::vector<Value> row);

  // Cell accessors. Bounds are the caller's responsibility (checked in
  // debug builds via EMX_CHECK).
  const Value& at(size_t row, size_t col) const;
  void set(size_t row, size_t col, Value v);

  // Cell by column name; null Value if the column is absent.
  const Value& at(size_t row, const std::string& col_name) const;

  // Whole column by index/name.
  const std::vector<Value>& column(size_t col) const;
  Result<const std::vector<Value>*> ColumnByName(const std::string& name) const;

  // Materializes row `row` as a vector of values.
  std::vector<Value> Row(size_t row) const;

  // Adds an empty (all-null) column. Fails on duplicate name.
  Status AddColumn(Field field);

  // Adds a column with the given values (must match num_rows()).
  Status AddColumn(Field field, std::vector<Value> values);

  // Removes the column named `name`.
  Status DropColumn(const std::string& name);

  // Renames a column.
  Status RenameColumn(const std::string& from, const std::string& to);

  // True if column `name` exists, has no nulls, and no duplicate values —
  // i.e. it can serve as a primary key (paper §6 step 2).
  Result<bool> IsUniqueKey(const std::string& name) const;

  // True if every non-null value of `this[col]` appears in `other[other_col]`
  // — a foreign-key containment check (paper §6 step 2).
  Result<bool> IsForeignKeyInto(const std::string& col, const Table& other,
                                const std::string& other_col) const;

  // A short printable preview (header + first `max_rows` rows).
  std::string Preview(size_t max_rows = 5) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  size_t num_rows_ = 0;

  static const Value kNullValue;
};

}  // namespace emx

#endif  // EMX_TABLE_TABLE_H_
