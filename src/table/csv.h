#ifndef EMX_TABLE_CSV_H_
#define EMX_TABLE_CSV_H_

#include <string>

#include "src/core/result.h"
#include "src/core/retry.h"
#include "src/core/status.h"
#include "src/table/table.h"

namespace emx {

struct CsvReadOptions {
  char delimiter = ',';
  // When true, the first record supplies column names; otherwise columns are
  // named "col0", "col1", ...
  bool has_header = true;
  // When true, unquoted fields that parse as integers/doubles become typed
  // values and empty fields become null. When false, every field is a string
  // (empty fields still become null).
  bool infer_types = true;
  // Transient read failures (IoError) are retried under this policy; a
  // missing file (NotFound) and malformed content (ParseError) fail
  // immediately — rereading cannot fix them.
  RetryPolicy retry;
};

struct CsvWriteOptions {
  char delimiter = ',';
  bool write_header = true;
  // Transient write failures are retried under this policy.
  RetryPolicy retry;
};

// Parses RFC-4180 CSV content (quoted fields, doubled quotes, embedded
// delimiters/newlines inside quotes) into a Table. Rows with a field count
// different from the header are a ParseError carrying the 1-based record
// and line number plus the offending field count, so dirty-data failures
// point at the bad row.
Result<Table> ReadCsvString(const std::string& content,
                            const CsvReadOptions& options = {});

// Reads a CSV file from disk. NotFound when the file does not exist;
// IoError (with strerror detail, retried per options.retry) on read
// failure; ParseError (prefixed with the path) on malformed content.
// Failpoint: "csv/read" fires once per read attempt.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options = {});

// Serializes a table as CSV; fields containing the delimiter, quotes, or
// newlines are quoted, quotes doubled. Nulls serialize as empty fields.
std::string WriteCsvString(const Table& table,
                           const CsvWriteOptions& options = {});

// Writes a table to a CSV file on disk. IoError failures are retried per
// options.retry. Failpoint: "csv/write" fires once per write attempt.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options = {});

}  // namespace emx

#endif  // EMX_TABLE_CSV_H_
