#ifndef EMX_TABLE_TABLE_OPS_H_
#define EMX_TABLE_TABLE_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/result.h"
#include "src/table/table.h"

namespace emx {

// Relational operators used by the paper's pre-processing step (§6):
// projection, renaming, selection, key-joins, and id assignment. All return
// new tables; inputs are untouched.

// Keeps only `columns`, in the given order.
Result<Table> Project(const Table& table, const std::vector<std::string>& columns);

// Renames columns pairwise: renames[i].first -> renames[i].second.
Result<Table> RenameColumns(
    const Table& table,
    const std::vector<std::pair<std::string, std::string>>& renames);

// Keeps rows where `pred(table, row)` is true.
Table Select(const Table& table,
             const std::function<bool(const Table&, size_t)>& pred);

// Inner hash equi-join on left[left_key] == right[right_key] (null keys
// never match). Output columns: all left columns, then right columns except
// `right_key`; right columns whose names collide get a "_right" suffix.
Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key);

// Group-concatenates `value_col` per distinct `key_col` value, joining with
// `sep` — the paper concatenates employee names per award with '|'.
// Output schema: (key_col, value_col).
Result<Table> GroupConcat(const Table& table, const std::string& key_col,
                          const std::string& value_col, const std::string& sep);

// Prepends an integer id column `name` valued 0..n-1.
Result<Table> AddIdColumn(const Table& table, const std::string& name);

// Concatenates rows of two tables with equal schemas.
Result<Table> ConcatRows(const Table& a, const Table& b);

}  // namespace emx

#endif  // EMX_TABLE_TABLE_OPS_H_
