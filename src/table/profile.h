#ifndef EMX_TABLE_PROFILE_H_
#define EMX_TABLE_PROFILE_H_

#include <string>
#include <vector>

#include "src/table/table.h"

namespace emx {

// Summary statistics for one column — the pandas-profiling analogue used in
// the paper's "understanding the data" step (§4): counts, missing, unique,
// numeric moments, and the most frequent values.
struct ColumnProfile {
  std::string name;
  size_t count = 0;          // rows
  size_t missing = 0;        // null cells
  size_t unique = 0;         // distinct non-null values
  size_t numeric_count = 0;  // cells with numeric content
  double mean = 0.0;         // over numeric cells
  double median = 0.0;       // over numeric cells
  double min = 0.0;
  double max = 0.0;
  // Most frequent non-null values, descending by count (ties broken by
  // value) — at most `top_k` entries.
  std::vector<std::pair<std::string, size_t>> top_values;
};

struct TableProfile {
  size_t num_rows = 0;
  size_t num_columns = 0;
  std::vector<ColumnProfile> columns;

  std::string ToString() const;
};

struct ProfileOptions {
  size_t top_k = 5;
};

// Profiles every column of `table`.
TableProfile ProfileTable(const Table& table, const ProfileOptions& options = {});

// Profiles a single column by name.
Result<ColumnProfile> ProfileColumn(const Table& table,
                                    const std::string& name,
                                    const ProfileOptions& options = {});

}  // namespace emx

#endif  // EMX_TABLE_PROFILE_H_
