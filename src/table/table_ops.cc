#include "src/table/table_ops.h"

#include <map>
#include <unordered_map>

namespace emx {

Result<Table> Project(const Table& table,
                      const std::vector<std::string>& columns) {
  std::vector<Field> fields;
  std::vector<int> src;
  for (const auto& name : columns) {
    int i = table.schema().IndexOf(name);
    if (i < 0) return Status::NotFound("no column named " + name);
    fields.push_back(table.schema().field(static_cast<size_t>(i)));
    src.push_back(i);
  }
  Table out((Schema(std::move(fields))));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(src.size());
    for (int c : src) row.push_back(table.at(r, static_cast<size_t>(c)));
    EMX_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> RenameColumns(
    const Table& table,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  Table out = table;
  for (const auto& [from, to] : renames) {
    EMX_RETURN_IF_ERROR(out.RenameColumn(from, to));
  }
  return out;
}

Table Select(const Table& table,
             const std::function<bool(const Table&, size_t)>& pred) {
  Table out(table.schema());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (pred(table, r)) {
      // AppendRow cannot fail here: the row width matches by construction.
      (void)out.AppendRow(table.Row(r));
    }
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key) {
  int lk = left.schema().IndexOf(left_key);
  if (lk < 0) return Status::NotFound("no left column named " + left_key);
  int rk = right.schema().IndexOf(right_key);
  if (rk < 0) return Status::NotFound("no right column named " + right_key);

  // Output schema: left columns, then right columns minus the join key,
  // disambiguating collisions with a "_right" suffix.
  std::vector<Field> fields = left.schema().fields();
  std::vector<int> right_cols;
  Schema out_schema(fields);
  for (size_t c = 0; c < right.num_columns(); ++c) {
    if (static_cast<int>(c) == rk) continue;
    Field f = right.schema().field(c);
    if (out_schema.Contains(f.name)) f.name += "_right";
    EMX_RETURN_IF_ERROR(out_schema.AddField(f));
    right_cols.push_back(static_cast<int>(c));
  }

  // Build side: hash the smaller conceptually; here always the right table,
  // which is the dimension side in all §6 uses.
  std::unordered_multimap<std::string, size_t> build;
  build.reserve(right.num_rows() * 2);
  for (size_t r = 0; r < right.num_rows(); ++r) {
    const Value& k = right.at(r, static_cast<size_t>(rk));
    if (!k.is_null()) build.emplace(k.AsString(), r);
  }

  Table out(out_schema);
  for (size_t r = 0; r < left.num_rows(); ++r) {
    const Value& k = left.at(r, static_cast<size_t>(lk));
    if (k.is_null()) continue;
    auto [lo, hi] = build.equal_range(k.AsString());
    for (auto it = lo; it != hi; ++it) {
      std::vector<Value> row = left.Row(r);
      for (int c : right_cols) {
        row.push_back(right.at(it->second, static_cast<size_t>(c)));
      }
      EMX_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

Result<Table> GroupConcat(const Table& table, const std::string& key_col,
                          const std::string& value_col,
                          const std::string& sep) {
  int kc = table.schema().IndexOf(key_col);
  if (kc < 0) return Status::NotFound("no column named " + key_col);
  int vc = table.schema().IndexOf(value_col);
  if (vc < 0) return Status::NotFound("no column named " + value_col);

  // std::map keeps output deterministic (sorted by key).
  std::map<std::string, std::string> groups;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& k = table.at(r, static_cast<size_t>(kc));
    const Value& v = table.at(r, static_cast<size_t>(vc));
    if (k.is_null() || v.is_null()) continue;
    std::string& acc = groups[k.AsString()];
    if (!acc.empty()) acc += sep;
    acc += v.AsString();
  }
  Table out(Schema({{key_col, DataType::kString}, {value_col, DataType::kString}}));
  for (auto& [k, v] : groups) {
    EMX_RETURN_IF_ERROR(out.AppendRow({Value(k), Value(v)}));
  }
  return out;
}

Result<Table> AddIdColumn(const Table& table, const std::string& name) {
  if (table.schema().Contains(name)) {
    return Status::AlreadyExists("column exists: " + name);
  }
  std::vector<Field> fields;
  fields.push_back({name, DataType::kInt64});
  for (const auto& f : table.schema().fields()) fields.push_back(f);
  Table out((Schema(std::move(fields))));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(table.num_columns() + 1);
    row.push_back(Value(static_cast<int64_t>(r)));
    for (size_t c = 0; c < table.num_columns(); ++c) row.push_back(table.at(r, c));
    EMX_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> ConcatRows(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("ConcatRows: schemas differ");
  }
  Table out = a;
  for (size_t r = 0; r < b.num_rows(); ++r) {
    EMX_RETURN_IF_ERROR(out.AppendRow(b.Row(r)));
  }
  return out;
}

}  // namespace emx
