#include "src/table/schema.h"

namespace emx {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  RebuildIndex();
}

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const auto& n : names) fields.push_back({n, DataType::kAny});
  return Schema(std::move(fields));
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Status Schema::AddField(Field f) {
  if (Contains(f.name)) {
    return Status::AlreadyExists("duplicate field name: " + f.name);
  }
  index_[f.name] = static_cast<int>(fields_.size());
  fields_.push_back(std::move(f));
  return Status::OK();
}

Status Schema::RenameField(const std::string& from, const std::string& to) {
  int i = IndexOf(from);
  if (i < 0) return Status::NotFound("no field named " + from);
  if (from == to) return Status::OK();
  if (Contains(to)) return Status::AlreadyExists("field exists: " + to);
  fields_[i].name = to;
  RebuildIndex();
  return Status::OK();
}

std::vector<std::string> Schema::names() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const auto& f : fields_) out.push_back(f.name);
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

void Schema::RebuildIndex() {
  index_.clear();
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_[fields_[i].name] = static_cast<int>(i);
  }
}

}  // namespace emx
