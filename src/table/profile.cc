#include "src/table/profile.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace emx {

namespace {

ColumnProfile ProfileValues(const std::string& name,
                            const std::vector<Value>& values, size_t top_k) {
  ColumnProfile p;
  p.name = name;
  p.count = values.size();
  std::unordered_map<std::string, size_t> freq;
  std::vector<double> numerics;
  for (const Value& v : values) {
    if (v.is_null()) {
      ++p.missing;
      continue;
    }
    ++freq[v.AsString()];
    if (v.is_numeric()) numerics.push_back(v.AsDouble());
  }
  p.unique = freq.size();
  p.numeric_count = numerics.size();
  if (!numerics.empty()) {
    double sum = 0.0;
    p.min = numerics[0];
    p.max = numerics[0];
    for (double d : numerics) {
      sum += d;
      p.min = std::min(p.min, d);
      p.max = std::max(p.max, d);
    }
    p.mean = sum / static_cast<double>(numerics.size());
    std::sort(numerics.begin(), numerics.end());
    size_t m = numerics.size() / 2;
    p.median = (numerics.size() % 2 == 1)
                   ? numerics[m]
                   : 0.5 * (numerics[m - 1] + numerics[m]);
  }
  std::vector<std::pair<std::string, size_t>> tops(freq.begin(), freq.end());
  std::sort(tops.begin(), tops.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (tops.size() > top_k) tops.resize(top_k);
  p.top_values = std::move(tops);
  return p;
}

}  // namespace

TableProfile ProfileTable(const Table& table, const ProfileOptions& options) {
  TableProfile tp;
  tp.num_rows = table.num_rows();
  tp.num_columns = table.num_columns();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    tp.columns.push_back(ProfileValues(table.schema().field(c).name,
                                       table.column(c), options.top_k));
  }
  return tp;
}

Result<ColumnProfile> ProfileColumn(const Table& table, const std::string& name,
                                    const ProfileOptions& options) {
  EMX_ASSIGN_OR_RETURN(const std::vector<Value>* col, table.ColumnByName(name));
  return ProfileValues(name, *col, options.top_k);
}

std::string TableProfile::ToString() const {
  std::ostringstream os;
  os << "rows=" << num_rows << " cols=" << num_columns << "\n";
  for (const auto& c : columns) {
    os << "  " << c.name << ": missing=" << c.missing << " unique=" << c.unique;
    if (c.numeric_count > 0) {
      os << " mean=" << c.mean << " median=" << c.median << " min=" << c.min
         << " max=" << c.max;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace emx
