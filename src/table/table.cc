#include "src/table/table.h"

#include <sstream>
#include <unordered_set>

#include "src/core/logging.h"

namespace emx {

const Value Table::kNullValue = Value();

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_fields());
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != table width " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].push_back(std::move(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

const Value& Table::at(size_t row, size_t col) const {
  EMX_CHECK(col < columns_.size() && row < num_rows_)
      << "cell (" << row << "," << col << ") out of bounds";
  return columns_[col][row];
}

void Table::set(size_t row, size_t col, Value v) {
  EMX_CHECK(col < columns_.size() && row < num_rows_)
      << "cell (" << row << "," << col << ") out of bounds";
  columns_[col][row] = std::move(v);
}

const Value& Table::at(size_t row, const std::string& col_name) const {
  int col = schema_.IndexOf(col_name);
  if (col < 0) return kNullValue;
  return at(row, static_cast<size_t>(col));
}

const std::vector<Value>& Table::column(size_t col) const {
  EMX_CHECK(col < columns_.size()) << "column " << col << " out of bounds";
  return columns_[col];
}

Result<const std::vector<Value>*> Table::ColumnByName(
    const std::string& name) const {
  int col = schema_.IndexOf(name);
  if (col < 0) return Status::NotFound("no column named " + name);
  return &columns_[static_cast<size_t>(col)];
}

std::vector<Value> Table::Row(size_t row) const {
  EMX_CHECK(row < num_rows_) << "row " << row << " out of bounds";
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c[row]);
  return out;
}

Status Table::AddColumn(Field field) {
  return AddColumn(std::move(field), std::vector<Value>(num_rows_));
}

Status Table::AddColumn(Field field, std::vector<Value> values) {
  if (values.size() != num_rows_) {
    return Status::InvalidArgument(
        "column length " + std::to_string(values.size()) +
        " != num_rows " + std::to_string(num_rows_));
  }
  EMX_RETURN_IF_ERROR(schema_.AddField(std::move(field)));
  columns_.push_back(std::move(values));
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  int col = schema_.IndexOf(name);
  if (col < 0) return Status::NotFound("no column named " + name);
  std::vector<Field> fields = schema_.fields();
  fields.erase(fields.begin() + col);
  schema_ = Schema(std::move(fields));
  columns_.erase(columns_.begin() + col);
  return Status::OK();
}

Status Table::RenameColumn(const std::string& from, const std::string& to) {
  return schema_.RenameField(from, to);
}

Result<bool> Table::IsUniqueKey(const std::string& name) const {
  int col = schema_.IndexOf(name);
  if (col < 0) return Status::NotFound("no column named " + name);
  std::unordered_set<std::string> seen;
  seen.reserve(num_rows_ * 2);
  for (const Value& v : columns_[static_cast<size_t>(col)]) {
    if (v.is_null()) return false;
    if (!seen.insert(v.AsString()).second) return false;
  }
  return true;
}

Result<bool> Table::IsForeignKeyInto(const std::string& col,
                                     const Table& other,
                                     const std::string& other_col) const {
  int ci = schema_.IndexOf(col);
  if (ci < 0) return Status::NotFound("no column named " + col);
  int cj = other.schema_.IndexOf(other_col);
  if (cj < 0) return Status::NotFound("no column named " + other_col);
  std::unordered_set<std::string> keys;
  keys.reserve(other.num_rows_ * 2);
  for (const Value& v : other.columns_[static_cast<size_t>(cj)]) {
    if (!v.is_null()) keys.insert(v.AsString());
  }
  for (const Value& v : columns_[static_cast<size_t>(ci)]) {
    if (v.is_null()) continue;
    if (keys.find(v.AsString()) == keys.end()) return false;
  }
  return true;
}

std::string Table::Preview(size_t max_rows) const {
  std::ostringstream os;
  const auto names = schema_.names();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) os << " | ";
    os << names[i];
  }
  os << "\n";
  size_t n = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << " | ";
      os << columns_[c][r].AsString("<null>");
    }
    os << "\n";
  }
  if (num_rows_ > n) {
    os << "... (" << num_rows_ - n << " more rows)\n";
  }
  return os.str();
}

}  // namespace emx
