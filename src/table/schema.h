#ifndef EMX_TABLE_SCHEMA_H_
#define EMX_TABLE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/result.h"
#include "src/core/status.h"
#include "src/table/value.h"

namespace emx {

// A named, typed column declaration.
struct Field {
  std::string name;
  DataType type = DataType::kAny;
};

// An ordered list of fields with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  // Convenience: all-kAny fields from names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  // Index of the field named `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  // Appends a field; fails on duplicate name.
  Status AddField(Field f);

  // Renames field `from` to `to`; fails if `from` is absent or `to` exists.
  Status RenameField(const std::string& from, const std::string& to);

  std::vector<std::string> names() const;

  bool operator==(const Schema& other) const;

 private:
  void RebuildIndex();

  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace emx

#endif  // EMX_TABLE_SCHEMA_H_
