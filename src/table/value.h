#ifndef EMX_TABLE_VALUE_H_
#define EMX_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace emx {

// Column data types. kAny is only used by schema declarations that accept
// mixed content (e.g. CSV columns before type inference).
enum class DataType { kNull = 0, kInt64, kDouble, kString, kAny };

std::string_view DataTypeToString(DataType t);

// A nullable scalar cell: null, 64-bit integer, double, or string.
//
// Value is a passive data holder (paper tables carry heterogeneous, dirty
// CSV content, so a dynamically-typed cell is the natural representation);
// typed accessors coerce where a coercion is standard (int -> double,
// numeric -> string) and otherwise return a fallback.
class Value {
 public:
  Value() : v_(std::monostate{}) {}  // null
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  DataType type() const {
    if (is_int()) return DataType::kInt64;
    if (is_double()) return DataType::kDouble;
    if (is_string()) return DataType::kString;
    return DataType::kNull;
  }

  // Integer content; doubles truncate; otherwise `fallback`.
  int64_t AsInt(int64_t fallback = 0) const;

  // Numeric content widened to double; otherwise `fallback`.
  double AsDouble(double fallback = 0.0) const;

  // String content; numerics are formatted; null yields `fallback`.
  std::string AsString(std::string_view fallback = "") const;

  // String view without copying; only valid for string values.
  std::string_view AsStringView() const;

  // Structural equality: same type and same content. Null == Null.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Ordering for sorting/display: null < numerics (by value) < strings
  // (lexicographic).
  bool operator<(const Value& other) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace emx

#endif  // EMX_TABLE_VALUE_H_
