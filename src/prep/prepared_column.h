#ifndef EMX_PREP_PREPARED_COLUMN_H_
#define EMX_PREP_PREPARED_COLUMN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/table/value.h"
#include "src/text/token_interner.h"
#include "src/text/tokenizer.h"

namespace emx {

// How a column is normalized (and optionally tokenized) before similarity
// scoring. Mirrors the two prep pipelines in the codebase: features
// lowercase only (feature.cc's Prep), blockers lowercase AND strip
// punctuation (OverlapBlockerOptions).
struct PrepOptions {
  bool lowercase = false;
  bool strip_punctuation = false;

  friend bool operator<(const PrepOptions& a, const PrepOptions& b) {
    if (a.lowercase != b.lowercase) return a.lowercase < b.lowercase;
    return a.strip_punctuation < b.strip_punctuation;
  }
};

// One column of one table, prepped ONCE: per row the normalized string,
// the token strings exactly as the tokenizer emitted them (first-occurrence
// order — the order the legacy per-pair path saw, so order-sensitive
// scorers like Monge-Elkan sum in the same order), and a SORTED span of
// token ids in a flat arena for the merge-based set kernels. Token ids come
// from the owning PrepCache's interner, so spans from any two columns of
// the same cache are directly comparable.
//
// Immutable after construction; safe to read from any number of threads.
class PreparedColumn {
 public:
  // Preps every row of `column`. `tokenizer` may be null for text-only
  // prep (string features need no tokens). `interner` must outlive the
  // column and is mutated (new tokens interned) during construction.
  PreparedColumn(const std::vector<Value>& column, const PrepOptions& options,
                 const Tokenizer* tokenizer, TokenInterner* interner);

  size_t rows() const { return null_.size(); }
  bool is_null(size_t row) const { return null_[row] != 0; }

  // The normalized string of a row ("" for null rows).
  const std::string& text(size_t row) const { return text_[row]; }

  // Sorted token-id span of a row (empty unless built with a tokenizer).
  IdSpan ids(size_t row) const {
    return {id_arena_.data() + id_offsets_[row],
            id_offsets_[row + 1] - id_offsets_[row]};
  }

  // Token strings of a row in tokenizer-emission order; `*count` receives
  // the token count. Contiguous, so callers can pass (ptr, count) straight
  // to the Monge-Elkan span overloads.
  const std::string* tokens(size_t row, size_t* count) const {
    *count = token_offsets_[row + 1] - token_offsets_[row];
    return token_store_.data() + token_offsets_[row];
  }

  // Token ids of a row in tokenizer-EMISSION order, parallel to tokens():
  // emission_ids(row)[k] is the id of tokens(row)[k]. Lets order-sensitive
  // scorers key per-token-pair memos by id while still summing in the
  // legacy order.
  const uint32_t* emission_ids(size_t row, size_t* count) const {
    *count = token_offsets_[row + 1] - token_offsets_[row];
    return emit_ids_.data() + token_offsets_[row];
  }

  // uid() of the interner the ids were assigned by; columns from the same
  // PrepCache share it. See TokenInterner::uid().
  uint64_t interner_uid() const { return interner_uid_; }

  bool tokenized() const { return tokenized_; }

 private:
  bool tokenized_;
  uint64_t interner_uid_;
  std::vector<uint8_t> null_;
  std::vector<std::string> text_;
  std::vector<std::string> token_store_;   // flat, row-major
  std::vector<uint32_t> token_offsets_;    // rows+1
  std::vector<uint32_t> emit_ids_;         // flat, emission order per row
  std::vector<uint32_t> id_arena_;         // flat, each row's run sorted
  std::vector<uint32_t> id_offsets_;       // rows+1
};

// Caches PreparedColumns keyed on (column identity, prep options,
// tokenizer), all sharing ONE TokenInterner so id spans from different
// columns — left vs right table, or columns requested by different
// blockers/features — intersect directly. This is what collapses the
// per-(pair × feature) tokenization of the legacy path to one pass per
// (column, prep config): each record is prepped once no matter how many
// candidate pairs it appears in.
//
// Thread-safety: Get() is fully synchronized (builds are serialized under
// the cache mutex — concurrent blockers requesting columns simply take
// turns prepping). Returned shared_ptrs stay valid across Clear().
//
// Invalidation contract: entries are keyed on the COLUMN'S STORAGE ADDRESS
// plus its row count, so a cache must not outlive the tables it prepped
// (EmWorkflow scopes its cache to itself and its tables; checkpoint/resume
// never persists the cache — prepped state is always rebuilt from live
// tables, see DESIGN.md §8).
class PrepCache {
 public:
  PrepCache() = default;
  PrepCache(const PrepCache&) = delete;
  PrepCache& operator=(const PrepCache&) = delete;

  // The prepared form of `column` under (options, tokenizer), built on
  // first use. `tokenizer` may be null for text-only prep; its name() and
  // unique() flag identify it in the cache key.
  std::shared_ptr<const PreparedColumn> Get(const std::vector<Value>& column,
                                            const PrepOptions& options,
                                            const Tokenizer* tokenizer);

  // Builds a PreparedColumn sharing THIS cache's interner without entering
  // it into the cache. For ephemeral columns — a serve-path query record,
  // a delta-ingested corpus segment — whose storage address may be reused
  // by a later, different column: caching them under an address key would
  // let a recycled address alias a dead entry, so they are prepped fresh
  // while still interning into the shared id universe (spans remain
  // directly comparable with every cached column).
  std::shared_ptr<const PreparedColumn> PrepUncached(
      const std::vector<Value>& column, const PrepOptions& options,
      const Tokenizer* tokenizer);

  // Snapshot of id -> token string for every token interned so far. The
  // views point at interner storage, which is append-only and
  // reference-stable, so they stay valid for the cache's lifetime. Used by
  // the similarity join to order tokens by (frequency, string) without
  // racing a concurrent build.
  std::vector<std::string_view> TokenStringsSnapshot() const;

  // Drops all cache entries (outstanding shared_ptrs stay alive). The
  // interner and its id assignments are retained. Must not run concurrently
  // with a Get() consumer that is still pairing up spans.
  void Clear();

  // Introspection for tests/benches.
  size_t entries() const;
  size_t interned_tokens() const;

 private:
  struct Key {
    const void* column;  // column storage address
    size_t rows;
    PrepOptions options;
    std::string tokenizer_key;  // "" when untokenized

    friend bool operator<(const Key& a, const Key& b) {
      if (a.column != b.column) return a.column < b.column;
      if (a.rows != b.rows) return a.rows < b.rows;
      if (a.options < b.options || b.options < a.options)
        return a.options < b.options;
      return a.tokenizer_key < b.tokenizer_key;
    }
  };

  mutable std::mutex mu_;
  TokenInterner interner_;
  std::map<Key, std::shared_ptr<const PreparedColumn>> cache_;
};

}  // namespace emx

#endif  // EMX_PREP_PREPARED_COLUMN_H_
