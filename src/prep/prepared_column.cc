#include "src/prep/prepared_column.h"

#include <algorithm>

#include "src/core/strings.h"
#include "src/text/set_similarity.h"

namespace emx {

PreparedColumn::PreparedColumn(const std::vector<Value>& column,
                               const PrepOptions& options,
                               const Tokenizer* tokenizer,
                               TokenInterner* interner)
    : tokenized_(tokenizer != nullptr), interner_uid_(interner->uid()) {
  size_t n = column.size();
  null_.resize(n, 0);
  text_.resize(n);
  token_offsets_.assign(n + 1, 0);
  id_offsets_.assign(n + 1, 0);

  std::vector<uint32_t> row_ids;
  for (size_t r = 0; r < n; ++r) {
    const Value& v = column[r];
    if (v.is_null()) {
      null_[r] = 1;
    } else {
      std::string s = v.AsString();
      if (options.lowercase) s = AsciiToLower(s);
      if (options.strip_punctuation) s = StripPunctuation(s);
      text_[r] = std::move(s);
      if (tokenizer != nullptr) {
        std::vector<std::string> tokens = tokenizer->Tokenize(text_[r]);
        row_ids.clear();
        row_ids.reserve(tokens.size());
        for (const std::string& t : tokens) {
          row_ids.push_back(interner->Intern(t));
        }
        emit_ids_.insert(emit_ids_.end(), row_ids.begin(), row_ids.end());
        // Sorted for the merge kernels; duplicates (non-unique tokenizers
        // only) are preserved so the blockers' per-occurrence probe counts
        // match the legacy string index exactly.
        std::sort(row_ids.begin(), row_ids.end());
        id_arena_.insert(id_arena_.end(), row_ids.begin(), row_ids.end());
        for (std::string& t : tokens) token_store_.push_back(std::move(t));
      }
    }
    token_offsets_[r + 1] = static_cast<uint32_t>(token_store_.size());
    id_offsets_[r + 1] = static_cast<uint32_t>(id_arena_.size());
  }
}

std::shared_ptr<const PreparedColumn> PrepCache::Get(
    const std::vector<Value>& column, const PrepOptions& options,
    const Tokenizer* tokenizer) {
  Key key{column.data(), column.size(), options,
          tokenizer == nullptr
              ? std::string()
              : tokenizer->name() + (tokenizer->unique() ? "/u" : "/b")};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto prepared = std::make_shared<const PreparedColumn>(column, options,
                                                         tokenizer, &interner_);
  cache_.emplace(std::move(key), prepared);
  return prepared;
}

std::shared_ptr<const PreparedColumn> PrepCache::PrepUncached(
    const std::vector<Value>& column, const PrepOptions& options,
    const Tokenizer* tokenizer) {
  // Builds under mu_ because the interner is not internally synchronized:
  // the cache mutex is the one lock every interning path takes.
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<const PreparedColumn>(column, options, tokenizer,
                                                &interner_);
}

std::vector<std::string_view> PrepCache::TokenStringsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string_view> out;
  out.reserve(interner_.size());
  for (size_t id = 0; id < interner_.size(); ++id) {
    out.push_back(interner_.TokenString(static_cast<uint32_t>(id)));
  }
  return out;
}

void PrepCache::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }
  // Token ids handed out by our interner may sit in the per-thread
  // Monge-Elkan memo; dropping the prepared columns invalidates the memo's
  // usefulness, so flush it rather than letting stale entries pin memory.
  ClearMongeElkanMemo();
}

size_t PrepCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

size_t PrepCache::interned_tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return interner_.size();
}

}  // namespace emx
