#include "src/cli/cli.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "src/block/attr_equivalence_blocker.h"
#include "src/core/executor.h"
#include "src/core/failpoint.h"
#include "src/core/logging.h"
#include "src/block/overlap_blocker.h"
#include "src/block/similarity_join.h"
#include "src/core/strings.h"
#include "src/datagen/scale_corpus.h"
#include "src/eval/corleone_estimator.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear_regression.h"
#include "src/ml/linear_svm.h"
#include "src/ml/logistic_regression.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"
#include "src/serve/match_service.h"
#include "src/serve/serve_loop.h"
#include "src/table/csv.h"
#include "src/table/profile.h"
#include "src/workflow/checkpoint.h"
#include "src/workflow/em_workflow.h"
#include "src/workflow/pipeline_runner.h"

namespace emx {

namespace {

// --- argument handling -------------------------------------------------------

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // --key=value

  std::string Flag(const std::string& key, const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

Args ParseArgs(const std::vector<std::string>& argv, size_t start) {
  Args out;
  for (size_t i = start; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.rfind("--", 0) == 0) {
      size_t eq = a.find('=');
      if (eq == std::string::npos) {
        out.flags[a.substr(2)] = "true";
      } else {
        out.flags[a.substr(2, eq - 2)] = a.substr(eq + 1);
      }
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

int Fail(std::string& err, const std::string& message) {
  err += message;
  err += '\n';
  return 1;
}

// --- pair CSV I/O ---------------------------------------------------------------

Status WritePairsCsv(const CandidateSet& pairs, const std::string& path) {
  Table t(Schema({{"left_id", DataType::kInt64},
                  {"right_id", DataType::kInt64}}));
  for (const RecordPair& p : pairs) {
    EMX_RETURN_IF_ERROR(t.AppendRow({Value(static_cast<int64_t>(p.left)),
                                     Value(static_cast<int64_t>(p.right))}));
  }
  return WriteCsvFile(t, path);
}

Result<CandidateSet> ReadPairsCsv(const std::string& path) {
  EMX_ASSIGN_OR_RETURN(Table t, ReadCsvFile(path));
  if (!t.schema().Contains("left_id") || !t.schema().Contains("right_id")) {
    return Status::InvalidArgument(path +
                                   ": expected left_id,right_id columns");
  }
  std::vector<RecordPair> pairs;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    pairs.push_back(
        {static_cast<uint32_t>(t.at(r, "left_id").AsInt()),
         static_cast<uint32_t>(t.at(r, "right_id").AsInt())});
  }
  return CandidateSet(std::move(pairs));
}

Result<LabeledSet> ReadLabelsCsv(const std::string& path) {
  EMX_ASSIGN_OR_RETURN(Table t, ReadCsvFile(path));
  for (const char* col : {"left_id", "right_id", "label"}) {
    if (!t.schema().Contains(col)) {
      return Status::InvalidArgument(
          path + ": expected left_id,right_id,label columns");
    }
  }
  LabeledSet out;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string raw = AsciiToLower(t.at(r, "label").AsString());
    Label label;
    if (raw == "yes" || raw == "1" || raw == "match") {
      label = Label::kYes;
    } else if (raw == "no" || raw == "0" || raw == "nonmatch") {
      label = Label::kNo;
    } else if (raw == "unsure" || raw == "?") {
      label = Label::kUnsure;
    } else {
      return Status::ParseError(path + ": bad label '" + raw + "' in row " +
                                std::to_string(r));
    }
    out.SetLabel({static_cast<uint32_t>(t.at(r, "left_id").AsInt()),
                  static_cast<uint32_t>(t.at(r, "right_id").AsInt())},
                 label);
  }
  return out;
}

// --- blocker construction --------------------------------------------------------

// Parses the global --block-mem-budget flag (human byte sizes: "64M",
// "2g", plain bytes). 0 / absent = unbounded (single partition).
Result<size_t> BlockMemBudgetFromArgs(const Args& args) {
  std::string raw = args.Flag("block-mem-budget");
  if (raw.empty()) return size_t{0};
  size_t bytes = 0;
  if (!ParseByteSize(raw, &bytes)) {
    return Status::InvalidArgument("--block-mem-budget: bad byte size '" +
                                   raw + "' (e.g. 64M, 2g, 1048576)");
  }
  return bytes;
}

// Builds a blocker from --method and its parameter flags; shared by the
// block and run subcommands. InvalidArgument on an unknown method.
Result<std::shared_ptr<Blocker>> MakeBlockerFromArgs(
    const Args& args, const std::string& left_attr,
    const std::string& right_attr) {
  std::string method = args.Flag("method", "overlap");
  OverlapBlockerOptions opts;
  opts.left_attr = left_attr;
  opts.right_attr = right_attr;
  EMX_ASSIGN_OR_RETURN(opts.mem_budget_bytes, BlockMemBudgetFromArgs(args));
  std::shared_ptr<Blocker> blocker;
  if (method == "ae") {
    blocker = std::make_shared<AttrEquivalenceBlocker>(left_attr, right_attr);
  } else if (method == "overlap") {
    size_t k = static_cast<size_t>(std::atol(args.Flag("k", "3").c_str()));
    blocker = std::make_shared<OverlapBlocker>(opts, k);
  } else if (method == "coeff") {
    double t = std::atof(args.Flag("threshold", "0.7").c_str());
    blocker = std::make_shared<OverlapCoefficientBlocker>(opts, t);
  } else if (method == "jaccard") {
    double t = std::atof(args.Flag("threshold", "0.7").c_str());
    blocker = std::make_shared<JaccardJoinBlocker>(opts, t);
  } else if (method == "snb") {
    size_t w = static_cast<size_t>(std::atol(args.Flag("window", "5").c_str()));
    blocker =
        std::make_shared<SortedNeighborhoodBlocker>(left_attr, right_attr, w);
  } else {
    return Status::InvalidArgument("unknown --method '" + method +
                                   "' (ae|overlap|coeff|jaccard|snb)");
  }
  return blocker;
}

// --- subcommands -----------------------------------------------------------------

int CmdProfile(const Args& args, std::string& out, std::string& err) {
  if (args.positional.size() != 1) {
    return Fail(err, "usage: emx profile <table.csv>");
  }
  auto table = ReadCsvFile(args.positional[0]);
  if (!table.ok()) return Fail(err, table.status().ToString());
  out += ProfileTable(*table).ToString();
  return 0;
}

int CmdBlock(const Args& args, const ExecutorContext& ctx, std::string& out,
             std::string& err) {
  if (args.positional.size() != 2) {
    return Fail(err, "usage: emx block <left.csv> <right.csv> --method=... "
                     "--left-attr=... --out=...");
  }
  auto left = ReadCsvFile(args.positional[0]);
  if (!left.ok()) return Fail(err, left.status().ToString());
  auto right = ReadCsvFile(args.positional[1]);
  if (!right.ok()) return Fail(err, right.status().ToString());

  std::string left_attr = args.Flag("left-attr");
  std::string right_attr = args.Flag("right-attr", left_attr);
  if (left_attr.empty()) return Fail(err, "--left-attr is required");
  auto blocker_or = MakeBlockerFromArgs(args, left_attr, right_attr);
  if (!blocker_or.ok()) return Fail(err, blocker_or.status().message());
  std::shared_ptr<Blocker> blocker = *blocker_or;

  auto pairs = blocker->Block(*left, *right, ctx);
  if (!pairs.ok()) return Fail(err, pairs.status().ToString());
  out += StrFormat("%s kept %zu of %zu pairs\n", blocker->name().c_str(),
                   pairs->size(), left->num_rows() * right->num_rows());
  std::string out_path = args.Flag("out");
  if (!out_path.empty()) {
    Status s = WritePairsCsv(*pairs, out_path);
    if (!s.ok()) return Fail(err, s.ToString());
    out += "wrote " + out_path + "\n";
  }
  return 0;
}

Result<std::unique_ptr<MlMatcher>> MakeMatcherByName(const std::string& name) {
  std::unique_ptr<MlMatcher> m;
  if (name == "tree") {
    m = std::make_unique<DecisionTreeMatcher>();
  } else if (name == "forest") {
    m = std::make_unique<RandomForestMatcher>();
  } else if (name == "logreg") {
    m = std::make_unique<LogisticRegressionMatcher>();
  } else if (name == "nb") {
    m = std::make_unique<NaiveBayesMatcher>();
  } else if (name == "svm") {
    m = std::make_unique<LinearSvmMatcher>();
  } else if (name == "linreg") {
    m = std::make_unique<LinearRegressionMatcher>();
  } else {
    return Status::InvalidArgument(
        "unknown --matcher '" + name + "' (tree|forest|logreg|nb|svm|linreg)");
  }
  return m;
}

int CmdMatch(const Args& args, const ExecutorContext& ctx, std::string& out,
             std::string& err) {
  if (args.positional.size() != 2) {
    return Fail(err, "usage: emx match <left.csv> <right.csv> --pairs=... "
                     "--labels=... --out=...");
  }
  auto left = ReadCsvFile(args.positional[0]);
  if (!left.ok()) return Fail(err, left.status().ToString());
  auto right = ReadCsvFile(args.positional[1]);
  if (!right.ok()) return Fail(err, right.status().ToString());
  if (!args.Has("pairs") || !args.Has("labels")) {
    return Fail(err, "--pairs and --labels are required");
  }
  auto pairs = ReadPairsCsv(args.Flag("pairs"));
  if (!pairs.ok()) return Fail(err, pairs.status().ToString());
  auto labels = ReadLabelsCsv(args.Flag("labels"));
  if (!labels.ok()) return Fail(err, labels.status().ToString());

  FeatureGenOptions fopts;
  for (auto& col : Split(args.Flag("exclude"), ',')) {
    if (!col.empty()) fopts.exclude.push_back(col);
  }
  for (auto& col : Split(args.Flag("lowercase"), ',')) {
    if (!col.empty()) fopts.lowercase_variants.push_back(col);
  }
  auto features = GenerateFeatures(*left, *right, fopts);
  if (!features.ok()) return Fail(err, features.status().ToString());

  // Train on the decided labels.
  LabeledSet decided = labels->WithoutUnsure();
  CandidateSet train_pairs = decided.Pairs();
  auto train_matrix =
      VectorizePairs(*left, *right, train_pairs, *features, ctx);
  if (!train_matrix.ok()) return Fail(err, train_matrix.status().ToString());
  MeanImputer imputer;
  imputer.Fit(*train_matrix);
  if (Status s = imputer.Transform(*train_matrix); !s.ok()) {
    return Fail(err, s.ToString());
  }
  Dataset train;
  train.feature_names = train_matrix->feature_names;
  train.x = train_matrix->rows;
  for (const RecordPair& p : train_pairs) {
    Label l;
    decided.GetLabel(p, &l);
    train.y.push_back(l == Label::kYes ? 1 : 0);
  }
  auto matcher = MakeMatcherByName(args.Flag("matcher", "tree"));
  if (!matcher.ok()) return Fail(err, matcher.status().ToString());
  (*matcher)->set_executor(ctx);
  if (Status s = (*matcher)->Fit(train); !s.ok()) {
    return Fail(err, s.ToString());
  }

  // Predict over the candidate pairs.
  auto matrix = VectorizePairs(*left, *right, *pairs, *features, ctx);
  if (!matrix.ok()) return Fail(err, matrix.status().ToString());
  if (Status s = imputer.Transform(*matrix); !s.ok()) {
    return Fail(err, s.ToString());
  }
  std::vector<int> pred = (*matcher)->Predict(matrix->rows);
  std::vector<RecordPair> matched;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 1) matched.push_back((*pairs)[i]);
  }
  CandidateSet matches(std::move(matched));
  out += StrFormat("%s predicted %zu matches over %zu candidate pairs "
                   "(%zu features, %zu training labels)\n",
                   (*matcher)->name().c_str(), matches.size(), pairs->size(),
                   features->features.size(), train.size());
  std::string out_path = args.Flag("out");
  if (!out_path.empty()) {
    Status s = WritePairsCsv(matches, out_path);
    if (!s.ok()) return Fail(err, s.ToString());
    out += "wrote " + out_path + "\n";
  }
  return 0;
}

int CmdDedupe(const Args& args, const ExecutorContext& ctx, std::string& out,
              std::string& err) {
  if (args.positional.size() != 1) {
    return Fail(err, "usage: emx dedupe <table.csv> --left-attr=... "
                     "[--method=...] [--out=...]");
  }
  auto table = ReadCsvFile(args.positional[0]);
  if (!table.ok()) return Fail(err, table.status().ToString());
  std::string attr = args.Flag("left-attr");
  if (attr.empty()) return Fail(err, "--left-attr is required");
  std::string method = args.Flag("method", "overlap");

  std::unique_ptr<Blocker> blocker;
  OverlapBlockerOptions opts;
  opts.left_attr = attr;
  opts.right_attr = attr;
  auto budget = BlockMemBudgetFromArgs(args);
  if (!budget.ok()) return Fail(err, budget.status().message());
  opts.mem_budget_bytes = *budget;
  if (method == "ae") {
    blocker = std::make_unique<AttrEquivalenceBlocker>(attr, attr);
  } else if (method == "overlap") {
    size_t k = static_cast<size_t>(std::atol(args.Flag("k", "3").c_str()));
    blocker = std::make_unique<OverlapBlocker>(opts, k);
  } else if (method == "jaccard") {
    double t = std::atof(args.Flag("threshold", "0.7").c_str());
    blocker = std::make_unique<JaccardJoinBlocker>(opts, t);
  } else {
    return Fail(err, "unknown --method '" + method + "' (ae|overlap|jaccard)");
  }
  auto dup = BlockSelf(*blocker, *table, ctx);
  if (!dup.ok()) return Fail(err, dup.status().ToString());
  out += StrFormat("%s found %zu potential duplicate pairs in %zu rows\n",
                   blocker->name().c_str(), dup->size(), table->num_rows());
  std::string out_path = args.Flag("out");
  if (!out_path.empty()) {
    Status s = WritePairsCsv(*dup, out_path);
    if (!s.ok()) return Fail(err, s.ToString());
    out += "wrote " + out_path + "\n";
  }
  return 0;
}

int CmdDatagen(const Args& args, const ExecutorContext& ctx, std::string& out,
               std::string& err) {
  if (!args.positional.empty() || !args.Has("out-left") ||
      !args.Has("out-right")) {
    return Fail(err,
                "usage: emx datagen --sf=N [--seed=N] [--shard-rows=N] "
                "[--match-rate=P] --out-left=left.csv --out-right=right.csv "
                "[--out-gold=gold.csv]");
  }
  ScaleCorpusOptions opts;
  if (args.Has("sf")) opts.scale_factor = std::atof(args.Flag("sf").c_str());
  if (args.Has("seed")) {
    opts.seed = std::strtoull(args.Flag("seed").c_str(), nullptr, 10);
  }
  if (args.Has("shard-rows")) {
    long n = std::atol(args.Flag("shard-rows").c_str());
    if (n <= 0) return Fail(err, "--shard-rows must be a positive integer");
    opts.shard_rows = static_cast<size_t>(n);
  }
  if (args.Has("match-rate")) {
    opts.match_rate = std::atof(args.Flag("match-rate").c_str());
  }
  auto corpus = GenerateScaleCorpus(opts, ctx);
  if (!corpus.ok()) return Fail(err, corpus.status().ToString());
  if (Status s = WriteCsvFile(corpus->left, args.Flag("out-left")); !s.ok()) {
    return Fail(err, s.ToString());
  }
  if (Status s = WriteCsvFile(corpus->right, args.Flag("out-right"));
      !s.ok()) {
    return Fail(err, s.ToString());
  }
  out += StrFormat("sf=%g: wrote %zu left rows to %s, %zu right rows to %s\n",
                   opts.scale_factor, corpus->left.num_rows(),
                   args.Flag("out-left").c_str(), corpus->right.num_rows(),
                   args.Flag("out-right").c_str());
  std::string gold_path = args.Flag("out-gold");
  if (!gold_path.empty()) {
    Status s = WritePairsCsv(corpus->gold, gold_path);
    if (!s.ok()) return Fail(err, s.ToString());
    out += StrFormat("wrote %zu gold pairs to %s\n", corpus->gold.size(),
                     gold_path.c_str());
  }
  return 0;
}

int CmdEstimate(const Args& args, std::string& out, std::string& err) {
  if (!args.Has("matches") || !args.Has("sample")) {
    return Fail(err, "usage: emx estimate --matches=... --sample=...");
  }
  auto matches = ReadPairsCsv(args.Flag("matches"));
  if (!matches.ok()) return Fail(err, matches.status().ToString());
  auto sample = ReadLabelsCsv(args.Flag("sample"));
  if (!sample.ok()) return Fail(err, sample.status().ToString());
  auto est = EstimateAccuracy(*matches, *sample);
  if (!est.ok()) return Fail(err, est.status().ToString());
  out += StrFormat("precision %.3f %s   recall %.3f %s   (%zu labels, %zu "
                   "unsure ignored)\n",
                   est->precision.point, est->precision.ToString().c_str(),
                   est->recall.point, est->recall.ToString().c_str(),
                   est->sample_size, est->unsure_ignored);
  return 0;
}

// --- the end-to-end pipeline (emx run) -------------------------------------------

// Deterministic text form of a labeled set, used only for fingerprinting
// the trained-model checkpoint (sorted pair order, not insertion order).
std::string SerializeLabelsForFingerprint(const LabeledSet& labels) {
  std::string out;
  for (const RecordPair& p : labels.Pairs()) {
    Label l = Label::kUnsure;
    labels.GetLabel(p, &l);
    out += std::to_string(p.left) + " " + std::to_string(p.right) + " " +
           std::string(LabelToString(l)) + "\n";
  }
  return out;
}

// Serialized form of a trained matcher, or "" for types without a text
// round-trip (only the tree and forest serialize today).
std::string SerializeModel(const MlMatcher& matcher,
                           const std::string& matcher_name) {
  if (matcher_name == "tree") {
    return static_cast<const DecisionTreeMatcher&>(matcher).Serialize();
  }
  if (matcher_name == "forest") {
    return static_cast<const RandomForestMatcher&>(matcher).Serialize();
  }
  return "";
}

// Restores a matcher from its checkpoint artifact; nullptr when the type
// does not round-trip or the artifact does not parse.
std::shared_ptr<MlMatcher> DeserializeModel(const std::string& text,
                                            const std::string& matcher_name) {
  if (matcher_name == "tree") {
    auto restored = DecisionTreeMatcher::Deserialize(text);
    if (restored.ok()) {
      return std::make_shared<DecisionTreeMatcher>(std::move(*restored));
    }
    EMX_LOG(Warning) << "model checkpoint does not parse ("
                     << restored.status().ToString() << "); retraining";
  } else if (matcher_name == "forest") {
    auto restored = RandomForestMatcher::Deserialize(text);
    if (restored.ok()) {
      return std::make_shared<RandomForestMatcher>(std::move(*restored));
    }
    EMX_LOG(Warning) << "model checkpoint does not parse ("
                     << restored.status().ToString() << "); retraining";
  }
  return nullptr;
}

int CmdRun(const Args& args, const ExecutorContext& ctx, std::string& out,
           std::string& err) {
  if (args.positional.size() != 2) {
    return Fail(err,
                "usage: emx run <left.csv> <right.csv> --left-attr=... "
                "--labels=... [--method=...] [--matcher=tree] "
                "[--checkpoint-dir=DIR] [--resume] [--out=matches.csv]");
  }
  auto left = ReadCsvFile(args.positional[0]);
  if (!left.ok()) return Fail(err, left.status().ToString());
  auto right = ReadCsvFile(args.positional[1]);
  if (!right.ok()) return Fail(err, right.status().ToString());

  std::string left_attr = args.Flag("left-attr");
  std::string right_attr = args.Flag("right-attr", left_attr);
  if (left_attr.empty()) return Fail(err, "--left-attr is required");
  auto blocker_or = MakeBlockerFromArgs(args, left_attr, right_attr);
  if (!blocker_or.ok()) return Fail(err, blocker_or.status().message());

  if (!args.Has("labels")) return Fail(err, "--labels is required");
  auto labels = ReadLabelsCsv(args.Flag("labels"));
  if (!labels.ok()) return Fail(err, labels.status().ToString());

  FeatureGenOptions fopts;
  for (auto& col : Split(args.Flag("exclude"), ',')) {
    if (!col.empty()) fopts.exclude.push_back(col);
  }
  for (auto& col : Split(args.Flag("lowercase"), ',')) {
    if (!col.empty()) fopts.lowercase_variants.push_back(col);
  }
  auto features = GenerateFeatures(*left, *right, fopts);
  if (!features.ok()) return Fail(err, features.status().ToString());

  // Train stage. Vectorize the decided labels and fit the configured
  // matcher, unless a resumable model checkpoint matches the training
  // inputs exactly.
  const std::string checkpoint_dir = args.Flag("checkpoint-dir");
  const bool resume = args.Has("resume");
  std::optional<CheckpointStore> store;
  if (!checkpoint_dir.empty()) {
    auto opened = CheckpointStore::Open(checkpoint_dir);
    if (!opened.ok()) return Fail(err, opened.status().ToString());
    store.emplace(std::move(*opened));
  }

  LabeledSet decided = labels->WithoutUnsure();
  CandidateSet train_pairs = decided.Pairs();
  auto train_matrix =
      VectorizePairs(*left, *right, train_pairs, *features, ctx);
  if (!train_matrix.ok()) return Fail(err, train_matrix.status().ToString());
  MeanImputer imputer;
  imputer.Fit(*train_matrix);
  if (Status s = imputer.Transform(*train_matrix); !s.ok()) {
    return Fail(err, s.ToString());
  }

  const std::string matcher_name = args.Flag("matcher", "tree");
  const std::string model_fp = HashHex(Fnv1a64(
      WriteCsvString(*left) + "\x1f" + WriteCsvString(*right) + "\x1f" +
      SerializeLabelsForFingerprint(decided) + "\x1f" + matcher_name +
      "\x1f" + Join(features->names(), ",")));

  std::shared_ptr<MlMatcher> matcher;
  if (store && resume) {
    if (auto cached = store->Get("model", model_fp); cached.ok()) {
      matcher = DeserializeModel(*cached, matcher_name);
      if (matcher) out += "resumed trained model from checkpoint\n";
    }
  }
  if (matcher == nullptr) {
    auto made = MakeMatcherByName(matcher_name);
    if (!made.ok()) return Fail(err, made.status().ToString());
    matcher = std::shared_ptr<MlMatcher>(std::move(*made));
    matcher->set_executor(ctx);
    Dataset train;
    train.feature_names = train_matrix->feature_names;
    train.x = train_matrix->rows;
    for (const RecordPair& p : train_pairs) {
      Label l = Label::kNo;
      decided.GetLabel(p, &l);
      train.y.push_back(l == Label::kYes ? 1 : 0);
    }
    if (Status s = matcher->Fit(train); !s.ok()) {
      return Fail(err, s.ToString());
    }
    if (store) {
      std::string serialized = SerializeModel(*matcher, matcher_name);
      if (!serialized.empty()) {
        if (Status s = store->Put("model", model_fp, serialized); !s.ok()) {
          return Fail(err, s.ToString());
        }
      } else {
        out += "note: matcher '" + matcher_name +
               "' has no serialization; it will retrain on resume\n";
      }
    }
  }

  // Predict stage, driven through the checkpointing runner.
  EmWorkflow wf;
  wf.SetExecutor(ctx);
  wf.AddBlocker(*blocker_or);
  wf.SetMatcher(matcher, std::move(*features), std::move(imputer));
  PipelineOptions popts;
  popts.checkpoint_dir = checkpoint_dir;
  popts.resume = resume;
  PipelineRunner runner(&wf, popts);
  auto run = runner.Run(*left, *right);
  if (!run.ok()) return Fail(err, run.status().ToString());

  out += StrFormat(
      "pipeline: %zu candidate pairs, %zu ml matches, %zu final matches\n",
      run->candidates.size(), run->after_rules.size(),
      run->final_matches.size());

  std::string out_path = args.Flag("out");
  if (!out_path.empty()) {
    Table t(Schema({{"left_id", DataType::kInt64},
                    {"right_id", DataType::kInt64},
                    {"provenance", DataType::kString}}));
    for (const RecordPair& p : run->final_matches) {
      Status s = t.AppendRow({Value(static_cast<int64_t>(p.left)),
                              Value(static_cast<int64_t>(p.right)),
                              Value(run->provenance.ProvenanceOf(p))});
      if (!s.ok()) return Fail(err, s.ToString());
    }
    Status s = WriteCsvFile(t, out_path);
    if (!s.ok()) return Fail(err, s.ToString());
    out += "wrote " + out_path + "\n";
  }
  return 0;
}

// --- the resident matcher (emx serve) --------------------------------------------

// Trains exactly like `emx run` (decided labels → vectorize → imputer →
// matcher Fit), packages the workflow into a resident MatchService over the
// right-hand corpus, and answers line-delimited JSON requests — from
// --requests=FILE (responses land in `out`, in-process testable) or from
// stdin (responses stream to stdout as they are produced).
int CmdServe(const Args& args, const ExecutorContext& ctx, std::string& out,
             std::string& err) {
  if (args.positional.size() != 2) {
    return Fail(err,
                "usage: emx serve <left.csv> <corpus.csv> --left-attr=... "
                "--labels=... [--method=overlap|coeff] [--matcher=forest] "
                "[--exclude=...] [--lowercase=...] [--requests=FILE] "
                "[--queue-capacity=N] [--batch-max=N] "
                "[--compact-threshold=N]");
  }
  auto left = ReadCsvFile(args.positional[0]);
  if (!left.ok()) return Fail(err, left.status().ToString());
  auto corpus = ReadCsvFile(args.positional[1]);
  if (!corpus.ok()) return Fail(err, corpus.status().ToString());

  std::string left_attr = args.Flag("left-attr");
  std::string right_attr = args.Flag("right-attr", left_attr);
  if (left_attr.empty()) return Fail(err, "--left-attr is required");
  auto blocker_or = MakeBlockerFromArgs(args, left_attr, right_attr);
  if (!blocker_or.ok()) return Fail(err, blocker_or.status().message());

  if (!args.Has("labels")) return Fail(err, "--labels is required");
  auto labels = ReadLabelsCsv(args.Flag("labels"));
  if (!labels.ok()) return Fail(err, labels.status().ToString());

  FeatureGenOptions fopts;
  for (auto& col : Split(args.Flag("exclude"), ',')) {
    if (!col.empty()) fopts.exclude.push_back(col);
  }
  for (auto& col : Split(args.Flag("lowercase"), ',')) {
    if (!col.empty()) fopts.lowercase_variants.push_back(col);
  }
  auto features = GenerateFeatures(*left, *corpus, fopts);
  if (!features.ok()) return Fail(err, features.status().ToString());

  LabeledSet decided = labels->WithoutUnsure();
  CandidateSet train_pairs = decided.Pairs();
  auto train_matrix =
      VectorizePairs(*left, *corpus, train_pairs, *features, ctx);
  if (!train_matrix.ok()) return Fail(err, train_matrix.status().ToString());
  MeanImputer imputer;
  imputer.Fit(*train_matrix);
  if (Status s = imputer.Transform(*train_matrix); !s.ok()) {
    return Fail(err, s.ToString());
  }

  auto made = MakeMatcherByName(args.Flag("matcher", "forest"));
  if (!made.ok()) return Fail(err, made.status().ToString());
  std::shared_ptr<MlMatcher> matcher(std::move(*made));
  matcher->set_executor(ctx);
  Dataset train;
  train.feature_names = train_matrix->feature_names;
  train.x = train_matrix->rows;
  for (const RecordPair& p : train_pairs) {
    Label l = Label::kNo;
    decided.GetLabel(p, &l);
    train.y.push_back(l == Label::kYes ? 1 : 0);
  }
  if (Status s = matcher->Fit(train); !s.ok()) return Fail(err, s.ToString());

  EmWorkflow wf;
  wf.SetExecutor(ctx);
  wf.AddBlocker(*blocker_or);
  wf.SetMatcher(matcher, std::move(*features), std::move(imputer));

  MatchServiceOptions sopts;
  if (args.Has("compact-threshold")) {
    sopts.compact_threshold = static_cast<size_t>(
        std::atol(args.Flag("compact-threshold").c_str()));
  }
  auto service = MatchService::Create(wf, *corpus, sopts, ctx);
  if (!service.ok()) return Fail(err, service.status().ToString());

  ServeOptions lopts;
  lopts.queue_capacity = static_cast<size_t>(
      std::atol(args.Flag("queue-capacity", "128").c_str()));
  lopts.batch_max =
      static_cast<size_t>(std::atol(args.Flag("batch-max", "16").c_str()));

  const std::string requests_path = args.Flag("requests");
  ServeCounters totals;
  if (!requests_path.empty()) {
    std::ifstream in(requests_path);
    if (!in) return Fail(err, "serve: cannot open " + requests_path);
    std::ostringstream responses;
    ServeLoop loop(service->get(), lopts, &responses, ctx);
    if (Status s = loop.Run(in); !s.ok()) return Fail(err, s.ToString());
    out += responses.str();
    totals.admitted = loop.counters().admitted.load();
    totals.shed = loop.counters().shed.load();
    totals.parse_errors = loop.counters().parse_errors.load();
  } else {
    ServeLoop loop(service->get(), lopts, &std::cout, ctx);
    if (Status s = loop.Run(std::cin); !s.ok()) return Fail(err, s.ToString());
    totals.admitted = loop.counters().admitted.load();
    totals.shed = loop.counters().shed.load();
    totals.parse_errors = loop.counters().parse_errors.load();
  }
  err += StrFormat("serve: %llu requests answered, %llu shed, %llu malformed\n",
                   static_cast<unsigned long long>(totals.admitted.load()),
                   static_cast<unsigned long long>(totals.shed.load()),
                   static_cast<unsigned long long>(totals.parse_errors.load()));
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::string& out,
           std::string& err) {
  if (args.empty()) {
    return Fail(err,
                "usage: emx "
                "<profile|datagen|block|dedupe|match|estimate|run|serve>"
                " ...\n"
                "see src/cli/cli.h for full flag documentation");
  }
  Args parsed = ParseArgs(args, 1);

  // Fault injection: arm failpoints named by the EMX_FAILPOINTS env var and
  // the --fail-point flag (';'-separated specs; the flag is applied second
  // so it wins on the same name). Everything armed here is disarmed when
  // this invocation returns, so in-process callers (tests, batch drivers)
  // don't leak injection state into the next run.
  struct ScopedFailPoints {
    bool active = false;
    ~ScopedFailPoints() {
      if (active) FailPointRegistry::Global().DisarmAll();
    }
  } scoped_fail_points;
  if (std::getenv("EMX_FAILPOINTS") != nullptr || parsed.Has("fail-point")) {
    scoped_fail_points.active = true;
    if (Status s = FailPointRegistry::Global().ArmFromEnv(); !s.ok()) {
      return Fail(err, s.ToString());
    }
    if (parsed.Has("fail-point")) {
      Status s = FailPointRegistry::Global().ArmFromSpecList(
          parsed.Flag("fail-point"));
      if (!s.ok()) return Fail(err, s.ToString());
    }
  }

  // Global --threads=N pins this invocation to a private N-thread pool;
  // without it, stages run on the shared default executor (EMX_THREADS or
  // hardware concurrency). Output is identical either way.
  std::unique_ptr<Executor> pool;
  ExecutorContext ctx;
  if (parsed.Has("threads")) {
    long n = std::atol(parsed.Flag("threads").c_str());
    if (n <= 0) return Fail(err, "--threads must be a positive integer");
    pool = std::make_unique<Executor>(static_cast<size_t>(n));
    ctx.executor = pool.get();
  }

  const std::string& cmd = args[0];
  if (cmd == "profile") return CmdProfile(parsed, out, err);
  if (cmd == "datagen") return CmdDatagen(parsed, ctx, out, err);
  if (cmd == "block") return CmdBlock(parsed, ctx, out, err);
  if (cmd == "dedupe") return CmdDedupe(parsed, ctx, out, err);
  if (cmd == "match") return CmdMatch(parsed, ctx, out, err);
  if (cmd == "estimate") return CmdEstimate(parsed, out, err);
  if (cmd == "run") return CmdRun(parsed, ctx, out, err);
  if (cmd == "serve") return CmdServe(parsed, ctx, out, err);
  return Fail(err, "unknown command '" + cmd + "'");
}

}  // namespace emx
