// The `emx` command-line tool. All logic lives in cli.cc (unit-tested);
// this translation unit only adapts process arguments and streams.

#include <cstdio>

#include "src/cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  std::string out, err;
  int code = emx::RunCli(args, out, err);
  if (!out.empty()) std::fputs(out.c_str(), stdout);
  if (!err.empty()) std::fputs(err.c_str(), stderr);
  return code;
}
