#ifndef EMX_CLI_CLI_H_
#define EMX_CLI_CLI_H_

#include <string>
#include <vector>

namespace emx {

// The `emx` command-line tool, as a library entry point so the argument
// handling and every subcommand are unit-testable in-process.
//
//   emx profile  <table.csv>
//   emx datagen  --sf=N [--seed=N] [--shard-rows=N] [--match-rate=P]
//                --out-left=left.csv --out-right=right.csv
//                [--out-gold=gold.csv]
//   emx block    <left.csv> <right.csv> --method=ae|overlap|coeff|jaccard|snb
//                --left-attr=COL [--right-attr=COL] [--k=3] [--threshold=0.7]
//                [--window=5] [--block-mem-budget=SIZE] --out=pairs.csv
//   emx match    <left.csv> <right.csv> --pairs=pairs.csv --labels=labels.csv
//                [--matcher=tree|forest|logreg|nb|svm|linreg]
//                [--exclude=col1,col2] [--lowercase=colA,colB]
//                --out=matches.csv
//   emx dedupe   <table.csv> --left-attr=COL [--method=ae|overlap|jaccard]
//                [--k=3] [--threshold=0.7] [--out=pairs.csv]
//   emx estimate --matches=matches.csv --sample=sample.csv
//   emx run      <left.csv> <right.csv> --left-attr=COL --labels=labels.csv
//                [--method=...] [--matcher=tree|forest|logreg|nb|svm|linreg]
//                [--exclude=...] [--lowercase=...]
//                [--checkpoint-dir=DIR] [--resume] [--out=matches.csv]
//   emx serve    <left.csv> <corpus.csv> --left-attr=COL --labels=labels.csv
//                [--method=overlap|coeff] [--matcher=forest] [--exclude=...]
//                [--lowercase=...] [--requests=FILE] [--queue-capacity=N]
//                [--batch-max=N] [--compact-threshold=N]
//
// `emx run` executes the end-to-end pipeline (train → block → match) with
// stage-level checkpointing: with --checkpoint-dir each stage's output (and
// the trained tree/forest model) is persisted as it completes, and a rerun
// with --resume skips every stage whose inputs are unchanged — a run killed
// mid-pipeline resumes from the last completed stage and produces
// bit-identical matches to an uninterrupted run.
//
// `emx serve` trains the same way `emx run` does, then stays resident: it
// packages the workflow into a MatchService over <corpus.csv> and answers
// line-delimited JSON requests (lookup/insert/remove/compact/stats — see
// src/serve/serve_loop.h for the schema) from stdin, or from
// --requests=FILE for scripted sessions. Admission is bounded: at most
// --queue-capacity requests wait while --batch-max process; overload is
// shed immediately with a typed Unavailable response.
//
// `emx datagen` generates a synthetic scale-factor corpus (sf=1 is 1000
// rows per side; token frequencies are NURand-skewed) plus its gold match
// pairs. Generation is row-seeded: the same --sf and --seed produce
// bit-identical CSVs at every --threads and --shard-rows setting.
//
// Every subcommand also accepts a global `--threads=N` flag selecting how
// many threads the blocking/vectorization/matching stages run on (default:
// the EMX_THREADS env var, else all hardware threads). Results are
// identical at any thread count.
//
// Overlap/coeff/jaccard blocking accepts `--block-mem-budget=SIZE` (human
// byte sizes: 64M, 2g, 1048576) bounding the peak index + probe working
// set; the join then streams right-table partitions under that budget.
// The candidate set is bit-identical at every budget (0/absent =
// unbounded, one partition).
//
// Fault injection: the global `--fail-point=<spec>[;<spec>...]` flag (and
// the EMX_FAILPOINTS env var, same format) arms named failpoints for the
// invocation, e.g. `--fail-point=csv/read:error(IoError),count=2`. See
// src/core/failpoint.h for the spec grammar.
//
// Pair CSVs carry (left_id, right_id) row indices; label CSVs add a third
// `label` column with yes/no/unsure. All diagnostics go to `out`/`err`
// so tests can capture them.
int RunCli(const std::vector<std::string>& args, std::string& out,
           std::string& err);

}  // namespace emx

#endif  // EMX_CLI_CLI_H_
