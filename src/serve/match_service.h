#ifndef EMX_SERVE_MATCH_SERVICE_H_
#define EMX_SERVE_MATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/block/delta_index.h"
#include "src/core/executor.h"
#include "src/core/result.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/ml/matcher.h"
#include "src/prep/prepared_column.h"
#include "src/rules/match_rules.h"
#include "src/table/table.h"
#include "src/text/tokenizer.h"
#include "src/workflow/em_workflow.h"

namespace emx {

struct MatchServiceOptions {
  // Delta + tombstoned postings tolerated per blocking index before it
  // folds them back into its CSR snapshot.
  size_t compact_threshold = 4096;
  // Per-stage latency ring size (most recent N lookups feed p50/p99).
  size_t latency_window = 4096;
};

// One ranked answer of a point lookup.
struct RankedMatch {
  uint32_t record = 0;      // corpus record id (row of the resident table)
  double score = 0.0;       // 1.0 for rule matches, else the RF probability
  std::string provenance;   // "sure_rule" | "ml" — same tags as MatchSet
};

struct LookupResult {
  // Sure-rule matches first (ascending record id), then ML matches by
  // (probability descending, record id ascending).
  std::vector<RankedMatch> matches;
  size_t num_candidates = 0;  // blocked ∪ sure (the batch pipeline's C2)
  size_t num_sure = 0;        // C1 restricted to this query
};

struct LatencySummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t count = 0;
};

struct MatchServiceStats {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t removes = 0;
  // Prepared-column build passes over CORPUS data (base columns at Create,
  // one single-row segment per prep spec per Insert). Lookups must never
  // move this counter — the "zero re-prep work" regression contract.
  uint64_t corpus_preps = 0;
  // Single-row preps of incoming query records (inherent per-lookup work).
  uint64_t query_preps = 0;
  uint64_t compactions = 0;      // summed over blocking indexes
  uint64_t delta_postings = 0;   // currently pending, summed
  uint64_t dead_postings = 0;    // currently tombstoned, summed
  size_t live_records = 0;
  size_t total_records = 0;
  // Per-stage lookup latency over the ring window.
  LatencySummary block;      // query prep + index probe + keep predicates
  LatencySummary vectorize;  // PairBatch fill + imputation
  LatencySummary score;      // forest inference + thresholding
  LatencySummary rules;      // positive scan + negative filtering
  LatencySummary total;
};

// A long-lived serving instance packaged from a trained batch EmWorkflow:
// it owns a copy of the right-hand corpus table, resident prepared columns
// for every (attribute, prep spec) the features and blockers read, the
// trained matcher + imputer + rules, and one mutable DeltaTokenIndex per
// distinct blocker (attribute, normalization, tokenizer) — built once at
// Create and NEVER rebuilt from scratch afterwards.
//
// Lookup(query, row) answers "which corpus records match this record" with
// results BIT-IDENTICAL to running the batch workflow over (query-table,
// corpus) and restricting to that query row: same candidate records (the
// delta index replays each blocker's keep predicate over identical token
// multisets), same feature doubles (per-pair evaluation over prepared
// segments is the documented bit-equal twin of the batch vectorizer), same
// probabilities, same rule flips. match_service_test asserts this for
// every record of the case-study and SF=10 corpora.
//
// Insert/Remove mutate the corpus incrementally: Insert appends the row,
// preps ONLY that row (one single-row segment per prep spec — never a
// column re-prep), and pushes its postings into each index's delta lists;
// Remove tombstones. Each index folds deltas+tombstones into its CSR
// snapshot when they exceed options.compact_threshold; probe results are
// identical at every compaction state (delta_index_property_test fuzzes
// this invariant).
//
// Ownership keeps prep work resident: the service holds its OWN PrepCache
// (never shared with a PipelineRunner, whose per-run Clear() would drop
// prepped state mid-service — see DESIGN.md §12) and direct shared_ptrs to
// every corpus segment, so even an unrelated in-process batch run that
// flushes the global Monge-Elkan memo generation costs the service only
// warm-up, never correctness or re-prep.
//
// Thread-safety: any number of concurrent Lookups (shared lock); Insert /
// Remove / Compact take the exclusive lock. Stats() is safe concurrently
// with everything.
class MatchService {
 public:
  // Packages `workflow` + `corpus` (the right-hand table) into a service.
  // Every registered blocker must be an OverlapBlocker or
  // OverlapCoefficientBlocker (the token-index family the delta index can
  // answer); anything else is InvalidArgument — equality-style blocking
  // belongs in positive rules, which serve evaluates directly. The matcher
  // is optional (a rules-only workflow serves rule matches).
  static Result<std::unique_ptr<MatchService>> Create(
      const EmWorkflow& workflow, const Table& corpus,
      MatchServiceOptions options = {}, const ExecutorContext& ctx = {});

  // Out-of-line: members hold the private nested types by value.
  ~MatchService();

  // Point lookup for row `query_row` of `query` (a table with the
  // left-hand schema the workflow was configured against).
  Result<LookupResult> Lookup(const Table& query, size_t query_row) const;

  // Appends a record (values in corpus schema order) and returns its
  // record id. O(row tokens), not O(corpus).
  Result<uint32_t> Insert(std::vector<Value> row);

  // Tombstones a record; subsequent lookups never return it. NotFound for
  // out-of-range or already-removed ids.
  Status Remove(uint32_t record);

  // Forces every blocking index to fold its deltas now (normally automatic
  // via compact_threshold).
  void Compact();

  MatchServiceStats Stats() const;

  // The resident corpus (rows are never physically removed; tombstones
  // hide them). Not synchronized against concurrent Insert — test/driver
  // convenience, not a hot-path API.
  const Table& corpus() const { return corpus_; }
  bool record_live(uint32_t record) const;

 private:
  struct CorpusPrep;     // one (attr, prep options, tokenizer) column family
  struct QuerySpec;      // query-side prep descriptor
  struct BlockPredicate; // one blocker's keep predicate over a shared index
  struct IndexGroup;     // one delta index + the predicates probing it
  struct FeatureBinding; // feature → (query spec, corpus prep) wiring
  struct LatencyRing;

  MatchService() = default;

  // Stage bodies (called with mu_ held shared).
  std::vector<uint32_t> SureMatches(const Table& query, size_t query_row,
                                    const ExecutorContext& ctx) const;
  Status BlockCandidates(const Table& query, size_t query_row,
                         std::vector<uint32_t>* out) const;

  Table corpus_;
  std::vector<uint8_t> live_;
  size_t base_rows_ = 0;  // rows prepped as segment 0 at Create
  MatchServiceOptions options_;
  ExecutorContext exec_ctx_;

  // Workflow pieces (owned copies / shared ownership).
  std::vector<MatchRule> positive_rules_;
  std::vector<MatchRule> negative_rules_;
  std::shared_ptr<MlMatcher> matcher_;
  FeatureSet features_;
  MeanImputer imputer_;

  // The service-owned cache: interner + build lock. Never Cleared.
  std::shared_ptr<PrepCache> prep_cache_;
  std::vector<std::unique_ptr<CorpusPrep>> corpus_preps_;
  std::vector<std::unique_ptr<QuerySpec>> query_specs_;
  std::vector<std::unique_ptr<IndexGroup>> index_groups_;
  std::vector<FeatureBinding> bindings_;

  mutable std::shared_mutex mu_;

  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> removes_{0};
  mutable std::atomic<uint64_t> corpus_prep_builds_{0};
  mutable std::atomic<uint64_t> query_prep_builds_{0};

  mutable std::mutex lat_mu_;
  std::unique_ptr<LatencyRing> lat_block_;
  std::unique_ptr<LatencyRing> lat_vectorize_;
  std::unique_ptr<LatencyRing> lat_score_;
  std::unique_ptr<LatencyRing> lat_rules_;
  std::unique_ptr<LatencyRing> lat_total_;
};

}  // namespace emx

#endif  // EMX_SERVE_MATCH_SERVICE_H_
