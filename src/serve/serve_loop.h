#ifndef EMX_SERVE_SERVE_LOOP_H_
#define EMX_SERVE_SERVE_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "src/core/executor.h"
#include "src/core/status.h"
#include "src/serve/json.h"
#include "src/serve/match_service.h"

namespace emx {

// Admission policy for the request loop.
struct ServeOptions {
  // Bounded request queue: a request arriving while the queue holds this
  // many is SHED immediately with a typed Unavailable response (never
  // silently dropped, never blocking the reader).
  size_t queue_capacity = 128;
  // Max requests drained into one processing batch — also the max
  // in-flight concurrency (batch requests run on the executor together).
  size_t batch_max = 16;
};

// Deterministic observability for admission tests and `emx serve` exit
// summaries. admitted + shed + parse_errors == lines received;
// processed == admitted once the loop has drained.
struct ServeCounters {
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> processed{0};
  std::atomic<uint64_t> parse_errors{0};
};

// Line-delimited JSON request/response loop over a MatchService (the `emx
// serve` transport). One request object per input line, one response object
// per request — every response echoes the request's "id", so shed
// responses interleaving with processed ones stay attributable.
//
// Requests:
//   {"id":1,"op":"lookup","record":{"Attr":"value",...}}
//   {"id":2,"op":"insert","record":{...}}       (corpus schema by name;
//                                                missing fields are null)
//   {"id":3,"op":"remove","record_id":17}
//   {"id":4,"op":"compact"}
//   {"id":5,"op":"stats"}
// Responses:
//   {"id":1,"ok":true,"matches":[{"record":9,"score":0.83,
//       "provenance":"ml"},...],"candidates":12,"sure":1}
//   {"id":2,"ok":true,"record_id":120}
//   {"id":9,"ok":false,"error":"Unavailable","message":"..."}   (shed)
//
// Threading: Submit (the reader side) parses and either enqueues or sheds;
// a single drain thread pops batches of up to batch_max and processes them
// on the executor (lookups within a batch run concurrently under the
// service's shared lock), writing responses in batch order. Stop() drains
// everything already admitted before joining — an admitted request is
// always answered.
//
// Failpoint: every request handler passes "serve/handle"; arming it with
// mode=block stalls the drain batch deterministically (the admission tests
// saturate the queue this way).
class ServeLoop {
 public:
  // `service` and `out` must outlive the loop. Responses are written to
  // `out` under an internal mutex, one per line, flushed.
  ServeLoop(MatchService* service, ServeOptions options, std::ostream* out,
            const ExecutorContext& ctx = {});
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  // Spawns the drain thread. Call once before Submit.
  void Start();

  // Reader-side admission of one request line. Parses; on success either
  // enqueues (true) or writes a shed Unavailable response (false). Parse
  // failures write a ParseError response and return false. Never blocks on
  // a full queue.
  bool Submit(const std::string& line);

  // Signals end of input, waits for every admitted request to be answered,
  // and joins the drain thread. Idempotent.
  void Stop();

  // Convenience transport: Start, Submit each line of `in` until EOF,
  // Stop. Returns OK (transport-level errors are per-response).
  Status Run(std::istream& in);

  const ServeCounters& counters() const { return counters_; }

 private:
  struct Request {
    JsonValue id;
    JsonValue body;
  };

  void DrainLoop();
  void WriteResponse(const std::string& line);

  MatchService* service_;
  ServeOptions options_;
  std::ostream* out_;
  ExecutorContext exec_ctx_;
  ServeCounters counters_;

  std::mutex out_mu_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread drain_;
};

// One request object → one response object (the per-request core ServeLoop
// batches; exposed for direct-call tests and bench_serve). Passes the
// "serve/handle" failpoint.
JsonValue HandleServeRequest(MatchService& service, const JsonValue& request);

}  // namespace emx

#endif  // EMX_SERVE_SERVE_LOOP_H_
