#include "src/serve/match_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <mutex>

#include "src/block/overlap_blocker.h"
#include "src/core/failpoint.h"
#include "src/feature/pair_batch.h"

namespace emx {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// One cache-key string per (attr, prep, tokenizer family), mirroring
// PrepCache's tokenizer identity so two specs collapse iff the cache would
// have collapsed them.
std::string SpecKey(const std::string& attr, const PrepOptions& opts,
                    const Tokenizer* tokenizer) {
  std::string key = attr;
  key += opts.lowercase ? "|lc" : "|-";
  key += opts.strip_punctuation ? "|sp" : "|-";
  key += '|';
  if (tokenizer != nullptr) {
    key += tokenizer->name() + (tokenizer->unique() ? "/u" : "/b");
  }
  return key;
}

}  // namespace

// One (attribute, normalization, tokenizer) family of resident corpus
// segments: segments[0] covers rows [0, base_rows) (built at Create), then
// one single-row segment per Insert, in insertion order — record id maps
// to a segment without any lookaside table.
struct MatchService::CorpusPrep {
  std::string attr;
  int col = -1;  // column index in the corpus schema
  PrepOptions opts;
  std::shared_ptr<Tokenizer> tokenizer;  // null → text-only prep
  std::string key;
  std::vector<std::shared_ptr<const PreparedColumn>> segments;

  const PreparedColumn& Segment(uint32_t record, size_t base_rows,
                                size_t* row) const {
    if (record < base_rows) {
      *row = record;
      return *segments[0];
    }
    *row = 0;
    return *segments[1 + (record - base_rows)];
  }
};

// Query-side prep descriptor: at each Lookup, one single-cell
// PreparedColumn is built per spec (through the service cache's interner,
// uncached — query storage addresses are ephemeral).
struct MatchService::QuerySpec {
  std::string attr;
  PrepOptions opts;
  std::shared_ptr<Tokenizer> tokenizer;
  std::string key;
};

// One blocker's survival predicate over a shared index probe:
// keep(query_tokens, record_tokens, overlap).
struct MatchService::BlockPredicate {
  size_t min_left_tokens = 1;  // probe skipped below this query size
  std::function<bool(size_t, size_t, size_t)> keep;
};

// One mutable blocking index plus every predicate that probes it — the
// paper's overlap + overlap-coefficient pair on the same attribute share
// one index, exactly as they share one prepped column in the batch path.
struct MatchService::IndexGroup {
  int query_spec = -1;
  int corpus_prep = -1;
  DeltaTokenIndex index{0};
  std::vector<BlockPredicate> preds;
};

struct MatchService::FeatureBinding {
  int query_spec = -1;  // -1 → legacy per-pair Value fn
  int corpus_prep = -1;
};

// Bounded ring of stage latencies; p50/p99 over the most recent window.
struct MatchService::LatencyRing {
  explicit LatencyRing(size_t capacity)
      : samples(capacity > 0 ? capacity : 1, 0.0) {}

  std::vector<double> samples;
  size_t next = 0;
  uint64_t count = 0;

  void Push(double us) {
    samples[next] = us;
    next = (next + 1) % samples.size();
    ++count;
  }

  LatencySummary Summary() const {
    LatencySummary out;
    out.count = count;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(count, samples.size()));
    if (n == 0) return out;
    std::vector<double> sorted(samples.begin(), samples.begin() + n);
    std::sort(sorted.begin(), sorted.end());
    auto quantile = [&](double q) {
      size_t idx = static_cast<size_t>(q * static_cast<double>(n - 1) + 0.5);
      return sorted[std::min(idx, n - 1)];
    };
    out.p50_us = quantile(0.50);
    out.p99_us = quantile(0.99);
    return out;
  }
};

MatchService::~MatchService() = default;

Result<std::unique_ptr<MatchService>> MatchService::Create(
    const EmWorkflow& workflow, const Table& corpus,
    MatchServiceOptions options, const ExecutorContext& ctx) {
  std::unique_ptr<MatchService> svc(new MatchService());
  svc->corpus_ = corpus;
  svc->live_.assign(corpus.num_rows(), 1);
  svc->base_rows_ = corpus.num_rows();
  svc->options_ = options;
  svc->exec_ctx_ = ctx;
  svc->positive_rules_ = workflow.positive_rules();
  svc->negative_rules_ = workflow.negative_rules();
  svc->matcher_ = workflow.matcher();
  svc->features_ = workflow.features();
  svc->imputer_ = workflow.imputer();
  svc->prep_cache_ = std::make_shared<PrepCache>();
  svc->lat_block_ = std::make_unique<LatencyRing>(options.latency_window);
  svc->lat_vectorize_ = std::make_unique<LatencyRing>(options.latency_window);
  svc->lat_score_ = std::make_unique<LatencyRing>(options.latency_window);
  svc->lat_rules_ = std::make_unique<LatencyRing>(options.latency_window);
  svc->lat_total_ = std::make_unique<LatencyRing>(options.latency_window);

  // Interned spec registries: one resident corpus prep / query descriptor
  // per distinct (attr, normalization, tokenizer) across features AND
  // blockers.
  auto add_query_spec = [&](const std::string& attr, const PrepOptions& opts,
                            std::shared_ptr<Tokenizer> tok) -> int {
    std::string key = SpecKey(attr, opts, tok.get());
    for (size_t i = 0; i < svc->query_specs_.size(); ++i) {
      if (svc->query_specs_[i]->key == key) return static_cast<int>(i);
    }
    auto spec = std::make_unique<QuerySpec>();
    spec->attr = attr;
    spec->opts = opts;
    spec->tokenizer = std::move(tok);
    spec->key = std::move(key);
    svc->query_specs_.push_back(std::move(spec));
    return static_cast<int>(svc->query_specs_.size() - 1);
  };
  auto add_corpus_prep = [&](const std::string& attr, const PrepOptions& opts,
                             std::shared_ptr<Tokenizer> tok) -> Result<int> {
    std::string key = SpecKey(attr, opts, tok.get());
    for (size_t i = 0; i < svc->corpus_preps_.size(); ++i) {
      if (svc->corpus_preps_[i]->key == key) return static_cast<int>(i);
    }
    int col = svc->corpus_.schema().IndexOf(attr);
    if (col < 0) {
      return Status::InvalidArgument("MatchService: corpus has no column '" +
                                     attr + "'");
    }
    auto prep = std::make_unique<CorpusPrep>();
    prep->attr = attr;
    prep->col = col;
    prep->opts = opts;
    prep->tokenizer = std::move(tok);
    prep->key = std::move(key);
    prep->segments.push_back(svc->prep_cache_->PrepUncached(
        svc->corpus_.column(static_cast<size_t>(col)), opts,
        prep->tokenizer.get()));
    svc->corpus_prep_builds_.fetch_add(1, std::memory_order_relaxed);
    svc->corpus_preps_.push_back(std::move(prep));
    return static_cast<int>(svc->corpus_preps_.size() - 1);
  };

  // Blockers → index groups. Only the token-overlap family is servable
  // against a delta index; equality-style blocking belongs in positive
  // rules (which Lookup evaluates directly).
  for (const std::shared_ptr<Blocker>& b : workflow.blockers()) {
    const OverlapBlockerOptions* bopts = nullptr;
    std::shared_ptr<Tokenizer> tok;
    BlockPredicate pred;
    if (const auto* ob = dynamic_cast<const OverlapBlocker*>(b.get())) {
      bopts = &ob->options();
      tok = ob->tokenizer();
      size_t k = ob->min_overlap();
      pred.min_left_tokens = k;
      pred.keep = [k](size_t, size_t, size_t overlap) { return overlap >= k; };
    } else if (const auto* cb =
                   dynamic_cast<const OverlapCoefficientBlocker*>(b.get())) {
      bopts = &cb->options();
      tok = cb->tokenizer();
      double t = cb->threshold();
      pred.min_left_tokens = 1;
      pred.keep = [t](size_t la, size_t lb, size_t overlap) {
        size_t mn = std::min(la, lb);
        if (mn == 0) return false;
        return static_cast<double>(overlap) >= t * static_cast<double>(mn);
      };
    } else {
      return Status::InvalidArgument(
          "MatchService: blocker '" + b->name() +
          "' is not a token-overlap blocker; express it as a positive rule "
          "or block on a token attribute");
    }
    PrepOptions po = internal_block::ToPrepOptions(*bopts);
    int qs = add_query_spec(bopts->left_attr, po, tok);
    EMX_ASSIGN_OR_RETURN(int cp, add_corpus_prep(bopts->right_attr, po, tok));
    IndexGroup* group = nullptr;
    for (auto& g : svc->index_groups_) {
      if (g->query_spec == qs && g->corpus_prep == cp) {
        group = g.get();
        break;
      }
    }
    if (group == nullptr) {
      auto owned = std::make_unique<IndexGroup>();
      owned->query_spec = qs;
      owned->corpus_prep = cp;
      group = owned.get();
      svc->index_groups_.push_back(std::move(owned));
    }
    group->preds.push_back(std::move(pred));
  }

  // Features → bindings (prep specs identical to BindFeatures in the batch
  // vectorizer: lowercase from the spec, never punctuation stripping).
  for (const Feature& f : svc->features_.features) {
    FeatureBinding binding;
    if (f.has_prep()) {
      std::shared_ptr<Tokenizer> tok = TokenizerForSpec(f.prep);
      PrepOptions po{f.prep.lowercase, /*strip_punctuation=*/false};
      binding.query_spec = add_query_spec(f.left_attr, po, tok);
      EMX_ASSIGN_OR_RETURN(binding.corpus_prep,
                           add_corpus_prep(f.right_attr, po, tok));
    } else if (svc->corpus_.schema().IndexOf(f.right_attr) < 0) {
      return Status::InvalidArgument("MatchService: corpus has no column '" +
                                     f.right_attr + "' (feature " + f.name +
                                     ")");
    }
    svc->bindings_.push_back(binding);
  }

  // Bulk-load each blocking index from its base segment, snapshot once,
  // then arm the serving compaction threshold.
  for (auto& g : svc->index_groups_) {
    const PreparedColumn& base = *svc->corpus_preps_[g->corpus_prep]->segments[0];
    for (size_t r = 0; r < base.rows(); ++r) g->index.Add(base.ids(r));
    g->index.Compact();
    g->index.set_compact_threshold(options.compact_threshold);
  }
  return svc;
}

std::vector<uint32_t> MatchService::SureMatches(
    const Table& query, size_t query_row, const ExecutorContext& ctx) const {
  if (positive_rules_.empty()) return {};
  size_t rows = corpus_.num_rows();
  // Chunk-order concatenation keeps the result in ascending record order at
  // any thread count.
  return ctx.get().ParallelFlatMap(
      rows, /*grain=*/0, [&](size_t lo, size_t hi) {
        std::vector<uint32_t> out;
        for (size_t r = lo; r < hi; ++r) {
          if (!live_[r]) continue;
          for (const MatchRule& rule : positive_rules_) {
            if (rule.fires(query, query_row, corpus_, r)) {
              out.push_back(static_cast<uint32_t>(r));
              break;
            }
          }
        }
        return out;
      });
}

Result<LookupResult> MatchService::Lookup(const Table& query,
                                          size_t query_row) const {
  EMX_FAILPOINT("serve/lookup");
  if (query_row >= query.num_rows()) {
    return Status::InvalidArgument(
        "MatchService::Lookup: row " + std::to_string(query_row) +
        " out of range (" + std::to_string(query.num_rows()) + " rows)");
  }
  Clock::time_point t_total = Clock::now();
  std::shared_lock<std::shared_mutex> lock(mu_);

  // Stage: positive rules (C1 restricted to this query row).
  Clock::time_point t0 = Clock::now();
  std::vector<uint32_t> sure = SureMatches(query, query_row, exec_ctx_);
  double rules_us = MicrosSince(t0);

  // Stage: block — prep the query record once per spec, then probe each
  // index and replay every blocker's keep predicate.
  t0 = Clock::now();
  std::vector<std::shared_ptr<const PreparedColumn>> qpreps(
      query_specs_.size());
  for (size_t i = 0; i < query_specs_.size(); ++i) {
    const QuerySpec& spec = *query_specs_[i];
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* col,
                         query.ColumnByName(spec.attr));
    std::vector<Value> cell{(*col)[query_row]};
    qpreps[i] =
        prep_cache_->PrepUncached(cell, spec.opts, spec.tokenizer.get());
    query_prep_builds_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<uint32_t> blocked;
  {
    thread_local DeltaTokenIndex::ProbeScratch scratch;
    for (const auto& g : index_groups_) {
      const PreparedColumn& q = *qpreps[g->query_spec];
      IdSpan qids = q.ids(0);
      std::vector<const BlockPredicate*> eligible;
      eligible.reserve(g->preds.size());
      for (const BlockPredicate& p : g->preds) {
        if (qids.size >= p.min_left_tokens) eligible.push_back(&p);
      }
      if (eligible.empty()) continue;
      g->index.Probe(qids, &scratch, [&](uint32_t r, uint32_t overlap) {
        size_t rsize = g->index.record_ids(r).size;
        for (const BlockPredicate* p : eligible) {
          if (p->keep(qids.size, rsize, overlap)) {
            blocked.push_back(r);
            break;
          }
        }
      });
    }
  }
  std::sort(blocked.begin(), blocked.end());
  blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());

  // candidates = blocked ∪ sure; ml input = candidates − sure (the batch
  // topology's C2 and C2 − C1).
  std::vector<uint32_t> candidates;
  candidates.reserve(blocked.size() + sure.size());
  std::set_union(blocked.begin(), blocked.end(), sure.begin(), sure.end(),
                 std::back_inserter(candidates));
  std::vector<uint32_t> ml_records;
  ml_records.reserve(blocked.size());
  std::set_difference(candidates.begin(), candidates.end(), sure.begin(),
                      sure.end(), std::back_inserter(ml_records));
  double block_us = MicrosSince(t0);

  // Stage: vectorize — fill the PairBatch feature-major, exactly the batch
  // vectorizer's evaluation order per feature (batch kernel over gathered
  // non-null lanes, else prepared per-pair fn, else legacy Value fn).
  t0 = Clock::now();
  size_t n = ml_records.size();
  size_t width = features_.features.size();
  PairBatch batch(matcher_ != nullptr ? n : 0, width);
  batch.feature_names = features_.names();
  if (matcher_ != nullptr && n > 0) {
    constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
    thread_local std::vector<std::string_view> ga, gb;
    thread_local std::vector<double> gscores;
    thread_local std::vector<uint32_t> lanes;
    for (size_t fi = 0; fi < width; ++fi) {
      const Feature& f = features_.features[fi];
      const FeatureBinding& b = bindings_[fi];
      double* col = batch.Column(fi);
      if (b.query_spec >= 0 && f.has_batch()) {
        const PreparedColumn& q = *qpreps[b.query_spec];
        const CorpusPrep& cp = *corpus_preps_[b.corpus_prep];
        ga.clear();
        gb.clear();
        lanes.clear();
        for (size_t i = 0; i < n; ++i) {
          size_t row = 0;
          const PreparedColumn& seg = cp.Segment(ml_records[i], base_rows_,
                                                 &row);
          if (q.is_null(0) || seg.is_null(row)) {
            col[i] = kNaN;
          } else {
            lanes.push_back(static_cast<uint32_t>(i));
            ga.push_back(q.text(0));
            gb.push_back(seg.text(row));
          }
        }
        gscores.resize(ga.size());
        f.batch_fn(ga.data(), gb.data(), ga.size(), gscores.data());
        for (size_t k = 0; k < lanes.size(); ++k) col[lanes[k]] = gscores[k];
      } else if (b.query_spec >= 0) {
        const PreparedColumn& q = *qpreps[b.query_spec];
        const CorpusPrep& cp = *corpus_preps_[b.corpus_prep];
        for (size_t i = 0; i < n; ++i) {
          size_t row = 0;
          const PreparedColumn& seg = cp.Segment(ml_records[i], base_rows_,
                                                 &row);
          col[i] = f.prep_fn(q, 0, seg, row);
        }
      } else {
        const Value& lv = query.at(query_row, f.left_attr);
        for (size_t i = 0; i < n; ++i) {
          col[i] = f.fn(lv, corpus_.at(ml_records[i], f.right_attr));
        }
      }
    }
    EMX_RETURN_IF_ERROR(imputer_.Transform(batch));
  }
  double vectorize_us = MicrosSince(t0);

  // Stage: score.
  t0 = Clock::now();
  std::vector<std::pair<uint32_t, double>> predicted;
  if (matcher_ != nullptr && n > 0) {
    std::vector<double> proba = matcher_->PredictProbaBatch(batch);
    predicted.reserve(proba.size());
    for (size_t i = 0; i < proba.size(); ++i) {
      if (proba[i] >= 0.5) predicted.emplace_back(ml_records[i], proba[i]);
    }
  }
  double score_us = MicrosSince(t0);

  // Stage: negative rules flip predicted matches only (sure matches
  // bypass, as in the batch topology: final = C1 ∪ (R − flips)).
  t0 = Clock::now();
  std::vector<std::pair<uint32_t, double>> kept;
  kept.reserve(predicted.size());
  for (const auto& [r, p] : predicted) {
    bool flipped = false;
    for (const MatchRule& rule : negative_rules_) {
      if (rule.fires(query, query_row, corpus_, r)) {
        flipped = true;
        break;
      }
    }
    if (!flipped) kept.emplace_back(r, p);
  }
  rules_us += MicrosSince(t0);

  LookupResult result;
  result.num_candidates = candidates.size();
  result.num_sure = sure.size();
  result.matches.reserve(sure.size() + kept.size());
  for (uint32_t r : sure) {
    result.matches.push_back({r, 1.0, "sure_rule"});
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (const auto& [r, p] : kept) {
    result.matches.push_back({r, p, "ml"});
  }

  lookups_.fetch_add(1, std::memory_order_relaxed);
  double total_us = MicrosSince(t_total);
  {
    std::lock_guard<std::mutex> lat_lock(lat_mu_);
    lat_block_->Push(block_us);
    lat_vectorize_->Push(vectorize_us);
    lat_score_->Push(score_us);
    lat_rules_->Push(rules_us);
    lat_total_->Push(total_us);
  }
  return result;
}

Result<uint32_t> MatchService::Insert(std::vector<Value> row) {
  EMX_FAILPOINT("serve/insert");
  std::unique_lock<std::shared_mutex> lock(mu_);
  EMX_RETURN_IF_ERROR(corpus_.AppendRow(std::move(row)));
  uint32_t record = static_cast<uint32_t>(corpus_.num_rows() - 1);
  live_.push_back(1);
  // One single-row segment per prep family — the inserted record is
  // normalized/tokenized exactly once per spec, never the whole column.
  for (auto& cp : corpus_preps_) {
    std::vector<Value> cell{corpus_.at(record, static_cast<size_t>(cp->col))};
    cp->segments.push_back(
        prep_cache_->PrepUncached(cell, cp->opts, cp->tokenizer.get()));
    corpus_prep_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  for (auto& g : index_groups_) {
    size_t seg_row = 0;
    const PreparedColumn& seg =
        corpus_preps_[g->corpus_prep]->Segment(record, base_rows_, &seg_row);
    g->index.Add(seg.ids(seg_row));
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return record;
}

Status MatchService::Remove(uint32_t record) {
  EMX_FAILPOINT("serve/remove");
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (record >= corpus_.num_rows() || !live_[record]) {
    return Status::NotFound("MatchService::Remove: no live record " +
                            std::to_string(record));
  }
  live_[record] = 0;
  for (auto& g : index_groups_) g->index.Remove(record);
  removes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void MatchService::Compact() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& g : index_groups_) g->index.Compact();
}

bool MatchService::record_live(uint32_t record) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return record < live_.size() && live_[record] != 0;
}

MatchServiceStats MatchService::Stats() const {
  MatchServiceStats out;
  out.lookups = lookups_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.removes = removes_.load(std::memory_order_relaxed);
  out.corpus_preps = corpus_prep_builds_.load(std::memory_order_relaxed);
  out.query_preps = query_prep_builds_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.total_records = corpus_.num_rows();
    size_t live = 0;
    for (uint8_t l : live_) live += l;
    out.live_records = live;
    for (const auto& g : index_groups_) {
      out.compactions += g->index.compactions();
      out.delta_postings += g->index.delta_postings();
      out.dead_postings += g->index.dead_postings();
    }
  }
  {
    std::lock_guard<std::mutex> lat_lock(lat_mu_);
    out.block = lat_block_->Summary();
    out.vectorize = lat_vectorize_->Summary();
    out.score = lat_score_->Summary();
    out.rules = lat_rules_->Summary();
    out.total = lat_total_->Summary();
  }
  return out;
}

}  // namespace emx
