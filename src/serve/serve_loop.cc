#include "src/serve/serve_loop.h"

#include <utility>
#include <vector>

#include "src/core/failpoint.h"
#include "src/table/schema.h"
#include "src/table/value.h"

namespace emx {

namespace {

Value JsonToValue(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      return Value::Null();
    case JsonValue::Kind::kBool:
      return Value(static_cast<int64_t>(v.bool_value() ? 1 : 0));
    case JsonValue::Kind::kNumber: {
      double d = v.number_value();
      // Integral numbers land as int64 so equality rules see the same
      // values a CSV load would have produced.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return Value(static_cast<int64_t>(d));
      }
      return Value(d);
    }
    case JsonValue::Kind::kString:
      return Value(v.string_value());
    default:
      // Arrays/objects have no cell representation; treat as null.
      return Value::Null();
  }
}

// Builds a single-row query table from a request's "record" object —
// schema is the object's keys in request order.
Result<Table> RecordToTable(const JsonValue& record) {
  if (!record.is_object()) {
    return Status::InvalidArgument("serve: 'record' must be an object");
  }
  std::vector<Field> fields;
  std::vector<Value> row;
  for (const JsonValue::Member& m : record.object_members()) {
    fields.push_back({m.first, DataType::kAny});
    row.push_back(JsonToValue(m.second));
  }
  Table t{Schema(std::move(fields))};
  EMX_RETURN_IF_ERROR(t.AppendRow(std::move(row)));
  return t;
}

JsonValue LatencyToJson(const LatencySummary& s) {
  JsonValue out = JsonValue::Object();
  out.Set("p50_us", JsonValue::Number(s.p50_us));
  out.Set("p99_us", JsonValue::Number(s.p99_us));
  out.Set("count", JsonValue::Number(static_cast<double>(s.count)));
  return out;
}

// Dispatches one request body; response body members only (id/ok are the
// caller's). Any Status error — including one injected by the
// "serve/handle" failpoint — becomes an error response upstream.
Result<JsonValue> ApplyRequest(MatchService& service, const JsonValue& req) {
  EMX_FAILPOINT("serve/handle");
  const JsonValue* op = req.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("serve: request needs a string 'op'");
  }
  const std::string& name = op->string_value();
  JsonValue out = JsonValue::Object();
  if (name == "lookup") {
    const JsonValue* record = req.Find("record");
    if (record == nullptr) {
      return Status::InvalidArgument("serve: lookup needs 'record'");
    }
    EMX_ASSIGN_OR_RETURN(Table query, RecordToTable(*record));
    EMX_ASSIGN_OR_RETURN(LookupResult result, service.Lookup(query, 0));
    JsonValue matches = JsonValue::Array();
    for (const RankedMatch& m : result.matches) {
      JsonValue jm = JsonValue::Object();
      jm.Set("record", JsonValue::Number(static_cast<double>(m.record)));
      jm.Set("score", JsonValue::Number(m.score));
      jm.Set("provenance", JsonValue::String(m.provenance));
      matches.Append(std::move(jm));
    }
    out.Set("matches", std::move(matches));
    out.Set("candidates",
            JsonValue::Number(static_cast<double>(result.num_candidates)));
    out.Set("sure", JsonValue::Number(static_cast<double>(result.num_sure)));
    return out;
  }
  if (name == "insert") {
    const JsonValue* record = req.Find("record");
    if (record == nullptr || !record->is_object()) {
      return Status::InvalidArgument("serve: insert needs a 'record' object");
    }
    // Corpus schema order by name; absent fields are null.
    std::vector<Value> row;
    const Schema& schema = service.corpus().schema();
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      const JsonValue* cell = record->Find(schema.field(i).name);
      row.push_back(cell != nullptr ? JsonToValue(*cell) : Value::Null());
    }
    EMX_ASSIGN_OR_RETURN(uint32_t id, service.Insert(std::move(row)));
    out.Set("record_id", JsonValue::Number(static_cast<double>(id)));
    return out;
  }
  if (name == "remove") {
    const JsonValue* id = req.Find("record_id");
    if (id == nullptr || !id->is_number()) {
      return Status::InvalidArgument("serve: remove needs numeric 'record_id'");
    }
    EMX_RETURN_IF_ERROR(
        service.Remove(static_cast<uint32_t>(id->number_value())));
    out.Set("removed", JsonValue::Bool(true));
    return out;
  }
  if (name == "compact") {
    service.Compact();
    out.Set("compacted", JsonValue::Bool(true));
    return out;
  }
  if (name == "stats") {
    MatchServiceStats s = service.Stats();
    out.Set("lookups", JsonValue::Number(static_cast<double>(s.lookups)));
    out.Set("inserts", JsonValue::Number(static_cast<double>(s.inserts)));
    out.Set("removes", JsonValue::Number(static_cast<double>(s.removes)));
    out.Set("live_records",
            JsonValue::Number(static_cast<double>(s.live_records)));
    out.Set("total_records",
            JsonValue::Number(static_cast<double>(s.total_records)));
    out.Set("corpus_preps",
            JsonValue::Number(static_cast<double>(s.corpus_preps)));
    out.Set("query_preps",
            JsonValue::Number(static_cast<double>(s.query_preps)));
    out.Set("compactions",
            JsonValue::Number(static_cast<double>(s.compactions)));
    out.Set("delta_postings",
            JsonValue::Number(static_cast<double>(s.delta_postings)));
    out.Set("dead_postings",
            JsonValue::Number(static_cast<double>(s.dead_postings)));
    JsonValue lat = JsonValue::Object();
    lat.Set("block", LatencyToJson(s.block));
    lat.Set("vectorize", LatencyToJson(s.vectorize));
    lat.Set("score", LatencyToJson(s.score));
    lat.Set("rules", LatencyToJson(s.rules));
    lat.Set("total", LatencyToJson(s.total));
    out.Set("latency", std::move(lat));
    return out;
  }
  return Status::InvalidArgument("serve: unknown op '" + name + "'");
}

JsonValue MakeResponse(const JsonValue& id, Result<JsonValue> body) {
  JsonValue resp = JsonValue::Object();
  resp.Set("id", id);
  if (body.ok()) {
    resp.Set("ok", JsonValue::Bool(true));
    for (const JsonValue::Member& m : body.value().object_members()) {
      resp.Set(m.first, m.second);
    }
  } else {
    resp.Set("ok", JsonValue::Bool(false));
    resp.Set("error", JsonValue::String(
                          std::string(StatusCodeToString(body.status().code()))));
    resp.Set("message", JsonValue::String(body.status().message()));
  }
  return resp;
}

}  // namespace

JsonValue HandleServeRequest(MatchService& service, const JsonValue& request) {
  const JsonValue* id = request.Find("id");
  return MakeResponse(id != nullptr ? *id : JsonValue::Null(),
                      ApplyRequest(service, request));
}

ServeLoop::ServeLoop(MatchService* service, ServeOptions options,
                     std::ostream* out, const ExecutorContext& ctx)
    : service_(service), options_(options), out_(out), exec_ctx_(ctx) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.batch_max == 0) options_.batch_max = 1;
}

ServeLoop::~ServeLoop() { Stop(); }

void ServeLoop::Start() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  drain_ = std::thread([this] { DrainLoop(); });
}

void ServeLoop::WriteResponse(const std::string& line) {
  std::lock_guard<std::mutex> lock(out_mu_);
  (*out_) << line << '\n';
  out_->flush();
}

bool ServeLoop::Submit(const std::string& line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(MakeResponse(JsonValue::Null(), parsed.status()).Dump());
    return false;
  }
  const JsonValue* id = parsed.value().Find("id");
  JsonValue id_copy = id != nullptr ? *id : JsonValue::Null();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < options_.queue_capacity) {
      queue_.push_back(Request{std::move(id_copy), std::move(parsed).value()});
      counters_.admitted.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
      return true;
    }
  }
  // Overload: typed shed, written immediately on the reader thread — the
  // caller learns NOW, instead of a silent drop or an unbounded queue.
  counters_.shed.fetch_add(1, std::memory_order_relaxed);
  WriteResponse(
      MakeResponse(id_copy,
                   Status::Unavailable("serve: request queue full (" +
                                       std::to_string(options_.queue_capacity) +
                                       " pending); retry later"))
          .Dump());
  return false;
}

void ServeLoop::DrainLoop() {
  std::vector<Request> batch;
  std::vector<std::string> responses;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      size_t take = std::min(options_.batch_max, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Process the whole batch on the executor (concurrent shared-lock
    // lookups), then write responses in batch order — deterministic output
    // for a deterministic input sequence.
    responses.assign(batch.size(), std::string());
    exec_ctx_.get().ParallelFor(0, batch.size(), /*grain=*/1,
                                [&](size_t lo, size_t hi) {
                                  for (size_t i = lo; i < hi; ++i) {
                                    responses[i] =
                                        HandleServeRequest(*service_,
                                                           batch[i].body)
                                            .Dump();
                                  }
                                });
    for (const std::string& r : responses) WriteResponse(r);
    counters_.processed.fetch_add(batch.size(), std::memory_order_relaxed);
  }
}

void ServeLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_) return;
    stopping_ = true;
    queue_cv_.notify_all();
  }
  if (drain_.joinable()) drain_.join();
  std::lock_guard<std::mutex> lock(queue_mu_);
  started_ = false;
}

Status ServeLoop::Run(std::istream& in) {
  Start();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Submit(line);
  }
  Stop();
  return Status::OK();
}

}  // namespace emx
