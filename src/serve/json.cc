#include "src/serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace emx {

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
// Depth-capped so a hostile request ("[[[[...") cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    EMX_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("json: trailing characters at offset " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const std::string& what) {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    // RFC 8259: an integer part of "0" may not be followed by more digits.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      pos_ = start;
      return Fail("number has a leading zero");
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty() || !std::isfinite(d)) {
      pos_ = start;
      return Fail("bad number '" + token + "'");
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    std::string s;
    EMX_RETURN_IF_ERROR(ParseRawString(&s));
    *out = JsonValue::String(std::move(s));
    return Status::OK();
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          EMX_RETURN_IF_ERROR(ParseHex4(&cp));
          // Surrogate pair → one code point. An unpaired surrogate half is
          // not a valid scalar value and is rejected.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned lo = 0;
            EMX_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) return Fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate in \\u escape");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail(std::string("bad escape '\\") + e + "'");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape digit");
      }
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) {
      *out = std::move(arr);
      return Status::OK();
    }
    while (true) {
      SkipWs();
      JsonValue item;
      EMX_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      arr.Append(std::move(item));
      SkipWs();
      if (Consume(']')) break;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
    *out = std::move(arr);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) {
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      EMX_RETURN_IF_ERROR(ParseRawString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      EMX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) break;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
    *out = std::move(obj);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendNumber(double d, std::string* out) {
  // Integers (record ids, counts) print without a fractional part; other
  // numbers use enough digits to round-trip a double.
  if (std::isfinite(d) && d == static_cast<double>(static_cast<int64_t>(d)) &&
      std::abs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(d)));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void DumpTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      AppendNumber(v.number_value(), out);
      return;
    case JsonValue::Kind::kString:
      AppendJsonString(v.string_value(), out);
      return;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const JsonValue::Member& m : v.object_members()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(m.first, out);
        out->push_back(':');
        DumpTo(m.second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace emx
