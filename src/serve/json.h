#ifndef EMX_SERVE_JSON_H_
#define EMX_SERVE_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/result.h"

namespace emx {

// Minimal JSON document model for the serve protocol (line-delimited
// request/response objects). Deliberately small: the wire format is ours,
// so the parser only needs to be correct, not a general-purpose library —
// no dependencies, recursive descent, strict (trailing garbage on a line
// is a ParseError).
//
// Numbers are held as doubles (the protocol's numbers are scores, counts,
// and record ids, all exact in a double up to 2^53). Object member order is
// preserved (vector of pairs, not a map) so responses serialize in a
// stable, documented field order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<Member>& object_members() const { return members_; }

  // Array/object builders.
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  // First member named `key`, or nullptr. Objects are small (a handful of
  // protocol fields); linear scan beats a map here.
  const JsonValue* Find(std::string_view key) const {
    for (const Member& m : members_) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }

  // Compact single-line serialization (no whitespace) — one response per
  // output line, framing by '\n'.
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

// Parses exactly one JSON value spanning all of `text` (leading/trailing
// whitespace allowed, anything else after the value is a ParseError).
// Supports null/true/false, numbers, strings with \uXXXX escapes (encoded
// to UTF-8), arrays, and objects.
Result<JsonValue> ParseJson(std::string_view text);

// Appends `s` JSON-escaped, including the surrounding quotes, to `out`.
void AppendJsonString(std::string_view s, std::string* out);

}  // namespace emx

#endif  // EMX_SERVE_JSON_H_
