#include "src/eval/corleone_estimator.h"

#include <algorithm>
#include <cmath>

#include "src/core/strings.h"

namespace emx {

namespace {

IntervalEstimate BinomialInterval(size_t successes, size_t trials, double z,
                                  IntervalMethod method) {
  IntervalEstimate e;
  e.support = trials;
  if (trials == 0) return e;
  double n = static_cast<double>(trials);
  double p = static_cast<double>(successes) / n;
  e.point = p;
  if (method == IntervalMethod::kWald) {
    double se = std::sqrt(p * (1.0 - p) / n);
    e.lo = std::max(0.0, p - z * se);
    e.hi = std::min(1.0, p + z * se);
  } else {
    // Wilson score interval.
    double z2 = z * z;
    double denom = 1.0 + z2 / n;
    double center = (p + z2 / (2.0 * n)) / denom;
    double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    e.lo = std::max(0.0, center - half);
    e.hi = std::min(1.0, center + half);
  }
  return e;
}

}  // namespace

std::string IntervalEstimate::ToString() const {
  return StrFormat("(%.1f%%, %.1f%%)", lo * 100.0, hi * 100.0);
}

Result<AccuracyEstimate> EstimateAccuracy(const CandidateSet& predicted,
                                          const LabeledSet& sample, double z,
                                          IntervalMethod method) {
  if (sample.size() == 0) {
    return Status::InvalidArgument("EstimateAccuracy: empty labeled sample");
  }
  size_t pred_yes = 0;   // predicted positive, labeled Yes
  size_t pred_no = 0;    // predicted positive, labeled No
  size_t missed_yes = 0; // predicted negative, labeled Yes
  size_t unsure = 0;
  for (const LabeledPair& item : sample.items()) {
    if (item.label == Label::kUnsure) {
      ++unsure;
      continue;
    }
    bool is_pred = predicted.Contains(item.pair);
    bool is_yes = item.label == Label::kYes;
    if (is_pred && is_yes) {
      ++pred_yes;
    } else if (is_pred && !is_yes) {
      ++pred_no;
    } else if (!is_pred && is_yes) {
      ++missed_yes;
    }
  }
  AccuracyEstimate est;
  est.sample_size = sample.size() - unsure;
  est.unsure_ignored = unsure;
  est.precision = BinomialInterval(pred_yes, pred_yes + pred_no, z, method);
  est.recall = BinomialInterval(pred_yes, pred_yes + missed_yes, z, method);
  return est;
}

GoldMetrics ComputeGoldMetrics(const CandidateSet& predicted,
                               const CandidateSet& gold,
                               const CandidateSet& ambiguous) {
  GoldMetrics m;
  for (const RecordPair& p : predicted) {
    if (ambiguous.Contains(p)) continue;
    if (gold.Contains(p)) {
      ++m.tp;
    } else {
      ++m.fp;
    }
  }
  for (const RecordPair& p : gold) {
    if (ambiguous.Contains(p)) continue;
    if (!predicted.Contains(p)) ++m.fn;
  }
  return m;
}

}  // namespace emx
