#ifndef EMX_EVAL_CORLEONE_ESTIMATOR_H_
#define EMX_EVAL_CORLEONE_ESTIMATOR_H_

#include <string>

#include "src/block/candidate_set.h"
#include "src/core/result.h"
#include "src/labeling/label.h"

namespace emx {

// A point estimate with a confidence interval.
struct IntervalEstimate {
  double point = 0.0;
  double lo = 0.0;
  double hi = 1.0;
  size_t support = 0;  // denominator sample count

  std::string ToString() const;  // "(lo%, hi%)"
};

// Sample-based precision/recall estimates over a candidate set, following
// the Corleone §6.1 procedure the paper adopts (§11): label a random sample
// of the candidate set, then
//   precision ≈ (#sampled predicted-positives labeled Yes) /
//               (#sampled predicted-positives with a decided label)
//   recall    ≈ (#sampled predicted-positives labeled Yes) /
//               (#sampled pairs labeled Yes)
// with binomial (Wald) 95% intervals by default; Unsure pairs are ignored
// (footnote 10). Both the predictions under evaluation and the sample must
// come from the same candidate-set universe (§11 step 1).
struct AccuracyEstimate {
  IntervalEstimate precision;
  IntervalEstimate recall;
  size_t sample_size = 0;     // decided (Yes/No) sampled pairs
  size_t unsure_ignored = 0;  // Unsure pairs dropped
};

// Interval construction. Wald is the textbook normal approximation; Wilson
// stays inside (0,1) and behaves at extreme proportions (an IRIS-style
// all-correct sample gets a non-degenerate interval instead of (100,100)).
enum class IntervalMethod { kWald, kWilson };

Result<AccuracyEstimate> EstimateAccuracy(
    const CandidateSet& predicted, const LabeledSet& sample, double z = 1.96,
    IntervalMethod method = IntervalMethod::kWald);

// Exact precision/recall/F1 against a known gold standard — available only
// because our substrate is synthetic (the paper could only estimate).
// Pairs in `ambiguous` are excluded from scoring, mirroring how Unsure
// pairs are excluded from the estimates.
struct GoldMetrics {
  size_t tp = 0, fp = 0, fn = 0;
  double Precision() const {
    return (tp + fp) == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fp);
  }
  double Recall() const {
    return (tp + fn) == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fn);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

GoldMetrics ComputeGoldMetrics(const CandidateSet& predicted,
                               const CandidateSet& gold,
                               const CandidateSet& ambiguous = {});

}  // namespace emx

#endif  // EMX_EVAL_CORLEONE_ESTIMATOR_H_
