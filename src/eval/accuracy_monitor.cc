#include "src/eval/accuracy_monitor.h"

#include <cmath>
#include <sstream>

#include "src/core/strings.h"
#include "src/labeling/sampler.h"

namespace emx {

AccuracyMonitor::AccuracyMonitor(MonitorOptions options, Labeler labeler)
    : options_(options),
      labeler_(std::move(labeler)),
      next_seed_(options.seed) {}

Result<MonitorReport> AccuracyMonitor::Observe(
    const CandidateSet& predicted_matches) {
  if (predicted_matches.empty()) {
    return Status::InvalidArgument("Observe: empty prediction batch");
  }
  if (!labeler_) {
    return Status::FailedPrecondition("Observe: no labeler configured");
  }
  CandidateSet sample =
      SamplePairs(predicted_matches, options_.sample_size, next_seed_++);

  size_t yes = 0, no = 0, unsure = 0;
  for (const RecordPair& p : sample) {
    switch (labeler_(p)) {
      case Label::kYes:
        ++yes;
        break;
      case Label::kNo:
        ++no;
        break;
      case Label::kUnsure:
        ++unsure;
        break;
    }
  }
  size_t decided = yes + no;
  MonitorReport report;
  report.batch = history_.size();
  report.labeled = decided;
  report.unsure = unsure;
  report.precision.support = decided;
  if (decided > 0) {
    double p = static_cast<double>(yes) / static_cast<double>(decided);
    double se = std::sqrt(p * (1.0 - p) / static_cast<double>(decided));
    report.precision.point = p;
    report.precision.lo = std::max(0.0, p - options_.z * se);
    report.precision.hi = std::min(1.0, p + options_.z * se);
  }
  report.alert = decided > 0 && report.precision.point < options_.precision_alert;
  history_.push_back(report);
  return report;
}

std::string AccuracyMonitor::HistoryToString() const {
  std::ostringstream os;
  for (const MonitorReport& r : history_) {
    os << StrFormat("batch %zu: precision %.3f %s over %zu labels%s%s\n",
                    r.batch, r.precision.point,
                    r.precision.ToString().c_str(), r.labeled,
                    r.unsure > 0 ? StrFormat(" (+%zu unsure)", r.unsure).c_str()
                                 : "",
                    r.alert ? "  [ALERT]" : "  [ok]");
  }
  return os.str();
}

}  // namespace emx
