#ifndef EMX_EVAL_ACCURACY_MONITOR_H_
#define EMX_EVAL_ACCURACY_MONITOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/block/candidate_set.h"
#include "src/core/result.h"
#include "src/eval/corleone_estimator.h"
#include "src/labeling/label.h"

namespace emx {

// §12 "The Next Steps" / footnote 11: once the workflow moves to
// production, accuracy must be MONITORED — "taking a random sample of the
// predicted matches at regular intervals, manually labeling it, then using
// the labeled sample to estimate the accuracy" — and a drop should send
// the workflow back to development.
//
// AccuracyMonitor implements that loop: each Observe() call samples the
// current prediction batch, obtains labels through the supplied labeler
// callback (a human queue in production; an oracle in tests), appends a
// precision estimate to the history, and reports whether the estimate has
// fallen below the alert threshold.

struct MonitorOptions {
  size_t sample_size = 50;        // labels requested per batch
  double precision_alert = 0.9;   // alert when the point estimate dips below
  double z = 1.96;                // interval width for reporting
  uint64_t seed = 7;
};

struct MonitorReport {
  size_t batch = 0;               // 0-based observation index
  IntervalEstimate precision;     // over the batch's predicted matches
  size_t labeled = 0;             // decided labels used
  size_t unsure = 0;              // Unsure labels discarded
  bool alert = false;             // precision.point < precision_alert
};

class AccuracyMonitor {
 public:
  using Labeler = std::function<Label(const RecordPair&)>;

  AccuracyMonitor(MonitorOptions options, Labeler labeler);

  // Samples `options.sample_size` pairs from `predicted_matches`, labels
  // them, and records a precision estimate. Fails on an empty batch.
  Result<MonitorReport> Observe(const CandidateSet& predicted_matches);

  const std::vector<MonitorReport>& history() const { return history_; }

  // True when the most recent observation raised an alert.
  bool alert_active() const {
    return !history_.empty() && history_.back().alert;
  }

  // One line per observation: "batch 3: precision 0.92 (0.85, 0.99) [ok]".
  std::string HistoryToString() const;

 private:
  MonitorOptions options_;
  Labeler labeler_;
  std::vector<MonitorReport> history_;
  uint64_t next_seed_;
};

}  // namespace emx

#endif  // EMX_EVAL_ACCURACY_MONITOR_H_
