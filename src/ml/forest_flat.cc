#include "src/ml/forest_flat.h"

#include <limits>

namespace emx {

namespace {

// Rows are walked through every tree in blocks of kWalkBlock cursors. One
// row's walk is a chain of dependent loads (each node read decides the next
// index), so a single cursor runs at memory latency; eight cursors are
// independent chains the core overlaps, which is where the flat scorer's
// speedup over the pointer walk comes from. Eight is enough to cover L1
// latency without spilling the cursor array out of registers.
constexpr size_t kWalkBlock = 8;

}  // namespace

void FlatForest::Clear() {
  nodes_.clear();
  leaf_value_.clear();
  roots_.clear();
  depths_.clear();
}

void FlatForest::Build(const std::vector<DecisionTreeMatcher>& trees) {
  Clear();
  roots_.reserve(trees.size());
  size_t total = 0;
  for (const DecisionTreeMatcher& t : trees) {
    total += t.nodes_.empty() ? 1 : t.nodes_.size();
  }
  nodes_.reserve(total);
  leaf_value_.reserve(total);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Breadth-first renumbering per tree: a queue of source-node indices in
  // visit order, with both children of a split allocated adjacently the
  // moment the split is visited. Level k of the tree ends up contiguous,
  // so the first few cache lines of a tree cover the levels every single
  // walk traverses.
  std::vector<int> queue;
  std::vector<uint32_t> qdepth;
  for (const DecisionTreeMatcher& t : trees) {
    roots_.push_back(static_cast<uint32_t>(nodes_.size()));
    if (t.nodes_.empty()) {
      // Empty tree -> single 0.0 leaf, matching the pointer walk.
      nodes_.push_back(Node{nan, 0, static_cast<uint32_t>(nodes_.size()) - 1});
      leaf_value_.push_back(0.0);
      depths_.push_back(0);
      continue;
    }
    queue.clear();
    queue.push_back(0);
    qdepth.clear();
    qdepth.push_back(0);
    uint32_t max_depth = 0;
    size_t base = nodes_.size();
    nodes_.emplace_back();
    leaf_value_.push_back(0.0);
    for (size_t q = 0; q < queue.size(); ++q) {
      const auto& src = t.nodes_[static_cast<size_t>(queue[q])];
      const uint32_t self = static_cast<uint32_t>(base + q);
      Node& dst = nodes_[base + q];
      if (src.feature < 0) {
        // A leaf is a node the step function cannot leave: threshold NaN
        // makes `v <= threshold` false for EVERY v (including NaN), so the
        // step always takes left + 1, and left = self - 1 (uint32 wrap is
        // fine at index 0) lands back on the leaf. The walk needs no leaf
        // test at all; the payload lives in leaf_value_[self].
        dst.threshold = nan;
        dst.feature = 0;
        dst.left = self - 1;
        leaf_value_[self] = src.positive_rate;
        if (qdepth[q] > max_depth) max_depth = qdepth[q];
      } else {
        dst.threshold = src.threshold;
        dst.feature = src.feature;
        dst.left = static_cast<uint32_t>(base + queue.size());
        queue.push_back(src.left);
        queue.push_back(src.right);
        qdepth.push_back(qdepth[q] + 1);
        qdepth.push_back(qdepth[q] + 1);
        nodes_.emplace_back();
        nodes_.emplace_back();
        leaf_value_.push_back(0.0);
        leaf_value_.push_back(0.0);
      }
    }
    depths_.push_back(max_depth);
  }
}

double FlatForest::PredictRow(const double* row) const {
  double sum = 0.0;
  for (size_t t = 0; t < roots_.size(); ++t) {
    uint32_t idx = roots_[t];
    for (uint32_t d = 0; d < depths_[t]; ++d) {
      const Node nd = nodes_[idx];
      const double v = row[static_cast<uint32_t>(nd.feature)];
      // NaN fails the comparison and goes right, like the pointer walk.
      const uint32_t next = nd.left + static_cast<uint32_t>(!(v <= nd.threshold));
      if (next == idx) break;  // parked on a leaf
      idx = next;
    }
    sum += leaf_value_[idx];
  }
  return sum / static_cast<double>(roots_.size());
}

namespace {

// Walks rows [lo, hi) through every tree, kWalkBlock rows at a time.
// `Access` binds a block of rows once (hoisting row pointers out of the
// walk) and serves feature reads; it is the only difference between the
// row-major and columnar entry points. Per row the navigation and the
// tree-order accumulation are exactly PredictRow's, so the probabilities are
// bit-identical; only the interleaving (tree-outer over a block of cursors)
// changes.
template <typename Access>
void WalkBlockRange(const FlatForest::Node* nodes, const double* leaf_value,
                    const uint32_t* roots, const uint32_t* depths,
                    size_t num_trees, size_t lo, size_t hi, Access access,
                    double* out) {
  const double trees = static_cast<double>(num_trees);
  size_t i = lo;
  for (; i + kWalkBlock <= hi; i += kWalkBlock) {
    access.Bind(i);
    double sum[kWalkBlock] = {0};
    uint32_t idx[kWalkBlock];
    for (size_t t = 0; t < num_trees; ++t) {
      for (size_t r = 0; r < kWalkBlock; ++r) idx[r] = roots[t];
      // The step body is straight-line: load node, load feature, compare,
      // add. Leaves are self-loops (NaN threshold, see Build), so a cursor
      // that reached its leaf early keeps re-selecting it with the same
      // stepping as an interior move — no per-cursor leaf branch for the
      // core to mispredict, and eight independent chains to overlap.
      for (uint32_t d = 0; d < depths[t]; ++d) {
        uint32_t moved = 0;
        for (size_t r = 0; r < kWalkBlock; ++r) {
          const FlatForest::Node nd = nodes[idx[r]];
          const double v = access.At(r, static_cast<uint32_t>(nd.feature));
          // NaN fails the comparison and goes right, like the pointer walk.
          const uint32_t next =
              nd.left + static_cast<uint32_t>(!(v <= nd.threshold));
          moved |= next ^ idx[r];
          idx[r] = next;
        }
        // One predictable branch per LEVEL (not per cursor): stop when the
        // whole block is parked, so a lone deep branch in the tree doesn't
        // cost every row its max depth.
        if (!moved) break;
      }
      for (size_t r = 0; r < kWalkBlock; ++r) sum[r] += leaf_value[idx[r]];
    }
    for (size_t r = 0; r < kWalkBlock; ++r) out[i + r] = sum[r] / trees;
  }
  for (; i < hi; ++i) {
    double sum = 0.0;
    for (size_t t = 0; t < num_trees; ++t) {
      uint32_t idx = roots[t];
      for (uint32_t d = 0; d < depths[t]; ++d) {
        const FlatForest::Node nd = nodes[idx];
        const double v = access.One(i, static_cast<uint32_t>(nd.feature));
        const uint32_t next =
            nd.left + static_cast<uint32_t>(!(v <= nd.threshold));
        if (next == idx) break;
        idx = next;
      }
      sum += leaf_value[idx];
    }
    out[i] = sum / trees;
  }
}

// Row-major feature access: one pointer load per row per BLOCK instead of
// per step (x[i][f] through a vector<vector> is two dependent loads).
struct RowMajorAccess {
  const std::vector<std::vector<double>>* x;
  const double* p[kWalkBlock];
  void Bind(size_t i) {
    for (size_t r = 0; r < kWalkBlock; ++r) p[r] = (*x)[i + r].data();
  }
  double At(size_t r, uint32_t f) const { return p[r][f]; }
  double One(size_t i, uint32_t f) const { return (*x)[i][f]; }
};

// Column-major feature access over the PairBatch storage: cell (i, f) sits
// at base[f * stride + i]; binding folds the row offset into one pointer.
struct ColumnarAccess {
  const double* base;
  size_t stride;
  const double* p = nullptr;
  void Bind(size_t i) { p = base + i; }
  double At(size_t r, uint32_t f) const {
    return p[static_cast<size_t>(f) * stride + r];
  }
  double One(size_t i, uint32_t f) const {
    return base[static_cast<size_t>(f) * stride + i];
  }
};

}  // namespace

std::vector<double> FlatForest::PredictRows(
    const std::vector<std::vector<double>>& x,
    const ExecutorContext& ctx) const {
  std::vector<double> out(x.size(), 0.0);
  if (empty()) return out;
  ctx.get().ParallelFor(0, x.size(), /*grain=*/0, [&](size_t lo, size_t hi) {
    WalkBlockRange(nodes_.data(), leaf_value_.data(), roots_.data(),
                   depths_.data(), roots_.size(), lo, hi, RowMajorAccess{&x},
                   out.data());
  });
  return out;
}

std::vector<double> FlatForest::PredictBatch(const PairBatch& batch,
                                             const ExecutorContext& ctx) const {
  std::vector<double> out(batch.num_pairs(), 0.0);
  if (empty()) return out;
  const size_t stride = batch.num_pairs();
  const double* data = batch.num_features() > 0 ? batch.Column(0) : nullptr;
  ctx.get().ParallelFor(
      0, batch.num_pairs(), /*grain=*/0, [&](size_t lo, size_t hi) {
        WalkBlockRange(nodes_.data(), leaf_value_.data(), roots_.data(),
                       depths_.data(), roots_.size(), lo, hi,
                       ColumnarAccess{data, stride}, out.data());
      });
  return out;
}

}  // namespace emx
