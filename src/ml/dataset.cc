#include "src/ml/dataset.h"

namespace emx {

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  out.feature_names = feature_names;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  for (size_t i : indices) {
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
  }
  return out;
}

std::vector<std::vector<size_t>> StratifiedKFoldIndices(
    const std::vector<int>& y, size_t k, uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? pos : neg).push_back(i);
  }
  rng.Shuffle(pos);
  rng.Shuffle(neg);
  std::vector<std::vector<size_t>> folds(k);
  // Round-robin keeps per-fold class ratios within one sample of ideal.
  for (size_t i = 0; i < pos.size(); ++i) folds[i % k].push_back(pos[i]);
  for (size_t i = 0; i < neg.size(); ++i) folds[i % k].push_back(neg[i]);
  return folds;
}

TrainTestSplit StratifiedSplit(const std::vector<int>& y,
                               double test_fraction, uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < y.size(); ++i) {
    (y[i] == 1 ? pos : neg).push_back(i);
  }
  rng.Shuffle(pos);
  rng.Shuffle(neg);
  TrainTestSplit split;
  auto dispatch = [&](const std::vector<size_t>& cls) {
    size_t n_test = static_cast<size_t>(
        static_cast<double>(cls.size()) * test_fraction + 0.5);
    for (size_t i = 0; i < cls.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(cls[i]);
    }
  };
  dispatch(pos);
  dispatch(neg);
  return split;
}

}  // namespace emx
