#include "src/ml/linear_svm.h"

#include <cmath>

namespace emx {

LinearSvmMatcher::LinearSvmMatcher(LinearSvmOptions options)
    : options_(options) {}

Status LinearSvmMatcher::Fit(const Dataset& data) {
  if (data.size() == 0) {
    return Status::InvalidArgument("LinearSvm: empty training set");
  }
  scaler_.Fit(data.x);
  std::vector<std::vector<double>> x = scaler_.Transform(data.x);
  const size_t n = x.size(), w = data.num_features();
  w_.assign(w, 0.0);
  b_ = 0.0;
  RandomEngine rng(options_.seed);
  size_t t = 0;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng.Shuffle(order);
    for (size_t i : order) {
      ++t;
      double eta = 1.0 / (options_.lambda * static_cast<double>(t));
      double yi = data.y[i] == 1 ? 1.0 : -1.0;
      double margin = b_;
      for (size_t c = 0; c < w; ++c) margin += w_[c] * x[i][c];
      margin *= yi;
      // Pegasos update: always shrink, add the example when it violates the
      // margin.
      double shrink = 1.0 - eta * options_.lambda;
      for (size_t c = 0; c < w; ++c) w_[c] *= shrink;
      if (margin < 1.0) {
        for (size_t c = 0; c < w; ++c) w_[c] += eta * yi * x[i][c];
        b_ += eta * yi;
      }
    }
  }
  return Status::OK();
}

std::vector<double> LinearSvmMatcher::PredictProba(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> xs = scaler_.Transform(x);
  std::vector<double> out;
  out.reserve(xs.size());
  for (const auto& row : xs) {
    double z = b_;
    for (size_t c = 0; c < w_.size() && c < row.size(); ++c) {
      z += w_[c] * row[c];
    }
    out.push_back(1.0 / (1.0 + std::exp(-2.0 * z)));
  }
  return out;
}

}  // namespace emx
