#include "src/ml/threshold.h"

#include <algorithm>
#include <cmath>

#include "src/core/logging.h"

namespace emx {

namespace {

BinaryMetrics MetricsAt(const std::vector<double>& proba,
                        const std::vector<int>& y_true, double threshold) {
  BinaryMetrics m;
  for (size_t i = 0; i < proba.size(); ++i) {
    bool pred = proba[i] >= threshold;
    if (y_true[i] == 1) {
      pred ? ++m.tp : ++m.fn;
    } else {
      pred ? ++m.fp : ++m.tn;
    }
  }
  return m;
}

double Objective(const BinaryMetrics& m, ThresholdObjective objective,
                 double recall_floor) {
  switch (objective) {
    case ThresholdObjective::kF1:
      return m.F1();
    case ThresholdObjective::kPrecisionAtRecallFloor:
      return m.Recall() >= recall_floor ? m.Precision() : -1.0;
  }
  return 0.0;
}

}  // namespace

ThresholdChoice SelectThreshold(const std::vector<double>& proba,
                                const std::vector<int>& y_true,
                                ThresholdObjective objective,
                                double recall_floor) {
  EMX_CHECK(proba.size() == y_true.size())
      << "SelectThreshold: misaligned inputs";
  // Candidate thresholds: midpoints between consecutive distinct scores,
  // the scores' extremes, and the 0.5 default.
  std::vector<double> sorted = proba;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<double> candidates = {0.5};
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    candidates.push_back(0.5 * (sorted[i] + sorted[i + 1]));
  }
  if (!sorted.empty()) {
    candidates.push_back(sorted.front());  // everything positive
    candidates.push_back(sorted.back() + 1e-9);  // everything negative
  }

  ThresholdChoice best;
  best.metrics = MetricsAt(proba, y_true, best.threshold);
  double best_score = Objective(best.metrics, objective, recall_floor);
  for (double t : candidates) {
    BinaryMetrics m = MetricsAt(proba, y_true, t);
    double score = Objective(m, objective, recall_floor);
    bool better = score > best_score + 1e-12;
    bool tie_closer_to_half =
        std::abs(score - best_score) <= 1e-12 &&
        std::abs(t - 0.5) < std::abs(best.threshold - 0.5) - 1e-12;
    if (better || tie_closer_to_half) {
      best_score = score;
      best.threshold = t;
      best.metrics = m;
    }
  }
  return best;
}

}  // namespace emx
