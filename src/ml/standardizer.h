#ifndef EMX_ML_STANDARDIZER_H_
#define EMX_ML_STANDARDIZER_H_

#include <cmath>
#include <vector>

namespace emx {

// Per-feature (mean, stddev) standardization shared by the gradient-based
// linear matchers; zero-variance features pass through centered.
class Standardizer {
 public:
  void Fit(const std::vector<std::vector<double>>& x) {
    size_t w = x.empty() ? 0 : x[0].size();
    mean_.assign(w, 0.0);
    std_.assign(w, 1.0);
    if (x.empty()) return;
    for (const auto& row : x) {
      for (size_t c = 0; c < w; ++c) mean_[c] += row[c];
    }
    for (size_t c = 0; c < w; ++c) mean_[c] /= static_cast<double>(x.size());
    std::vector<double> var(w, 0.0);
    for (const auto& row : x) {
      for (size_t c = 0; c < w; ++c) {
        double d = row[c] - mean_[c];
        var[c] += d * d;
      }
    }
    for (size_t c = 0; c < w; ++c) {
      double v = var[c] / static_cast<double>(x.size());
      std_[c] = v > 1e-12 ? std::sqrt(v) : 1.0;
    }
  }

  std::vector<std::vector<double>> Transform(
      const std::vector<std::vector<double>>& x) const {
    std::vector<std::vector<double>> out = x;
    for (auto& row : out) {
      for (size_t c = 0; c < row.size() && c < mean_.size(); ++c) {
        row[c] = (row[c] - mean_[c]) / std_[c];
      }
    }
    return out;
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace emx

#endif  // EMX_ML_STANDARDIZER_H_
