#ifndef EMX_ML_FOREST_FLAT_H_
#define EMX_ML_FOREST_FLAT_H_

#include <cstdint>
#include <vector>

#include "src/core/executor.h"
#include "src/feature/pair_batch.h"
#include "src/ml/decision_tree.h"

namespace emx {

// QuickScorer-style flattened ensemble representation for inference.
//
// The fitted DecisionTreeMatcher keeps its nodes as a vector of 40-byte
// records addressed through int left/right fields in build order — every
// step of a prediction walk is a dependent load at an unpredictable offset.
// FlatForest re-lays the whole ensemble into one contiguous array of
// 16-byte nodes in breadth-first order per tree, with the two children of
// every split adjacent (right child == left child + 1). That shrinks the
// working set 2.5x, keeps the top levels of every tree — where all walks
// go — packed into a few cache lines, and turns the branch
// `(v <= thr) ? left : right` into the branchless `left + !(v <= thr)`.
// Leaves are encoded so that the SAME step function parks on them
// (threshold = NaN fails every comparison, left = self - 1, so the step
// re-selects the leaf); leaf probabilities live in a parallel leaf_value_
// array. A walk is therefore pure straight-line code with no leaf test,
// which lets the blocked scorer overlap eight rows' dependent-load chains.
//
// Inference semantics are exactly the pointer walk's: NaN feature values
// fail `v <= thr` and go right, leaves contribute their positive rate, and
// the ensemble mean accumulates IN TREE ORDER before one divide — so flat
// predictions are bit-identical to RandomForestMatcher::PredictProbaTreeWalk
// (asserted by the equivalence suite in pair_batch_test).
class FlatForest {
 public:
  struct Node {
    double threshold = 0.0;  // splits: split threshold; leaves: NaN
    int32_t feature = 0;     // splits: feature index; leaves: 0 (dummy read)
    uint32_t left = 0;       // left child (right is left + 1); leaves: self - 1
  };

  // (Re)builds from fitted trees. An ensemble member with no nodes predicts
  // 0.0, matching the pointer walk on an empty tree.
  void Build(const std::vector<DecisionTreeMatcher>& trees);
  void Clear();

  bool empty() const { return roots_.empty(); }
  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return nodes_.size(); }

  // Mean leaf probability over all trees for one dense feature row.
  double PredictRow(const double* row) const;

  // Per-row probabilities; rows score in parallel chunks on `ctx`'s
  // executor and each output slot is a pure function of its row, so results
  // are identical at any thread count.
  std::vector<double> PredictRows(const std::vector<std::vector<double>>& x,
                                  const ExecutorContext& ctx) const;
  std::vector<double> PredictBatch(const PairBatch& batch,
                                   const ExecutorContext& ctx) const;

 private:
  std::vector<Node> nodes_;
  std::vector<double> leaf_value_;  // per-node leaf payload (0 for splits)
  std::vector<uint32_t> roots_;     // per-tree root index into nodes_
  std::vector<uint32_t> depths_;    // per-tree max depth (0 = leaf-only tree)
};

}  // namespace emx

#endif  // EMX_ML_FOREST_FLAT_H_
