#ifndef EMX_ML_NAIVE_BAYES_H_
#define EMX_ML_NAIVE_BAYES_H_

#include <string>
#include <vector>

#include "src/ml/matcher.h"

namespace emx {

// Gaussian naive Bayes: per-class, per-feature normal likelihoods with
// variance smoothing, combined with class priors in log space.
class NaiveBayesMatcher : public MlMatcher {
 public:
  NaiveBayesMatcher() = default;

  Status Fit(const Dataset& data) override;
  std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& x) const override;
  std::string name() const override { return "naive_bayes"; }

 private:
  struct ClassStats {
    double log_prior = 0.0;
    std::vector<double> mean;
    std::vector<double> var;
  };
  double LogLikelihood(const ClassStats& cs,
                       const std::vector<double>& row) const;

  ClassStats pos_, neg_;
  bool fitted_ = false;
};

}  // namespace emx

#endif  // EMX_ML_NAIVE_BAYES_H_
