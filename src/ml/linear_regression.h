#ifndef EMX_ML_LINEAR_REGRESSION_H_
#define EMX_ML_LINEAR_REGRESSION_H_

#include <string>
#include <vector>

#include "src/ml/matcher.h"

namespace emx {

struct LinearRegressionOptions {
  // Ridge term keeping the normal equations well-conditioned.
  double ridge = 1e-6;
};

// Least-squares regression on 0/1 targets, solved exactly via the normal
// equations (Cholesky); predictions are clamped to [0,1] and thresholded at
// 0.5 like PyMatcher's linear-regression matcher.
class LinearRegressionMatcher : public MlMatcher {
 public:
  explicit LinearRegressionMatcher(LinearRegressionOptions options = {});

  Status Fit(const Dataset& data) override;
  std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& x) const override;
  std::string name() const override { return "linear_regression"; }

 private:
  LinearRegressionOptions options_;
  std::vector<double> w_;  // includes intercept at index 0
};

// Solves the symmetric positive definite system a·x = b in place via
// Cholesky decomposition; `a` is row-major n×n. Exposed for testing.
Status CholeskySolve(std::vector<double>& a, std::vector<double>& b, size_t n);

}  // namespace emx

#endif  // EMX_ML_LINEAR_REGRESSION_H_
