#include "src/ml/random_forest.h"

#include <cmath>
#include <cstdio>

#include "src/core/strings.h"

namespace emx {

RandomForestMatcher::RandomForestMatcher(RandomForestOptions options)
    : options_(options) {}

Status RandomForestMatcher::Fit(const Dataset& data) {
  if (data.size() == 0) {
    return Status::InvalidArgument("RandomForest: empty training set");
  }
  trees_.clear();
  size_t mtry = options_.max_features;
  if (mtry == 0) {
    mtry = static_cast<size_t>(
        std::max(1.0, std::floor(std::sqrt(
                          static_cast<double>(data.num_features())))));
  }
  // Fork() advances the parent engine, so per-tree RNG derivation is part
  // of the model definition and stays serial; everything downstream of a
  // tree's engine is independent of every other tree, which is what lets
  // the trees train in parallel while the ensemble stays bit-identical to
  // the single-threaded build.
  RandomEngine rng(options_.seed);
  std::vector<RandomEngine> tree_rngs;
  tree_rngs.reserve(options_.num_trees);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    tree_rngs.push_back(rng.Fork(t));
  }

  std::vector<DecisionTreeMatcher> trees(options_.num_trees);
  std::vector<Status> statuses(options_.num_trees);
  executor_context().get().ParallelFor(
      0, options_.num_trees, /*grain=*/1, [&](size_t lo, size_t hi) {
        for (size_t t = lo; t < hi; ++t) {
          RandomEngine tree_rng = tree_rngs[t];
          // Bootstrap sample of the training rows.
          std::vector<size_t> sample(data.size());
          for (auto& s : sample) {
            s = static_cast<size_t>(tree_rng.NextBelow(data.size()));
          }
          Dataset boot = data.Subset(sample);
          DecisionTreeOptions tree_opts;
          tree_opts.max_depth = options_.max_depth;
          tree_opts.min_samples_leaf = options_.min_samples_leaf;
          tree_opts.max_features = mtry;
          tree_opts.seed = tree_rng.NextUint64();
          DecisionTreeMatcher tree(tree_opts);
          statuses[t] = tree.Fit(boot);
          if (statuses[t].ok()) trees[t] = std::move(tree);
        }
      });
  for (const Status& s : statuses) {
    EMX_RETURN_IF_ERROR(s);
  }
  trees_ = std::move(trees);
  flat_.Build(trees_);
  return Status::OK();
}

std::vector<double> RandomForestMatcher::FeatureImportances(
    size_t num_features) const {
  std::vector<double> out(num_features, 0.0);
  if (trees_.empty()) return out;
  for (const auto& tree : trees_) {
    std::vector<double> shares = tree.FeatureSplitShares(num_features);
    for (size_t f = 0; f < num_features; ++f) out[f] += shares[f];
  }
  for (double& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

std::string RandomForestMatcher::Serialize() const {
  std::string out =
      StrFormat("emx_random_forest v1 trees=%zu\n", trees_.size());
  for (const auto& tree : trees_) out += tree.Serialize();
  return out;
}

Result<RandomForestMatcher> RandomForestMatcher::Deserialize(
    const std::string& text) {
  size_t header_end = text.find('\n');
  if (header_end == std::string::npos) {
    return Status::ParseError("empty random-forest payload");
  }
  size_t tree_count = 0;
  if (std::sscanf(text.substr(0, header_end).c_str(),
                  "emx_random_forest v1 trees=%zu", &tree_count) != 1) {
    return Status::ParseError("bad random-forest header");
  }
  RandomForestMatcher forest;
  size_t pos = header_end + 1;
  for (size_t t = 0; t < tree_count; ++t) {
    // Each tree payload spans its header line plus `nodes` node lines.
    size_t tree_header_end = text.find('\n', pos);
    if (tree_header_end == std::string::npos) {
      return Status::ParseError("truncated forest payload");
    }
    size_t nodes = 0, feats = 0;
    if (std::sscanf(text.substr(pos, tree_header_end - pos).c_str(),
                    "emx_decision_tree v1 nodes=%zu features=%zu", &nodes,
                    &feats) != 2) {
      return Status::ParseError("bad embedded tree header");
    }
    size_t end = tree_header_end + 1;
    for (size_t n = 0; n < nodes; ++n) {
      end = text.find('\n', end);
      if (end == std::string::npos) {
        return Status::ParseError("truncated embedded tree");
      }
      ++end;
    }
    EMX_ASSIGN_OR_RETURN(
        DecisionTreeMatcher tree,
        DecisionTreeMatcher::Deserialize(text.substr(pos, end - pos)));
    forest.trees_.push_back(std::move(tree));
    pos = end;
  }
  forest.flat_.Build(forest.trees_);
  return forest;
}

std::vector<double> RandomForestMatcher::PredictProbaTreeWalk(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out(x.size(), 0.0);
  if (trees_.empty()) return out;
  // Trees predict in parallel; the accumulation stays serial IN TREE ORDER
  // so the floating-point sum is bit-identical to the one-thread engine.
  ExecutorContext ctx = executor_context();
  std::vector<std::vector<double>> per_tree = ctx.get().ParallelMap(
      trees_.size(), /*grain=*/1,
      [&](size_t t) { return trees_[t].PredictProba(x); });
  for (const std::vector<double>& p : per_tree) {
    for (size_t i = 0; i < x.size(); ++i) out[i] += p[i];
  }
  for (double& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

std::vector<double> RandomForestMatcher::PredictProba(
    const std::vector<std::vector<double>>& x) const {
  if (flat_.empty()) return PredictProbaTreeWalk(x);
  // The flat walk accumulates each row's leaf probabilities in the same
  // tree order before one divide, so the doubles match the tree walk bit
  // for bit — only the memory layout and the parallel axis (rows, not
  // trees) change.
  return flat_.PredictRows(x, executor_context());
}

std::vector<double> RandomForestMatcher::PredictProbaBatch(
    const PairBatch& batch) const {
  if (flat_.empty()) return MlMatcher::PredictProbaBatch(batch);
  return flat_.PredictBatch(batch, executor_context());
}

}  // namespace emx
