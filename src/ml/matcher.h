#ifndef EMX_ML_MATCHER_H_
#define EMX_ML_MATCHER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/status.h"
#include "src/feature/pair_batch.h"
#include "src/ml/dataset.h"

namespace emx {

// A trainable binary matcher over feature vectors — the C++ analogue of the
// six scikit-learn matchers PyMatcher wraps (§9). Implementations are
// deterministic given their seed options — INCLUDING across thread counts:
// a matcher that parallelizes Fit/PredictProba on the configured executor
// must produce bit-identical models and predictions at any pool size.
class MlMatcher {
 public:
  virtual ~MlMatcher() = default;

  // Trains on `data`. Fails on empty or single-class degenerate input only
  // where the model genuinely cannot fit (e.g. no rows).
  virtual Status Fit(const Dataset& data) = 0;

  // Match probability per row, in [0, 1]. Requires a successful Fit.
  virtual std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& x) const = 0;

  // 0/1 labels at the 0.5 probability threshold.
  std::vector<int> Predict(const std::vector<std::vector<double>>& x) const;

  // Match probability per pair of a columnar batch. The base implementation
  // materializes rows and defers to PredictProba; matchers with a native
  // batch path (RandomForestMatcher's flattened forest) override it. Must
  // return exactly what PredictProba returns on the batch's rows.
  virtual std::vector<double> PredictProbaBatch(const PairBatch& batch) const;

  // 0/1 labels for a columnar batch at the 0.5 threshold.
  std::vector<int> PredictBatch(const PairBatch& batch) const;

  virtual std::string name() const = 0;

  // Executor the matcher's internal data-parallel loops run on (ensemble
  // members, per-row prediction). Default: the shared pool. Set before Fit;
  // not to be changed while a Fit or PredictProba is in flight.
  void set_executor(const ExecutorContext& ctx) { exec_ctx_ = ctx; }
  const ExecutorContext& executor_context() const { return exec_ctx_; }

 private:
  ExecutorContext exec_ctx_;
};

// Factory used by model selection / cross-validation to build a fresh,
// untrained model per fold.
using MatcherFactory = std::function<std::unique_ptr<MlMatcher>()>;

}  // namespace emx

#endif  // EMX_ML_MATCHER_H_
