#include "src/ml/cross_validation.h"

#include <algorithm>

namespace emx {

Result<CvResult> CrossValidate(const MatcherFactory& factory,
                               const Dataset& data, size_t k, uint64_t seed,
                               const ExecutorContext& ctx) {
  if (k < 2) return Status::InvalidArgument("CrossValidate: k must be >= 2");
  if (data.size() < k) {
    return Status::InvalidArgument("CrossValidate: fewer rows than folds");
  }
  auto folds = StratifiedKFoldIndices(data.y, k, seed);

  // Each fold trains a disjoint fresh model and writes only its own slots;
  // the aggregation below walks the slots in fold order, so the averages
  // accumulate in the same sequence as the serial loop.
  std::string matcher_name;
  std::vector<BinaryMetrics> fold_metrics(k);
  std::vector<Status> statuses(k);
  ctx.get().ParallelFor(0, k, /*grain=*/1, [&](size_t lo, size_t hi) {
    for (size_t fold = lo; fold < hi; ++fold) {
      std::vector<size_t> train_idx;
      for (size_t f = 0; f < k; ++f) {
        if (f == fold) continue;
        train_idx.insert(train_idx.end(), folds[f].begin(), folds[f].end());
      }
      Dataset train = data.Subset(train_idx);
      Dataset test = data.Subset(folds[fold]);
      std::unique_ptr<MlMatcher> model = factory();
      model->set_executor(ctx);
      if (fold == 0) matcher_name = model->name();
      statuses[fold] = model->Fit(train);
      if (!statuses[fold].ok()) continue;
      // Columnar scoring path; PredictBatch(FromRows(x)) == Predict(x) by
      // the PredictProbaBatch contract, so fold metrics are unchanged.
      fold_metrics[fold] = ComputeMetrics(
          test.y, model->PredictBatch(PairBatch::FromRows(test.x)));
    }
  });
  for (const Status& s : statuses) {
    EMX_RETURN_IF_ERROR(s);
  }

  CvResult result;
  result.matcher_name = std::move(matcher_name);
  for (const BinaryMetrics& m : fold_metrics) {
    result.fold_metrics.push_back(m);
    result.mean_precision += m.Precision();
    result.mean_recall += m.Recall();
    result.mean_f1 += m.F1();
  }
  double inv_k = 1.0 / static_cast<double>(k);
  result.mean_precision *= inv_k;
  result.mean_recall *= inv_k;
  result.mean_f1 *= inv_k;
  return result;
}

Result<std::vector<CvResult>> SelectMatcher(
    const std::vector<MatcherFactory>& factories, const Dataset& data,
    size_t k, uint64_t seed, const ExecutorContext& ctx) {
  std::vector<CvResult> results;
  for (const auto& factory : factories) {
    EMX_ASSIGN_OR_RETURN(CvResult r,
                         CrossValidate(factory, data, k, seed, ctx));
    results.push_back(std::move(r));
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const CvResult& a, const CvResult& b) {
                     return a.mean_f1 > b.mean_f1;
                   });
  return results;
}

Result<std::vector<int>> LeaveOneOutPredictions(const MatcherFactory& factory,
                                                const Dataset& data,
                                                const ExecutorContext& ctx) {
  if (data.size() < 2) {
    return Status::InvalidArgument("LeaveOneOut: need at least 2 rows");
  }
  std::vector<int> out(data.size(), 0);
  std::vector<Status> statuses(data.size());
  ctx.get().ParallelFor(0, data.size(), /*grain=*/0, [&](size_t lo,
                                                         size_t hi) {
    std::vector<size_t> train_idx;
    train_idx.reserve(data.size() - 1);
    for (size_t i = lo; i < hi; ++i) {
      train_idx.clear();
      for (size_t j = 0; j < data.size(); ++j) {
        if (j != i) train_idx.push_back(j);
      }
      Dataset train = data.Subset(train_idx);
      std::unique_ptr<MlMatcher> model = factory();
      model->set_executor(ctx);
      statuses[i] = model->Fit(train);
      if (!statuses[i].ok()) continue;
      out[i] = model->PredictBatch(PairBatch::FromRows({data.x[i]}))[0];
    }
  });
  for (const Status& s : statuses) {
    EMX_RETURN_IF_ERROR(s);
  }
  return out;
}

}  // namespace emx
