#include "src/ml/cross_validation.h"

#include <algorithm>

namespace emx {

Result<CvResult> CrossValidate(const MatcherFactory& factory,
                               const Dataset& data, size_t k, uint64_t seed) {
  if (k < 2) return Status::InvalidArgument("CrossValidate: k must be >= 2");
  if (data.size() < k) {
    return Status::InvalidArgument("CrossValidate: fewer rows than folds");
  }
  auto folds = StratifiedKFoldIndices(data.y, k, seed);
  CvResult result;
  for (size_t fold = 0; fold < k; ++fold) {
    std::vector<size_t> train_idx;
    for (size_t f = 0; f < k; ++f) {
      if (f == fold) continue;
      train_idx.insert(train_idx.end(), folds[f].begin(), folds[f].end());
    }
    Dataset train = data.Subset(train_idx);
    Dataset test = data.Subset(folds[fold]);
    std::unique_ptr<MlMatcher> model = factory();
    if (result.matcher_name.empty()) result.matcher_name = model->name();
    EMX_RETURN_IF_ERROR(model->Fit(train));
    BinaryMetrics m = ComputeMetrics(test.y, model->Predict(test.x));
    result.fold_metrics.push_back(m);
    result.mean_precision += m.Precision();
    result.mean_recall += m.Recall();
    result.mean_f1 += m.F1();
  }
  double inv_k = 1.0 / static_cast<double>(k);
  result.mean_precision *= inv_k;
  result.mean_recall *= inv_k;
  result.mean_f1 *= inv_k;
  return result;
}

Result<std::vector<CvResult>> SelectMatcher(
    const std::vector<MatcherFactory>& factories, const Dataset& data,
    size_t k, uint64_t seed) {
  std::vector<CvResult> results;
  for (const auto& factory : factories) {
    EMX_ASSIGN_OR_RETURN(CvResult r, CrossValidate(factory, data, k, seed));
    results.push_back(std::move(r));
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const CvResult& a, const CvResult& b) {
                     return a.mean_f1 > b.mean_f1;
                   });
  return results;
}

Result<std::vector<int>> LeaveOneOutPredictions(const MatcherFactory& factory,
                                                const Dataset& data) {
  if (data.size() < 2) {
    return Status::InvalidArgument("LeaveOneOut: need at least 2 rows");
  }
  std::vector<int> out(data.size(), 0);
  std::vector<size_t> train_idx;
  train_idx.reserve(data.size() - 1);
  for (size_t i = 0; i < data.size(); ++i) {
    train_idx.clear();
    for (size_t j = 0; j < data.size(); ++j) {
      if (j != i) train_idx.push_back(j);
    }
    Dataset train = data.Subset(train_idx);
    std::unique_ptr<MlMatcher> model = factory();
    EMX_RETURN_IF_ERROR(model->Fit(train));
    out[i] = model->Predict({data.x[i]})[0];
  }
  return out;
}

}  // namespace emx
