#include "src/ml/metrics.h"

#include "src/core/logging.h"
#include "src/core/strings.h"

namespace emx {

BinaryMetrics ComputeMetrics(const std::vector<int>& y_true,
                             const std::vector<int>& y_pred) {
  EMX_CHECK(y_true.size() == y_pred.size())
      << "metric input lengths differ: " << y_true.size() << " vs "
      << y_pred.size();
  BinaryMetrics m;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 1) {
      if (y_pred[i] == 1) {
        ++m.tp;
      } else {
        ++m.fn;
      }
    } else {
      if (y_pred[i] == 1) {
        ++m.fp;
      } else {
        ++m.tn;
      }
    }
  }
  return m;
}

std::string BinaryMetrics::ToString() const {
  return StrFormat("P=%.3f R=%.3f F1=%.3f (tp=%zu fp=%zu tn=%zu fn=%zu)",
                   Precision(), Recall(), F1(), tp, fp, tn, fn);
}

}  // namespace emx
