#include "src/ml/naive_bayes.h"

#include <cmath>

namespace emx {

namespace {
constexpr double kVarSmoothing = 1e-9;
}  // namespace

Status NaiveBayesMatcher::Fit(const Dataset& data) {
  if (data.size() == 0) {
    return Status::InvalidArgument("NaiveBayes: empty training set");
  }
  const size_t w = data.num_features();
  auto fit_class = [&](int label, ClassStats& cs) {
    cs.mean.assign(w, 0.0);
    cs.var.assign(w, 0.0);
    size_t n = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      if (data.y[i] != label) continue;
      ++n;
      for (size_t c = 0; c < w; ++c) cs.mean[c] += data.x[i][c];
    }
    // Laplace-style prior smoothing keeps single-class training sets sane.
    cs.log_prior = std::log((static_cast<double>(n) + 1.0) /
                            (static_cast<double>(data.size()) + 2.0));
    if (n == 0) {
      cs.var.assign(w, 1.0);
      return;
    }
    for (size_t c = 0; c < w; ++c) cs.mean[c] /= static_cast<double>(n);
    for (size_t i = 0; i < data.size(); ++i) {
      if (data.y[i] != label) continue;
      for (size_t c = 0; c < w; ++c) {
        double d = data.x[i][c] - cs.mean[c];
        cs.var[c] += d * d;
      }
    }
    for (size_t c = 0; c < w; ++c) {
      cs.var[c] = cs.var[c] / static_cast<double>(n) + kVarSmoothing;
    }
  };
  fit_class(1, pos_);
  fit_class(0, neg_);
  fitted_ = true;
  return Status::OK();
}

double NaiveBayesMatcher::LogLikelihood(const ClassStats& cs,
                                        const std::vector<double>& row) const {
  double ll = cs.log_prior;
  for (size_t c = 0; c < cs.mean.size() && c < row.size(); ++c) {
    double d = row[c] - cs.mean[c];
    ll += -0.5 * (std::log(2.0 * M_PI * cs.var[c]) + d * d / cs.var[c]);
  }
  return ll;
}

std::vector<double> NaiveBayesMatcher::PredictProba(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) {
    if (!fitted_) {
      out.push_back(0.0);
      continue;
    }
    double lp = LogLikelihood(pos_, row);
    double ln = LogLikelihood(neg_, row);
    double mx = std::max(lp, ln);
    double pp = std::exp(lp - mx);
    double pn = std::exp(ln - mx);
    out.push_back(pp / (pp + pn));
  }
  return out;
}

}  // namespace emx
