#ifndef EMX_ML_RANDOM_FOREST_H_
#define EMX_ML_RANDOM_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/decision_tree.h"
#include "src/ml/forest_flat.h"
#include "src/ml/matcher.h"

namespace emx {

struct RandomForestOptions {
  size_t num_trees = 50;
  int max_depth = 12;
  size_t min_samples_leaf = 1;
  // 0 = sqrt(num_features), the standard default.
  size_t max_features = 0;
  uint64_t seed = 7;
};

// Bagged ensemble of CART trees with per-split feature subsampling;
// predicted probability is the mean of tree leaf probabilities.
class RandomForestMatcher : public MlMatcher {
 public:
  explicit RandomForestMatcher(RandomForestOptions options = {});

  Status Fit(const Dataset& data) override;

  // Scores through the flattened forest (rebuilt on every Fit/Deserialize);
  // bit-identical to PredictProbaTreeWalk below.
  std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& x) const override;
  std::vector<double> PredictProbaBatch(const PairBatch& batch) const override;
  std::string name() const override { return "random_forest"; }

  // The original pointer-walking ensemble prediction, retained as the
  // equivalence oracle and the baseline bench_matchers measures the
  // flattened representation against.
  std::vector<double> PredictProbaTreeWalk(
      const std::vector<std::vector<double>>& x) const;

  const FlatForest& flat_forest() const { return flat_; }

  size_t num_trees() const { return trees_.size(); }

  // Mean per-tree split share of each feature — the importance signal used
  // when debugging which evidence the ensemble actually relies on.
  std::vector<double> FeatureImportances(size_t num_features) const;

  // Text round-trip of the whole ensemble (see DecisionTreeMatcher).
  std::string Serialize() const;
  static Result<RandomForestMatcher> Deserialize(const std::string& text);

 private:
  RandomForestOptions options_;
  std::vector<DecisionTreeMatcher> trees_;
  FlatForest flat_;
};

}  // namespace emx

#endif  // EMX_ML_RANDOM_FOREST_H_
