#include "src/ml/matcher.h"

namespace emx {

std::vector<int> MlMatcher::Predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> proba = PredictProba(x);
  std::vector<int> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    out[i] = proba[i] >= 0.5 ? 1 : 0;
  }
  return out;
}

std::vector<double> MlMatcher::PredictProbaBatch(const PairBatch& batch) const {
  return PredictProba(batch.ToRows());
}

std::vector<int> MlMatcher::PredictBatch(const PairBatch& batch) const {
  std::vector<double> proba = PredictProbaBatch(batch);
  std::vector<int> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    out[i] = proba[i] >= 0.5 ? 1 : 0;
  }
  return out;
}

}  // namespace emx
