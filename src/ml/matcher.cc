#include "src/ml/matcher.h"

namespace emx {

std::vector<int> MlMatcher::Predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> proba = PredictProba(x);
  std::vector<int> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    out[i] = proba[i] >= 0.5 ? 1 : 0;
  }
  return out;
}

}  // namespace emx
