#include "src/ml/linear_regression.h"

#include <algorithm>
#include <cmath>

namespace emx {

Status CholeskySolve(std::vector<double>& a, std::vector<double>& b,
                     size_t n) {
  // Decompose a = L·Lᵀ in place (lower triangle).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (sum <= 0.0) {
          return Status::Internal("CholeskySolve: matrix not SPD");
        }
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward substitution: L·z = b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Back substitution: Lᵀ·x = z.
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[k * n + i] * b[k];
    b[i] = sum / a[i * n + i];
  }
  return Status::OK();
}

LinearRegressionMatcher::LinearRegressionMatcher(
    LinearRegressionOptions options)
    : options_(options) {}

Status LinearRegressionMatcher::Fit(const Dataset& data) {
  if (data.size() == 0) {
    return Status::InvalidArgument("LinearRegression: empty training set");
  }
  const size_t w = data.num_features() + 1;  // +1 intercept
  std::vector<double> xtx(w * w, 0.0);
  std::vector<double> xty(w, 0.0);
  std::vector<double> row(w);
  for (size_t i = 0; i < data.size(); ++i) {
    row[0] = 1.0;
    for (size_t c = 1; c < w; ++c) row[c] = data.x[i][c - 1];
    for (size_t a = 0; a < w; ++a) {
      xty[a] += row[a] * static_cast<double>(data.y[i]);
      for (size_t b = 0; b <= a; ++b) xtx[a * w + b] += row[a] * row[b];
    }
  }
  // Mirror the lower triangle and add the ridge.
  for (size_t a = 0; a < w; ++a) {
    for (size_t b = a + 1; b < w; ++b) xtx[a * w + b] = xtx[b * w + a];
    xtx[a * w + a] += options_.ridge;
  }
  EMX_RETURN_IF_ERROR(CholeskySolve(xtx, xty, w));
  w_ = std::move(xty);
  return Status::OK();
}

std::vector<double> LinearRegressionMatcher::PredictProba(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) {
    if (w_.empty()) {
      out.push_back(0.0);
      continue;
    }
    double z = w_[0];
    for (size_t c = 0; c + 1 < w_.size() && c < row.size(); ++c) {
      z += w_[c + 1] * row[c];
    }
    out.push_back(std::clamp(z, 0.0, 1.0));
  }
  return out;
}

}  // namespace emx
