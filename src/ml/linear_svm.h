#ifndef EMX_ML_LINEAR_SVM_H_
#define EMX_ML_LINEAR_SVM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ml/matcher.h"
#include "src/ml/standardizer.h"

namespace emx {

struct LinearSvmOptions {
  double lambda = 1e-3;  // L2 regularization strength
  size_t epochs = 40;    // passes over the data
  uint64_t seed = 7;
};

// Linear SVM trained with the Pegasos stochastic sub-gradient algorithm on
// standardized features. PredictProba maps the margin through a logistic
// squashing so the ensemble/threshold machinery stays uniform.
class LinearSvmMatcher : public MlMatcher {
 public:
  explicit LinearSvmMatcher(LinearSvmOptions options = {});

  Status Fit(const Dataset& data) override;
  std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& x) const override;
  std::string name() const override { return "svm"; }

 private:
  LinearSvmOptions options_;
  Standardizer scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace emx

#endif  // EMX_ML_LINEAR_SVM_H_
