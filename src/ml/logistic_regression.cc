#include "src/ml/logistic_regression.h"

#include <cmath>

namespace emx {

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegressionMatcher::LogisticRegressionMatcher(
    LogisticRegressionOptions options)
    : options_(options) {}

Status LogisticRegressionMatcher::Fit(const Dataset& data) {
  if (data.size() == 0) {
    return Status::InvalidArgument("LogisticRegression: empty training set");
  }
  scaler_.Fit(data.x);
  std::vector<std::vector<double>> x = scaler_.Transform(data.x);
  const size_t n = x.size(), w = data.num_features();
  w_.assign(w, 0.0);
  b_ = 0.0;
  std::vector<double> grad(w);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = b_;
      for (size_t c = 0; c < w; ++c) z += w_[c] * x[i][c];
      double err = Sigmoid(z) - static_cast<double>(data.y[i]);
      for (size_t c = 0; c < w; ++c) grad[c] += err * x[i][c];
      grad_b += err;
    }
    double inv_n = 1.0 / static_cast<double>(n);
    for (size_t c = 0; c < w; ++c) {
      w_[c] -= options_.learning_rate * (grad[c] * inv_n + options_.l2 * w_[c]);
    }
    b_ -= options_.learning_rate * grad_b * inv_n;
  }
  return Status::OK();
}

std::vector<double> LogisticRegressionMatcher::PredictProba(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> xs = scaler_.Transform(x);
  std::vector<double> out;
  out.reserve(xs.size());
  for (const auto& row : xs) {
    double z = b_;
    for (size_t c = 0; c < w_.size() && c < row.size(); ++c) {
      z += w_[c] * row[c];
    }
    out.push_back(Sigmoid(z));
  }
  return out;
}

}  // namespace emx
