#ifndef EMX_ML_THRESHOLD_H_
#define EMX_ML_THRESHOLD_H_

#include <vector>

#include "src/ml/metrics.h"

namespace emx {

// Decision-threshold tuning. Every matcher in emx scores pairs with a
// probability and classifies at 0.5; when precision and recall trade off
// asymmetrically (the §12 situation: false positives cost more than false
// negatives once the expert-review budget is fixed), pick the threshold
// that maximizes the chosen objective on a validation set instead.

struct ThresholdChoice {
  double threshold = 0.5;
  BinaryMetrics metrics;  // at that threshold on the validation data
};

// The objective to maximize.
enum class ThresholdObjective {
  kF1,
  kPrecisionAtRecallFloor,  // max precision subject to recall >= floor
};

// Sweeps the midpoints of consecutive distinct probabilities (plus 0.5)
// and returns the best choice. `proba` and `y_true` align; ties prefer the
// threshold closest to 0.5 for stability.
ThresholdChoice SelectThreshold(const std::vector<double>& proba,
                                const std::vector<int>& y_true,
                                ThresholdObjective objective =
                                    ThresholdObjective::kF1,
                                double recall_floor = 0.9);

}  // namespace emx

#endif  // EMX_ML_THRESHOLD_H_
