#ifndef EMX_ML_METRICS_H_
#define EMX_ML_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace emx {

// Binary classification quality (match = positive class).
struct BinaryMetrics {
  size_t tp = 0, fp = 0, tn = 0, fn = 0;

  double Precision() const {
    return (tp + fp) == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fp);
  }
  double Recall() const {
    return (tp + fn) == 0 ? 0.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fn);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double Accuracy() const {
    size_t total = tp + fp + tn + fn;
    return total == 0 ? 0.0
                      : static_cast<double>(tp + tn) /
                            static_cast<double>(total);
  }

  std::string ToString() const;
};

// Tallies a confusion matrix; vectors must be equal length.
BinaryMetrics ComputeMetrics(const std::vector<int>& y_true,
                             const std::vector<int>& y_pred);

}  // namespace emx

#endif  // EMX_ML_METRICS_H_
