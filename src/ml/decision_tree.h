#ifndef EMX_ML_DECISION_TREE_H_
#define EMX_ML_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/result.h"
#include "src/ml/matcher.h"

namespace emx {

struct DecisionTreeOptions {
  int max_depth = 12;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  // Features considered per split: 0 = all; otherwise a random subset of
  // this size (random forests pass sqrt(num_features)).
  size_t max_features = 0;
  uint64_t seed = 7;
};

// CART classification tree with Gini impurity and axis-aligned threshold
// splits on continuous features (the paper's finally-selected matcher, §9).
class DecisionTreeMatcher : public MlMatcher {
 public:
  explicit DecisionTreeMatcher(DecisionTreeOptions options = {});

  Status Fit(const Dataset& data) override;
  std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& x) const override;
  std::string name() const override { return "decision_tree"; }

  // Number of nodes in the fitted tree (0 before Fit).
  size_t num_nodes() const { return nodes_.size(); }

  // Indented textual rendering of the fitted tree, for debugging — the
  // paper's "decision tree matcher debugger" inspects exactly this.
  std::string ToDebugString(const std::vector<std::string>& feature_names = {}) const;

  // Fraction of splits that use each feature, a crude importance signal.
  std::vector<double> FeatureSplitShares(size_t num_features) const;

  // Serializes the fitted tree to a compact, versioned text format — the
  // §12 "package the matcher so they could move it into the repository"
  // requirement. Deserialize() restores a tree that predicts identically.
  std::string Serialize() const;
  static Result<DecisionTreeMatcher> Deserialize(const std::string& text);

 private:
  // FlatForest re-lays fitted trees into its contiguous inference format.
  friend class FlatForest;

  struct Node {
    int feature = -1;          // -1 for leaves
    double threshold = 0.0;    // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    double positive_rate = 0.0;  // leaf probability of class 1
  };

  int BuildNode(const std::vector<std::vector<double>>& x,
                const std::vector<int>& y, std::vector<size_t>& indices,
                size_t begin, size_t end, int depth, RandomEngine& rng);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  size_t num_features_ = 0;
};

}  // namespace emx

#endif  // EMX_ML_DECISION_TREE_H_
