#ifndef EMX_ML_LOGISTIC_REGRESSION_H_
#define EMX_ML_LOGISTIC_REGRESSION_H_

#include <string>
#include <vector>

#include "src/ml/matcher.h"
#include "src/ml/standardizer.h"

namespace emx {

struct LogisticRegressionOptions {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  size_t epochs = 300;
};

// L2-regularized logistic regression trained by full-batch gradient descent
// on standardized features.
class LogisticRegressionMatcher : public MlMatcher {
 public:
  explicit LogisticRegressionMatcher(LogisticRegressionOptions options = {});

  Status Fit(const Dataset& data) override;
  std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& x) const override;
  std::string name() const override { return "logistic_regression"; }

  const std::vector<double>& weights() const { return w_; }

 private:
  LogisticRegressionOptions options_;
  Standardizer scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace emx

#endif  // EMX_ML_LOGISTIC_REGRESSION_H_
