#include "src/ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/core/strings.h"

namespace emx {

namespace {

double Gini(size_t pos, size_t total) {
  if (total == 0) return 0.0;
  double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTreeMatcher::DecisionTreeMatcher(DecisionTreeOptions options)
    : options_(options) {}

Status DecisionTreeMatcher::Fit(const Dataset& data) {
  if (data.size() == 0) {
    return Status::InvalidArgument("DecisionTree: empty training set");
  }
  nodes_.clear();
  num_features_ = data.num_features();
  std::vector<size_t> indices(data.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  RandomEngine rng(options_.seed);
  BuildNode(data.x, data.y, indices, 0, indices.size(), 0, rng);
  return Status::OK();
}

int DecisionTreeMatcher::BuildNode(const std::vector<std::vector<double>>& x,
                                   const std::vector<int>& y,
                                   std::vector<size_t>& indices, size_t begin,
                                   size_t end, int depth, RandomEngine& rng) {
  const size_t n = end - begin;
  size_t pos = 0;
  for (size_t i = begin; i < end; ++i) pos += static_cast<size_t>(y[indices[i]]);

  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[node_id].positive_rate =
      n == 0 ? 0.0 : static_cast<double>(pos) / static_cast<double>(n);

  bool stop = depth >= options_.max_depth || n < options_.min_samples_split ||
              pos == 0 || pos == n;
  if (stop) return node_id;

  // Choose the candidate feature set for this split.
  std::vector<size_t> features;
  if (options_.max_features == 0 || options_.max_features >= num_features_) {
    features.resize(num_features_);
    for (size_t f = 0; f < num_features_; ++f) features[f] = f;
  } else {
    features = rng.SampleWithoutReplacement(num_features_,
                                            options_.max_features);
    std::sort(features.begin(), features.end());  // determinism
  }

  // Best split search: sort the index range per feature and sweep.
  double parent_gini = Gini(pos, n);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> work(indices.begin() + begin, indices.begin() + end);
  for (size_t f : features) {
    std::sort(work.begin(), work.end(), [&](size_t a, size_t b) {
      return x[a][f] < x[b][f];
    });
    size_t left_pos = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_pos += static_cast<size_t>(y[work[i]]);
      double v = x[work[i]][f], next = x[work[i + 1]][f];
      if (v == next) continue;  // can't split between equal values
      size_t left_n = i + 1, right_n = n - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      double weighted =
          (static_cast<double>(left_n) * Gini(left_pos, left_n) +
           static_cast<double>(right_n) * Gini(pos - left_pos, right_n)) /
          static_cast<double>(n);
      double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (v + next);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split found

  // Partition the range in place around the chosen split.
  auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t i) {
        return x[i][static_cast<size_t>(best_feature)] <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = BuildNode(x, y, indices, begin, mid, depth + 1, rng);
  int right = BuildNode(x, y, indices, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

std::vector<double> DecisionTreeMatcher::PredictProba(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) {
    if (nodes_.empty()) {
      out.push_back(0.0);
      continue;
    }
    int node = 0;
    while (nodes_[static_cast<size_t>(node)].feature >= 0) {
      const Node& nd = nodes_[static_cast<size_t>(node)];
      double v = row[static_cast<size_t>(nd.feature)];
      node = (v <= nd.threshold) ? nd.left : nd.right;
    }
    out.push_back(nodes_[static_cast<size_t>(node)].positive_rate);
  }
  return out;
}

std::string DecisionTreeMatcher::ToDebugString(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  // Iterative preorder with depth tracking.
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  if (!nodes_.empty()) stack.push_back({0, 0});
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[static_cast<size_t>(id)];
    os << std::string(static_cast<size_t>(depth) * 2, ' ');
    if (nd.feature < 0) {
      os << "leaf p(match)=" << nd.positive_rate << "\n";
    } else {
      std::string fname =
          static_cast<size_t>(nd.feature) < feature_names.size()
              ? feature_names[static_cast<size_t>(nd.feature)]
              : "f" + std::to_string(nd.feature);
      os << fname << " <= " << nd.threshold << " ?\n";
      stack.push_back({nd.right, depth + 1});
      stack.push_back({nd.left, depth + 1});
    }
  }
  return os.str();
}

std::string DecisionTreeMatcher::Serialize() const {
  std::string out = StrFormat("emx_decision_tree v1 nodes=%zu features=%zu\n",
                              nodes_.size(), num_features_);
  for (const Node& nd : nodes_) {
    // %.17g round-trips doubles exactly.
    out += StrFormat("%d %.17g %d %d %.17g\n", nd.feature, nd.threshold,
                     nd.left, nd.right, nd.positive_rate);
  }
  return out;
}

Result<DecisionTreeMatcher> DecisionTreeMatcher::Deserialize(
    const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty()) {
    return Status::ParseError("empty decision-tree payload");
  }
  size_t node_count = 0, feature_count = 0;
  if (std::sscanf(lines[0].c_str(),
                  "emx_decision_tree v1 nodes=%zu features=%zu", &node_count,
                  &feature_count) != 2) {
    return Status::ParseError("bad decision-tree header: " + lines[0]);
  }
  DecisionTreeMatcher tree;
  tree.num_features_ = feature_count;
  tree.nodes_.reserve(node_count);
  for (size_t i = 1; i <= node_count; ++i) {
    if (i >= lines.size()) {
      return Status::ParseError("truncated decision-tree payload");
    }
    Node nd;
    if (std::sscanf(lines[i].c_str(), "%d %lg %d %d %lg", &nd.feature,
                    &nd.threshold, &nd.left, &nd.right,
                    &nd.positive_rate) != 5) {
      return Status::ParseError("bad node line: " + lines[i]);
    }
    // Child indices must stay inside the node table (leaves are -1).
    if (nd.feature >= 0 &&
        (nd.left < 0 || nd.right < 0 ||
         static_cast<size_t>(nd.left) >= node_count ||
         static_cast<size_t>(nd.right) >= node_count)) {
      return Status::ParseError("node children out of range: " + lines[i]);
    }
    tree.nodes_.push_back(nd);
  }
  return tree;
}

std::vector<double> DecisionTreeMatcher::FeatureSplitShares(
    size_t num_features) const {
  std::vector<double> shares(num_features, 0.0);
  size_t splits = 0;
  for (const Node& nd : nodes_) {
    if (nd.feature >= 0 && static_cast<size_t>(nd.feature) < num_features) {
      shares[static_cast<size_t>(nd.feature)] += 1.0;
      ++splits;
    }
  }
  if (splits > 0) {
    for (double& s : shares) s /= static_cast<double>(splits);
  }
  return shares;
}

}  // namespace emx
