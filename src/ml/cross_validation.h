#ifndef EMX_ML_CROSS_VALIDATION_H_
#define EMX_ML_CROSS_VALIDATION_H_

#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/result.h"
#include "src/ml/matcher.h"
#include "src/ml/metrics.h"

namespace emx {

// Averaged k-fold quality for one matcher.
struct CvResult {
  std::string matcher_name;
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double mean_f1 = 0.0;
  std::vector<BinaryMetrics> fold_metrics;
};

// Stratified k-fold cross validation of a single matcher family: trains a
// fresh model per fold and averages precision/recall/F1 — the §9 selection
// procedure ("five-fold cross validation on H").
//
// Folds are independent (disjoint models, disjoint metric slots), so they
// train concurrently on `ctx`'s executor; fold_metrics and the means are
// assembled in fold order, making the result identical at any thread
// count. The factory must be safe to invoke concurrently.
Result<CvResult> CrossValidate(const MatcherFactory& factory,
                               const Dataset& data, size_t k, uint64_t seed,
                               const ExecutorContext& ctx = {});

// Cross-validates every candidate family on the same folds and returns
// results sorted descending by mean F1 (best first).
Result<std::vector<CvResult>> SelectMatcher(
    const std::vector<MatcherFactory>& factories, const Dataset& data,
    size_t k, uint64_t seed, const ExecutorContext& ctx = {});

// Leave-one-out predictions: element i is the label predicted for row i by
// a model trained on all other rows — the §8 label-debugging procedure.
// Each held-out row trains independently, so rows run concurrently on
// `ctx`'s executor.
Result<std::vector<int>> LeaveOneOutPredictions(const MatcherFactory& factory,
                                                const Dataset& data,
                                                const ExecutorContext& ctx = {});

}  // namespace emx

#endif  // EMX_ML_CROSS_VALIDATION_H_
