#ifndef EMX_ML_DATASET_H_
#define EMX_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/random.h"

namespace emx {

// A dense supervised learning problem: row-major features plus binary
// labels (1 = match, 0 = non-match).
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  std::vector<std::string> feature_names;

  size_t size() const { return x.size(); }
  size_t num_features() const { return x.empty() ? 0 : x[0].size(); }

  // Rows selected by `indices`, in order.
  Dataset Subset(const std::vector<size_t>& indices) const;
};

// Index folds for stratified k-fold cross-validation: every fold receives
// (as close as possible) the same positive rate as the whole set. Shuffles
// within each class with `seed`.
std::vector<std::vector<size_t>> StratifiedKFoldIndices(
    const std::vector<int>& y, size_t k, uint64_t seed);

// A seeded stratified train/test split; `test_fraction` of each class goes
// to the test set.
struct TrainTestSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
TrainTestSplit StratifiedSplit(const std::vector<int>& y,
                               double test_fraction, uint64_t seed);

}  // namespace emx

#endif  // EMX_ML_DATASET_H_
