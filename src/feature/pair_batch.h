#ifndef EMX_FEATURE_PAIR_BATCH_H_
#define EMX_FEATURE_PAIR_BATCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/feature/feature_gen.h"

namespace emx {

// Structure-of-arrays feature storage for a batch of candidate pairs: one
// contiguous column of `num_pairs` doubles per feature, laid out
// column-major (`data[f * num_pairs + i]`). The row-major FeatureMatrix
// stores each pair as its own heap vector — fine for looking at one pair,
// hostile to the hot path, where every stage sweeps one FEATURE across all
// pairs (a batch similarity kernel fills a column, the imputer patches a
// column's NaNs with that column's mean, flattened-forest inference reads
// one threshold's feature column per node visit). Columns keep those sweeps
// on contiguous memory with zero per-pair allocation.
//
// Cell (i, f) holds exactly the double the row-major path would put in
// rows[i][f]; conversions in either direction are pure copies, so
// PairBatch-based pipelines are bit-identical to their row-based oracles.
class PairBatch {
 public:
  PairBatch() = default;
  PairBatch(size_t num_pairs, size_t num_features) {
    Reset(num_pairs, num_features);
  }

  // Reshapes to num_pairs x num_features. Cell contents are unspecified
  // after a reset; every producer (vectorizer, FromRows) writes all cells.
  void Reset(size_t num_pairs, size_t num_features) {
    num_pairs_ = num_pairs;
    num_features_ = num_features;
    data_.resize(num_pairs * num_features);
  }

  size_t num_pairs() const { return num_pairs_; }
  size_t num_features() const { return num_features_; }
  bool empty() const { return num_pairs_ == 0; }

  // Contiguous column of feature f: num_pairs() doubles, entry i is pair i.
  double* Column(size_t f) { return data_.data() + f * num_pairs_; }
  const double* Column(size_t f) const {
    return data_.data() + f * num_pairs_;
  }

  double At(size_t i, size_t f) const { return data_[f * num_pairs_ + i]; }
  double& At(size_t i, size_t f) { return data_[f * num_pairs_ + i]; }

  // Copies row i (pair i's feature vector) into out[0..num_features).
  void RowTo(size_t i, double* out) const {
    for (size_t f = 0; f < num_features_; ++f) out[f] = At(i, f);
  }

  // Transposing conversions to/from the row-major representations. Rows
  // must be rectangular; FromRows infers the width from the first row.
  static PairBatch FromRows(const std::vector<std::vector<double>>& rows);
  static PairBatch FromMatrix(const FeatureMatrix& matrix);
  std::vector<std::vector<double>> ToRows() const;
  FeatureMatrix ToMatrix() const;

  // Column names, parallel to the feature axis (may be empty when the batch
  // was built from unnamed rows, e.g. in cross-validation).
  std::vector<std::string> feature_names;

 private:
  size_t num_pairs_ = 0;
  size_t num_features_ = 0;
  std::vector<double> data_;
};

}  // namespace emx

#endif  // EMX_FEATURE_PAIR_BATCH_H_
