#include "src/feature/feature.h"

#include <cmath>
#include <limits>

#include "src/core/strings.h"
#include "src/text/batch_kernel.h"
#include "src/text/numeric_similarity.h"
#include "src/text/phonetic.h"
#include "src/text/sequence_similarity.h"
#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"

namespace emx {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Normalized view of a value for the legacy per-pair path. String values
// needing no lowercasing are viewed in place — no copy; everything else
// (numerics to format, strings to lowercase) materializes into `buf`.
std::string_view PrepView(const Value& v, bool lowercase, std::string* buf) {
  if (!lowercase && v.is_string()) return v.AsStringView();
  *buf = v.AsString();
  if (lowercase) {
    for (char& c : *buf) {
      if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
    }
  }
  return *buf;
}

// Builds a string feature: scorer over two normalized strings, evaluable
// per pair (fn), against cached prepped columns (prep_fn), or a whole
// column at a time (batch_fn, when the measure has a batch kernel).
template <typename Fn>
Feature StringFeature(std::string name, const std::string& left_attr,
                      const std::string& right_attr, Fn scorer,
                      bool lowercase,
                      Feature::BatchScoreFn batch_fn = nullptr) {
  Feature f;
  f.name = std::move(name);
  f.left_attr = left_attr;
  f.right_attr = right_attr;
  f.fn = [scorer, lowercase](const Value& a, const Value& b) -> double {
    if (a.is_null() || b.is_null()) return kNaN;
    std::string ba, bb;
    return scorer(PrepView(a, lowercase, &ba), PrepView(b, lowercase, &bb));
  };
  f.prep = {lowercase, /*tokenize=*/false, /*qgram=*/0};
  f.prep_fn = [scorer](const PreparedColumn& lc, size_t i,
                       const PreparedColumn& rc, size_t j) -> double {
    if (lc.is_null(i) || rc.is_null(j)) return kNaN;
    return scorer(lc.text(i), rc.text(j));
  };
  f.batch_fn = batch_fn;
  return f;
}

// Builds a token-set feature: `scorer` runs the legacy path over token
// strings, `id_scorer` the merge kernel over the cached sorted id spans.
// Both reduce to the same (|A|, |B|, |A ∩ B|), so results are bit-identical.
template <typename Fn, typename IdFn>
Feature TokenSetFeature(std::string name, const std::string& left_attr,
                        const std::string& right_attr, Fn scorer,
                        IdFn id_scorer, int qgram, bool lowercase) {
  Feature f;
  f.name = std::move(name);
  f.left_attr = left_attr;
  f.right_attr = right_attr;
  f.fn = [scorer, qgram, lowercase](const Value& a,
                                    const Value& b) -> double {
    if (a.is_null() || b.is_null()) return kNaN;
    std::string ba, bb;
    std::vector<std::string> ta, tb;
    if (qgram > 0) {
      QgramTokenizer tok(qgram);
      ta = tok.Tokenize(PrepView(a, lowercase, &ba));
      tb = tok.Tokenize(PrepView(b, lowercase, &bb));
    } else {
      WhitespaceTokenizer tok;
      ta = tok.Tokenize(PrepView(a, lowercase, &ba));
      tb = tok.Tokenize(PrepView(b, lowercase, &bb));
    }
    return scorer(ta, tb);
  };
  f.prep = {lowercase, /*tokenize=*/true, qgram};
  f.prep_fn = [id_scorer](const PreparedColumn& lc, size_t i,
                          const PreparedColumn& rc, size_t j) -> double {
    if (lc.is_null(i) || rc.is_null(j)) return kNaN;
    return id_scorer(lc.ids(i), rc.ids(j));
  };
  return f;
}

std::string TokName(int qgram) {
  return qgram > 0 ? "qgm" + std::to_string(qgram) : "ws";
}

std::string FeatName(const std::string& attr, const std::string& sim,
                     bool lowercase) {
  return (lowercase ? "lc_" : "") + attr + "_" + sim;
}

// Extracts a 4-digit year from a date-like string ("2008-34103-19449",
// "10/1/08", "1997-07-01"); returns NaN-signal via ok=false when absent.
bool ExtractYear(const std::string& s, int* year) {
  // Leading 4-digit year.
  if (s.size() >= 4 && IsAllDigits(s.substr(0, 4))) {
    int y = std::stoi(s.substr(0, 4));
    if (y >= 1900 && y <= 2100) {
      *year = y;
      return true;
    }
  }
  // Trailing 4- or 2-digit year after the last '/' or '-'. Other digit-run
  // lengths can't be a year — and unbounded runs would overflow std::stoi
  // (a 10-digit tail used to throw out_of_range here).
  size_t pos = s.find_last_of("/-");
  if (pos != std::string::npos && pos + 1 < s.size()) {
    std::string tail = s.substr(pos + 1);
    if ((tail.size() == 2 || tail.size() == 4) && IsAllDigits(tail)) {
      int y = std::stoi(tail);
      if (tail.size() == 2) y += (y < 50) ? 2000 : 1900;
      if (y >= 1900 && y <= 2100) {
        *year = y;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Feature MakeExactMatchFeature(const std::string& left_attr,
                              const std::string& right_attr, bool lowercase) {
  return StringFeature(
      FeatName(left_attr, "exact", lowercase), left_attr, right_attr,
      [](std::string_view a, std::string_view b) { return ExactMatch(a, b); },
      lowercase, &ExactMatchBatch);
}

Feature MakeLevenshteinFeature(const std::string& left_attr,
                               const std::string& right_attr, bool lowercase) {
  return StringFeature(
      FeatName(left_attr, "lev", lowercase), left_attr, right_attr,
      [](std::string_view a, std::string_view b) {
        return LevenshteinSimilarity(a, b);
      },
      lowercase, &LevenshteinSimilarityBatch);
}

Feature MakeJaroFeature(const std::string& left_attr,
                        const std::string& right_attr, bool lowercase) {
  return StringFeature(
      FeatName(left_attr, "jaro", lowercase), left_attr, right_attr,
      [](std::string_view a, std::string_view b) {
        return JaroSimilarity(a, b);
      },
      lowercase, &JaroSimilarityBatch);
}

Feature MakeJaroWinklerFeature(const std::string& left_attr,
                               const std::string& right_attr, bool lowercase) {
  return StringFeature(
      FeatName(left_attr, "jwn", lowercase), left_attr, right_attr,
      [](std::string_view a, std::string_view b) {
        return JaroWinklerSimilarity(a, b);
      },
      lowercase,
      +[](const std::string_view* a, const std::string_view* b, size_t n,
          double* out) { JaroWinklerSimilarityBatch(a, b, n, out); });
}

Feature MakeNeedlemanWunschFeature(const std::string& left_attr,
                                   const std::string& right_attr,
                                   bool lowercase) {
  return StringFeature(
      FeatName(left_attr, "nmw", lowercase), left_attr, right_attr,
      [](std::string_view a, std::string_view b) {
        return NeedlemanWunschSimilarity(a, b);
      },
      lowercase, &NeedlemanWunschSimilarityBatch);
}

Feature MakeSmithWatermanFeature(const std::string& left_attr,
                                 const std::string& right_attr,
                                 bool lowercase) {
  return StringFeature(
      FeatName(left_attr, "sw", lowercase), left_attr, right_attr,
      [](std::string_view a, std::string_view b) {
        return SmithWatermanSimilarity(a, b);
      },
      lowercase, &SmithWatermanSimilarityBatch);
}

Feature MakeAffineGapFeature(const std::string& left_attr,
                             const std::string& right_attr, bool lowercase) {
  return StringFeature(
      FeatName(left_attr, "ag", lowercase), left_attr, right_attr,
      [](std::string_view a, std::string_view b) {
        return AffineGapSimilarity(a, b);
      },
      lowercase, &AffineGapSimilarityBatch);
}

Feature MakeJaccardFeature(const std::string& left_attr,
                           const std::string& right_attr, int qgram,
                           bool lowercase) {
  return TokenSetFeature(
      FeatName(left_attr, "jac_" + TokName(qgram), lowercase), left_attr,
      right_attr,
      [](const std::vector<std::string>& a, const std::vector<std::string>& b) {
        return JaccardSimilarity(a, b);
      },
      [](IdSpan a, IdSpan b) { return JaccardSimilarity(a, b); }, qgram,
      lowercase);
}

Feature MakeCosineFeature(const std::string& left_attr,
                          const std::string& right_attr, int qgram,
                          bool lowercase) {
  return TokenSetFeature(
      FeatName(left_attr, "cos_" + TokName(qgram), lowercase), left_attr,
      right_attr,
      [](const std::vector<std::string>& a, const std::vector<std::string>& b) {
        return CosineSimilarity(a, b);
      },
      [](IdSpan a, IdSpan b) { return CosineSimilarity(a, b); }, qgram,
      lowercase);
}

Feature MakeDiceFeature(const std::string& left_attr,
                        const std::string& right_attr, int qgram,
                        bool lowercase) {
  return TokenSetFeature(
      FeatName(left_attr, "dice_" + TokName(qgram), lowercase), left_attr,
      right_attr,
      [](const std::vector<std::string>& a, const std::vector<std::string>& b) {
        return DiceSimilarity(a, b);
      },
      [](IdSpan a, IdSpan b) { return DiceSimilarity(a, b); }, qgram,
      lowercase);
}

Feature MakeOverlapCoefficientFeature(const std::string& left_attr,
                                      const std::string& right_attr, int qgram,
                                      bool lowercase) {
  return TokenSetFeature(
      FeatName(left_attr, "ovc_" + TokName(qgram), lowercase), left_attr,
      right_attr,
      [](const std::vector<std::string>& a, const std::vector<std::string>& b) {
        return OverlapCoefficient(a, b);
      },
      [](IdSpan a, IdSpan b) { return OverlapCoefficient(a, b); }, qgram,
      lowercase);
}

Feature MakeMongeElkanFeature(const std::string& left_attr,
                              const std::string& right_attr, bool lowercase) {
  // Monge-Elkan needs the token STRINGS (it runs Jaro-Winkler between
  // tokens), so its prepared path reads the column's token arrays — kept in
  // tokenizer-emission order, which preserves the legacy summation order.
  Feature f;
  f.name = FeatName(left_attr, "mel", lowercase);
  f.left_attr = left_attr;
  f.right_attr = right_attr;
  f.fn = [lowercase](const Value& a, const Value& b) -> double {
    if (a.is_null() || b.is_null()) return kNaN;
    std::string ba, bb;
    WhitespaceTokenizer tok;
    std::vector<std::string> ta = tok.Tokenize(PrepView(a, lowercase, &ba));
    std::vector<std::string> tb = tok.Tokenize(PrepView(b, lowercase, &bb));
    return MongeElkanSimilarity(ta, tb);
  };
  f.prep = {lowercase, /*tokenize=*/true, /*qgram=*/0};
  f.prep_fn = [](const PreparedColumn& lc, size_t i, const PreparedColumn& rc,
                 size_t j) -> double {
    if (lc.is_null(i) || rc.is_null(j)) return kNaN;
    size_t na = 0, nb = 0;
    const std::string* ta = lc.tokens(i, &na);
    const std::string* tb = rc.tokens(j, &nb);
    if (lc.interner_uid() == rc.interner_uid()) {
      // Same interner (same PrepCache, the documented contract): memoize
      // the token-level Jaro-Winkler by id pair — bit-identical, just not
      // recomputed for every candidate pair sharing a record.
      size_t ia = 0, ib = 0;
      return MongeElkanSimilarityMemo(ta, lc.emission_ids(i, &ia), na, tb,
                                      rc.emission_ids(j, &ib), nb,
                                      lc.interner_uid());
    }
    return MongeElkanSimilarity(ta, na, tb, nb);
  };
  return f;
}

Feature MakeAbsDiffFeature(const std::string& left_attr,
                           const std::string& right_attr) {
  Feature f;
  f.name = left_attr + "_absdiff";
  f.left_attr = left_attr;
  f.right_attr = right_attr;
  f.fn = [](const Value& a, const Value& b) -> double {
    if (!a.is_numeric() || !b.is_numeric()) return kNaN;
    return AbsoluteDifference(a.AsDouble(), b.AsDouble());
  };
  return f;
}

Feature MakeRelativeSimFeature(const std::string& left_attr,
                               const std::string& right_attr) {
  Feature f;
  f.name = left_attr + "_relsim";
  f.left_attr = left_attr;
  f.right_attr = right_attr;
  f.fn = [](const Value& a, const Value& b) -> double {
    if (!a.is_numeric() || !b.is_numeric()) return kNaN;
    return RelativeSimilarity(a.AsDouble(), b.AsDouble());
  };
  return f;
}

Feature MakeNumericExactFeature(const std::string& left_attr,
                                const std::string& right_attr) {
  Feature f;
  f.name = left_attr + "_numexact";
  f.left_attr = left_attr;
  f.right_attr = right_attr;
  f.fn = [](const Value& a, const Value& b) -> double {
    if (!a.is_numeric() || !b.is_numeric()) return kNaN;
    return NumericExactMatch(a.AsDouble(), b.AsDouble());
  };
  return f;
}

Feature MakeYearDiffFeature(const std::string& left_attr,
                            const std::string& right_attr) {
  Feature f;
  f.name = left_attr + "_yeardiff";
  f.left_attr = left_attr;
  f.right_attr = right_attr;
  f.fn = [](const Value& a, const Value& b) -> double {
    if (a.is_null() || b.is_null()) return kNaN;
    int ya = 0, yb = 0;
    if (!ExtractYear(a.AsString(), &ya) || !ExtractYear(b.AsString(), &yb)) {
      return kNaN;
    }
    return std::abs(ya - yb);
  };
  return f;
}

}  // namespace emx
