#include "src/feature/feature.h"

#include <cmath>
#include <limits>

#include "src/core/strings.h"
#include "src/text/numeric_similarity.h"
#include "src/text/sequence_similarity.h"
#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"

namespace emx {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string Prep(const Value& v, bool lowercase) {
  std::string s = v.AsString();
  return lowercase ? AsciiToLower(s) : s;
}

// Wraps a string-pair scorer into a Feature fn with null -> NaN semantics.
template <typename Fn>
std::function<double(const Value&, const Value&)> StringFeature(
    Fn scorer, bool lowercase) {
  return [scorer, lowercase](const Value& a, const Value& b) -> double {
    if (a.is_null() || b.is_null()) return kNaN;
    return scorer(Prep(a, lowercase), Prep(b, lowercase));
  };
}

// Wraps a token-set scorer: tokenizes with whitespace or q-grams first.
template <typename Fn>
std::function<double(const Value&, const Value&)> TokenFeature(
    Fn scorer, int qgram, bool lowercase) {
  return [scorer, qgram, lowercase](const Value& a, const Value& b) -> double {
    if (a.is_null() || b.is_null()) return kNaN;
    std::vector<std::string> ta, tb;
    if (qgram > 0) {
      QgramTokenizer tok(qgram);
      ta = tok.Tokenize(Prep(a, lowercase));
      tb = tok.Tokenize(Prep(b, lowercase));
    } else {
      WhitespaceTokenizer tok;
      ta = tok.Tokenize(Prep(a, lowercase));
      tb = tok.Tokenize(Prep(b, lowercase));
    }
    return scorer(ta, tb);
  };
}

std::string TokName(int qgram) {
  return qgram > 0 ? "qgm" + std::to_string(qgram) : "ws";
}

std::string FeatName(const std::string& attr, const std::string& sim,
                     bool lowercase) {
  return (lowercase ? "lc_" : "") + attr + "_" + sim;
}

// Extracts a 4-digit year from a date-like string ("2008-34103-19449",
// "10/1/08", "1997-07-01"); returns NaN-signal via ok=false when absent.
bool ExtractYear(const std::string& s, int* year) {
  // Leading 4-digit year.
  if (s.size() >= 4 && IsAllDigits(s.substr(0, 4))) {
    int y = std::stoi(s.substr(0, 4));
    if (y >= 1900 && y <= 2100) {
      *year = y;
      return true;
    }
  }
  // Trailing 4- or 2-digit year after the last '/' or '-'.
  size_t pos = s.find_last_of("/-");
  if (pos != std::string::npos && pos + 1 < s.size()) {
    std::string tail = s.substr(pos + 1);
    if (IsAllDigits(tail)) {
      int y = std::stoi(tail);
      if (tail.size() == 2) y += (y < 50) ? 2000 : 1900;
      if (y >= 1900 && y <= 2100) {
        *year = y;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Feature MakeExactMatchFeature(const std::string& left_attr,
                              const std::string& right_attr, bool lowercase) {
  return {FeatName(left_attr, "exact", lowercase), left_attr, right_attr,
          StringFeature(
              [](const std::string& a, const std::string& b) {
                return ExactMatch(a, b);
              },
              lowercase)};
}

Feature MakeLevenshteinFeature(const std::string& left_attr,
                               const std::string& right_attr, bool lowercase) {
  return {FeatName(left_attr, "lev", lowercase), left_attr, right_attr,
          StringFeature(
              [](const std::string& a, const std::string& b) {
                return LevenshteinSimilarity(a, b);
              },
              lowercase)};
}

Feature MakeJaroFeature(const std::string& left_attr,
                        const std::string& right_attr, bool lowercase) {
  return {FeatName(left_attr, "jaro", lowercase), left_attr, right_attr,
          StringFeature(
              [](const std::string& a, const std::string& b) {
                return JaroSimilarity(a, b);
              },
              lowercase)};
}

Feature MakeJaroWinklerFeature(const std::string& left_attr,
                               const std::string& right_attr, bool lowercase) {
  return {FeatName(left_attr, "jwn", lowercase), left_attr, right_attr,
          StringFeature(
              [](const std::string& a, const std::string& b) {
                return JaroWinklerSimilarity(a, b);
              },
              lowercase)};
}

Feature MakeNeedlemanWunschFeature(const std::string& left_attr,
                                   const std::string& right_attr,
                                   bool lowercase) {
  return {FeatName(left_attr, "nmw", lowercase), left_attr, right_attr,
          StringFeature(
              [](const std::string& a, const std::string& b) {
                return NeedlemanWunschSimilarity(a, b);
              },
              lowercase)};
}

Feature MakeSmithWatermanFeature(const std::string& left_attr,
                                 const std::string& right_attr,
                                 bool lowercase) {
  return {FeatName(left_attr, "sw", lowercase), left_attr, right_attr,
          StringFeature(
              [](const std::string& a, const std::string& b) {
                return SmithWatermanSimilarity(a, b);
              },
              lowercase)};
}

Feature MakeJaccardFeature(const std::string& left_attr,
                           const std::string& right_attr, int qgram,
                           bool lowercase) {
  return {FeatName(left_attr, "jac_" + TokName(qgram), lowercase), left_attr,
          right_attr,
          TokenFeature(
              [](const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
                return JaccardSimilarity(a, b);
              },
              qgram, lowercase)};
}

Feature MakeCosineFeature(const std::string& left_attr,
                          const std::string& right_attr, int qgram,
                          bool lowercase) {
  return {FeatName(left_attr, "cos_" + TokName(qgram), lowercase), left_attr,
          right_attr,
          TokenFeature(
              [](const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
                return CosineSimilarity(a, b);
              },
              qgram, lowercase)};
}

Feature MakeDiceFeature(const std::string& left_attr,
                        const std::string& right_attr, int qgram,
                        bool lowercase) {
  return {FeatName(left_attr, "dice_" + TokName(qgram), lowercase), left_attr,
          right_attr,
          TokenFeature(
              [](const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
                return DiceSimilarity(a, b);
              },
              qgram, lowercase)};
}

Feature MakeOverlapCoefficientFeature(const std::string& left_attr,
                                      const std::string& right_attr, int qgram,
                                      bool lowercase) {
  return {FeatName(left_attr, "ovc_" + TokName(qgram), lowercase), left_attr,
          right_attr,
          TokenFeature(
              [](const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
                return OverlapCoefficient(a, b);
              },
              qgram, lowercase)};
}

Feature MakeMongeElkanFeature(const std::string& left_attr,
                              const std::string& right_attr, bool lowercase) {
  return {FeatName(left_attr, "mel", lowercase), left_attr, right_attr,
          TokenFeature(
              [](const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
                return MongeElkanSimilarity(a, b);
              },
              /*qgram=*/0, lowercase)};
}

Feature MakeAbsDiffFeature(const std::string& left_attr,
                           const std::string& right_attr) {
  return {left_attr + "_absdiff", left_attr, right_attr,
          [](const Value& a, const Value& b) -> double {
            if (!a.is_numeric() || !b.is_numeric()) return kNaN;
            return AbsoluteDifference(a.AsDouble(), b.AsDouble());
          }};
}

Feature MakeRelativeSimFeature(const std::string& left_attr,
                               const std::string& right_attr) {
  return {left_attr + "_relsim", left_attr, right_attr,
          [](const Value& a, const Value& b) -> double {
            if (!a.is_numeric() || !b.is_numeric()) return kNaN;
            return RelativeSimilarity(a.AsDouble(), b.AsDouble());
          }};
}

Feature MakeNumericExactFeature(const std::string& left_attr,
                                const std::string& right_attr) {
  return {left_attr + "_numexact", left_attr, right_attr,
          [](const Value& a, const Value& b) -> double {
            if (!a.is_numeric() || !b.is_numeric()) return kNaN;
            return NumericExactMatch(a.AsDouble(), b.AsDouble());
          }};
}

Feature MakeYearDiffFeature(const std::string& left_attr,
                            const std::string& right_attr) {
  return {left_attr + "_yeardiff", left_attr, right_attr,
          [](const Value& a, const Value& b) -> double {
            if (a.is_null() || b.is_null()) return kNaN;
            int ya = 0, yb = 0;
            if (!ExtractYear(a.AsString(), &ya) ||
                !ExtractYear(b.AsString(), &yb)) {
              return kNaN;
            }
            return std::abs(ya - yb);
          }};
}

}  // namespace emx
