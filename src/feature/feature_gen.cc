#include "src/feature/feature_gen.h"

#include <algorithm>

#include "src/feature/attribute_type.h"

namespace emx {

namespace {

bool InList(const std::string& name,
                const std::vector<std::string>& exclude) {
  return std::find(exclude.begin(), exclude.end(), name) != exclude.end();
}

// The wider kind wins when the two tables disagree (e.g. left says medium,
// right says long -> long): string-kind enumerators are ordered by width.
AttrKind WiderKind(AttrKind a, AttrKind b) {
  if (a == AttrKind::kNumeric || a == AttrKind::kBoolean) return b;
  if (b == AttrKind::kNumeric || b == AttrKind::kBoolean) return a;
  return std::max(a, b);
}

void EmitForKind(AttrKind kind, const std::string& attr, bool lowercase,
                 std::vector<Feature>& out) {
  switch (kind) {
    case AttrKind::kNumeric:
      out.push_back(MakeNumericExactFeature(attr, attr));
      out.push_back(MakeAbsDiffFeature(attr, attr));
      out.push_back(MakeRelativeSimFeature(attr, attr));
      break;
    case AttrKind::kBoolean:
      out.push_back(MakeNumericExactFeature(attr, attr));
      break;
    case AttrKind::kShortString:
      out.push_back(MakeExactMatchFeature(attr, attr, lowercase));
      out.push_back(MakeLevenshteinFeature(attr, attr, lowercase));
      out.push_back(MakeJaroFeature(attr, attr, lowercase));
      out.push_back(MakeJaroWinklerFeature(attr, attr, lowercase));
      out.push_back(MakeJaccardFeature(attr, attr, /*qgram=*/3, lowercase));
      break;
    case AttrKind::kMediumString:
      out.push_back(MakeJaccardFeature(attr, attr, /*qgram=*/3, lowercase));
      out.push_back(MakeJaccardFeature(attr, attr, /*qgram=*/0, lowercase));
      out.push_back(MakeCosineFeature(attr, attr, /*qgram=*/0, lowercase));
      out.push_back(MakeMongeElkanFeature(attr, attr, lowercase));
      out.push_back(MakeLevenshteinFeature(attr, attr, lowercase));
      break;
    case AttrKind::kLongString:
      out.push_back(MakeJaccardFeature(attr, attr, /*qgram=*/3, lowercase));
      out.push_back(MakeJaccardFeature(attr, attr, /*qgram=*/0, lowercase));
      out.push_back(MakeCosineFeature(attr, attr, /*qgram=*/0, lowercase));
      out.push_back(
          MakeOverlapCoefficientFeature(attr, attr, /*qgram=*/0, lowercase));
      out.push_back(MakeMongeElkanFeature(attr, attr, lowercase));
      break;
    case AttrKind::kVeryLongString:
      out.push_back(MakeJaccardFeature(attr, attr, /*qgram=*/3, lowercase));
      out.push_back(MakeCosineFeature(attr, attr, /*qgram=*/0, lowercase));
      out.push_back(
          MakeOverlapCoefficientFeature(attr, attr, /*qgram=*/0, lowercase));
      out.push_back(MakeDiceFeature(attr, attr, /*qgram=*/0, lowercase));
      break;
  }
}

}  // namespace

Result<FeatureSet> GenerateFeatures(const Table& left, const Table& right,
                                    const FeatureGenOptions& options) {
  FeatureSet set;
  for (const auto& field : left.schema().fields()) {
    const std::string& attr = field.name;
    if (!right.schema().Contains(attr)) continue;
    if (InList(attr, options.exclude)) continue;

    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                         left.ColumnByName(attr));
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                         right.ColumnByName(attr));
    AttrKind kind = WiderKind(InferAttrKind(*lcol), InferAttrKind(*rcol));

    EmitForKind(kind, attr, /*lowercase=*/false, set.features);
    // Case-insensitive twins of the same measures (§9 debug fix).
    if (InList(attr, options.lowercase_variants) &&
        kind != AttrKind::kNumeric && kind != AttrKind::kBoolean) {
      EmitForKind(kind, attr, /*lowercase=*/true, set.features);
    }
  }
  if (set.features.empty()) {
    return Status::InvalidArgument(
        "GenerateFeatures: tables share no usable attributes");
  }
  return set;
}

}  // namespace emx
