#include "src/feature/attribute_type.h"

#include "src/core/strings.h"

namespace emx {

std::string_view AttrKindToString(AttrKind kind) {
  switch (kind) {
    case AttrKind::kNumeric:
      return "numeric";
    case AttrKind::kBoolean:
      return "boolean";
    case AttrKind::kShortString:
      return "short_string";
    case AttrKind::kMediumString:
      return "medium_string";
    case AttrKind::kLongString:
      return "long_string";
    case AttrKind::kVeryLongString:
      return "very_long_string";
  }
  return "?";
}

AttrKind InferAttrKind(const std::vector<Value>& column) {
  size_t non_null = 0;
  size_t numeric = 0;
  size_t boolean_like = 0;
  size_t total_words = 0;
  for (const Value& v : column) {
    if (v.is_null()) continue;
    ++non_null;
    if (v.is_numeric()) {
      ++numeric;
      double d = v.AsDouble();
      if (d == 0.0 || d == 1.0) ++boolean_like;
      ++total_words;
      continue;
    }
    total_words += SplitWhitespace(v.AsStringView()).size();
  }
  if (non_null == 0) return AttrKind::kShortString;
  if (numeric == non_null) {
    return (boolean_like == non_null) ? AttrKind::kBoolean : AttrKind::kNumeric;
  }
  double avg_words =
      static_cast<double>(total_words) / static_cast<double>(non_null);
  if (avg_words <= 1.5) return AttrKind::kShortString;
  if (avg_words <= 5.0) return AttrKind::kMediumString;
  if (avg_words <= 10.0) return AttrKind::kLongString;
  return AttrKind::kVeryLongString;
}

}  // namespace emx
