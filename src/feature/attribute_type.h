#ifndef EMX_FEATURE_ATTRIBUTE_TYPE_H_
#define EMX_FEATURE_ATTRIBUTE_TYPE_H_

#include <string_view>
#include <vector>

#include "src/table/value.h"

namespace emx {

// Coarse attribute kinds driving automatic feature selection, mirroring
// Magellan's scheme (footnote 7: features are generated from the schemas,
// picking string measures for short/medium/long strings and numeric
// measures for numbers).
enum class AttrKind {
  kNumeric,
  kBoolean,
  kShortString,     // ~1 word per value (codes, ids)
  kMediumString,    // 1-5 words
  kLongString,      // 6-10 words
  kVeryLongString,  // > 10 words
};

std::string_view AttrKindToString(AttrKind kind);

// Infers the kind of a column from its non-null values: all-numeric columns
// are kNumeric; 0/1-only numerics are kBoolean; strings are bucketed by
// their average whitespace word count.
AttrKind InferAttrKind(const std::vector<Value>& column);

}  // namespace emx

#endif  // EMX_FEATURE_ATTRIBUTE_TYPE_H_
