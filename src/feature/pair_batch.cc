#include "src/feature/pair_batch.h"

namespace emx {

PairBatch PairBatch::FromRows(const std::vector<std::vector<double>>& rows) {
  PairBatch batch;
  const size_t n = rows.size();
  const size_t width = n == 0 ? 0 : rows[0].size();
  batch.Reset(n, width);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < width; ++f) batch.At(i, f) = rows[i][f];
  }
  return batch;
}

PairBatch PairBatch::FromMatrix(const FeatureMatrix& matrix) {
  PairBatch batch = FromRows(matrix.rows);
  batch.feature_names = matrix.feature_names;
  if (batch.num_features() == 0 && !matrix.feature_names.empty()) {
    // An empty candidate set still knows its width from the feature names.
    batch.Reset(0, matrix.feature_names.size());
  }
  return batch;
}

std::vector<std::vector<double>> PairBatch::ToRows() const {
  std::vector<std::vector<double>> rows(num_pairs_);
  for (size_t i = 0; i < num_pairs_; ++i) {
    rows[i].resize(num_features_);
    RowTo(i, rows[i].data());
  }
  return rows;
}

FeatureMatrix PairBatch::ToMatrix() const {
  FeatureMatrix m;
  m.feature_names = feature_names;
  m.rows = ToRows();
  return m;
}

}  // namespace emx
