#include "src/feature/vectorizer.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "src/text/tokenizer.h"

namespace emx {

std::unique_ptr<Tokenizer> TokenizerForSpec(const FeaturePrepSpec& spec) {
  if (!spec.tokenize) return nullptr;
  if (spec.qgram > 0) return std::make_unique<QgramTokenizer>(spec.qgram);
  return std::make_unique<WhitespaceTokenizer>();
}

namespace {

// Attribute columns a feature reads, resolved once; features with a prepared
// evaluator bind to PreparedColumns built once per (column, prep spec) —
// each record is prepped a single time no matter how many pairs it appears
// in.
struct Bound {
  const std::vector<Value>* lcol;
  const std::vector<Value>* rcol;
  std::shared_ptr<const PreparedColumn> lprep;  // null -> legacy fn
  std::shared_ptr<const PreparedColumn> rprep;
};

Result<std::vector<Bound>> BindFeatures(const Table& left, const Table& right,
                                        const FeatureSet& features,
                                        PrepCache& prep_cache,
                                        bool use_prepared) {
  std::vector<Bound> bound;
  bound.reserve(features.features.size());
  for (const Feature& f : features.features) {
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                         left.ColumnByName(f.left_attr));
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                         right.ColumnByName(f.right_attr));
    Bound b{lcol, rcol, nullptr, nullptr};
    if (use_prepared && f.has_prep()) {
      std::unique_ptr<Tokenizer> tok = TokenizerForSpec(f.prep);
      PrepOptions opts{f.prep.lowercase, /*strip_punctuation=*/false};
      b.lprep = prep_cache.Get(*lcol, opts, tok.get());
      b.rprep = prep_cache.Get(*rcol, opts, tok.get());
    }
    bound.push_back(std::move(b));
  }
  return bound;
}

Result<FeatureMatrix> VectorizeImpl(const Table& left, const Table& right,
                                    const CandidateSet& pairs,
                                    const FeatureSet& features,
                                    const ExecutorContext& ctx,
                                    PrepCache* cache, bool use_prepared) {
  PrepCache local_cache;
  PrepCache& prep_cache = cache != nullptr ? *cache : local_cache;
  EMX_ASSIGN_OR_RETURN(
      std::vector<Bound> bound,
      BindFeatures(left, right, features, prep_cache, use_prepared));

  const size_t width = features.features.size();
  FeatureMatrix m;
  m.feature_names = features.names();
  // The full pairs.size() x width shape is known here; size every row up
  // front and fill by index, rather than growing each row behind push_back.
  m.rows.resize(pairs.size());
  ctx.get().ParallelFor(0, pairs.size(), /*grain=*/0, [&](size_t lo,
                                                          size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      const RecordPair& p = pairs[r];
      std::vector<double>& row = m.rows[r];
      row.resize(width);
      for (size_t i = 0; i < width; ++i) {
        const Feature& f = features.features[i];
        if (bound[i].lprep != nullptr) {
          row[i] = f.prep_fn(*bound[i].lprep, p.left, *bound[i].rprep, p.right);
        } else {
          row[i] = f.fn((*bound[i].lcol)[p.left], (*bound[i].rcol)[p.right]);
        }
      }
    }
  });
  return m;
}

}  // namespace

Result<PairBatch> VectorizePairsBatch(const Table& left, const Table& right,
                                      const CandidateSet& pairs,
                                      const FeatureSet& features,
                                      const ExecutorContext& ctx,
                                      PrepCache* cache) {
  PrepCache local_cache;
  PrepCache& prep_cache = cache != nullptr ? *cache : local_cache;
  EMX_ASSIGN_OR_RETURN(
      std::vector<Bound> bound,
      BindFeatures(left, right, features, prep_cache, /*use_prepared=*/true));

  const size_t width = features.features.size();
  PairBatch batch(pairs.size(), width);
  batch.feature_names = features.names();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  // Feature-major within each chunk: every feature sweeps the chunk's lanes
  // before the next feature starts, writing its contiguous column slice.
  // Chunks are disjoint pair ranges, so any thread count writes the same
  // cells with the same values.
  ctx.get().ParallelFor(0, pairs.size(), /*grain=*/0, [&](size_t lo,
                                                          size_t hi) {
    // Gather/scatter staging for the batch kernels, reused across features
    // and chunks on this thread.
    thread_local std::vector<std::string_view> ga, gb;
    thread_local std::vector<double> scores;
    thread_local std::vector<uint32_t> lanes;
    for (size_t i = 0; i < width; ++i) {
      const Feature& f = features.features[i];
      double* col = batch.Column(i);
      const Bound& b = bound[i];
      if (b.lprep != nullptr && f.has_batch()) {
        // Null lanes score NaN directly; the rest gather into contiguous
        // view arrays for one batch-kernel call over the whole chunk.
        ga.clear();
        gb.clear();
        lanes.clear();
        for (size_t r = lo; r < hi; ++r) {
          const RecordPair& p = pairs[r];
          if (b.lprep->is_null(p.left) || b.rprep->is_null(p.right)) {
            col[r] = kNaN;
          } else {
            lanes.push_back(static_cast<uint32_t>(r));
            ga.push_back(b.lprep->text(p.left));
            gb.push_back(b.rprep->text(p.right));
          }
        }
        scores.resize(ga.size());
        f.batch_fn(ga.data(), gb.data(), ga.size(), scores.data());
        for (size_t k = 0; k < lanes.size(); ++k) col[lanes[k]] = scores[k];
      } else if (b.lprep != nullptr) {
        for (size_t r = lo; r < hi; ++r) {
          const RecordPair& p = pairs[r];
          col[r] = f.prep_fn(*b.lprep, p.left, *b.rprep, p.right);
        }
      } else {
        for (size_t r = lo; r < hi; ++r) {
          const RecordPair& p = pairs[r];
          col[r] = f.fn((*b.lcol)[p.left], (*b.rcol)[p.right]);
        }
      }
    }
  });
  return batch;
}

Result<FeatureMatrix> VectorizePairs(const Table& left, const Table& right,
                                     const CandidateSet& pairs,
                                     const FeatureSet& features,
                                     const ExecutorContext& ctx,
                                     PrepCache* cache) {
  EMX_ASSIGN_OR_RETURN(
      PairBatch batch,
      VectorizePairsBatch(left, right, pairs, features, ctx, cache));
  return batch.ToMatrix();
}

Result<FeatureMatrix> VectorizePairsUnprepared(const Table& left,
                                               const Table& right,
                                               const CandidateSet& pairs,
                                               const FeatureSet& features,
                                               const ExecutorContext& ctx) {
  return VectorizeImpl(left, right, pairs, features, ctx, /*cache=*/nullptr,
                       /*use_prepared=*/false);
}

void MeanImputer::Fit(const FeatureMatrix& matrix) {
  size_t w = matrix.num_features();
  means_.assign(w, 0.0);
  std::vector<size_t> counts(w, 0);
  for (const auto& row : matrix.rows) {
    for (size_t c = 0; c < w; ++c) {
      if (!std::isnan(row[c])) {
        means_[c] += row[c];
        ++counts[c];
      }
    }
  }
  for (size_t c = 0; c < w; ++c) {
    means_[c] = counts[c] > 0 ? means_[c] / static_cast<double>(counts[c]) : 0.0;
  }
}

void MeanImputer::Fit(const PairBatch& batch) {
  size_t w = batch.num_features();
  means_.assign(w, 0.0);
  for (size_t c = 0; c < w; ++c) {
    const double* col = batch.Column(c);
    double sum = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < batch.num_pairs(); ++i) {
      if (!std::isnan(col[i])) {
        sum += col[i];
        ++count;
      }
    }
    means_[c] = count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
}

Status MeanImputer::Transform(FeatureMatrix& matrix) const {
  if (matrix.num_features() != means_.size()) {
    return Status::InvalidArgument(
        "MeanImputer: matrix width " + std::to_string(matrix.num_features()) +
        " != fitted width " + std::to_string(means_.size()));
  }
  for (auto& row : matrix.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (std::isnan(row[c])) row[c] = means_[c];
    }
  }
  return Status::OK();
}

Status MeanImputer::Transform(PairBatch& batch) const {
  if (batch.num_features() != means_.size()) {
    return Status::InvalidArgument(
        "MeanImputer: batch width " + std::to_string(batch.num_features()) +
        " != fitted width " + std::to_string(means_.size()));
  }
  for (size_t c = 0; c < batch.num_features(); ++c) {
    double* col = batch.Column(c);
    for (size_t i = 0; i < batch.num_pairs(); ++i) {
      if (std::isnan(col[i])) col[i] = means_[c];
    }
  }
  return Status::OK();
}

}  // namespace emx
