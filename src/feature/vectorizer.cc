#include "src/feature/vectorizer.h"

#include <cmath>

namespace emx {

Result<FeatureMatrix> VectorizePairs(const Table& left, const Table& right,
                                     const CandidateSet& pairs,
                                     const FeatureSet& features,
                                     const ExecutorContext& ctx) {
  // Resolve attribute columns once.
  struct Bound {
    const std::vector<Value>* lcol;
    const std::vector<Value>* rcol;
  };
  std::vector<Bound> bound;
  bound.reserve(features.features.size());
  for (const Feature& f : features.features) {
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                         left.ColumnByName(f.left_attr));
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                         right.ColumnByName(f.right_attr));
    bound.push_back({lcol, rcol});
  }

  FeatureMatrix m;
  m.feature_names = features.names();
  m.rows.resize(pairs.size());
  ctx.get().ParallelFor(0, pairs.size(), /*grain=*/0, [&](size_t lo,
                                                          size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      const RecordPair& p = pairs[r];
      std::vector<double>& row = m.rows[r];
      row.reserve(features.features.size());
      for (size_t i = 0; i < features.features.size(); ++i) {
        row.push_back(features.features[i].fn((*bound[i].lcol)[p.left],
                                              (*bound[i].rcol)[p.right]));
      }
    }
  });
  return m;
}

void MeanImputer::Fit(const FeatureMatrix& matrix) {
  size_t w = matrix.num_features();
  means_.assign(w, 0.0);
  std::vector<size_t> counts(w, 0);
  for (const auto& row : matrix.rows) {
    for (size_t c = 0; c < w; ++c) {
      if (!std::isnan(row[c])) {
        means_[c] += row[c];
        ++counts[c];
      }
    }
  }
  for (size_t c = 0; c < w; ++c) {
    means_[c] = counts[c] > 0 ? means_[c] / static_cast<double>(counts[c]) : 0.0;
  }
}

Status MeanImputer::Transform(FeatureMatrix& matrix) const {
  if (matrix.num_features() != means_.size()) {
    return Status::InvalidArgument(
        "MeanImputer: matrix width " + std::to_string(matrix.num_features()) +
        " != fitted width " + std::to_string(means_.size()));
  }
  for (auto& row : matrix.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (std::isnan(row[c])) row[c] = means_[c];
    }
  }
  return Status::OK();
}

}  // namespace emx
