#include "src/feature/vectorizer.h"

#include <cmath>
#include <memory>

#include "src/text/tokenizer.h"

namespace emx {

namespace {

// The tokenizer a feature's prep spec asks for, or null for text-only prep.
std::unique_ptr<Tokenizer> TokenizerForSpec(const FeaturePrepSpec& spec) {
  if (!spec.tokenize) return nullptr;
  if (spec.qgram > 0) return std::make_unique<QgramTokenizer>(spec.qgram);
  return std::make_unique<WhitespaceTokenizer>();
}

Result<FeatureMatrix> VectorizeImpl(const Table& left, const Table& right,
                                    const CandidateSet& pairs,
                                    const FeatureSet& features,
                                    const ExecutorContext& ctx,
                                    PrepCache* cache, bool use_prepared) {
  // Resolve attribute columns once; features with a prepared evaluator bind
  // to PreparedColumns built once per (column, prep spec) — each record is
  // prepped a single time no matter how many pairs it appears in.
  struct Bound {
    const std::vector<Value>* lcol;
    const std::vector<Value>* rcol;
    std::shared_ptr<const PreparedColumn> lprep;  // null -> legacy fn
    std::shared_ptr<const PreparedColumn> rprep;
  };
  PrepCache local_cache;
  PrepCache& prep_cache = cache != nullptr ? *cache : local_cache;
  std::vector<Bound> bound;
  bound.reserve(features.features.size());
  for (const Feature& f : features.features) {
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* lcol,
                         left.ColumnByName(f.left_attr));
    EMX_ASSIGN_OR_RETURN(const std::vector<Value>* rcol,
                         right.ColumnByName(f.right_attr));
    Bound b{lcol, rcol, nullptr, nullptr};
    if (use_prepared && f.has_prep()) {
      std::unique_ptr<Tokenizer> tok = TokenizerForSpec(f.prep);
      PrepOptions opts{f.prep.lowercase, /*strip_punctuation=*/false};
      b.lprep = prep_cache.Get(*lcol, opts, tok.get());
      b.rprep = prep_cache.Get(*rcol, opts, tok.get());
    }
    bound.push_back(std::move(b));
  }

  FeatureMatrix m;
  m.feature_names = features.names();
  m.rows.resize(pairs.size());
  ctx.get().ParallelFor(0, pairs.size(), /*grain=*/0, [&](size_t lo,
                                                          size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      const RecordPair& p = pairs[r];
      std::vector<double>& row = m.rows[r];
      row.reserve(features.features.size());
      for (size_t i = 0; i < features.features.size(); ++i) {
        const Feature& f = features.features[i];
        if (bound[i].lprep != nullptr) {
          row.push_back(
              f.prep_fn(*bound[i].lprep, p.left, *bound[i].rprep, p.right));
        } else {
          row.push_back(
              f.fn((*bound[i].lcol)[p.left], (*bound[i].rcol)[p.right]));
        }
      }
    }
  });
  return m;
}

}  // namespace

Result<FeatureMatrix> VectorizePairs(const Table& left, const Table& right,
                                     const CandidateSet& pairs,
                                     const FeatureSet& features,
                                     const ExecutorContext& ctx,
                                     PrepCache* cache) {
  return VectorizeImpl(left, right, pairs, features, ctx, cache,
                       /*use_prepared=*/true);
}

Result<FeatureMatrix> VectorizePairsUnprepared(const Table& left,
                                               const Table& right,
                                               const CandidateSet& pairs,
                                               const FeatureSet& features,
                                               const ExecutorContext& ctx) {
  return VectorizeImpl(left, right, pairs, features, ctx, /*cache=*/nullptr,
                       /*use_prepared=*/false);
}

void MeanImputer::Fit(const FeatureMatrix& matrix) {
  size_t w = matrix.num_features();
  means_.assign(w, 0.0);
  std::vector<size_t> counts(w, 0);
  for (const auto& row : matrix.rows) {
    for (size_t c = 0; c < w; ++c) {
      if (!std::isnan(row[c])) {
        means_[c] += row[c];
        ++counts[c];
      }
    }
  }
  for (size_t c = 0; c < w; ++c) {
    means_[c] = counts[c] > 0 ? means_[c] / static_cast<double>(counts[c]) : 0.0;
  }
}

Status MeanImputer::Transform(FeatureMatrix& matrix) const {
  if (matrix.num_features() != means_.size()) {
    return Status::InvalidArgument(
        "MeanImputer: matrix width " + std::to_string(matrix.num_features()) +
        " != fitted width " + std::to_string(means_.size()));
  }
  for (auto& row : matrix.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (std::isnan(row[c])) row[c] = means_[c];
    }
  }
  return Status::OK();
}

}  // namespace emx
