#ifndef EMX_FEATURE_FEATURE_H_
#define EMX_FEATURE_FEATURE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/table/value.h"

namespace emx {

// One pairwise feature: compares a left-table attribute against a
// right-table attribute and yields a double (NaN when either side is null —
// downstream, the Imputer fills NaNs with column means, exactly the paper's
// missing-value handling in §9).
struct Feature {
  std::string name;        // e.g. "AwardTitle_jac_ws"
  std::string left_attr;
  std::string right_attr;
  std::function<double(const Value&, const Value&)> fn;
};

// Named similarity-function factories. `lowercase` pre-lowercases both
// sides — the "case fix" features added while debugging the matcher in §9.
Feature MakeExactMatchFeature(const std::string& left_attr,
                              const std::string& right_attr,
                              bool lowercase = false);
Feature MakeLevenshteinFeature(const std::string& left_attr,
                               const std::string& right_attr,
                               bool lowercase = false);
Feature MakeJaroFeature(const std::string& left_attr,
                        const std::string& right_attr,
                        bool lowercase = false);
Feature MakeJaroWinklerFeature(const std::string& left_attr,
                               const std::string& right_attr,
                               bool lowercase = false);
Feature MakeNeedlemanWunschFeature(const std::string& left_attr,
                                   const std::string& right_attr,
                                   bool lowercase = false);
Feature MakeSmithWatermanFeature(const std::string& left_attr,
                                 const std::string& right_attr,
                                 bool lowercase = false);

// Token-set features; `qgram` <= 0 means whitespace tokens, otherwise
// character q-grams of that size.
Feature MakeJaccardFeature(const std::string& left_attr,
                           const std::string& right_attr, int qgram = 0,
                           bool lowercase = false);
Feature MakeCosineFeature(const std::string& left_attr,
                          const std::string& right_attr, int qgram = 0,
                          bool lowercase = false);
Feature MakeDiceFeature(const std::string& left_attr,
                        const std::string& right_attr, int qgram = 0,
                        bool lowercase = false);
Feature MakeOverlapCoefficientFeature(const std::string& left_attr,
                                      const std::string& right_attr,
                                      int qgram = 0, bool lowercase = false);
Feature MakeMongeElkanFeature(const std::string& left_attr,
                              const std::string& right_attr,
                              bool lowercase = false);

// Numeric features.
Feature MakeAbsDiffFeature(const std::string& left_attr,
                           const std::string& right_attr);
Feature MakeRelativeSimFeature(const std::string& left_attr,
                               const std::string& right_attr);
Feature MakeNumericExactFeature(const std::string& left_attr,
                                const std::string& right_attr);

// Year difference between two date-like strings (leading 4-digit year or
// trailing 4-digit year); NaN if either year cannot be extracted. Used for
// the D3 label-debugging rule ("transaction dates within a few years", §8).
Feature MakeYearDiffFeature(const std::string& left_attr,
                            const std::string& right_attr);

}  // namespace emx

#endif  // EMX_FEATURE_FEATURE_H_
