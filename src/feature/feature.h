#ifndef EMX_FEATURE_FEATURE_H_
#define EMX_FEATURE_FEATURE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/prep/prepared_column.h"
#include "src/table/value.h"

namespace emx {

// What a feature needs prepped per column to evaluate through the cached
// path: the normalization, and (for token features) the tokenization.
struct FeaturePrepSpec {
  bool lowercase = false;
  bool tokenize = false;  // token-level feature (set kernels / Monge-Elkan)
  int qgram = 0;          // when tokenizing: <= 0 whitespace, else q-grams
};

// One pairwise feature: compares a left-table attribute against a
// right-table attribute and yields a double (NaN when either side is null —
// downstream, the Imputer fills NaNs with column means, exactly the paper's
// missing-value handling in §9).
//
// Every feature carries the legacy per-pair `fn` (re-normalizes and
// re-tokenizes both values on every call — still the right tool for
// one-off evaluations, rules, and tests). String/token features
// ADDITIONALLY carry `prep_fn` plus the `prep` spec describing the cached
// representation it reads: VectorizePairs preps each referenced column
// once per spec and evaluates pairs against PreparedColumns — same doubles,
// bit for bit, with no per-pair allocation. Both PreparedColumns passed to
// one prep_fn call must come from the SAME PrepCache (shared interner).
struct Feature {
  // Columnar scorer: out[i] = score of (a[i], b[i]) for n contiguous lanes
  // of already-normalized text. Plain function pointer — every batch kernel
  // is a stateless free function from src/text/batch_kernel.h.
  using BatchScoreFn = void (*)(const std::string_view* a,
                                const std::string_view* b, size_t n,
                                double* out);

  std::string name;        // e.g. "AwardTitle_jac_ws"
  std::string left_attr;
  std::string right_attr;
  std::function<double(const Value&, const Value&)> fn;
  FeaturePrepSpec prep;    // meaningful only when prep_fn is set
  std::function<double(const PreparedColumn&, size_t, const PreparedColumn&,
                       size_t)>
      prep_fn;             // empty for numeric/date features
  BatchScoreFn batch_fn = nullptr;  // set for character-sequence features;
                                    // bit-identical to prep_fn per lane

  bool has_prep() const { return static_cast<bool>(prep_fn); }
  bool has_batch() const { return batch_fn != nullptr; }
};

// Named similarity-function factories. `lowercase` pre-lowercases both
// sides — the "case fix" features added while debugging the matcher in §9.
Feature MakeExactMatchFeature(const std::string& left_attr,
                              const std::string& right_attr,
                              bool lowercase = false);
Feature MakeLevenshteinFeature(const std::string& left_attr,
                               const std::string& right_attr,
                               bool lowercase = false);
Feature MakeJaroFeature(const std::string& left_attr,
                        const std::string& right_attr,
                        bool lowercase = false);
Feature MakeJaroWinklerFeature(const std::string& left_attr,
                               const std::string& right_attr,
                               bool lowercase = false);
Feature MakeNeedlemanWunschFeature(const std::string& left_attr,
                                   const std::string& right_attr,
                                   bool lowercase = false);
Feature MakeSmithWatermanFeature(const std::string& left_attr,
                                 const std::string& right_attr,
                                 bool lowercase = false);
// Affine-gap alignment (Gotoh) — the only sequence measure that scores a
// single long insertion ("Smith, J" vs "Smith, John R") above scattered
// edits; useful for person-name attributes. Scratch-backed like the rest of
// the sequence kernels.
Feature MakeAffineGapFeature(const std::string& left_attr,
                             const std::string& right_attr,
                             bool lowercase = false);

// Token-set features; `qgram` <= 0 means whitespace tokens, otherwise
// character q-grams of that size.
Feature MakeJaccardFeature(const std::string& left_attr,
                           const std::string& right_attr, int qgram = 0,
                           bool lowercase = false);
Feature MakeCosineFeature(const std::string& left_attr,
                          const std::string& right_attr, int qgram = 0,
                          bool lowercase = false);
Feature MakeDiceFeature(const std::string& left_attr,
                        const std::string& right_attr, int qgram = 0,
                        bool lowercase = false);
Feature MakeOverlapCoefficientFeature(const std::string& left_attr,
                                      const std::string& right_attr,
                                      int qgram = 0, bool lowercase = false);
Feature MakeMongeElkanFeature(const std::string& left_attr,
                              const std::string& right_attr,
                              bool lowercase = false);

// Numeric features.
Feature MakeAbsDiffFeature(const std::string& left_attr,
                           const std::string& right_attr);
Feature MakeRelativeSimFeature(const std::string& left_attr,
                               const std::string& right_attr);
Feature MakeNumericExactFeature(const std::string& left_attr,
                                const std::string& right_attr);

// Year difference between two date-like strings (leading 4-digit year or
// trailing 4-digit year); NaN if either year cannot be extracted. Used for
// the D3 label-debugging rule ("transaction dates within a few years", §8).
Feature MakeYearDiffFeature(const std::string& left_attr,
                            const std::string& right_attr);

}  // namespace emx

#endif  // EMX_FEATURE_FEATURE_H_
