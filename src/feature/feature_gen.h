#ifndef EMX_FEATURE_FEATURE_GEN_H_
#define EMX_FEATURE_FEATURE_GEN_H_

#include <string>
#include <vector>

#include "src/core/result.h"
#include "src/feature/feature.h"
#include "src/table/table.h"

namespace emx {

struct FeatureGenOptions {
  // Columns never used for features (ids, bookkeeping columns).
  std::vector<std::string> exclude;
  // Attributes for which case-insensitive ("lc_") variants are ALSO
  // generated — the §9 debugging fix for titles differing only in case.
  std::vector<std::string> lowercase_variants;
};

// A generated feature set plus its provenance.
struct FeatureSet {
  std::vector<Feature> features;

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(features.size());
    for (const auto& f : features) out.push_back(f.name);
    return out;
  }
};

// Magellan-style automatic feature generation (footnote 7): for every
// attribute name shared by `left` and `right` (minus excluded ones), infer
// the attribute kind from the data of both tables and emit the measure set
// appropriate for that kind:
//   numeric       -> numeric exact, abs diff, relative sim
//   boolean       -> numeric exact
//   short string  -> exact, lev, jaro, jaro-winkler, jaccard(qg3)
//   medium string -> jaccard(qg3), jaccard(ws), cosine(ws), monge-elkan, lev
//   long string   -> jaccard(qg3), jaccard(ws), cosine(ws), overlap-coeff(ws),
//                    monge-elkan
//   very long     -> jaccard(qg3), cosine(ws), overlap-coeff(ws), dice(ws)
Result<FeatureSet> GenerateFeatures(const Table& left, const Table& right,
                                    const FeatureGenOptions& options = {});

// Feature matrix: one row per record pair, one column per feature; missing
// comparisons are NaN until imputed.
struct FeatureMatrix {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_features() const { return feature_names.size(); }
};

}  // namespace emx

#endif  // EMX_FEATURE_FEATURE_GEN_H_
