#ifndef EMX_FEATURE_VECTORIZER_H_
#define EMX_FEATURE_VECTORIZER_H_

#include <memory>

#include "src/block/candidate_set.h"
#include "src/core/executor.h"
#include "src/core/result.h"
#include "src/feature/feature_gen.h"
#include "src/feature/pair_batch.h"
#include "src/table/table.h"
#include "src/text/tokenizer.h"

namespace emx {

// The tokenizer a feature's prep spec asks for, or null for text-only
// prep. Exported so MatchService preps its resident corpus segments with
// EXACTLY the tokenization the batch vectorizer would use — one source of
// truth for the spec → tokenizer mapping.
std::unique_ptr<Tokenizer> TokenizerForSpec(const FeaturePrepSpec& spec);

// Converts each candidate record pair into a feature vector by evaluating
// every feature of `features` on the pair's attribute values (§9: "we used
// these features to convert each record pair into a feature vector").
// Row i of the result corresponds to pairs[i]; missing comparisons are NaN.
//
// Before the pair loop, every (column, prep spec) a feature references is
// prepped ONCE through `cache` (or a call-local cache when null):
// normalization, tokenization, and token-id spans are computed per RECORD,
// not per (pair × feature) as the legacy path did — the evaluation loop is
// then allocation-free merge kernels over cached spans. Results are
// bit-identical to the legacy path (asserted by token_kernel_test).
//
// Rows are filled in parallel on `ctx`'s executor — each row is an
// independent pure computation over (pairs[i], features), so the matrix is
// identical at any thread count. Feature fns must be thread-safe (all
// built-in similarity features are pure).
Result<FeatureMatrix> VectorizePairs(const Table& left, const Table& right,
                                     const CandidateSet& pairs,
                                     const FeatureSet& features,
                                     const ExecutorContext& ctx = {},
                                     PrepCache* cache = nullptr);

// The columnar hot path: same prep and the same doubles as VectorizePairs
// (bit for bit), but the result is a structure-of-arrays PairBatch and the
// evaluation loop runs FEATURE-major within each executor chunk — features
// with a batch kernel (the character-sequence measures) score a whole
// chunk's worth of contiguous lanes per call through batch_kernel.h instead
// of one pair at a time. VectorizePairs is a thin transpose over this.
Result<PairBatch> VectorizePairsBatch(const Table& left, const Table& right,
                                      const CandidateSet& pairs,
                                      const FeatureSet& features,
                                      const ExecutorContext& ctx = {},
                                      PrepCache* cache = nullptr);

// Forces every feature through its legacy per-pair Value fn, bypassing
// prepared columns entirely. Equivalence oracle for tests and the
// before/after measurement in bench_vectorize — not a production path.
Result<FeatureMatrix> VectorizePairsUnprepared(const Table& left,
                                               const Table& right,
                                               const CandidateSet& pairs,
                                               const FeatureSet& features,
                                               const ExecutorContext& ctx = {});

// Mean imputation fitted on a training matrix, applied to any matrix with
// the same feature columns — PyMatcher fills missing feature values with
// the column mean before scikit-learn sees them (§9).
class MeanImputer {
 public:
  MeanImputer() = default;

  // Learns per-column means over non-NaN entries. Columns that are all-NaN
  // get mean 0. The PairBatch overload accumulates each column in the same
  // ascending-pair order as the row-major walk — identical means.
  void Fit(const FeatureMatrix& matrix);
  void Fit(const PairBatch& batch);

  // Replaces NaNs with the fitted means, in place. Fails if widths differ.
  Status Transform(FeatureMatrix& matrix) const;
  Status Transform(PairBatch& batch) const;

  const std::vector<double>& means() const { return means_; }

 private:
  std::vector<double> means_;
};

}  // namespace emx

#endif  // EMX_FEATURE_VECTORIZER_H_
