#include "src/rules/number_pattern.h"

#include "src/core/strings.h"

namespace emx {

std::string PatternSignature(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  // Leading 4-digit year group.
  if (s.size() >= 4 && IsAllDigits(s.substr(0, 4)) &&
      (s.size() == 4 || !(s[4] >= '0' && s[4] <= '9'))) {
    int year = (s[0] - '0') * 1000 + (s[1] - '0') * 100 + (s[2] - '0') * 10 +
               (s[3] - '0');
    if (year >= 1900 && year <= 2100) {
      out += "YYYY";
      i = 4;
    }
  }
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c >= '0' && c <= '9') {
      out += '#';
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
      out += 'X';
    } else {
      out += c;
    }
  }
  return out;
}

bool ArePatternComparable(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return false;
  return PatternSignature(a) == PatternSignature(b);
}

std::string AwardNumberSuffix(const std::string& unique_award_number) {
  for (size_t i = 0; i < unique_award_number.size(); ++i) {
    char c = unique_award_number[i];
    if (c == ' ' || c == '\t') {
      std::string_view rest(unique_award_number);
      return std::string(StripWhitespace(rest.substr(i + 1)));
    }
  }
  return unique_award_number;
}

}  // namespace emx
