#ifndef EMX_RULES_NUMBER_PATTERN_H_
#define EMX_RULES_NUMBER_PATTERN_H_

#include <string>
#include <string_view>

namespace emx {

// Derives the shape signature of an award/project number the way the
// UMETRICS team described "comparable" numbers (§12): digits become '#',
// letters become 'X', separators are kept verbatim, and a leading 4-digit
// group parsing to a plausible year becomes "YYYY".
//
//   "03-CS-112313000-031"  -> "##-XX-#########-###"
//   "2001-34101-10526"     -> "YYYY-#####-#####"
//   "WIS01560"             -> "XXX#####"
std::string PatternSignature(std::string_view s);

// Two numbers are comparable iff they share a pattern signature; the §12
// negative rule only fires on comparable-but-unequal values.
bool ArePatternComparable(std::string_view a, std::string_view b);

// The UMETRICS "UniqueAwardNumber" takes the form
// "XX.XXX YYYY-YYYY-YYYYY-YYYYY"; M1 compares its part after the first
// whitespace against the USDA award number. Returns the suffix (the whole
// string when no whitespace is present).
std::string AwardNumberSuffix(const std::string& unique_award_number);

}  // namespace emx

#endif  // EMX_RULES_NUMBER_PATTERN_H_
