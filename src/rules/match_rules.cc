#include "src/rules/match_rules.h"

#include "src/rules/number_pattern.h"
#include "src/text/sequence_kernel.h"

namespace emx {

namespace {

// Resolves both attribute values as (possibly transformed) strings; returns
// false when either is null/empty.
bool GetPairValues(
    const Table& left, size_t lrow, const std::string& left_attr,
    const Table& right, size_t rrow, const std::string& right_attr,
    const std::function<std::string(const std::string&)>& lt,
    const std::function<std::string(const std::string&)>& rt,
    std::string* lv, std::string* rv) {
  const Value& a = left.at(lrow, left_attr);
  const Value& b = right.at(rrow, right_attr);
  if (a.is_null() || b.is_null()) return false;
  *lv = a.AsString();
  *rv = b.AsString();
  if (lt) *lv = lt(*lv);
  if (rt) *rv = rt(*rv);
  return !lv->empty() && !rv->empty();
}

}  // namespace

MatchRule MakeEqualityRule(
    const std::string& rule_name, const std::string& left_attr,
    const std::string& right_attr,
    std::function<std::string(const std::string&)> left_transform,
    std::function<std::string(const std::string&)> right_transform) {
  return {rule_name,
          [=](const Table& l, size_t lr, const Table& r, size_t rr) {
            std::string lv, rv;
            if (!GetPairValues(l, lr, left_attr, r, rr, right_attr,
                               left_transform, right_transform, &lv, &rv)) {
              return false;
            }
            return lv == rv;
          }};
}

MatchRule MakeM1AwardNumberRule(const std::string& left_award_attr,
                                const std::string& right_award_attr) {
  return MakeEqualityRule(
      "M1_award_number", left_award_attr, right_award_attr,
      [](const std::string& s) { return AwardNumberSuffix(s); }, nullptr);
}

MatchRule MakeAwardProjectNumberRule(const std::string& left_award_attr,
                                     const std::string& right_project_attr) {
  return MakeEqualityRule(
      "M4_award_eq_project_number", left_award_attr, right_project_attr,
      [](const std::string& s) { return AwardNumberSuffix(s); }, nullptr);
}

MatchRule MakeLevenshteinRule(
    const std::string& rule_name, const std::string& left_attr,
    const std::string& right_attr, double min_sim,
    std::function<std::string(const std::string&)> left_transform,
    std::function<std::string(const std::string&)> right_transform) {
  return {rule_name,
          [=](const Table& l, size_t lr, const Table& r, size_t rr) {
            std::string lv, rv;
            if (!GetPairValues(l, lr, left_attr, r, rr, right_attr,
                               left_transform, right_transform, &lv, &rv)) {
              return false;
            }
            // Length-bound short-circuit + banded kernel: exactly
            // LevenshteinSimilarity(lv, rv) >= min_sim, without computing
            // the full distance for pairs the bound already rejects.
            return LevenshteinSimilarityAtLeast(lv, rv, min_sim);
          }};
}

MatchRule MakeComparableMismatchRule(
    const std::string& rule_name, const std::string& left_attr,
    const std::string& right_attr,
    std::function<std::string(const std::string&)> left_transform,
    std::function<std::string(const std::string&)> right_transform) {
  return {rule_name,
          [=](const Table& l, size_t lr, const Table& r, size_t rr) {
            std::string lv, rv;
            if (!GetPairValues(l, lr, left_attr, r, rr, right_attr,
                               left_transform, right_transform, &lv, &rv)) {
              return false;
            }
            return ArePatternComparable(lv, rv) && lv != rv;
          }};
}

Result<CandidateSet> ApplyRulesCartesian(const std::vector<MatchRule>& rules,
                                         const Table& left,
                                         const Table& right) {
  std::vector<RecordPair> out;
  for (size_t l = 0; l < left.num_rows(); ++l) {
    for (size_t r = 0; r < right.num_rows(); ++r) {
      for (const MatchRule& rule : rules) {
        if (rule.fires(left, l, right, r)) {
          out.push_back({static_cast<uint32_t>(l), static_cast<uint32_t>(r)});
          break;
        }
      }
    }
  }
  return CandidateSet(std::move(out));
}

Result<CandidateSet> ApplyRulesToPairs(const std::vector<MatchRule>& rules,
                                       const Table& left, const Table& right,
                                       const CandidateSet& pairs) {
  std::vector<RecordPair> out;
  for (const RecordPair& p : pairs) {
    for (const MatchRule& rule : rules) {
      if (rule.fires(left, p.left, right, p.right)) {
        out.push_back(p);
        break;
      }
    }
  }
  return CandidateSet(std::move(out));
}

Result<CandidateSet> FilterWithNegativeRules(
    const std::vector<MatchRule>& negative_rules, const Table& left,
    const Table& right, const CandidateSet& matches, CandidateSet* flipped) {
  std::vector<RecordPair> kept, removed;
  for (const RecordPair& p : matches) {
    bool fired = false;
    for (const MatchRule& rule : negative_rules) {
      if (rule.fires(left, p.left, right, p.right)) {
        fired = true;
        break;
      }
    }
    (fired ? removed : kept).push_back(p);
  }
  if (flipped != nullptr) *flipped = CandidateSet(std::move(removed));
  return CandidateSet(std::move(kept));
}

}  // namespace emx
