#ifndef EMX_RULES_MATCH_RULES_H_
#define EMX_RULES_MATCH_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/block/candidate_set.h"
#include "src/core/result.h"
#include "src/table/table.h"

namespace emx {

// A hand-crafted rule over a record pair. Positive rules declare sure
// matches (M1, and §10's award-number = project-number rule); negative
// rules flip predicted matches to non-matches (§12).
struct MatchRule {
  std::string name;
  std::function<bool(const Table& left, size_t left_row, const Table& right,
                     size_t right_row)>
      fires;
};

// --- Positive rule factories -------------------------------------------

// Fires when transform(left[left_attr]) == right[right_attr], both sides
// non-null/non-empty. With the AwardNumberSuffix transform this is exactly
// M1.
MatchRule MakeEqualityRule(
    const std::string& rule_name, const std::string& left_attr,
    const std::string& right_attr,
    std::function<std::string(const std::string&)> left_transform = nullptr,
    std::function<std::string(const std::string&)> right_transform = nullptr);

// M1: suffix of the UMETRICS UniqueAwardNumber equals the USDA AwardNumber.
MatchRule MakeM1AwardNumberRule(const std::string& left_award_attr,
                                const std::string& right_award_attr);

// §10 positive rule: UMETRICS award number (suffix) equals USDA project
// number.
MatchRule MakeAwardProjectNumberRule(const std::string& left_award_attr,
                                     const std::string& right_project_attr);

// Fires when LevenshteinSimilarity(transform(left), transform(right)) >=
// `min_sim`, both sides non-null/non-empty. The predicate short-circuits on
// the exact length bound (distance >= |length difference|, so a big length
// gap alone can rule the pair out with NO DP) and otherwise runs the banded
// bit-parallel kernel with an exact cutoff — the decision is identical to
// scoring the full similarity and comparing, just much cheaper on the
// non-matches that dominate rule scans.
MatchRule MakeLevenshteinRule(
    const std::string& rule_name, const std::string& left_attr,
    const std::string& right_attr, double min_sim,
    std::function<std::string(const std::string&)> left_transform = nullptr,
    std::function<std::string(const std::string&)> right_transform = nullptr);

// --- Negative rule factories -------------------------------------------

// §12 negative rule: fires (meaning NON-match) when the two attributes are
// pattern-comparable but unequal. Optional transforms mirror the positive
// rules.
MatchRule MakeComparableMismatchRule(
    const std::string& rule_name, const std::string& left_attr,
    const std::string& right_attr,
    std::function<std::string(const std::string&)> left_transform = nullptr,
    std::function<std::string(const std::string&)> right_transform = nullptr);

// --- Application helpers ------------------------------------------------

// Pairs of A × B where any rule fires. Equality-style rules at this scale
// run fine on the Cartesian product; the blockers exist for larger inputs.
Result<CandidateSet> ApplyRulesCartesian(const std::vector<MatchRule>& rules,
                                         const Table& left,
                                         const Table& right);

// Pairs of `pairs` where any rule fires.
Result<CandidateSet> ApplyRulesToPairs(const std::vector<MatchRule>& rules,
                                       const Table& left, const Table& right,
                                       const CandidateSet& pairs);

// Removes from `matches` every pair where any negative rule fires;
// `flipped` (optional) receives the removed pairs.
Result<CandidateSet> FilterWithNegativeRules(
    const std::vector<MatchRule>& negative_rules, const Table& left,
    const Table& right, const CandidateSet& matches,
    CandidateSet* flipped = nullptr);

}  // namespace emx

#endif  // EMX_RULES_MATCH_RULES_H_
