#include "src/rules/feature_rules.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "src/core/strings.h"

namespace emx {

bool FeaturePredicate::Holds(double value) const {
  if (std::isnan(value)) return false;
  switch (op) {
    case Op::kGt:
      return value > threshold;
    case Op::kGe:
      return value >= threshold;
    case Op::kLt:
      return value < threshold;
    case Op::kLe:
      return value <= threshold;
    case Op::kEq:
      return value == threshold;
    case Op::kNe:
      return value != threshold;
  }
  return false;
}

namespace {

Result<FeaturePredicate::Op> ParseOp(const std::string& tok) {
  using Op = FeaturePredicate::Op;
  if (tok == ">") return Op::kGt;
  if (tok == ">=") return Op::kGe;
  if (tok == "<") return Op::kLt;
  if (tok == "<=") return Op::kLe;
  if (tok == "==") return Op::kEq;
  if (tok == "!=") return Op::kNe;
  return Status::InvalidArgument("unknown operator '" + tok + "'");
}

}  // namespace

Result<FeatureRule> ParseFeatureRule(const std::string& name,
                                     const std::string& expression) {
  FeatureRule rule;
  rule.name = name;
  std::vector<std::string> tokens = SplitWhitespace(expression);
  // Grammar: predicate (AND predicate)*, predicate = ident op number.
  size_t i = 0;
  while (i < tokens.size()) {
    if (i + 2 >= tokens.size()) {
      return Status::InvalidArgument(
          "truncated predicate near token " + std::to_string(i) + " in '" +
          expression + "'");
    }
    FeaturePredicate pred;
    pred.feature = tokens[i];
    EMX_ASSIGN_OR_RETURN(pred.op, ParseOp(tokens[i + 1]));
    char* end = nullptr;
    pred.threshold = std::strtod(tokens[i + 2].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad threshold '" + tokens[i + 2] + "'");
    }
    rule.predicates.push_back(std::move(pred));
    i += 3;
    if (i == tokens.size()) break;
    if (tokens[i] != "AND") {
      return Status::InvalidArgument("expected AND, found '" + tokens[i] +
                                     "'");
    }
    ++i;
    if (i == tokens.size()) {
      return Status::InvalidArgument("dangling AND in '" + expression + "'");
    }
  }
  if (rule.predicates.empty()) {
    return Status::InvalidArgument("empty rule expression");
  }
  return rule;
}

Status FeatureRuleMatcher::AddRule(const std::string& name,
                                   const std::string& expression) {
  EMX_ASSIGN_OR_RETURN(FeatureRule rule, ParseFeatureRule(name, expression));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Result<std::vector<int>> FeatureRuleMatcher::Predict(
    const FeatureMatrix& matrix) const {
  EMX_ASSIGN_OR_RETURN(std::vector<int> firing, FiringRule(matrix));
  std::vector<int> out(firing.size());
  for (size_t i = 0; i < firing.size(); ++i) out[i] = firing[i] >= 0 ? 1 : 0;
  return out;
}

Result<std::vector<int>> FeatureRuleMatcher::FiringRule(
    const FeatureMatrix& matrix) const {
  // Resolve feature names to column indices once.
  std::vector<std::vector<std::pair<size_t, const FeaturePredicate*>>> bound(
      rules_.size());
  for (size_t r = 0; r < rules_.size(); ++r) {
    for (const FeaturePredicate& pred : rules_[r].predicates) {
      size_t col = matrix.feature_names.size();
      for (size_t c = 0; c < matrix.feature_names.size(); ++c) {
        if (matrix.feature_names[c] == pred.feature) {
          col = c;
          break;
        }
      }
      if (col == matrix.feature_names.size()) {
        return Status::NotFound("rule '" + rules_[r].name +
                                "' references unknown feature '" +
                                pred.feature + "'");
      }
      bound[r].push_back({col, &pred});
    }
  }

  std::vector<int> out(matrix.num_rows(), -1);
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    for (size_t r = 0; r < rules_.size(); ++r) {
      bool all = true;
      for (const auto& [col, pred] : bound[r]) {
        if (!pred->Holds(matrix.rows[i][col])) {
          all = false;
          break;
        }
      }
      if (all) {
        out[i] = static_cast<int>(r);
        break;
      }
    }
  }
  return out;
}

Result<std::vector<int>> FeatureRuleMatcher::Predict(
    const PairBatch& batch) const {
  EMX_ASSIGN_OR_RETURN(std::vector<int> firing, FiringRule(batch));
  std::vector<int> out(firing.size());
  for (size_t i = 0; i < firing.size(); ++i) out[i] = firing[i] >= 0 ? 1 : 0;
  return out;
}

Result<std::vector<int>> FeatureRuleMatcher::FiringRule(
    const PairBatch& batch) const {
  std::vector<std::vector<std::pair<const double*, const FeaturePredicate*>>>
      bound(rules_.size());
  for (size_t r = 0; r < rules_.size(); ++r) {
    for (const FeaturePredicate& pred : rules_[r].predicates) {
      size_t col = batch.feature_names.size();
      for (size_t c = 0; c < batch.feature_names.size(); ++c) {
        if (batch.feature_names[c] == pred.feature) {
          col = c;
          break;
        }
      }
      if (col == batch.feature_names.size()) {
        return Status::NotFound("rule '" + rules_[r].name +
                                "' references unknown feature '" +
                                pred.feature + "'");
      }
      bound[r].push_back({batch.Column(col), &pred});
    }
  }

  // Rule-major over contiguous columns: rule r only claims pairs no earlier
  // rule fired on, so the result is the row-major first-firing-rule vector.
  std::vector<int> out(batch.num_pairs(), -1);
  std::vector<uint8_t> holds(batch.num_pairs());
  for (size_t r = 0; r < rules_.size(); ++r) {
    std::fill(holds.begin(), holds.end(), uint8_t{1});
    for (const auto& [col, pred] : bound[r]) {
      for (size_t i = 0; i < batch.num_pairs(); ++i) {
        if (holds[i] && !pred->Holds(col[i])) holds[i] = 0;
      }
    }
    for (size_t i = 0; i < batch.num_pairs(); ++i) {
      if (holds[i] && out[i] < 0) out[i] = static_cast<int>(r);
    }
  }
  return out;
}

}  // namespace emx
