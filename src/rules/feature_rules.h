#ifndef EMX_RULES_FEATURE_RULES_H_
#define EMX_RULES_FEATURE_RULES_H_

#include <string>
#include <vector>

#include "src/core/result.h"
#include "src/feature/feature_gen.h"
#include "src/feature/pair_batch.h"

namespace emx {

// PyMatcher-style declarative matching rules over *generated features*:
// conjunctions of threshold predicates, e.g.
//
//   "lc_AwardTitle_jac_ws > 0.8 AND FirstTransDate_yeardiff <= 2"
//
// A FeatureRuleMatcher holds a disjunction of such rules: a pair is
// declared a match iff ANY rule's predicates all hold. This is the
// "hand-crafted rules" half of the paper's learning+rules hybrid, in the
// form Magellan users actually write them (boolean expressions over the
// auto-generated feature table).

struct FeaturePredicate {
  enum class Op { kGt, kGe, kLt, kLe, kEq, kNe };
  std::string feature;
  Op op = Op::kGt;
  double threshold = 0.0;

  // False when `value` is NaN: a missing comparison never satisfies a
  // predicate.
  bool Holds(double value) const;
};

struct FeatureRule {
  std::string name;
  std::vector<FeaturePredicate> predicates;  // conjunction
};

// Parses "feat > 0.5 AND other <= 2" (operators: > >= < <= == !=,
// conjunction keyword AND, case-sensitive feature names). Returns
// InvalidArgument with a position hint on malformed input.
Result<FeatureRule> ParseFeatureRule(const std::string& name,
                                     const std::string& expression);

class FeatureRuleMatcher {
 public:
  FeatureRuleMatcher() = default;

  void AddRule(FeatureRule rule) { rules_.push_back(std::move(rule)); }

  // Convenience: parse-and-add.
  Status AddRule(const std::string& name, const std::string& expression);

  size_t num_rules() const { return rules_.size(); }

  // 1 for rows where any rule fires, else 0. Fails if a rule references a
  // feature column absent from `matrix`.
  Result<std::vector<int>> Predict(const FeatureMatrix& matrix) const;

  // Index of the first rule that fires per row (-1 when none does) — rule
  // provenance for debugging.
  Result<std::vector<int>> FiringRule(const FeatureMatrix& matrix) const;

  // Columnar equivalents: predicates sweep contiguous feature columns of
  // the batch, rule by rule, and a pair keeps the FIRST rule that fired —
  // identical vectors to the row-major overloads on the same data.
  Result<std::vector<int>> Predict(const PairBatch& batch) const;
  Result<std::vector<int>> FiringRule(const PairBatch& batch) const;

 private:
  std::vector<FeatureRule> rules_;
};

}  // namespace emx

#endif  // EMX_RULES_FEATURE_RULES_H_
