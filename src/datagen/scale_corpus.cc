#include "src/datagen/scale_corpus.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "src/core/logging.h"
#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/datagen/vocab.h"

namespace emx {

namespace internal_datagen {

std::string ScaleTerm(size_t i) {
  // SyntheticTerm covers 20*20*10 = 4000 pure syllable compositions; wider
  // indices append a numeric disambiguator so every index stays distinct.
  constexpr size_t kNaturalRange = 4000;
  std::string base = vocab::SyntheticTerm(i % kNaturalRange);
  if (i >= kNaturalRange) base += StrFormat("%zu", i / kNaturalRange);
  return base;
}

size_t ScaleRows(const ScaleCorpusOptions& options) {
  double rows = options.scale_factor * static_cast<double>(options.rows_per_sf);
  return rows < 1.0 ? 1 : static_cast<size_t>(rows);
}

}  // namespace internal_datagen

namespace {

using internal_datagen::ScaleRows;
using internal_datagen::ScaleTerm;

// Two rounds of SplitMix64 finalization over a combined (seed, stream, row)
// key. Each row's engine is seeded by this mix alone, which is what makes
// generation independent of shard boundaries and thread scheduling.
uint64_t MixSeed(uint64_t seed, uint64_t stream, uint64_t row) {
  uint64_t x = seed + 0x9E3779B97F4A7C15ull * (stream + 1) +
               0xBF58476D1CE4E5B9ull * (row + 1);
  for (int round = 0; round < 2; ++round) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
  }
  return x;
}

// Per-aspect substreams: a matched right row recomputes its partner's
// title with kLeftTitle alone, so left-side generation may draw any number
// of values for the OTHER columns without desynchronizing the recompute.
constexpr uint64_t kLeftTitle = 1;
constexpr uint64_t kLeftRest = 2;
constexpr uint64_t kRightRow = 3;

// TPC-C NURand(A, 0, n-1): (rand(0,A) | rand(0,n-1) + C) % n. The OR piles
// probability mass onto ranks whose low bits are set, and the seed-derived
// constant C rotates WHICH ranks are hot between corpora.
size_t NURand(RandomEngine& rng, size_t a, size_t n, size_t c) {
  size_t lhs = static_cast<size_t>(rng.NextBelow(a + 1));
  size_t rhs = static_cast<size_t>(rng.NextBelow(n));
  return ((lhs | rhs) + c) % n;
}

std::vector<std::string> MakeScaleTitleTokens(RandomEngine& rng,
                                              const ScaleCorpusOptions& opt,
                                              size_t nurand_c) {
  size_t span = opt.max_title_tokens - opt.min_title_tokens + 1;
  size_t len = opt.min_title_tokens + static_cast<size_t>(rng.NextBelow(span));
  std::vector<std::string> tokens;
  tokens.reserve(len);
  size_t cold_terms = opt.vocab_size - opt.hot_ranks;
  for (size_t i = 0; i < len; ++i) {
    size_t term;
    if (rng.NextBernoulli(opt.hot_fraction)) {
      term = NURand(rng, opt.nurand_a, opt.hot_ranks, nurand_c);
    } else {
      term = opt.hot_ranks + static_cast<size_t>(rng.NextBelow(cold_terms));
    }
    tokens.push_back(ScaleTerm(term));
  }
  return tokens;
}

// The left-partner title a matched right row copies; derived purely from
// the partner's row index so any shard can recompute it.
std::vector<std::string> LeftTitleTokens(const ScaleCorpusOptions& opt,
                                         size_t row, size_t nurand_c) {
  RandomEngine rng(MixSeed(opt.seed, kLeftTitle, row));
  return MakeScaleTitleTokens(rng, opt, nurand_c);
}

// The same drift NoisyTokens applies in universe.cc (token drop, adjacent
// swap, rare typo), re-rolled here against the right row's own engine.
std::vector<std::string> DriftTokens(std::vector<std::string> tokens,
                                     RandomEngine& rng) {
  if (tokens.size() > 4 && rng.NextBernoulli(0.25)) {
    tokens.erase(tokens.begin() +
                 static_cast<long>(rng.NextBelow(tokens.size())));
  }
  if (tokens.size() > 3 && rng.NextBernoulli(0.15)) {
    size_t i = static_cast<size_t>(rng.NextBelow(tokens.size() - 1));
    std::swap(tokens[i], tokens[i + 1]);
  }
  if (tokens.size() > 3 && rng.NextBernoulli(0.08)) {
    size_t i = static_cast<size_t>(rng.NextBelow(tokens.size()));
    if (tokens[i].size() > 3) {
      size_t c = 1 + static_cast<size_t>(rng.NextBelow(tokens[i].size() - 2));
      tokens[i][c] = static_cast<char>('a' + rng.NextBelow(26));
    }
  }
  return tokens;
}

struct LeftRow {
  std::string id;
  std::string title;
  std::string pi;
  int64_t year;
};

struct RightRow {
  std::string id;
  std::string title;
  std::string director;
  int64_t year;
  int64_t partner;  // left row index for matches, -1 for filler
};

LeftRow MakeLeftRow(const ScaleCorpusOptions& opt, size_t row,
                    size_t nurand_c) {
  LeftRow out;
  out.id = StrFormat("U%08zu", row);
  out.title = ToUpperTitle(LeftTitleTokens(opt, row, nurand_c));
  RandomEngine rest(MixSeed(opt.seed, kLeftRest, row));
  out.pi = FormatUmetricsName(MakePerson(rest));
  out.year = static_cast<int64_t>(1997 + rest.NextBelow(16));
  return out;
}

RightRow MakeRightRow(const ScaleCorpusOptions& opt, size_t row,
                      size_t num_left, size_t nurand_c) {
  RightRow out;
  out.id = StrFormat("S%08zu", row);
  RandomEngine rng(MixSeed(opt.seed, kRightRow, row));
  bool matched = rng.NextBernoulli(opt.match_rate);
  if (matched) {
    size_t partner = static_cast<size_t>(rng.NextBelow(num_left));
    out.partner = static_cast<int64_t>(partner);
    out.title = ToMixedTitle(
        DriftTokens(LeftTitleTokens(opt, partner, nurand_c), rng));
    RandomEngine partner_rest(MixSeed(opt.seed, kLeftRest, partner));
    out.director = FormatUsdaDirector(MakePerson(partner_rest));
    out.year = static_cast<int64_t>(1997 + partner_rest.NextBelow(16)) +
               static_cast<int64_t>(rng.NextBelow(2));
  } else {
    out.partner = -1;
    out.title = ToMixedTitle(MakeScaleTitleTokens(rng, opt, nurand_c));
    out.director = FormatUsdaDirector(MakePerson(rng));
    out.year = static_cast<int64_t>(1997 + rng.NextBelow(16));
  }
  return out;
}

// Progress visibility for SF>=100 runs (satellite: records/s + shards done
// behind the logging layer). Small corpora log at Debug so tests and the
// case-study path stay quiet.
class ShardProgress {
 public:
  ShardProgress(const char* side, size_t total_rows, size_t num_shards)
      : side_(side),
        total_rows_(total_rows),
        num_shards_(num_shards),
        loud_(total_rows >= 100000),
        log_every_(std::max<size_t>(1, num_shards / 10)),
        start_(std::chrono::steady_clock::now()) {}

  void ShardDone(size_t shard_rows) {
    size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t rows = rows_.fetch_add(shard_rows, std::memory_order_relaxed) +
                  shard_rows;
    if (done % log_every_ != 0 && done != num_shards_) return;
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    double rate = secs > 0 ? static_cast<double>(rows) / secs : 0;
    if (loud_) {
      EMX_LOG(Info) << "datagen[" << side_ << "]: " << done << "/"
                    << num_shards_ << " shards, " << rows << "/" << total_rows_
                    << " rows (" << StrFormat("%.0f", rate) << " records/s)";
    } else {
      EMX_LOG(Debug) << "datagen[" << side_ << "]: " << done << "/"
                     << num_shards_ << " shards (" << StrFormat("%.0f", rate)
                     << " records/s)";
    }
  }

 private:
  const char* side_;
  size_t total_rows_;
  size_t num_shards_;
  bool loud_;
  size_t log_every_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<size_t> done_{0};
  std::atomic<size_t> rows_{0};
};

}  // namespace

Result<ScaleCorpus> GenerateScaleCorpus(const ScaleCorpusOptions& options,
                                        const ExecutorContext& ctx) {
  if (options.scale_factor <= 0) {
    return Status::InvalidArgument(
        "GenerateScaleCorpus: scale_factor must be positive");
  }
  if (options.vocab_size <= options.hot_ranks || options.hot_ranks == 0) {
    return Status::InvalidArgument(
        "GenerateScaleCorpus: need vocab_size > hot_ranks > 0");
  }
  if (options.min_title_tokens == 0 ||
      options.max_title_tokens < options.min_title_tokens) {
    return Status::InvalidArgument(
        "GenerateScaleCorpus: bad title token range");
  }
  const size_t rows = ScaleRows(options);
  const size_t shard_rows = std::max<size_t>(1, options.shard_rows);
  const size_t num_shards = (rows + shard_rows - 1) / shard_rows;
  // The hot-rank rotation constant, fixed per corpus (TPC-C fixes C per
  // run); derived from the seed so different corpora heat different ranks.
  const size_t nurand_c = static_cast<size_t>(
      MixSeed(options.seed, /*stream=*/0, /*row=*/0) % options.hot_ranks);

  ScaleCorpus out;
  Executor& exec = ctx.get();

  // Left side: shards generate independently (row-seeded), then append in
  // shard order — identical at any shard size / thread count.
  {
    ShardProgress progress("left", rows, num_shards);
    std::vector<std::vector<LeftRow>> shards =
        exec.ParallelMap(num_shards, /*grain=*/1, [&](size_t s) {
          size_t lo = s * shard_rows;
          size_t hi = std::min(rows, lo + shard_rows);
          std::vector<LeftRow> shard;
          shard.reserve(hi - lo);
          for (size_t r = lo; r < hi; ++r) {
            shard.push_back(MakeLeftRow(options, r, nurand_c));
          }
          progress.ShardDone(hi - lo);
          return shard;
        });
    Table t(Schema({{"RecordId", DataType::kString},
                    {"AwardTitle", DataType::kString},
                    {"PIName", DataType::kString},
                    {"StartYear", DataType::kInt64}}));
    for (auto& shard : shards) {
      for (LeftRow& r : shard) {
        EMX_RETURN_IF_ERROR(t.AppendRow({Value(std::move(r.id)),
                                         Value(std::move(r.title)),
                                         Value(std::move(r.pi)),
                                         Value(r.year)}));
      }
    }
    out.left = std::move(t);
  }

  // Right side, plus gold pairs harvested from the matched rows.
  {
    ShardProgress progress("right", rows, num_shards);
    std::vector<std::vector<RightRow>> shards =
        exec.ParallelMap(num_shards, /*grain=*/1, [&](size_t s) {
          size_t lo = s * shard_rows;
          size_t hi = std::min(rows, lo + shard_rows);
          std::vector<RightRow> shard;
          shard.reserve(hi - lo);
          for (size_t r = lo; r < hi; ++r) {
            shard.push_back(MakeRightRow(options, r, rows, nurand_c));
          }
          progress.ShardDone(hi - lo);
          return shard;
        });
    Table t(Schema({{"RecordId", DataType::kString},
                    {"AwardTitle", DataType::kString},
                    {"Director", DataType::kString},
                    {"StartYear", DataType::kInt64}}));
    std::vector<RecordPair> gold;
    size_t row = 0;
    for (auto& shard : shards) {
      for (RightRow& r : shard) {
        if (r.partner >= 0) {
          gold.push_back({static_cast<uint32_t>(r.partner),
                          static_cast<uint32_t>(row)});
        }
        EMX_RETURN_IF_ERROR(t.AppendRow({Value(std::move(r.id)),
                                         Value(std::move(r.title)),
                                         Value(std::move(r.director)),
                                         Value(r.year)}));
        ++row;
      }
    }
    out.right = std::move(t);
    out.gold = CandidateSet(std::move(gold));
  }
  return out;
}

}  // namespace emx
