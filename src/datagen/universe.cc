#include "src/datagen/universe.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/datagen/vocab.h"
#include "src/rules/number_pattern.h"

namespace emx {

namespace {

// ---------------------------------------------------------------------
// Internal row models

struct URow {
  std::string unique_award_number;  // "10.200 2008-34103-19449" etc.
  std::vector<std::string> title_tokens;
  std::string first_trans;  // "10/1/08"
  std::string last_trans;
  int start_year = 2005;
  PersonName pi;
  std::vector<PersonName> staff;
  std::string account;
  size_t suborg = 0;
};

struct SRow {
  std::string accession;
  std::string award_number;    // "" means null
  std::string project_number;  // "" means null
  std::vector<std::string> title_tokens;
  bool ncnrsp = false;
  PersonName director;
  int start_year = 2005;
  std::string start_date;
  std::string end_date;
};

// ---------------------------------------------------------------------
// Unique identifier factories

class IdRegistry {
 public:
  explicit IdRegistry(uint64_t seed) : rng_(seed) {}

  // "YYYY-#####-#####" federal award number.
  std::string NewFederalNumber() {
    return Fresh([this] {
      int year = static_cast<int>(1997 + rng_.NextBelow(16));
      return StrFormat("%04d-%05d-%05d", year,
                       static_cast<int>(rng_.NextBelow(90000) + 10000),
                       static_cast<int>(rng_.NextBelow(90000) + 10000));
    });
  }

  // "WIS#####" state project number.
  std::string NewWisNumber() {
    return Fresh([this] {
      return StrFormat("WIS%05d", static_cast<int>(rng_.NextBelow(9000) + 1000));
    });
  }

  // "MSN######" internal campus account number.
  std::string NewMsnNumber() {
    return Fresh([this] {
      return StrFormat("MSN%06d",
                       static_cast<int>(rng_.NextBelow(900000) + 100000));
    });
  }

  // 6-digit USDA accession number.
  std::string NewAccession() {
    return Fresh([this] {
      return StrFormat("%06d",
                       static_cast<int>(rng_.NextBelow(800000) + 100000));
    });
  }

  // "10.###" CFDA-style prefix (not required to be unique).
  std::string NewCfdaPrefix() {
    return StrFormat("10.%03d", static_cast<int>(rng_.NextBelow(900) + 100));
  }

  // Mutates one digit of `number`, keeping the pattern; result is unique.
  std::string TypoDigit(const std::string& number) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string out = number;
      // Pick a random digit position.
      std::vector<size_t> digit_pos;
      for (size_t i = 0; i < out.size(); ++i) {
        if (out[i] >= '0' && out[i] <= '9') digit_pos.push_back(i);
      }
      if (digit_pos.empty()) break;
      size_t pos = digit_pos[rng_.NextBelow(digit_pos.size())];
      // Avoid the leading year digits so the YYYY group stays a year.
      if (pos < 4 && out.size() > 6) pos = digit_pos[digit_pos.size() / 2];
      char orig = out[pos];
      char repl = static_cast<char>('0' + rng_.NextBelow(10));
      if (repl == orig) continue;
      out[pos] = repl;
      if (used_.insert(out).second) return out;
    }
    // Pathological collision streak: fall back to a fresh number.
    return NewFederalNumber();
  }

  // Registers an externally built id (returns false if taken).
  bool Claim(const std::string& id) { return used_.insert(id).second; }

 private:
  template <typename Fn>
  std::string Fresh(const Fn& make) {
    for (;;) {
      std::string id = make();
      if (used_.insert(id).second) return id;
    }
  }

  RandomEngine rng_;
  std::set<std::string> used_;
};

// ---------------------------------------------------------------------
// Noise processes

// A noisy copy of a matched title, modeling the drift between UMETRICS and
// USDA renditions of the same grant (token drops, adjacent swaps, rare
// typos). Case drift is applied later (UMETRICS renders UPPERCASE, USDA
// Mixed Case — the §9 case-debugging story).
std::vector<std::string> NoisyTokens(const std::vector<std::string>& tokens,
                                     RandomEngine& rng) {
  std::vector<std::string> out = tokens;
  // Drop one short connective.
  if (out.size() > 4 && rng.NextBernoulli(0.20)) {
    for (size_t i = 0; i < out.size(); ++i) {
      const std::string& w = out[i];
      if (w == "of" || w == "in" || w == "and" || w == "for" || w == "the") {
        out.erase(out.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  // Swap two adjacent tokens.
  if (out.size() > 3 && rng.NextBernoulli(0.10)) {
    size_t i = rng.NextBelow(out.size() - 1);
    std::swap(out[i], out[i + 1]);
  }
  // Typo one character of one word. Titles of three or fewer tokens are
  // spared: a typo there destroys most of the match evidence, and the
  // paper's blocking debugger found no true matches lost to blocking.
  if (out.size() > 3 && rng.NextBernoulli(0.06)) {
    size_t i = rng.NextBelow(out.size());
    if (out[i].size() > 3) {
      size_t c = 1 + rng.NextBelow(out[i].size() - 2);
      out[i][c] = static_cast<char>('a' + rng.NextBelow(26));
    }
  }
  return out;
}

// Sibling-project variant: same research programme, different phase/year —
// similar enough to fool a title matcher, distinct to a domain expert.
std::vector<std::string> SiblingTokens(const std::vector<std::string>& tokens,
                                       RandomEngine& rng) {
  std::vector<std::string> out = tokens;
  // Mostly identical titles: a title-driven matcher cannot tell a sibling
  // project from its real counterpart, so it calls them matches — the
  // production precision gap (§11's 75-80%) that the §12 negative rule
  // then closes.
  switch (rng.NextBelow(10)) {
    case 0:
      out.push_back("phase");
      out.push_back("ii");
      break;
    case 1:
      out.push_back("continuation");
      break;
    default:
      break;  // identical title — the hardest bait
  }
  return out;
}

std::string UmetricsDate(int year, int month, int day) {
  return StrFormat("%d/%d/%02d", month, day, year % 100);
}

std::string UsdaDate(int year, int month, int day) {
  return StrFormat("%04d-%02d-%02d", year, month, day);
}

// ---------------------------------------------------------------------
// Row factories

URow MakeURow(RandomEngine& rng, IdRegistry& ids, const std::string& suffix) {
  URow u;
  u.unique_award_number = ids.NewCfdaPrefix() + " " + suffix;
  u.title_tokens = MakeTitleTokens(rng);
  u.start_year = static_cast<int>(1997 + rng.NextBelow(16));
  int month = static_cast<int>(1 + rng.NextBelow(12));
  int day = static_cast<int>(1 + rng.NextBelow(28));
  u.first_trans = UmetricsDate(u.start_year, month, day);
  u.last_trans = UmetricsDate(
      u.start_year + static_cast<int>(1 + rng.NextBelow(5)), month, day);
  u.pi = MakePerson(rng);
  size_t staff_count = rng.NextBelow(4);
  for (size_t i = 0; i < staff_count; ++i) u.staff.push_back(MakePerson(rng));
  u.account = StrFormat("144-%c%c%c%04d",
                        static_cast<char>('A' + rng.NextBelow(26)),
                        static_cast<char>('A' + rng.NextBelow(26)),
                        static_cast<char>('A' + rng.NextBelow(26)),
                        static_cast<int>(rng.NextBelow(10000)));
  u.suborg = rng.NextBelow(22);
  return u;
}

// A USDA row describing the SAME grant as `u` (a gold match).
SRow MakeMatchedSRow(const URow& u, RandomEngine& rng, IdRegistry& ids) {
  SRow s;
  s.accession = ids.NewAccession();
  s.title_tokens = NoisyTokens(u.title_tokens, rng);
  s.director = u.pi;
  s.start_year = u.start_year + static_cast<int>(rng.NextBelow(2));
  int month = static_cast<int>(1 + rng.NextBelow(12));
  int day = static_cast<int>(1 + rng.NextBelow(28));
  s.start_date = UsdaDate(s.start_year, month, day);
  s.end_date =
      UsdaDate(s.start_year + static_cast<int>(2 + rng.NextBelow(4)), month, day);
  return s;
}

// An unrelated USDA row.
SRow MakeFillerSRow(RandomEngine& rng, IdRegistry& ids, bool with_award) {
  SRow s;
  s.accession = ids.NewAccession();
  s.title_tokens = MakeTitleTokens(rng);
  s.director = MakePerson(rng);
  s.start_year = static_cast<int>(1997 + rng.NextBelow(16));
  int month = static_cast<int>(1 + rng.NextBelow(12));
  int day = static_cast<int>(1 + rng.NextBelow(28));
  s.start_date = UsdaDate(s.start_year, month, day);
  s.end_date =
      UsdaDate(s.start_year + static_cast<int>(2 + rng.NextBelow(4)), month, day);
  s.project_number = ids.NewWisNumber();
  if (with_award) s.award_number = ids.NewFederalNumber();
  return s;
}

// ---------------------------------------------------------------------
// Raw-table materialization (the seven Figure 2 tables)

Table BuildAggTable(const std::vector<URow>& urows, RandomEngine& rng) {
  Table t(Schema({{"UniqueAwardNumber", DataType::kString},
                  {"AwardTitle", DataType::kString},
                  {"FundingSource", DataType::kString},
                  {"FirstTransDate", DataType::kString},
                  {"LastTransDate", DataType::kString},
                  {"RecipientAccountNumber", DataType::kString},
                  {"TotalOverheadCharged", DataType::kDouble},
                  {"TotalExpenditures", DataType::kDouble},
                  {"NumberOfTransactions", DataType::kInt64},
                  {"DataFileYearEarliest", DataType::kInt64},
                  {"DataFileYearLatest", DataType::kInt64},
                  {"SubOrgUnit", DataType::kInt64},
                  {"CampusID", DataType::kInt64}}));
  const auto& sources = vocab::FundingSources();
  for (const URow& u : urows) {
    double spend = 25000.0 + rng.NextDouble() * 975000.0;
    (void)t.AppendRow(
        {Value(u.unique_award_number), Value(ToUpperTitle(u.title_tokens)),
         Value(sources[rng.NextBelow(sources.size())]), Value(u.first_trans),
         Value(u.last_trans), Value(u.account),
         Value(std::floor(spend * 0.3)), Value(std::floor(spend)),
         Value(static_cast<int64_t>(4 + rng.NextBelow(120))),
         Value(static_cast<int64_t>(u.start_year)),
         Value(static_cast<int64_t>(u.start_year + 1 + rng.NextBelow(4))),
         Value(static_cast<int64_t>(u.suborg)), Value(static_cast<int64_t>(1))});
  }
  return t;
}

Table BuildEmployeeTable(const std::vector<URow>& urows,
                         const std::vector<URow>& extra, size_t target_rows,
                         RandomEngine& rng) {
  Table t(Schema({{"UniqueAwardNumber", DataType::kString},
                  {"PeriodStartDate", DataType::kString},
                  {"PeriodEndDate", DataType::kString},
                  {"RecipientAccountNumber", DataType::kString},
                  {"DeidentifiedEmployeeIdNumber", DataType::kInt64},
                  {"FullName", DataType::kString},
                  {"OccupationalClassification", DataType::kString},
                  {"JobTitle", DataType::kString},
                  {"ObjectCode", DataType::kInt64},
                  {"SOCCode", DataType::kString},
                  {"FteStatus", DataType::kDouble},
                  {"ProportionOfEarningsAllocated", DataType::kDouble},
                  {"DataFileYear", DataType::kInt64}}));
  const auto& jobs = vocab::JobTitles();
  std::vector<const URow*> all;
  for (const URow& u : urows) all.push_back(&u);
  for (const URow& u : extra) all.push_back(&u);
  int64_t next_emp_id = 100000;
  // Period sweeps: every award gets its PI + staff once per sweep, so every
  // award is covered (the projected EmployeeName join needs that) and row
  // counts scale with `target_rows`.
  for (int sweep = 0; t.num_rows() < target_rows; ++sweep) {
    for (const URow* u : all) {
      std::vector<const PersonName*> people{&u->pi};
      for (const auto& s : u->staff) people.push_back(&s);
      int year = u->start_year + sweep;
      for (const PersonName* p : people) {
        if (t.num_rows() >= target_rows) break;
        (void)t.AppendRow(
            {Value(u->unique_award_number), Value(UsdaDate(year, 1, 1)),
             Value(UsdaDate(year, 12, 31)), Value(u->account),
             Value(next_emp_id++), Value(FormatUmetricsName(*p)),
             Value(p == &u->pi ? "faculty" : "staff"),
             Value(jobs[rng.NextBelow(jobs.size())]),
             Value(static_cast<int64_t>(1000 + rng.NextBelow(4000))),
             Value(StrFormat("%02d-%04d",
                             static_cast<int>(11 + rng.NextBelow(40)),
                             static_cast<int>(rng.NextBelow(10000)))),
             Value(rng.NextBernoulli(0.7) ? 1.0 : 0.5),
             Value(std::floor(rng.NextDouble() * 100.0) / 100.0),
             Value(static_cast<int64_t>(year))});
      }
      if (t.num_rows() >= target_rows) break;
    }
  }
  return t;
}

Table BuildObjectCodesTable(size_t rows, RandomEngine& rng) {
  Table t(Schema({{"ObjectCode", DataType::kInt64},
                  {"ObjectCodeText", DataType::kString},
                  {"DataFileYear", DataType::kInt64}}));
  const auto& methods = vocab::Methods();
  const auto& subjects = vocab::Subjects();
  for (size_t i = 0; i < rows; ++i) {
    std::string text = methods[rng.NextBelow(methods.size())] + " " +
                       subjects[rng.NextBelow(subjects.size())] + " expenses";
    (void)t.AppendRow({Value(static_cast<int64_t>(1000 + i)), Value(text),
                       Value(static_cast<int64_t>(2008 + (i % 8)))});
  }
  return t;
}

Table BuildOrgUnitsTable(size_t rows, RandomEngine& rng) {
  Table t(Schema({{"CampusId", DataType::kInt64},
                  {"SubOrgUnit", DataType::kInt64},
                  {"CampusName", DataType::kString},
                  {"SubOrgUnitName", DataType::kString},
                  {"DataFileYear", DataType::kInt64}}));
  const auto& units = vocab::OrgUnitNames();
  for (size_t i = 0; i < rows; ++i) {
    std::string name = units[i % units.size()];
    if (i >= units.size()) name += StrFormat(" unit %zu", i / units.size());
    (void)t.AppendRow({Value(static_cast<int64_t>(1)),
                       Value(static_cast<int64_t>(i)),
                       Value("university of wisconsin madison"), Value(name),
                       Value(static_cast<int64_t>(2008 + rng.NextBelow(8)))});
  }
  return t;
}

Table BuildSubAwardTable(const std::vector<URow>& urows, size_t rows,
                         RandomEngine& rng) {
  std::vector<Field> fields = {{"UniqueAwardNumber", DataType::kString},
                               {"Address", DataType::kString},
                               {"BldgName", DataType::kString},
                               {"City", DataType::kString},
                               {"Country", DataType::kString},
                               {"DUNS", DataType::kString},
                               {"DomesticZipCode", DataType::kString},
                               {"EIN", DataType::kString},
                               {"ForeignZipCode", DataType::kString},
                               {"ObjectCode", DataType::kInt64},
                               {"OrgName", DataType::kString},
                               {"OrganizationID", DataType::kInt64},
                               {"POBox", DataType::kString},
                               {"PeriodEndDate", DataType::kString},
                               {"PeriodStartDate", DataType::kString},
                               {"RecipientAccountNumber", DataType::kString},
                               {"SrtName", DataType::kString},
                               {"SrtNumber", DataType::kString},
                               {"State", DataType::kString},
                               {"StrName", DataType::kString},
                               {"StrNumber", DataType::kString},
                               {"SubAwardPaymentAmount", DataType::kDouble},
                               {"DataFileYear", DataType::kInt64}};
  Table t((Schema(fields)));
  const auto& vendors = vocab::VendorNames();
  for (size_t i = 0; i < rows; ++i) {
    const URow& u = urows[rng.NextBelow(urows.size())];
    int year = u.start_year + static_cast<int>(rng.NextBelow(3));
    (void)t.AppendRow(
        {Value(u.unique_award_number), Value("1450 linden dr"), Value::Null(),
         Value("madison"), Value("USA"),
         Value(StrFormat("%09d", static_cast<int>(rng.NextBelow(999999999)))),
         Value("53706"),
         Value(StrFormat("39-%07d", static_cast<int>(rng.NextBelow(9999999)))),
         Value::Null(), Value(static_cast<int64_t>(1000 + rng.NextBelow(4000))),
         Value(vendors[rng.NextBelow(vendors.size())]),
         Value(static_cast<int64_t>(rng.NextBelow(100000))), Value::Null(),
         Value(UsdaDate(year, 12, 31)), Value(UsdaDate(year, 1, 1)),
         Value(u.account), Value::Null(), Value::Null(), Value("WI"),
         Value("linden"), Value("1450"),
         Value(std::floor(500.0 + rng.NextDouble() * 50000.0)),
         Value(static_cast<int64_t>(year))});
  }
  return t;
}

Table BuildVendorTable(const std::vector<URow>& urows, size_t rows,
                       RandomEngine& rng) {
  Table t(Schema({{"UniqueAwardNumber", DataType::kString},
                  {"PeriodStartDate", DataType::kString},
                  {"PeriodEndDate", DataType::kString},
                  {"RecipientAccountNumber", DataType::kString},
                  {"ObjectCode", DataType::kInt64},
                  {"OrganizationID", DataType::kInt64},
                  {"EIN", DataType::kString},
                  {"DUNS", DataType::kString},
                  {"VendorPaymentAmount", DataType::kDouble},
                  {"OrgName", DataType::kString},
                  {"POBox", DataType::kString},
                  {"BldgNum", DataType::kString},
                  {"StrNumber", DataType::kString},
                  {"StrName", DataType::kString},
                  {"Address", DataType::kString},
                  {"City", DataType::kString},
                  {"State", DataType::kString},
                  {"DomesticZipCode", DataType::kString},
                  {"ForeignZipCode", DataType::kString},
                  {"Country", DataType::kString},
                  {"DataFileYear", DataType::kInt64}}));
  const auto& vendors = vocab::VendorNames();
  for (size_t i = 0; i < rows; ++i) {
    const URow& u = urows[rng.NextBelow(urows.size())];
    int year = u.start_year + static_cast<int>(rng.NextBelow(3));
    (void)t.AppendRow(
        {Value(u.unique_award_number), Value(UsdaDate(year, 1, 1)),
         Value(UsdaDate(year, 12, 31)), Value(u.account),
         Value(static_cast<int64_t>(1000 + rng.NextBelow(4000))),
         Value(static_cast<int64_t>(rng.NextBelow(100000))),
         Value(StrFormat("39-%07d", static_cast<int>(rng.NextBelow(9999999)))),
         Value(StrFormat("%09d", static_cast<int>(rng.NextBelow(999999999)))),
         Value(std::floor(50.0 + rng.NextDouble() * 20000.0)),
         Value(vendors[rng.NextBelow(vendors.size())]), Value::Null(),
         Value::Null(), Value(StrFormat("%d", static_cast<int>(
                                  100 + rng.NextBelow(9900)))),
         Value("university ave"), Value("university ave"), Value("madison"),
         Value("WI"), Value("53715"), Value::Null(), Value("USA"),
         Value(static_cast<int64_t>(year))});
  }
  return t;
}

Table BuildUsdaTable(const std::vector<SRow>& srows, RandomEngine& rng) {
  // 14 named columns + 63 bookkeeping/financial columns + the final
  // "Financial: USDA Contracts, Grants, Coop Agmt" column = 78 (Figure 4).
  std::vector<Field> fields = {
      {"AccessionNumber", DataType::kString},
      {"ProjectTitle", DataType::kString},
      {"SponsoringAgency", DataType::kString},
      {"FundingMechanism", DataType::kString},
      {"AwardNumber", DataType::kString},
      {"InitialAwardFiscalYear", DataType::kInt64},
      {"RecipientOrganization", DataType::kString},
      {"RecipientDUNS", DataType::kString},
      {"ProjectDirector", DataType::kString},
      {"MultistateProjectNumber", DataType::kString},
      {"ProjectNumber", DataType::kString},
      {"ProjectStartDate", DataType::kString},
      {"ProjectEndDate", DataType::kString},
      {"ProjectStartFiscalYear", DataType::kInt64}};
  for (int i = 0; i < 63; ++i) {
    fields.push_back({StrFormat("ReportField%02d", i + 1), DataType::kDouble});
  }
  fields.push_back(
      {"Financial: USDA Contracts, Grants, Coop Agmt", DataType::kDouble});
  Table t((Schema(fields)));
  for (const SRow& s : srows) {
    std::vector<Value> row;
    row.reserve(78);
    bool federal = !s.award_number.empty();
    std::string title = ToMixedTitle(s.title_tokens);
    if (s.ncnrsp) title += " NC/NRSP";
    row.push_back(Value(s.accession));
    row.push_back(Value(title));
    row.push_back(Value(federal ? "USDA-NIFA"
                                : "State Agricultural Experiment Station"));
    row.push_back(Value(federal ? "Federal Grant" : "State Funding"));
    row.push_back(s.award_number.empty() ? Value::Null()
                                         : Value(s.award_number));
    row.push_back(Value(static_cast<int64_t>(s.start_year)));
    row.push_back(Value("SAES - UNIVERSITY OF WISCONSIN"));
    row.push_back(rng.NextBernoulli(0.3)
                      ? Value(StrFormat("%09d", static_cast<int>(
                                            rng.NextBelow(999999999))))
                      : Value::Null());
    row.push_back(Value(FormatUsdaDirector(s.director)));
    row.push_back(s.ncnrsp ? Value(StrFormat("NC%03d", static_cast<int>(
                                       100 + rng.NextBelow(400))))
                           : Value::Null());
    row.push_back(s.project_number.empty() ? Value::Null()
                                           : Value(s.project_number));
    row.push_back(Value(s.start_date));
    row.push_back(Value(s.end_date));
    row.push_back(Value(static_cast<int64_t>(s.start_year)));
    for (int i = 0; i < 63; ++i) {
      row.push_back(rng.NextBernoulli(0.35)
                        ? Value(std::floor(rng.NextDouble() * 100000.0))
                        : Value::Null());
    }
    row.push_back(federal
                      ? Value(std::floor(10000.0 + rng.NextDouble() * 500000.0))
                      : Value::Null());
    (void)t.AppendRow(std::move(row));
  }
  return t;
}

void BuildRawTables(const UniverseOptions& opt, const std::vector<URow>& urows,
                    const std::vector<SRow>& srows,
                    const std::vector<URow>& extra, RandomEngine& rng,
                    CaseStudyData& data) {
  data.umetrics_award_agg = BuildAggTable(urows, rng);
  data.extra_umetrics_agg = BuildAggTable(extra, rng);
  data.umetrics_employees =
      BuildEmployeeTable(urows, extra, opt.employee_rows, rng);
  data.umetrics_object_codes = BuildObjectCodesTable(opt.object_code_rows, rng);
  data.umetrics_org_units = BuildOrgUnitsTable(opt.org_unit_rows, rng);
  data.umetrics_subaward = BuildSubAwardTable(urows, opt.subaward_rows, rng);
  data.umetrics_vendor = BuildVendorTable(urows, opt.vendor_rows, rng);
  data.usda = BuildUsdaTable(srows, rng);
}

}  // namespace

// ---------------------------------------------------------------------
// Generator

Result<CaseStudyData> GenerateCaseStudy(const UniverseOptions& options) {
  UniverseOptions opt = options;
  if (opt.paper_scale) {
    opt.employee_rows = 1454070;
    opt.vendor_rows = 377746;
    opt.subaward_rows = 21470;
  }
  const size_t matched_groups =
      opt.m1_group + opt.m4_group + opt.title_group + opt.typo_group;
  if (matched_groups + opt.generic_umetrics + opt.ncnrsp_rows >
      opt.num_umetrics) {
    return Status::InvalidArgument(
        "GenerateCaseStudy: match groups exceed num_umetrics");
  }

  RandomEngine rng(opt.seed);
  IdRegistry ids(opt.seed ^ 0xD1CEULL);

  std::vector<URow> urows;
  std::vector<SRow> srows;
  std::vector<RecordPair> gold, ambiguous;
  CaseStudyData data;

  auto add_gold = [&](size_t u, size_t s) {
    gold.push_back({static_cast<uint32_t>(u), static_cast<uint32_t>(s)});
  };

  // Emits `u` plus one (or, via one-to-many sub-awards, several) matched
  // USDA rows, wiring numbers per match group.
  enum class Group { kM1, kM4, kTitle, kTypo };
  auto emit_matched = [&](Group g) {
    std::string suffix;
    std::string wis;
    switch (g) {
      case Group::kM1:
        suffix = ids.NewFederalNumber();
        break;
      case Group::kM4:
        suffix = ids.NewWisNumber();
        break;
      case Group::kTitle:
        suffix = ids.NewMsnNumber();
        break;
      case Group::kTypo:
        suffix = ids.NewFederalNumber();
        break;
    }
    URow u = MakeURow(rng, ids, suffix);
    size_t u_idx = urows.size();
    urows.push_back(u);

    size_t copies = 1 + (rng.NextBernoulli(opt.one_to_many_rate) ? 1 : 0);
    for (size_t c = 0; c < copies; ++c) {
      SRow s = MakeMatchedSRow(u, rng, ids);
      switch (g) {
        case Group::kM1:
          s.award_number = suffix;  // M1: exact award-number evidence
          s.project_number = ids.NewWisNumber();
          data.m1_pairs++;
          break;
        case Group::kM4:
          s.project_number = suffix;  // M4: project-number evidence
          // ~13% were retitled between the datasets: the grant is the same
          // (the project number proves it) but the report title was
          // rewritten, so title blocking cannot find the pair — the §10
          // discovery that blocking had discarded rule-satisfying pairs
          // (473 in the Cartesian product vs 411 in C).
          if (rng.NextBernoulli(0.13)) {
            s.title_tokens = MakeTitleTokens(rng);
          }
          data.m4_pairs++;
          break;
        case Group::kTitle:
          // Only title/director/date evidence. A quarter carry an unrelated
          // federal number (non-comparable with the MSN suffix, so the
          // negative rule stays silent).
          s.project_number = ids.NewWisNumber();
          if (rng.NextBernoulli(0.25)) {
            s.award_number = ids.NewFederalNumber();
          }
          data.title_pairs++;
          break;
        case Group::kTypo:
          // True match whose USDA number was mistyped: same pattern,
          // different value -> the §12 negative rule wrongly flips it.
          s.award_number = ids.TypoDigit(suffix);
          s.project_number = ids.NewWisNumber();
          data.typo_pairs++;
          break;
      }
      add_gold(u_idx, srows.size());
      srows.push_back(std::move(s));
    }
  };

  for (size_t i = 0; i < opt.m1_group; ++i) emit_matched(Group::kM1);
  for (size_t i = 0; i < opt.m4_group; ++i) emit_matched(Group::kM4);
  for (size_t i = 0; i < opt.title_group; ++i) emit_matched(Group::kTitle);
  for (size_t i = 0; i < opt.typo_group; ++i) emit_matched(Group::kTypo);
  const size_t num_matched_urows = urows.size();

  // Sibling-project bait: a USDA row describing a DIFFERENT grant of the
  // same lab — near-identical title, same director, comparable-but-unequal
  // numbers. Domain experts label these No (the D2 family); a title-driven
  // matcher calls them matches; the §12 negative rule flips them back.
  const size_t num_numbered_urows = opt.m1_group + opt.m4_group;
  for (size_t i = 0; i < opt.sibling_rows && num_matched_urows > 0; ++i) {
    // Mostly shadow grants that carry comparable numbers (M1/M4 groups), so
    // the §12 negative rule can flip them; a small minority shadow the
    // title-only group and survive as residual false positives (the reason
    // the paper's final precision is high but not 100%).
    size_t u_idx = rng.NextBernoulli(0.88) && num_numbered_urows > 0
                       ? rng.NextBelow(num_numbered_urows)
                       : rng.NextBelow(num_matched_urows);
    const URow& u = urows[u_idx];
    SRow s;
    s.accession = ids.NewAccession();
    s.title_tokens = SiblingTokens(u.title_tokens, rng);
    s.director = u.pi;
    // Dates follow the true-match distribution exactly: nothing a feature
    // vector can see separates a sibling from the real counterpart — only
    // the comparable-but-unequal numbers do (the §12 negative-rule premise).
    s.start_year = u.start_year + static_cast<int>(rng.NextBelow(2));
    s.start_date = UsdaDate(s.start_year, 10, 1);
    s.end_date = UsdaDate(s.start_year + 3, 9, 30);
    std::string suffix = AwardNumberSuffix(u.unique_award_number);
    // Comparable-but-different numbers: WIS vs WIS or federal vs federal.
    if (suffix.rfind("WIS", 0) == 0) {
      s.project_number = ids.NewWisNumber();
    } else if (suffix.rfind("MSN", 0) == 0) {
      s.project_number = ids.NewWisNumber();  // non-comparable; still bait
    } else {
      s.award_number = ids.NewFederalNumber();
      s.project_number = ids.NewWisNumber();
    }
    data.sibling_pairs++;
    srows.push_back(std::move(s));
  }

  // Generic-title rows: "LAB SUPPLIES"-style content that even experts
  // cannot match (footnote 5); every generic x generic pair is ambiguous.
  // Cluster the generic rows on few distinct titles so their cross pairs
  // actually share tokens (and therefore land in the candidate set, where
  // the sample-and-label loop meets them).
  const size_t generic_cluster_count =
      std::min<size_t>(4, vocab::GenericTitles().size());
  std::vector<size_t> generic_u_idx, generic_s_idx;
  for (size_t i = 0; i < opt.generic_umetrics; ++i) {
    URow u = MakeURow(rng, ids, ids.NewMsnNumber());
    u.title_tokens = SplitWhitespace(
        vocab::GenericTitles()[rng.NextBelow(generic_cluster_count)]);
    generic_u_idx.push_back(urows.size());
    urows.push_back(std::move(u));
  }
  for (size_t i = 0; i < opt.generic_usda; ++i) {
    SRow s = MakeFillerSRow(rng, ids, /*with_award=*/false);
    s.title_tokens = SplitWhitespace(
        vocab::GenericTitles()[rng.NextBelow(generic_cluster_count)]);
    generic_s_idx.push_back(srows.size());
    srows.push_back(std::move(s));
  }
  for (size_t ui : generic_u_idx) {
    for (size_t si : generic_s_idx) {
      ambiguous.push_back(
          {static_cast<uint32_t>(ui), static_cast<uint32_t>(si)});
    }
  }

  // NC/NRSP rows (the D1 family): titles agree except for the multistate
  // "NC/NRSP" suffix; the experts eventually relabeled these Unsure.
  for (size_t i = 0; i < opt.ncnrsp_rows; ++i) {
    URow u = MakeURow(rng, ids, ids.NewMsnNumber());
    size_t u_idx = urows.size();
    urows.push_back(u);
    SRow s = MakeMatchedSRow(u, rng, ids);
    s.project_number = ids.NewWisNumber();
    s.ncnrsp = true;
    ambiguous.push_back({static_cast<uint32_t>(u_idx),
                         static_cast<uint32_t>(srows.size())});
    srows.push_back(std::move(s));
  }

  // UMETRICS filler (awards with no USDA counterpart).
  while (urows.size() < opt.num_umetrics) {
    std::string suffix;
    switch (rng.NextBelow(3)) {
      case 0:
        suffix = ids.NewFederalNumber();
        break;
      case 1:
        suffix = ids.NewWisNumber();
        break;
      default:
        suffix = ids.NewMsnNumber();
        break;
    }
    urows.push_back(MakeURow(rng, ids, suffix));
  }

  // USDA filler.
  if (srows.size() > opt.num_usda) {
    return Status::InvalidArgument(
        "GenerateCaseStudy: matched+sibling USDA rows exceed num_usda");
  }
  std::vector<size_t> filler_s_idx;
  while (srows.size() < opt.num_usda) {
    filler_s_idx.push_back(srows.size());
    srows.push_back(MakeFillerSRow(rng, ids, rng.NextBernoulli(0.5)));
  }

  data.gold = CandidateSet(std::move(gold));
  data.ambiguous = CandidateSet(std::move(ambiguous));

  // ------------------------------------------------------------------
  // Extra UMETRICS records (§10): 55 sure matches into USDA filler rows,
  // the rest unmatched.
  std::vector<URow> extra;
  std::vector<RecordPair> gold_extra;
  {
    size_t cursor = 0;
    auto next_filler_with = [&](bool need_award) -> long {
      while (cursor < filler_s_idx.size()) {
        size_t si = filler_s_idx[cursor++];
        const SRow& s = srows[si];
        if (need_award ? !s.award_number.empty() : !s.project_number.empty()) {
          return static_cast<long>(si);
        }
      }
      return -1;
    };
    for (size_t i = 0; i < opt.extra_m1; ++i) {
      long si = next_filler_with(/*need_award=*/true);
      if (si < 0) break;
      URow u = MakeURow(rng, ids, srows[static_cast<size_t>(si)].award_number);
      // The extra record IS the USDA grant: align title and director too.
      u.title_tokens = srows[static_cast<size_t>(si)].title_tokens;
      u.pi = srows[static_cast<size_t>(si)].director;
      gold_extra.push_back({static_cast<uint32_t>(extra.size()),
                            static_cast<uint32_t>(si)});
      extra.push_back(std::move(u));
    }
    for (size_t i = 0; i < opt.extra_m4; ++i) {
      long si = next_filler_with(/*need_award=*/false);
      if (si < 0) break;
      URow u =
          MakeURow(rng, ids, srows[static_cast<size_t>(si)].project_number);
      u.title_tokens = srows[static_cast<size_t>(si)].title_tokens;
      u.pi = srows[static_cast<size_t>(si)].director;
      gold_extra.push_back({static_cast<uint32_t>(extra.size()),
                            static_cast<uint32_t>(si)});
      extra.push_back(std::move(u));
    }
    while (extra.size() < opt.num_extra) {
      URow u = MakeURow(rng, ids, ids.NewMsnNumber());
      // Unmatched extra awards reuse the curated vocabulary heavily: their
      // titles share words with many USDA rows (driving the paper's 1,220
      // extra-branch candidate pairs) without resembling any single one
      // closely (the matcher predicted 0 matches there).
      u.title_tokens = MakeTitleTokens(rng, /*synthetic_prob=*/0.25);
      extra.push_back(std::move(u));
    }
  }
  data.gold_extra = CandidateSet(std::move(gold_extra));
  data.ambiguous_extra = CandidateSet();

  // ------------------------------------------------------------------
  // Materialize the raw tables.
  BuildRawTables(opt, urows, srows, extra, rng, data);
  return data;
}

}  // namespace emx
