#ifndef EMX_DATAGEN_PREPROCESS_H_
#define EMX_DATAGEN_PREPROCESS_H_

#include "src/core/result.h"
#include "src/datagen/universe.h"
#include "src/table/table.h"

namespace emx {

// The §6 pre-processing output: two (three, counting the §10 extra batch)
// flat tables ready for blocking/matching, with aligned column names.
//
//   UMETRICSProjected(RecordId, AwardNumber, AwardTitle, FirstTransDate,
//                     LastTransDate, EmployeeName)
//   USDAProjected(RecordId, AwardNumber, AwardTitle, FirstTransDate,
//                 LastTransDate, AccessionNumber, EmployeeName,
//                 ProjectNumber)
//
// ProjectNumber is carried from the start (the paper pulled it in during
// §10, footnote 9). Row order of the source tables is preserved, so the
// gold sets of CaseStudyData index these tables directly.
struct ProjectedTables {
  Table umetrics;  // from umetrics_award_agg
  Table usda;      // from usda
  Table extra;     // from extra_umetrics_agg
};

// Runs the full §6 pipeline: project the relevant columns, rename to the
// aligned schema, group-concatenate employee names per award with '|', and
// prepend RecordId.
Result<ProjectedTables> PreprocessCaseStudy(const CaseStudyData& data);

}  // namespace emx

#endif  // EMX_DATAGEN_PREPROCESS_H_
