#ifndef EMX_DATAGEN_SCALE_CORPUS_H_
#define EMX_DATAGEN_SCALE_CORPUS_H_

#include <cstddef>
#include <cstdint>

#include "src/block/candidate_set.h"
#include "src/core/executor.h"
#include "src/core/result.h"
#include "src/table/table.h"

namespace emx {

// TPC-C-style scale-factor generator for million-row blocking/matching
// workloads. The paper's case-study universe is frozen at 1336+496 / 1915
// rows; this generator produces UMETRICS/USDA-shaped two-table corpora at
// `scale_factor * rows_per_sf` rows PER SIDE (SF 1000 => 1M+1M rows) with
// gold match pairs, so the kernel layers can be benchmarked at the scale
// the ROADMAP targets.
//
// Determinism contract (stronger than GenerateCaseStudy's): every row is
// generated from its own seed, derived purely from (corpus seed, side, row
// index) — never from a sequential stream. Generation is sharded across the
// executor for speed, but the same (seed, scale_factor) produces a
// BIT-IDENTICAL corpus at any thread count and any shard size, because no
// row ever reads another shard's random state. Matched right rows recompute
// their left partner's title directly from the partner's row seed, so even
// cross-row dependencies stay shard-free.
//
// Token-frequency skew follows the TPC-C NURand recipe: a small hot rank
// set is drawn through NURand(A, 0, hot_ranks-1) — the OR of two uniforms
// plus a seed-derived constant C, concentrating mass on a few ranks — while
// the cold tail draws uniformly from a wide synthetic lexicon. The result
// is a realistic Zipf-like distribution: a handful of tokens appear in a
// percent of all titles (stressing the dense-count probe loops) while most
// tokens are rare (rewarding the rare-token-first probe order).
struct ScaleCorpusOptions {
  uint64_t seed = 2019;
  double scale_factor = 1.0;  // rows per side = scale_factor * rows_per_sf
  size_t rows_per_sf = 1000;

  // Parallel generation grain: shard s generates rows [s*shard_rows,
  // (s+1)*shard_rows). Purely a scheduling knob — the corpus is identical
  // for every value (tested at several).
  size_t shard_rows = 4096;

  // Fraction of right rows that are noisy copies of some left row (gold
  // matches); the rest are unrelated filler.
  double match_rate = 0.3;

  // Title shape: lengths uniform in [min_title_tokens, max_title_tokens].
  size_t min_title_tokens = 5;
  size_t max_title_tokens = 11;

  // Skew shape. Each token slot draws a hot rank with probability
  // `hot_fraction` (via NURand over [0, hot_ranks)) and a uniform cold
  // term from the remaining `vocab_size - hot_ranks` otherwise.
  double hot_fraction = 0.12;
  size_t hot_ranks = 256;
  size_t nurand_a = 63;     // TPC-C A parameter for the hot-rank NURand
  size_t vocab_size = 50000;
};

struct ScaleCorpus {
  // Left, UMETRICS-style: RecordId, AwardTitle (UPPERCASE), PIName,
  // StartYear. Right, USDA-style: RecordId, AwardTitle (Mixed Case),
  // Director, StartYear. The case drift mirrors the case-study tables so
  // lowercase-normalizing blockers face the same shape.
  Table left;
  Table right;
  CandidateSet gold;  // (left row, right row) true matches
};

// Generates the corpus, sharded over `ctx`'s executor. InvalidArgument on a
// non-positive scale factor or a degenerate options combination.
Result<ScaleCorpus> GenerateScaleCorpus(const ScaleCorpusOptions& options = {},
                                        const ExecutorContext& ctx = {});

namespace internal_datagen {

// Deterministic scale-lexicon term #i in [0, vocab_size): the synthetic
// agronomy lexicon extended with a numeric disambiguator past its natural
// range. Pure function of the index.
std::string ScaleTerm(size_t i);

// Rows per side for an options struct (scale_factor * rows_per_sf, min 1).
size_t ScaleRows(const ScaleCorpusOptions& options);

}  // namespace internal_datagen

}  // namespace emx

#endif  // EMX_DATAGEN_SCALE_CORPUS_H_
