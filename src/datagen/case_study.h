#ifndef EMX_DATAGEN_CASE_STUDY_H_
#define EMX_DATAGEN_CASE_STUDY_H_

#include <memory>
#include <vector>

#include "src/block/blocker.h"
#include "src/core/result.h"
#include "src/datagen/preprocess.h"
#include "src/datagen/universe.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/labeling/label.h"
#include "src/labeling/oracle.h"
#include "src/ml/cross_validation.h"
#include "src/ml/matcher.h"
#include "src/rules/match_rules.h"
#include "src/workflow/em_workflow.h"

namespace emx {

// Canonical stage implementations of the paper's pipeline, shared by the
// bench harnesses, tests, and examples. Each function corresponds to one
// section of the paper; the experiment binaries compose them and print the
// paper-shaped tables.

// --- §7 blocking ---------------------------------------------------------

struct BlockingOutputs {
  CandidateSet c1;  // AE blocker on the award-number suffix (M1 pairs)
  CandidateSet c2;  // overlap blocker on AwardTitle, K = 3
  CandidateSet c3;  // overlap-coefficient blocker on AwardTitle, t = 0.7
  CandidateSet c;   // C1 ∪ C2 ∪ C3
};

// The three §7 blockers with the paper's parameters.
std::shared_ptr<Blocker> MakeM1EquivalenceBlocker();
std::shared_ptr<Blocker> MakeTitleOverlapBlocker(size_t k);
std::shared_ptr<Blocker> MakeTitleOverlapCoefficientBlocker(double threshold);

Result<BlockingOutputs> RunStandardBlocking(const Table& umetrics,
                                            const Table& usda);

// --- §5/§10 match rules ---------------------------------------------------

// V1 positive rules: M1 only (Figure 8 era).
std::vector<MatchRule> PositiveRulesV1();
// V2 positive rules: M1 plus the award-number-equals-project-number rule
// discovered in §10 (Figure 9/10 era).
std::vector<MatchRule> PositiveRulesV2();
// The §12 negative comparability rules.
std::vector<MatchRule> NegativeRules();

// --- §8 sampling & labeling ----------------------------------------------

// The domain-expert oracle for the original (or extra) tables.
OracleLabeler MakeOracle(const CandidateSet& gold, const CandidateSet& ambiguous,
                         double noise_rate = 0.07, uint64_t seed = 77);

// Labels `rounds` seeded samples of `per_round` pairs from `candidates`
// with the oracle's CORRECTED labels (the state after the §8 cross-check
// and LOO debugging).
LabeledSet CollectCorrectedLabels(const OracleLabeler& oracle,
                                  const CandidateSet& candidates,
                                  size_t rounds, size_t per_round,
                                  uint64_t seed);

// --- §9 feature generation & matcher selection ----------------------------

// The automatic feature set over the projected tables; with `case_fix` the
// lowercase twin features for AwardTitle/EmployeeName are included (the §9
// debugging fix).
Result<FeatureSet> CaseStudyFeatures(const Table& umetrics, const Table& usda,
                                     bool case_fix);

// The six §9 matcher families with fixed seeds.
std::vector<MatcherFactory> StandardMatcherFactories(uint64_t seed = 7);

struct TrainedMatcher {
  std::shared_ptr<MlMatcher> matcher;  // fitted on all usable labels
  FeatureSet features;
  MeanImputer imputer;                 // fitted on the training matrix
  Dataset train_data;
  std::vector<CvResult> cv_results;    // best-first
};

// Implements §9 end to end: drop Unsure labels and sure-rule pairs, build
// feature vectors, impute, 5-fold-CV all families, fit the winner on
// everything.
Result<TrainedMatcher> TrainBestMatcher(const Table& umetrics,
                                        const Table& usda,
                                        const LabeledSet& labels,
                                        const std::vector<MatchRule>& sure_rules,
                                        bool case_fix, uint64_t seed = 7);

// --- workflow assembly -----------------------------------------------------

// Builds the Figure 8 / 9 / 10 workflow: positive rules + standard blockers
// + the trained matcher (+ negative rules when `with_negative_rules`).
EmWorkflow BuildCaseStudyWorkflow(const std::vector<MatchRule>& positive_rules,
                                  const TrainedMatcher& trained,
                                  bool with_negative_rules);

}  // namespace emx

#endif  // EMX_DATAGEN_CASE_STUDY_H_
