#ifndef EMX_DATAGEN_IRIS_MATCHER_H_
#define EMX_DATAGEN_IRIS_MATCHER_H_

#include "src/block/candidate_set.h"
#include "src/core/result.h"
#include "src/table/table.h"

namespace emx {

// The production rule-based matcher deployed at UMETRICS ("the IRIS
// matcher", §11). The paper characterises it behaviourally — precision
// (100%, 100%), recall (65.1%, 71.8%) — i.e. it finds exactly the pairs
// with hard identifier evidence and nothing else. We model it as the two
// exact-number rules over the projected tables:
//   - suffix(UMETRICS AwardNumber) == USDA AwardNumber        (M1)
//   - suffix(UMETRICS AwardNumber) == USDA ProjectNumber      (§10 rule)
Result<CandidateSet> RunIrisMatcher(const Table& umetrics_projected,
                                    const Table& usda_projected);

}  // namespace emx

#endif  // EMX_DATAGEN_IRIS_MATCHER_H_
