#include "src/datagen/iris_matcher.h"

#include "src/rules/match_rules.h"

namespace emx {

Result<CandidateSet> RunIrisMatcher(const Table& umetrics_projected,
                                    const Table& usda_projected) {
  std::vector<MatchRule> rules;
  rules.push_back(MakeM1AwardNumberRule("AwardNumber", "AwardNumber"));
  rules.push_back(
      MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber"));
  return ApplyRulesCartesian(rules, umetrics_projected, usda_projected);
}

}  // namespace emx
