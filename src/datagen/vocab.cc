#include "src/datagen/vocab.h"

#include "src/core/strings.h"

namespace emx {
namespace vocab {

// Pools are function-local static references (never destroyed), avoiding
// non-trivially-destructible globals.

const std::vector<std::string>& Methods() {
  static const auto& v = *new std::vector<std::string>{
      "development", "evaluation",     "analysis",       "management",
      "characterization", "improvement", "assessment",   "modeling",
      "monitoring",  "optimization",   "regulation",     "identification",
      "integration", "breeding",       "conservation",   "enhancement",
      "suppression", "utilization",    "quantification", "restoration",
      "detection",   "mitigation",     "propagation",    "selection",
      "screening",   "mapping",        "validation",     "surveillance",
      "remediation", "intensification"};
  return v;
}

const std::vector<std::string>& Qualifiers() {
  static const auto& v = *new std::vector<std::string>{
      "genetic",      "epigenetic",  "molecular",    "nutritional",
      "ecological",   "physiological", "microbial",  "sustainable",
      "integrated",   "agronomic",   "genomic",      "economic",
      "environmental", "reproductive", "postharvest", "transcriptional",
      "biochemical",  "hydrological", "entomological", "pathogenic",
      "rhizosphere",  "photosynthetic", "metabolic",  "symbiotic",
      "quantitative", "behavioral",  "landscape",    "regional",
      "multistate",   "applied"};
  return v;
}

const std::vector<std::string>& Subjects() {
  static const auto& v = *new std::vector<std::string>{
      "organization", "silencing",   "resistance",  "tolerance",
      "diversity",    "productivity", "quality",    "dynamics",
      "interactions", "pathways",    "expression",  "efficiency",
      "stability",    "responses",   "mechanisms",  "variation",
      "architecture", "competition", "colonization", "senescence",
      "dormancy",     "germination", "pollination", "fertility",
      "virulence",    "phenology",   "morphology",  "yield",
      "persistence",  "adaptation"};
  return v;
}

const std::vector<std::string>& Crops() {
  static const auto& v = *new std::vector<std::string>{
      "maize",        "soybean",     "wheat",        "corn",
      "alfalfa",      "potato",      "cranberry",    "carrot",
      "oat",          "barley",      "dairy cattle", "swine",
      "poultry",      "apple",       "ginseng",      "snap bean",
      "sweet corn",   "tomato",      "cucumber",     "bluegrass",
      "clover",       "sorghum",     "hops",         "mint",
      "pea",          "beet",        "onion",        "cabbage",
      "strawberry",   "raspberry",   "trout",        "honeybee",
      "turf",         "switchgrass", "flax",         "sunflower",
      "canola",       "rye",         "millet",       "pumpkin"};
  return v;
}

const std::vector<std::string>& Contexts() {
  static const auto& v = *new std::vector<std::string>{
      "production systems",      "wisconsin farms",
      "the north central states", "cropping systems",
      "field conditions",        "cold climates",
      "organic systems",         "greenhouse production",
      "the upper midwest",       "rotational grazing",
      "dairy operations",        "irrigated plots",
      "conservation tillage",    "prairie ecosystems",
      "watershed landscapes",    "controlled environments",
      "storage facilities",      "processing operations",
      "rural communities",       "extension programs"};
  return v;
}

const std::vector<std::string>& GenericTitles() {
  static const auto& v = *new std::vector<std::string>{
      "lab supplies",
      "equipment and lab supplies",
      "hatch administrative project",
      "administrative support",
      "graduate research assistantship",
      "research support services",
      "miscellaneous research expenses",
      "general agricultural research",
      "station operations",
      "summer field support"};
  return v;
}

const std::vector<std::string>& Surnames() {
  static const auto& v = *new std::vector<std::string>{
      "smith",     "johnson",   "anderson", "nelson",    "olson",
      "thompson",  "peterson",  "larson",   "hansen",    "miller",
      "davis",     "wilson",    "moore",    "taylor",    "brown",
      "jones",     "williams",  "jackson",  "white",     "harris",
      "martin",    "garcia",    "clark",    "lewis",     "lee",
      "walker",    "hall",      "allen",    "young",     "king",
      "wright",    "scott",     "green",    "baker",     "adams",
      "campbell",  "mitchell",  "roberts",  "carter",    "phillips",
      "evans",     "turner",    "torres",   "parker",    "collins",
      "edwards",   "stewart",   "flores",   "morris",    "murphy",
      "cook",      "rogers",    "kermicle", "hammer",    "colquhoun",
      "esker",     "hueth",     "tracy",    "stoltenberg", "jahn",
      "bussan",    "groves",    "gevens",   "lauer",     "shaver",
      "weigel",    "fricke",    "cabrera",  "ruark",     "laboski",
      "conley",    "davis",     "mitchell", "silva",     "ane",
      "kaeppler",  "de leon",   "hirsch",   "bethke",    "endelman"};
  return v;
}

const std::vector<std::string>& FirstNames() {
  static const auto& v = *new std::vector<std::string>{
      "john",    "james",    "robert",  "michael", "william",
      "david",   "richard",  "joseph",  "thomas",  "charles",
      "mary",    "patricia", "jennifer", "linda",  "elizabeth",
      "barbara", "susan",    "jessica", "sarah",   "karen",
      "nancy",   "lisa",     "margaret", "betty",  "sandra",
      "paul",    "mark",     "donald",  "george",  "kenneth",
      "steven",  "edward",   "brian",   "ronald",  "anthony",
      "kevin",   "jason",    "matthew", "gary",    "timothy"};
  return v;
}

const std::vector<std::string>& JobTitles() {
  static const auto& v = *new std::vector<std::string>{
      "professor",          "associate professor", "assistant professor",
      "research associate", "research assistant",  "postdoctoral fellow",
      "lab technician",     "graduate assistant",  "program manager",
      "field technician",   "data analyst",        "outreach specialist"};
  return v;
}

const std::vector<std::string>& OrgUnitNames() {
  static const auto& v = *new std::vector<std::string>{
      "agronomy",                 "animal sciences",
      "bacteriology",             "biochemistry",
      "biological systems engineering", "dairy science",
      "entomology",               "food science",
      "forest and wildlife ecology", "genetics",
      "horticulture",             "nutritional sciences",
      "plant pathology",          "soil science",
      "agricultural and applied economics", "life sciences communication",
      "landscape architecture",   "community and environmental sociology",
      "botany",                   "zoology",
      "statistics",               "computer sciences"};
  return v;
}

const std::vector<std::string>& VendorNames() {
  static const auto& v = *new std::vector<std::string>{
      "midwest lab supply co",   "badger scientific inc",
      "dane county seed",        "wisconsin ag equipment",
      "northern greenhouse systems", "prairie instruments llc",
      "great lakes chemical",    "madison analytical services",
      "crop care logistics",     "four lakes irrigation",
      "state line fertilizer",   "mendota biosciences",
      "kettle moraine tractor",  "rock river genetics",
      "cedar grove diagnostics", "driftless area consulting"};
  return v;
}

const std::vector<std::string>& FundingSources() {
  static const auto& v = *new std::vector<std::string>{
      "USDA",  "USDA-NIFA", "USDA-ARS", "USDA-FS",
      "STATE", "HATCH",     "MCINTIRE-STENNIS", "SMITH-LEVER"};
  return v;
}

std::string SyntheticTerm(size_t i) {
  // Pure function of the index: mixed-radix composition of syllables.
  static const char* kPre[] = {"agri", "bio",   "phyto", "myco",  "entomo",
                               "hydro", "pedo",  "zoo",   "geno",  "chemo",
                               "rhizo", "xylo",  "lacto", "nitro", "thermo",
                               "cryo",  "halo",  "meso",  "peri",  "sporo"};
  static const char* kMid[] = {"carp", "derm", "gram", "lept", "morph",
                               "pharm", "phyll", "plast", "stach", "troph",
                               "vor",  "zym",  "blast", "clad", "cocc",
                               "cyt",  "flor", "gen",   "lith", "nem"};
  static const char* kSuf[] = {"ine", "ase", "oid", "ium", "ella", "osis",
                               "ula", "ans", "ara", "ite"};
  constexpr size_t kNumPre = sizeof(kPre) / sizeof(kPre[0]);
  constexpr size_t kNumMid = sizeof(kMid) / sizeof(kMid[0]);
  constexpr size_t kNumSuf = sizeof(kSuf) / sizeof(kSuf[0]);
  size_t pre = i % kNumPre;
  size_t mid = (i / kNumPre) % kNumMid;
  size_t suf = (i / (kNumPre * kNumMid)) % kNumSuf;
  return std::string(kPre[pre]) + kMid[mid] + kSuf[suf];
}

}  // namespace vocab

std::vector<std::string> MakeTitleTokens(RandomEngine& rng,
                                         double synthetic_prob) {
  auto pick = [&rng](const std::vector<std::string>& pool) {
    return pool[rng.NextBelow(pool.size())];
  };
  // Multi-word pool entries ("dairy cattle") are split into tokens.
  auto append = [](std::vector<std::string>& out, const std::string& words) {
    for (auto& w : SplitWhitespace(words)) out.push_back(w);
  };
  // A content slot: mostly a synthetic domain term, sometimes a curated
  // word. The synthetic majority keeps random token collisions rare.
  auto content = [&](const std::vector<std::string>& pool) -> std::string {
    if (rng.NextBernoulli(synthetic_prob)) {
      return vocab::SyntheticTerm(rng.NextBelow(vocab::kSyntheticLexiconSize));
    }
    return pool[rng.NextBelow(pool.size())];
  };

  std::vector<std::string> t;
  switch (rng.NextBelow(12)) {
    case 0:
    case 1:
    case 2:
      // Connective-free noun phrase: "glumarine soybean tolerance screening".
      append(t, content(vocab::Qualifiers()));
      append(t, content(vocab::Crops()));
      append(t, content(vocab::Subjects()));
      append(t, content(vocab::Methods()));
      break;
    case 3:
    case 4:
      // "phytocarpine resistance mapping maize hybrids"
      append(t, content(vocab::Subjects()));
      append(t, content(vocab::Methods()));
      append(t, content(vocab::Crops()));
      append(t, content(vocab::Qualifiers()));
      append(t, content(vocab::Subjects()));
      break;
    case 5:
      // Short three-word form (feeds the overlap-coefficient blocker).
      append(t, content(vocab::Crops()));
      append(t, content(vocab::Subjects()));
      append(t, content(vocab::Methods()));
      break;
    case 6:
      // Two-word form: only the overlap-coefficient blocker can admit
      // pairs of these (the §7 step 3 motivation).
      append(t, content(vocab::Crops()));
      append(t, content(vocab::Methods()));
      break;
    case 7:
    case 8:
      // Single connective: "characterization of mycodermine dormancy".
      append(t, content(vocab::Methods()));
      t.push_back("of");
      append(t, content(vocab::Qualifiers()));
      append(t, content(vocab::Subjects()));
      append(t, content(vocab::Crops()));
      break;
    case 9:
      // "sporoviorine screening in dairy operations"
      append(t, content(vocab::Subjects()));
      append(t, content(vocab::Methods()));
      t.push_back("in");
      append(t, pick(vocab::Contexts()));
      break;
    case 10:
      // "halonemite dynamics and cryoblastase suppression"
      append(t, content(vocab::Qualifiers()));
      append(t, content(vocab::Subjects()));
      t.push_back("and");
      append(t, content(vocab::Qualifiers()));
      append(t, content(vocab::Methods()));
      break;
    default:
      // The florid multi-clause style of the paper's Figure 5 examples.
      append(t, content(vocab::Qualifiers()));
      append(t, content(vocab::Subjects()));
      t.push_back("and");
      append(t, content(vocab::Qualifiers()));
      append(t, content(vocab::Subjects()));
      t.push_back("of");
      append(t, content(vocab::Crops()));
      append(t, content(vocab::Subjects()));
      break;
  }
  return t;
}

PersonName MakePerson(RandomEngine& rng) {
  PersonName p;
  p.surname = vocab::Surnames()[rng.NextBelow(vocab::Surnames().size())];
  p.first_name =
      vocab::FirstNames()[rng.NextBelow(vocab::FirstNames().size())];
  p.middle_initial = static_cast<char>('a' + rng.NextBelow(26));
  return p;
}

std::string FormatUmetricsName(const PersonName& p) {
  std::string s = AsciiToUpper(p.surname) + ", " + AsciiToUpper(p.first_name) +
                  " " + static_cast<char>(p.middle_initial - 'a' + 'A');
  return s;
}

std::string FormatUsdaDirector(const PersonName& p) {
  std::string surname = p.surname;
  if (!surname.empty()) surname[0] = static_cast<char>(surname[0] - 'a' + 'A');
  std::string s = surname;
  s += ", ";
  s += static_cast<char>(p.first_name[0] - 'a' + 'A');
  s += '.';
  s += static_cast<char>(p.middle_initial - 'a' + 'A');
  return s;
}

std::string ToUpperTitle(const std::vector<std::string>& tokens) {
  return AsciiToUpper(Join(tokens, " "));
}

std::string ToMixedTitle(const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& tok : tokens) {
    std::string w = tok;
    // Short connectives stay lowercase, Title Case elsewhere.
    if (w != "of" && w != "in" && w != "and" && w != "for" && w != "the" &&
        !w.empty()) {
      if (w[0] >= 'a' && w[0] <= 'z') w[0] = static_cast<char>(w[0] - 'a' + 'A');
    }
    out.push_back(std::move(w));
  }
  return Join(out, " ");
}

}  // namespace emx
