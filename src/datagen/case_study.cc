#include "src/datagen/case_study.h"

#include <algorithm>

#include "src/block/attr_equivalence_blocker.h"
#include "src/block/overlap_blocker.h"
#include "src/labeling/sampler.h"
#include "src/ml/decision_tree.h"
#include "src/ml/linear_regression.h"
#include "src/ml/linear_svm.h"
#include "src/ml/logistic_regression.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"
#include "src/rules/number_pattern.h"

namespace emx {

std::shared_ptr<Blocker> MakeM1EquivalenceBlocker() {
  // The paper materialized a TempAwardNumber suffix column; the transform
  // hook does the same job without mutating the table (§7 step 1).
  return std::make_shared<AttrEquivalenceBlocker>(
      "AwardNumber", "AwardNumber",
      [](const std::string& s) { return AwardNumberSuffix(s); }, nullptr);
}

std::shared_ptr<Blocker> MakeTitleOverlapBlocker(size_t k) {
  OverlapBlockerOptions opts;
  opts.left_attr = "AwardTitle";
  opts.right_attr = "AwardTitle";
  opts.lowercase = true;
  opts.strip_punctuation = true;
  return std::make_shared<OverlapBlocker>(opts, k);
}

std::shared_ptr<Blocker> MakeTitleOverlapCoefficientBlocker(double threshold) {
  OverlapBlockerOptions opts;
  opts.left_attr = "AwardTitle";
  opts.right_attr = "AwardTitle";
  opts.lowercase = true;
  opts.strip_punctuation = true;
  return std::make_shared<OverlapCoefficientBlocker>(opts, threshold);
}

Result<BlockingOutputs> RunStandardBlocking(const Table& umetrics,
                                            const Table& usda) {
  BlockingOutputs out;
  EMX_ASSIGN_OR_RETURN(out.c1,
                       MakeM1EquivalenceBlocker()->Block(umetrics, usda));
  EMX_ASSIGN_OR_RETURN(out.c2,
                       MakeTitleOverlapBlocker(3)->Block(umetrics, usda));
  EMX_ASSIGN_OR_RETURN(
      out.c3, MakeTitleOverlapCoefficientBlocker(0.7)->Block(umetrics, usda));
  out.c = CandidateSet::UnionAll({&out.c1, &out.c2, &out.c3});
  return out;
}

std::vector<MatchRule> PositiveRulesV1() {
  return {MakeM1AwardNumberRule("AwardNumber", "AwardNumber")};
}

std::vector<MatchRule> PositiveRulesV2() {
  return {MakeM1AwardNumberRule("AwardNumber", "AwardNumber"),
          MakeAwardProjectNumberRule("AwardNumber", "ProjectNumber")};
}

std::vector<MatchRule> NegativeRules() {
  auto suffix = [](const std::string& s) { return AwardNumberSuffix(s); };
  return {MakeComparableMismatchRule("neg_award_vs_award", "AwardNumber",
                                     "AwardNumber", suffix, nullptr),
          MakeComparableMismatchRule("neg_award_vs_project", "AwardNumber",
                                     "ProjectNumber", suffix, nullptr)};
}

OracleLabeler MakeOracle(const CandidateSet& gold,
                         const CandidateSet& ambiguous, double noise_rate,
                         uint64_t seed) {
  OracleOptions opts;
  opts.noise_rate = noise_rate;
  opts.unsure_rate = 0.8;
  opts.seed = seed;
  return OracleLabeler(gold, ambiguous, opts);
}

LabeledSet CollectCorrectedLabels(const OracleLabeler& oracle,
                                  const CandidateSet& candidates,
                                  size_t rounds, size_t per_round,
                                  uint64_t seed) {
  LabeledSet labels;
  for (size_t round = 0; round < rounds; ++round) {
    CandidateSet sample =
        SamplePairs(candidates, per_round, seed + round, labels);
    for (const RecordPair& p : sample) {
      labels.SetLabel(p, oracle.CorrectedLabel(p));
    }
  }
  return labels;
}

Result<FeatureSet> CaseStudyFeatures(const Table& umetrics, const Table& usda,
                                     bool case_fix) {
  FeatureGenOptions opts;
  opts.exclude = {"RecordId"};
  if (case_fix) {
    opts.lowercase_variants = {"AwardTitle", "EmployeeName"};
  }
  return GenerateFeatures(umetrics, usda, opts);
}

std::vector<MatcherFactory> StandardMatcherFactories(uint64_t seed) {
  return {
      [seed] {
        DecisionTreeOptions o;
        o.seed = seed;
        return std::make_unique<DecisionTreeMatcher>(o);
      },
      [seed] {
        RandomForestOptions o;
        o.seed = seed;
        return std::make_unique<RandomForestMatcher>(o);
      },
      [] { return std::make_unique<LogisticRegressionMatcher>(); },
      [] { return std::make_unique<NaiveBayesMatcher>(); },
      [seed] {
        LinearSvmOptions o;
        o.seed = seed;
        return std::make_unique<LinearSvmMatcher>(o);
      },
      [] { return std::make_unique<LinearRegressionMatcher>(); },
  };
}

Result<TrainedMatcher> TrainBestMatcher(const Table& umetrics,
                                        const Table& usda,
                                        const LabeledSet& labels,
                                        const std::vector<MatchRule>& sure_rules,
                                        bool case_fix, uint64_t seed) {
  TrainedMatcher out;
  EMX_ASSIGN_OR_RETURN(out.features,
                       CaseStudyFeatures(umetrics, usda, case_fix));

  // §9: drop Unsure pairs and sure matches before training.
  LabeledSet usable = labels.WithoutUnsure();
  std::vector<RecordPair> kept_pairs;
  std::vector<int> kept_labels;
  for (const LabeledPair& item : usable.items()) {
    bool sure = false;
    for (const MatchRule& rule : sure_rules) {
      if (rule.fires(umetrics, item.pair.left, usda, item.pair.right)) {
        sure = true;
        break;
      }
    }
    if (sure) continue;
    kept_pairs.push_back(item.pair);
    kept_labels.push_back(item.label == Label::kYes ? 1 : 0);
  }
  if (kept_pairs.size() < 20) {
    return Status::FailedPrecondition(
        "TrainBestMatcher: too few usable labeled pairs (" +
        std::to_string(kept_pairs.size()) + ")");
  }

  // Vectorize. The labeled pairs are kept in their original order, so the
  // Dataset rows align with kept_labels.
  FeatureMatrix matrix;
  {
    // CandidateSet would sort/dedupe; vectorize via a stable path instead.
    std::vector<RecordPair> ordered = kept_pairs;
    CandidateSet as_set(ordered);
    // Map from pair to its row in the vectorized (sorted) matrix.
    EMX_ASSIGN_OR_RETURN(FeatureMatrix sorted_matrix,
                         VectorizePairs(umetrics, usda, as_set, out.features));
    matrix.feature_names = sorted_matrix.feature_names;
    matrix.rows.reserve(kept_pairs.size());
    for (const RecordPair& p : kept_pairs) {
      // Binary search the sorted candidate set for the row index.
      const auto& v = as_set.pairs();
      size_t lo = std::lower_bound(v.begin(), v.end(), p) - v.begin();
      matrix.rows.push_back(sorted_matrix.rows[lo]);
    }
  }
  out.imputer.Fit(matrix);
  EMX_RETURN_IF_ERROR(out.imputer.Transform(matrix));

  out.train_data.x = matrix.rows;
  out.train_data.y = kept_labels;
  out.train_data.feature_names = matrix.feature_names;

  // 5-fold CV over the six families (§9), then fit the winner on all data.
  EMX_ASSIGN_OR_RETURN(
      out.cv_results,
      SelectMatcher(StandardMatcherFactories(seed), out.train_data, 5, seed));
  const std::string& best = out.cv_results.front().matcher_name;
  for (const MatcherFactory& factory : StandardMatcherFactories(seed)) {
    std::unique_ptr<MlMatcher> m = factory();
    if (m->name() == best) {
      out.matcher = std::move(m);
      break;
    }
  }
  EMX_RETURN_IF_ERROR(out.matcher->Fit(out.train_data));
  return out;
}

EmWorkflow BuildCaseStudyWorkflow(const std::vector<MatchRule>& positive_rules,
                                  const TrainedMatcher& trained,
                                  bool with_negative_rules) {
  EmWorkflow wf;
  for (const MatchRule& r : positive_rules) wf.AddPositiveRule(r);
  wf.AddBlocker(MakeM1EquivalenceBlocker());
  wf.AddBlocker(MakeTitleOverlapBlocker(3));
  wf.AddBlocker(MakeTitleOverlapCoefficientBlocker(0.7));
  wf.SetMatcher(trained.matcher, trained.features, trained.imputer);
  if (with_negative_rules) {
    for (const MatchRule& r : NegativeRules()) wf.AddNegativeRule(r);
  }
  return wf;
}

}  // namespace emx
