#include "src/datagen/preprocess.h"

#include <unordered_map>

#include "src/table/table_ops.h"

namespace emx {

namespace {

// Builds award-number -> "name1|name2|..." from the employees table
// (§6 step 4.b: multiple employee names per award are concatenated with
// '|', each deduplicated).
Result<std::unordered_map<std::string, std::string>> ConcatEmployeeNames(
    const Table& employees) {
  EMX_ASSIGN_OR_RETURN(Table grouped,
                       GroupConcat(employees, "UniqueAwardNumber", "FullName",
                                   "|"));
  std::unordered_map<std::string, std::string> out;
  out.reserve(grouped.num_rows() * 2);
  for (size_t r = 0; r < grouped.num_rows(); ++r) {
    // GroupConcat keeps duplicates (one per pay period); dedupe tokens here
    // while preserving order.
    std::string joined = grouped.at(r, 1).AsString();
    std::string result;
    std::unordered_map<std::string, bool> seen;
    size_t start = 0;
    for (size_t i = 0; i <= joined.size(); ++i) {
      if (i == joined.size() || joined[i] == '|') {
        std::string name = joined.substr(start, i - start);
        start = i + 1;
        if (name.empty() || seen.count(name)) continue;
        seen[name] = true;
        if (!result.empty()) result += '|';
        result += name;
      }
    }
    out[grouped.at(r, 0).AsString()] = std::move(result);
  }
  return out;
}

// Projects one UMETRICS agg-style table down to the aligned schema.
Result<Table> ProjectUmetrics(
    const Table& agg,
    const std::unordered_map<std::string, std::string>& names) {
  EMX_ASSIGN_OR_RETURN(
      Table t, Project(agg, {"UniqueAwardNumber", "AwardTitle",
                             "FirstTransDate", "LastTransDate"}));
  EMX_ASSIGN_OR_RETURN(
      t, RenameColumns(t, {{"UniqueAwardNumber", "AwardNumber"}}));
  std::vector<Value> employee_col;
  employee_col.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    auto it = names.find(t.at(r, 0).AsString());
    employee_col.push_back(it == names.end() || it->second.empty()
                               ? Value::Null()
                               : Value(it->second));
  }
  EMX_RETURN_IF_ERROR(t.AddColumn({"EmployeeName", DataType::kString},
                                  std::move(employee_col)));
  return AddIdColumn(t, "RecordId");
}

}  // namespace

Result<ProjectedTables> PreprocessCaseStudy(const CaseStudyData& data) {
  ProjectedTables out;
  EMX_ASSIGN_OR_RETURN(auto names, ConcatEmployeeNames(data.umetrics_employees));
  EMX_ASSIGN_OR_RETURN(out.umetrics,
                       ProjectUmetrics(data.umetrics_award_agg, names));
  EMX_ASSIGN_OR_RETURN(out.extra,
                       ProjectUmetrics(data.extra_umetrics_agg, names));

  EMX_ASSIGN_OR_RETURN(
      Table usda,
      Project(data.usda,
              {"AwardNumber", "ProjectTitle", "ProjectStartDate",
               "ProjectEndDate", "AccessionNumber", "ProjectDirector",
               "ProjectNumber"}));
  EMX_ASSIGN_OR_RETURN(
      usda, RenameColumns(usda, {{"ProjectTitle", "AwardTitle"},
                                 {"ProjectStartDate", "FirstTransDate"},
                                 {"ProjectEndDate", "LastTransDate"},
                                 {"ProjectDirector", "EmployeeName"}}));
  EMX_ASSIGN_OR_RETURN(out.usda, AddIdColumn(usda, "RecordId"));
  return out;
}

}  // namespace emx
