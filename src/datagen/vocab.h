#ifndef EMX_DATAGEN_VOCAB_H_
#define EMX_DATAGEN_VOCAB_H_

#include <string>
#include <vector>

#include "src/core/random.h"

namespace emx {

// Word pools for synthetic agricultural-research grant data. Pool sizes are
// calibrated so that random title pairs rarely share 3+ words (driving the
// paper's blocking-size shape: overlap K=1 admits ~8% of the Cartesian
// product, K=3 admits ~0.1%).
namespace vocab {

const std::vector<std::string>& Methods();    // "development", "evaluation"...
const std::vector<std::string>& Qualifiers(); // "genetic", "sustainable"...
const std::vector<std::string>& Subjects();   // "resistance", "dynamics"...
const std::vector<std::string>& Crops();      // "maize", "cranberry"...
const std::vector<std::string>& Contexts();   // "production systems"...
const std::vector<std::string>& GenericTitles();  // "lab supplies"...
const std::vector<std::string>& Surnames();
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& JobTitles();
const std::vector<std::string>& OrgUnitNames();
const std::vector<std::string>& VendorNames();
const std::vector<std::string>& FundingSources();

// Deterministic synthetic domain term #i (agronomy-flavoured pseudo-Latin,
// e.g. "phytocarpine"). The lexicon widens the title vocabulary far beyond
// the hand-written pools so that *random* title pairs rarely share words —
// matching the paper's blocking profile, where only ~8% of the Cartesian
// product shares even one title token.
std::string SyntheticTerm(size_t i);
constexpr size_t kSyntheticLexiconSize = 1600;

}  // namespace vocab

// A canonical grant title as a lowercase token sequence (joined with single
// spaces downstream; casing is applied per dataset side). Roughly 60% of
// titles are connective-free noun phrases; content slots draw from the
// synthetic lexicon with probability `synthetic_prob` and from the curated
// pools otherwise. Lower `synthetic_prob` makes titles collide more — used
// for the §10 extra records, whose candidate set is large despite them
// matching almost nothing.
std::vector<std::string> MakeTitleTokens(RandomEngine& rng,
                                         double synthetic_prob = 0.72);

// "surname, f.m" canonical director identity.
struct PersonName {
  std::string surname;     // "smith"
  std::string first_name;  // "john"
  char middle_initial;     // 'r'
};
PersonName MakePerson(RandomEngine& rng);

// "SMITH, JOHN R" (UMETRICS employee style).
std::string FormatUmetricsName(const PersonName& p);
// "Smith, J.R" (USDA project-director style).
std::string FormatUsdaDirector(const PersonName& p);

// Case helpers: "swamp dodder ecology" -> "SWAMP DODDER ECOLOGY" /
// "Swamp Dodder Ecology".
std::string ToUpperTitle(const std::vector<std::string>& tokens);
std::string ToMixedTitle(const std::vector<std::string>& tokens);

}  // namespace emx

#endif  // EMX_DATAGEN_VOCAB_H_
