#ifndef EMX_DATAGEN_UNIVERSE_H_
#define EMX_DATAGEN_UNIVERSE_H_

#include <cstdint>
#include <string>

#include "src/block/candidate_set.h"
#include "src/core/result.h"
#include "src/table/table.h"

namespace emx {

// Knobs for the synthetic UMETRICS/USDA universe. Defaults regenerate the
// paper's case study at its documented scale: 1336 + 496 UMETRICS award
// rows, 1915 USDA rows, ~210 M1 award-number matches, ~473 M4
// project-number matches, a title-evidence-only group, sibling-project
// false-positive bait (the §12 negative-rule targets), generic-title
// ambiguous pairs (the "Unsure" mass), and NC/NRSP-suffixed titles (the D1
// discrepancy family).
struct UniverseOptions {
  uint64_t seed = 2019;

  size_t num_umetrics = 1336;  // UMETRICSAwardAggMatching rows
  size_t num_usda = 1915;      // USDAAwardMatching rows
  size_t num_extra = 496;      // the §10 late-arriving UMETRICS records

  // Match-group sizes, counted in UMETRICS records; one-to-many sub-award
  // duplication adds extra USDA rows (and gold pairs) on top.
  size_t m1_group = 200;     // USDA AwardNumber == UMETRICS award suffix
  size_t m4_group = 450;     // USDA ProjectNumber == UMETRICS award suffix
  size_t title_group = 280;  // only title/director/date evidence
  size_t typo_group = 25;    // true matches whose numbers are comparable
                             // but differ by a typo (killed by the negative
                             // rule -> the §12 recall dip)
  double one_to_many_rate = 0.05;

  size_t sibling_rows = 280;     // USDA sibling-project rows (label: No)
  size_t generic_umetrics = 40;  // generic-title rows (ambiguous pairs)
  size_t generic_usda = 32;
  size_t ncnrsp_rows = 12;       // D1 "NC/NRSP"-suffix pairs (ambiguous)

  size_t extra_m1 = 30;  // sure matches among the extra records (§10: 55)
  size_t extra_m4 = 25;

  // Raw-table row scales. The paper's employee/vendor/subaward tables are
  // large (1.45M / 378K / 21K rows); defaults are scaled down for fast
  // generation — set paper_scale to regenerate the full Figure 2 sizes.
  bool paper_scale = false;
  size_t employee_rows = 45000;
  size_t vendor_rows = 12000;
  size_t subaward_rows = 2100;
  size_t object_code_rows = 4574;
  size_t org_unit_rows = 264;
};

// Everything the case study consumes, as the raw CSV-shaped tables of
// Figure 2/3/4 plus ground truth that the real study did not have.
struct CaseStudyData {
  // Raw tables (§4).
  Table umetrics_award_agg;    // 13 cols
  Table umetrics_employees;    // 13 cols
  Table umetrics_object_codes; // 3 cols
  Table umetrics_org_units;    // 5 cols
  Table umetrics_subaward;     // 23 cols
  Table umetrics_vendor;       // 21 cols
  Table usda;                  // 78 cols
  Table extra_umetrics_agg;    // the §10 496-row patch, agg schema

  // Ground truth over (award_agg row, usda row) indices — preprocessing
  // preserves row order, so these also index the projected tables.
  CandidateSet gold;            // true matches, original tables
  CandidateSet gold_extra;      // true matches, (extra row, usda row)
  CandidateSet ambiguous;       // pairs even experts cannot decide
  CandidateSet ambiguous_extra;

  // Per-group gold pair counts, for experiment reporting.
  size_t m1_pairs = 0;
  size_t m4_pairs = 0;
  size_t title_pairs = 0;
  size_t typo_pairs = 0;
  size_t sibling_pairs = 0;
};

// Deterministically generates the universe; identical options (including
// seed) produce identical tables on every platform.
Result<CaseStudyData> GenerateCaseStudy(const UniverseOptions& options = {});

}  // namespace emx

#endif  // EMX_DATAGEN_UNIVERSE_H_
