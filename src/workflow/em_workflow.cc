#include "src/workflow/em_workflow.h"

#include <optional>

#include "src/core/failpoint.h"

namespace emx {

void EmWorkflow::SetMatcher(std::shared_ptr<MlMatcher> matcher,
                            FeatureSet features, MeanImputer imputer) {
  matcher_ = std::move(matcher);
  features_ = std::move(features);
  imputer_ = std::move(imputer);
  if (matcher_) matcher_->set_executor(exec_ctx_);
}

void EmWorkflow::SetExecutor(const ExecutorContext& ctx) {
  exec_ctx_ = ctx;
  if (matcher_) matcher_->set_executor(exec_ctx_);
}

Result<CandidateSet> EmWorkflow::RunPositiveRules(const Table& left,
                                                  const Table& right) const {
  EMX_FAILPOINT("workflow/positive_rules");
  if (positive_rules_.empty()) return CandidateSet();
  return ApplyRulesCartesian(positive_rules_, left, right);
}

Result<CandidateSet> EmWorkflow::RunBlocking(
    const Table& left, const Table& right,
    const CandidateSet& sure_matches) const {
  EMX_FAILPOINT("workflow/block");
  // The candidate set always includes the sure matches (the paper folds M1
  // into blocking so rule-satisfying pairs cannot be lost, §7 step 1). The
  // blockers are independent of one another, so they fan out across the
  // executor; the union below walks their results in registration order, a
  // deterministic merge into C2. Each blocker also receives the executor
  // for its own internal chunking (nested calls serialize on the worker
  // they land on).
  std::vector<std::optional<Result<CandidateSet>>> blocked(blockers_.size());
  exec_ctx_.get().ParallelFor(
      0, blockers_.size(), /*grain=*/1, [&](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b) {
          blocked[b] = blockers_[b]->Block(left, right, exec_ctx_);
        }
      });
  CandidateSet candidates = sure_matches;
  for (std::optional<Result<CandidateSet>>& c : blocked) {
    if (!c->ok()) return c->status();
    candidates = CandidateSet::Union(candidates, **c);
  }
  return candidates;
}

Result<CandidateSet> EmWorkflow::RunMatching(
    const Table& left, const Table& right,
    const CandidateSet& ml_input) const {
  EMX_FAILPOINT("workflow/match");
  if (matcher_ == nullptr || ml_input.empty()) return CandidateSet();
  // Columnar end to end: vectorize into a PairBatch (batch similarity
  // kernels fill feature columns), impute per column, score through the
  // matcher's batch path (flattened forest for random forests). Same
  // doubles as the row-major pipeline, bit for bit.
  EMX_ASSIGN_OR_RETURN(PairBatch batch,
                       VectorizePairsBatch(left, right, ml_input, features_,
                                           exec_ctx_, prep_cache_.get()));
  EMX_RETURN_IF_ERROR(imputer_.Transform(batch));
  std::vector<int> pred = matcher_->PredictBatch(batch);
  std::vector<RecordPair> positives;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 1) positives.push_back(ml_input[i]);
  }
  return CandidateSet(std::move(positives));
}

Result<CandidateSet> EmWorkflow::RunNegativeRules(
    const Table& left, const Table& right, const CandidateSet& ml_predicted,
    CandidateSet* flipped) const {
  EMX_FAILPOINT("workflow/negative_rules");
  // Negative rules flip ML matches only — sure matches are, by the UMETRICS
  // team's definition, matches (Figure 10 applies the rules to R1/R2, not
  // to C1/D1).
  if (negative_rules_.empty() || ml_predicted.empty()) {
    if (flipped != nullptr) *flipped = CandidateSet();
    return ml_predicted;
  }
  return FilterWithNegativeRules(negative_rules_, left, right, ml_predicted,
                                 flipped);
}

Result<WorkflowRunResult> EmWorkflow::Run(const Table& left,
                                          const Table& right) const {
  WorkflowRunResult out;
  EMX_ASSIGN_OR_RETURN(out.sure_matches, RunPositiveRules(left, right));
  EMX_ASSIGN_OR_RETURN(out.candidates,
                       RunBlocking(left, right, out.sure_matches));
  out.ml_input = CandidateSet::Minus(out.candidates, out.sure_matches);
  EMX_ASSIGN_OR_RETURN(out.ml_predicted,
                       RunMatching(left, right, out.ml_input));
  EMX_ASSIGN_OR_RETURN(
      out.after_rules,
      RunNegativeRules(left, right, out.ml_predicted, &out.flipped));
  out.final_matches = CandidateSet::Union(out.sure_matches, out.after_rules);
  out.provenance.Add(out.sure_matches, "sure_rule");
  out.provenance.Add(out.after_rules, "ml");
  return out;
}

std::string EmWorkflow::Describe() const {
  std::string out = "EmWorkflow:\n";
  out += "  positive rules (" + std::to_string(positive_rules_.size()) + "):\n";
  for (const MatchRule& r : positive_rules_) {
    out += "    - " + r.name + "\n";
  }
  out += "  blockers (" + std::to_string(blockers_.size()) + "):\n";
  for (const auto& b : blockers_) {
    out += "    - " + b->name() + "\n";
  }
  if (matcher_ != nullptr) {
    out += "  matcher: " + matcher_->name() + " over " +
           std::to_string(features_.features.size()) + " features\n";
  } else {
    out += "  matcher: (none)\n";
  }
  out += "  negative rules (" + std::to_string(negative_rules_.size()) + "):\n";
  for (const MatchRule& r : negative_rules_) {
    out += "    - " + r.name + "\n";
  }
  return out;
}

MatchSet MergeBranches(const std::vector<const WorkflowRunResult*>& branches) {
  MatchSet merged;
  for (const WorkflowRunResult* b : branches) {
    merged.Add(b->sure_matches, "sure_rule", /*overwrite=*/true);
    merged.Add(b->after_rules, "ml", /*overwrite=*/false);
  }
  return merged;
}

}  // namespace emx
