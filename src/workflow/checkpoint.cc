#include "src/workflow/checkpoint.h"

#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "src/core/failpoint.h"
#include "src/core/fileio.h"
#include "src/core/logging.h"
#include "src/core/strings.h"

namespace emx {

namespace {
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "emx-checkpoint v1";

// Artifact file name for a stage: path-hostile characters flattened, plus a
// short name hash so distinct stages can never collide after sanitizing.
std::string ArtifactNameForStage(const std::string& stage) {
  std::string safe;
  safe.reserve(stage.size());
  for (char c : stage) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    safe += ok ? c : '_';
  }
  return safe + "-" + HashHex(Fnv1a64(stage)).substr(8) + ".art";
}
}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string HashHex(uint64_t h) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

Result<CheckpointStore> CheckpointStore::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + dir + ": " +
                           ec.message());
  }
  CheckpointStore store(dir);
  store.LoadManifest();
  return store;
}

std::string CheckpointStore::ManifestPath() const {
  return dir_ + "/" + kManifestName;
}

std::string CheckpointStore::ArtifactPath(const CheckpointEntry& entry) const {
  return dir_ + "/" + entry.artifact;
}

void CheckpointStore::LoadManifest() {
  entries_.clear();
  Result<std::string> content = ReadFileToString(ManifestPath());
  if (!content.ok()) {
    if (content.status().code() != StatusCode::kNotFound) {
      EMX_LOG(Warning) << "checkpoint manifest unreadable ("
                       << content.status().ToString()
                       << "); starting from an empty store";
    }
    return;
  }
  std::vector<std::string> lines = Split(*content, '\n');
  if (lines.empty() || lines[0] != kManifestHeader) {
    EMX_LOG(Warning) << "checkpoint manifest at " << ManifestPath()
                     << " has a bad header; ignoring it";
    return;
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> parts = SplitWhitespace(lines[i]);
    if (parts.size() != 5) {
      EMX_LOG(Warning) << "checkpoint manifest line " << (i + 1)
                       << " is malformed; dropping the entry";
      continue;
    }
    CheckpointEntry entry;
    entry.stage = parts[0];
    entry.fingerprint = parts[1];
    entry.artifact = parts[2];
    entry.checksum = parts[3];
    char* end = nullptr;
    entry.bytes = std::strtoull(parts[4].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      EMX_LOG(Warning) << "checkpoint manifest line " << (i + 1)
                       << " has a bad size; dropping the entry";
      continue;
    }
    entries_[entry.stage] = std::move(entry);
  }
}

Status CheckpointStore::WriteManifest() const {
  std::string out = kManifestHeader;
  out += '\n';
  for (const auto& [stage, entry] : entries_) {
    out += entry.stage + " " + entry.fingerprint + " " + entry.artifact +
           " " + entry.checksum + " " + std::to_string(entry.bytes) + "\n";
  }
  return WriteFileAtomic(out, ManifestPath());
}

Status CheckpointStore::Put(const std::string& stage,
                            const std::string& fingerprint,
                            const std::string& content) {
  EMX_FAILPOINT("checkpoint/write");
  CheckpointEntry entry;
  entry.stage = stage;
  entry.fingerprint = fingerprint;
  entry.artifact = ArtifactNameForStage(stage);
  entry.checksum = HashHex(Fnv1a64(content));
  entry.bytes = content.size();
  // Artifact first, manifest second: a crash between the two leaves an
  // artifact no manifest entry points at (harmless), never a manifest entry
  // pointing at a missing or stale artifact with a fresh checksum.
  EMX_RETURN_IF_ERROR(WriteFileAtomic(content, ArtifactPath(entry)));
  entries_[stage] = std::move(entry);
  return WriteManifest();
}

Result<std::string> CheckpointStore::Get(const std::string& stage,
                                         const std::string& fingerprint) const {
  EMX_FAILPOINT("checkpoint/read");
  auto it = entries_.find(stage);
  if (it == entries_.end()) {
    return Status::NotFound("no checkpoint for stage '" + stage + "'");
  }
  const CheckpointEntry& entry = it->second;
  if (entry.fingerprint != fingerprint) {
    return Status::NotFound("checkpoint for stage '" + stage +
                            "' is stale (fingerprint " + entry.fingerprint +
                            ", want " + fingerprint + ")");
  }
  EMX_ASSIGN_OR_RETURN(std::string content,
                       ReadFileToString(ArtifactPath(entry)));
  if (content.size() != entry.bytes) {
    return Status::FailedPrecondition(
        "checkpoint artifact for stage '" + stage + "' is " +
        std::to_string(content.size()) + " bytes, manifest says " +
        std::to_string(entry.bytes) + " (truncated?)");
  }
  if (std::string checksum = HashHex(Fnv1a64(content));
      checksum != entry.checksum) {
    return Status::FailedPrecondition(
        "checkpoint artifact for stage '" + stage +
        "' fails its checksum (got " + checksum + ", manifest says " +
        entry.checksum + ")");
  }
  return content;
}

}  // namespace emx
