#ifndef EMX_WORKFLOW_CLUSTER_ANALYSIS_H_
#define EMX_WORKFLOW_CLUSTER_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/block/candidate_set.h"

namespace emx {

// §10's "Should We Match at the Cluster Level?" tooling. The UMETRICS team
// initially demanded one-to-one matches; the EM team's response was to
// quantify how much one-to-many/many-to-one structure the match set
// actually contained ("if a problem affects only a small number of
// matches, it is not worth spending a lot of effort to solve it").

// Per-pair cardinality classification of a match set.
struct CardinalityStats {
  size_t one_to_one = 0;    // pairs whose left AND right match exactly once
  size_t one_to_many = 0;   // left matches several rights; right matches once
  size_t many_to_one = 0;   // right matches several lefts; left matches once
  size_t many_to_many = 0;  // both sides match several times
  size_t total = 0;

  double OneToOneShare() const {
    return total == 0 ? 0.0
                      : static_cast<double>(one_to_one) /
                            static_cast<double>(total);
  }
  std::string ToString() const;
};

CardinalityStats AnalyzeCardinality(const CandidateSet& matches);

// Connected components of the bipartite match graph — each component is a
// "cluster" in the sub-award sense (all records describing one grant).
// Components are returned as pair lists, ordered by smallest left index.
std::vector<std::vector<RecordPair>> MatchClusters(const CandidateSet& matches);

// Greedy maximum-weight one-to-one restriction: repeatedly commits the
// highest-scored remaining pair whose endpoints are both unused.
// `scores[i]` corresponds to matches[i]; ties break toward the earlier
// pair, so the result is deterministic. This is the cluster-level
// "one cluster matches at most one cluster" semantics collapsed to the
// record level.
CandidateSet GreedyOneToOne(const CandidateSet& matches,
                            const std::vector<double>& scores);

}  // namespace emx

#endif  // EMX_WORKFLOW_CLUSTER_ANALYSIS_H_
