#ifndef EMX_WORKFLOW_EM_WORKFLOW_H_
#define EMX_WORKFLOW_EM_WORKFLOW_H_

#include <memory>
#include <string>
#include <vector>

#include "src/block/blocker.h"
#include "src/block/candidate_set.h"
#include "src/core/executor.h"
#include "src/core/result.h"
#include "src/feature/feature_gen.h"
#include "src/feature/vectorizer.h"
#include "src/ml/matcher.h"
#include "src/prep/prepared_column.h"
#include "src/rules/match_rules.h"
#include "src/workflow/match_set.h"

namespace emx {

// One run of the paper's workflow topology over a (left, right) table pair
// — Figure 10's shape, which degrades gracefully to Figures 8/9 when the
// positive-rule / negative-rule stages are empty:
//
//   positive rules --------------------> sure matches C1
//   blockers (unioned) + C1 -----------> candidate set C2
//   C = C2 - C1 --vectorize--matcher---> predicted R
//   R - negative rules ----------------> S
//   final = C1 ∪ S
struct WorkflowRunResult {
  CandidateSet sure_matches;     // C1
  CandidateSet candidates;       // C2 (blockers ∪ C1)
  CandidateSet ml_input;         // C2 − C1
  CandidateSet ml_predicted;     // R
  CandidateSet flipped;          // R ∩ negative-rule firings
  CandidateSet after_rules;      // S = R − flipped
  CandidateSet final_matches;    // C1 ∪ S
  MatchSet provenance;           // tags: "sure_rule" / "ml"
};

// A fully configured end-to-end EM workflow. Stages are optional:
// a workflow with only positive rules is the §10 "patch" workflow; one with
// only blockers+matcher is Figure 8.
class EmWorkflow {
 public:
  EmWorkflow() = default;

  void AddPositiveRule(MatchRule rule) {
    positive_rules_.push_back(std::move(rule));
  }
  // Registers a blocker and hands it the workflow's shared prep cache, so
  // blockers over the same (attribute, tokenizer, normalization) — e.g. the
  // paper's overlap + overlap-coefficient pair on Title — share a single
  // tokenized-column pass and one token-id universe.
  void AddBlocker(std::shared_ptr<Blocker> blocker) {
    blocker->set_prep_cache(prep_cache_);
    blockers_.push_back(std::move(blocker));
  }
  void AddNegativeRule(MatchRule rule) {
    negative_rules_.push_back(std::move(rule));
  }

  // Installs the trained ML stage. The imputer must already be fitted on
  // the training matrix so production pairs are imputed with TRAINING
  // means (the §9 procedure).
  void SetMatcher(std::shared_ptr<MlMatcher> matcher, FeatureSet features,
                  MeanImputer imputer);

  // Executor every stage of Run executes on: the blockers fan out across
  // it (unioned deterministically in registration order), vectorization
  // fills feature rows on it, and the installed matcher inherits it for
  // its own internal parallelism. Default: the shared pool. The workflow's
  // OUTPUT is identical at any thread count — parallelism here is pure
  // wall-clock.
  void SetExecutor(const ExecutorContext& ctx);
  const ExecutorContext& executor_context() const { return exec_ctx_; }

  const std::vector<MatchRule>& positive_rules() const {
    return positive_rules_;
  }
  const std::vector<MatchRule>& negative_rules() const {
    return negative_rules_;
  }
  // Read access to the configured stages, in registration order — the
  // handoff surface MatchService::Create consumes to package a trained
  // batch workflow into a resident serving instance.
  const std::vector<std::shared_ptr<Blocker>>& blockers() const {
    return blockers_;
  }
  const std::shared_ptr<MlMatcher>& matcher() const { return matcher_; }
  const FeatureSet& features() const { return features_; }
  const MeanImputer& imputer() const { return imputer_; }

  // Executes all configured stages on one table pair. Composed from the
  // per-stage entry points below; PipelineRunner (pipeline_runner.h) drives
  // the same stages with checkpoint/resume in between. Each stage carries a
  // fault-injection failpoint ("workflow/positive_rules", "workflow/block",
  // "workflow/match", "workflow/negative_rules") at its boundary.
  Result<WorkflowRunResult> Run(const Table& left, const Table& right) const;

  // Stage 1: sure matches (C1) from the positive rules; empty when none are
  // configured.
  Result<CandidateSet> RunPositiveRules(const Table& left,
                                        const Table& right) const;
  // Stage 2: the candidate set C2 = (union of blockers) ∪ `sure_matches`.
  Result<CandidateSet> RunBlocking(const Table& left, const Table& right,
                                   const CandidateSet& sure_matches) const;
  // Stage 3: ML predictions R over `ml_input` (C2 − C1); empty when no
  // matcher is installed or the input is empty.
  Result<CandidateSet> RunMatching(const Table& left, const Table& right,
                                   const CandidateSet& ml_input) const;
  // Stage 4: S = R − negative-rule firings; `flipped` (may be null)
  // receives R ∩ firings. Pass-through when no negative rules configured.
  Result<CandidateSet> RunNegativeRules(const Table& left, const Table& right,
                                        const CandidateSet& ml_predicted,
                                        CandidateSet* flipped) const;

  bool has_matcher() const { return matcher_ != nullptr; }

  // The workflow-scoped prep cache: one normalization + tokenization +
  // token-id pass per (column, prep config), shared by every blocker and
  // the vectorize stage, across Run calls over the same tables. Entries key
  // on column storage identity, so the cache must not be read against
  // tables that died (call ClearPrepCache when swapping table generations;
  // checkpoint/resume never persists it — see DESIGN.md §8).
  const std::shared_ptr<PrepCache>& prep_cache() const { return prep_cache_; }
  void ClearPrepCache() const { prep_cache_->Clear(); }

  // A human-readable description of the configured stages — the §12/§13
  // "how to represent the EM workflow effectively" concern: the packaged
  // workflow must be inspectable when it moves to production.
  std::string Describe() const;

 private:
  std::vector<MatchRule> positive_rules_;
  std::vector<std::shared_ptr<Blocker>> blockers_;
  std::vector<MatchRule> negative_rules_;
  std::shared_ptr<MlMatcher> matcher_;
  FeatureSet features_;
  MeanImputer imputer_;
  ExecutorContext exec_ctx_;
  std::shared_ptr<PrepCache> prep_cache_ = std::make_shared<PrepCache>();
};

// Merges branch results when a workflow is run over several input batches
// (Figure 9: original + extra records). Later results patch earlier ones.
MatchSet MergeBranches(const std::vector<const WorkflowRunResult*>& branches);

}  // namespace emx

#endif  // EMX_WORKFLOW_EM_WORKFLOW_H_
