#ifndef EMX_WORKFLOW_MATCH_SET_H_
#define EMX_WORKFLOW_MATCH_SET_H_

#include <map>
#include <string>
#include <vector>

#include "src/block/candidate_set.h"

namespace emx {

// The final output of an EM workflow: matched pairs, each tagged with the
// stage that produced it ("sure_rule", "ml", ...). When workflows are
// patched together (§10), the NEWER workflow's verdict wins for pairs both
// produce — pass overwrite=true for the patch.
class MatchSet {
 public:
  MatchSet() = default;

  // Adds all of `pairs` with the given provenance tag. With overwrite set,
  // existing provenance for a pair is replaced; otherwise first writer wins.
  void Add(const CandidateSet& pairs, const std::string& provenance,
           bool overwrite = false);

  // Removes pairs (e.g. negative-rule flips applied after the fact).
  void Remove(const CandidateSet& pairs);

  size_t size() const { return provenance_.size(); }
  bool Contains(const RecordPair& pair) const {
    return provenance_.count(pair) > 0;
  }

  // Provenance of one pair ("" when absent).
  std::string ProvenanceOf(const RecordPair& pair) const;

  // All matched pairs as a CandidateSet.
  CandidateSet AsCandidateSet() const;

  // Pair count per provenance tag.
  std::map<std::string, size_t> CountsByProvenance() const;

 private:
  std::map<RecordPair, std::string> provenance_;
};

}  // namespace emx

#endif  // EMX_WORKFLOW_MATCH_SET_H_
