#include "src/workflow/pipeline_runner.h"

#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "src/core/logging.h"
#include "src/table/csv.h"
#include "src/workflow/checkpoint.h"

namespace emx {

namespace {

// Runs one stage's compute inside an exception wall: anything thrown (an
// injected executor fault, a bad_alloc in a blocker) becomes an Internal
// Status instead of unwinding across the library boundary.
Result<CandidateSet> ComputeContained(
    const std::string& stage,
    const std::function<Result<CandidateSet>()>& compute) {
  try {
    return compute();
  } catch (const std::exception& e) {
    return Status::Internal("stage '" + stage +
                            "' threw: " + std::string(e.what()));
  } catch (...) {
    return Status::Internal("stage '" + stage +
                            "' threw a non-standard exception");
  }
}

// Chains a stage fingerprint from the upstream fingerprint plus the
// serialized upstream artifact, so a stage is only ever resumed against the
// exact bytes its checkpointed output was computed from.
std::string ChainFingerprint(const std::string& upstream,
                             const std::string& artifact,
                             const std::string& stage) {
  return HashHex(
      Fnv1a64(upstream + "|" + HashHex(Fnv1a64(artifact)) + "|" + stage));
}

}  // namespace

PipelineRunner::PipelineRunner(const EmWorkflow* workflow,
                               PipelineOptions options)
    : workflow_(workflow), options_(std::move(options)) {}

Result<WorkflowRunResult> PipelineRunner::Run(const Table& left,
                                              const Table& right) {
  // Prepared-column state is never checkpointed and never resumed: it keys
  // on live column storage, and a resumed process (or a runner re-driving a
  // workflow against re-loaded tables) must not pair fresh columns with
  // entries prepped from a prior table generation. Dropping it here only
  // costs one re-prep per column; outstanding readers keep their refs.
  workflow_->ClearPrepCache();

  std::optional<CheckpointStore> store;
  if (!options_.checkpoint_dir.empty()) {
    auto opened = CheckpointStore::Open(options_.checkpoint_dir);
    if (!opened.ok()) return opened.status();
    store.emplace(std::move(*opened));
  }

  // Tries to resume `stage`; returns nullopt when the stage must be
  // (re)computed. Any checkpoint defect short of a clean hit degrades to
  // recomputation with a warning.
  auto try_resume =
      [&](const std::string& stage,
          const std::string& fingerprint) -> std::optional<CandidateSet> {
    if (!store || !options_.resume) return std::nullopt;
    Result<std::string> cached = store->Get(stage, fingerprint);
    if (!cached.ok()) {
      if (cached.status().code() == StatusCode::kNotFound) {
        EMX_LOG(Info) << "pipeline: no checkpoint for stage '" << stage
                      << "' (" << cached.status().message()
                      << "); computing";
      } else {
        EMX_LOG(Warning) << "pipeline: checkpoint for stage '" << stage
                         << "' unusable (" << cached.status().ToString()
                         << "); recomputing";
      }
      return std::nullopt;
    }
    Result<CandidateSet> set = DeserializeCandidateSet(*cached);
    if (!set.ok()) {
      EMX_LOG(Warning) << "pipeline: checkpoint artifact for stage '" << stage
                       << "' does not parse (" << set.status().ToString()
                       << "); recomputing";
      return std::nullopt;
    }
    EMX_LOG(Info) << "pipeline: stage '" << stage
                  << "' resumed from checkpoint (" << set->size()
                  << " pairs)";
    return std::move(*set);
  };

  // Resume-or-compute-and-persist for one stage.
  auto run_stage =
      [&](const std::string& stage, const std::string& fingerprint,
          const std::function<Result<CandidateSet>()>& compute)
      -> Result<CandidateSet> {
    if (std::optional<CandidateSet> resumed = try_resume(stage, fingerprint)) {
      return std::move(*resumed);
    }
    Result<CandidateSet> computed = ComputeContained(stage, compute);
    if (!computed.ok()) return computed;
    if (store) {
      EMX_RETURN_IF_ERROR(
          store->Put(stage, fingerprint, SerializeCandidateSet(*computed)));
    }
    return computed;
  };

  // The base fingerprint covers everything every stage depends on: both
  // input tables (content, not path) and the full workflow configuration.
  const std::string base = HashHex(Fnv1a64(
      WriteCsvString(left) + "\x1f" + WriteCsvString(right) + "\x1f" +
      workflow_->Describe()));

  WorkflowRunResult out;

  const std::string fp_sure = ChainFingerprint(base, "", "sure_matches");
  EMX_ASSIGN_OR_RETURN(
      out.sure_matches,
      run_stage("sure_matches", fp_sure,
                [&] { return workflow_->RunPositiveRules(left, right); }));

  const std::string fp_candidates = ChainFingerprint(
      fp_sure, SerializeCandidateSet(out.sure_matches), "candidates");
  EMX_ASSIGN_OR_RETURN(
      out.candidates,
      run_stage("candidates", fp_candidates, [&] {
        return workflow_->RunBlocking(left, right, out.sure_matches);
      }));

  // Cheap, deterministic set algebra — recomputed, never checkpointed.
  out.ml_input = CandidateSet::Minus(out.candidates, out.sure_matches);

  const std::string fp_predicted = ChainFingerprint(
      fp_candidates, SerializeCandidateSet(out.ml_input), "ml_predicted");
  EMX_ASSIGN_OR_RETURN(
      out.ml_predicted,
      run_stage("ml_predicted", fp_predicted, [&] {
        return workflow_->RunMatching(left, right, out.ml_input);
      }));

  // The negative-rule stage produces two sets from one computation; both are
  // checkpointed under the same fingerprint, and resume requires both.
  const std::string fp_rules = ChainFingerprint(
      fp_predicted, SerializeCandidateSet(out.ml_predicted), "negative_rules");
  std::optional<CandidateSet> after = try_resume("after_rules", fp_rules);
  std::optional<CandidateSet> flipped =
      after ? try_resume("flipped", fp_rules) : std::nullopt;
  if (after && flipped) {
    out.after_rules = std::move(*after);
    out.flipped = std::move(*flipped);
  } else {
    Result<CandidateSet> computed =
        ComputeContained("negative_rules", [&] {
          return workflow_->RunNegativeRules(left, right, out.ml_predicted,
                                             &out.flipped);
        });
    if (!computed.ok()) return computed.status();
    out.after_rules = std::move(*computed);
    if (store) {
      EMX_RETURN_IF_ERROR(store->Put("after_rules", fp_rules,
                                     SerializeCandidateSet(out.after_rules)));
      EMX_RETURN_IF_ERROR(store->Put("flipped", fp_rules,
                                     SerializeCandidateSet(out.flipped)));
    }
  }

  out.final_matches = CandidateSet::Union(out.sure_matches, out.after_rules);
  out.provenance.Add(out.sure_matches, "sure_rule");
  out.provenance.Add(out.after_rules, "ml");
  return out;
}

}  // namespace emx
