#ifndef EMX_WORKFLOW_CHECKPOINT_H_
#define EMX_WORKFLOW_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/core/result.h"
#include "src/core/status.h"

namespace emx {

// Stage-level checkpointing for long-lived pipeline runs.
//
// A CheckpointStore is a directory holding one artifact file per pipeline
// stage plus a versioned MANIFEST recording, for each stage: the
// fingerprint of everything the stage's output depends on (input tables,
// workflow config, upstream artifacts), the artifact file name, and a
// content checksum. Writes are crash-safe (temp file + rename, artifact
// before manifest), so an interrupted run leaves either the previous
// consistent state or the new one — never a half-written artifact that a
// resume would trust. Reads verify size + checksum and report corruption as
// an error the caller downgrades to recomputation: a checkpoint is a cache,
// and a damaged cache entry must never be able to fail a run that could
// simply redo the work.

// FNV-1a 64-bit hash used for stage fingerprints and artifact checksums.
// Platform- and run-stable (no pointer or time inputs).
uint64_t Fnv1a64(std::string_view data);

// Lower-case fixed-width hex of `h`, the manifest encoding.
std::string HashHex(uint64_t h);

// One manifest entry.
struct CheckpointEntry {
  std::string stage;
  std::string fingerprint;  // HashHex of the stage's input dependencies
  std::string artifact;     // file name within the store directory
  std::string checksum;     // HashHex of the artifact content
  uint64_t bytes = 0;       // artifact size, a cheap pre-checksum gate
};

class CheckpointStore {
 public:
  // Opens `dir`, creating it if needed, and loads its manifest. A missing
  // manifest is an empty store; an unreadable or corrupt one logs a warning
  // and also yields an empty store — never an error, because losing a cache
  // must not lose the run. IoError only when the directory itself cannot be
  // created.
  static Result<CheckpointStore> Open(const std::string& dir);

  const std::string& dir() const { return dir_; }

  // Atomically writes `content` as `stage`'s artifact and records it in the
  // manifest (also rewritten atomically). Overwrites any previous artifact
  // for the stage. Failpoint: "checkpoint/write".
  Status Put(const std::string& stage, const std::string& fingerprint,
             const std::string& content);

  // Returns the artifact content when `stage` is present, its recorded
  // fingerprint equals `fingerprint`, and the content passes its size and
  // checksum gates. NotFound for absent or fingerprint-stale entries;
  // FailedPrecondition for corruption; IoError for unreadable files.
  // Callers treat every failure as "recompute". Failpoint: "checkpoint/read".
  Result<std::string> Get(const std::string& stage,
                          const std::string& fingerprint) const;

  bool Has(const std::string& stage) const {
    return entries_.count(stage) > 0;
  }
  size_t size() const { return entries_.size(); }

 private:
  explicit CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

  std::string ManifestPath() const;
  std::string ArtifactPath(const CheckpointEntry& entry) const;
  Status WriteManifest() const;
  void LoadManifest();

  std::string dir_;
  std::map<std::string, CheckpointEntry> entries_;  // keyed by stage
};

}  // namespace emx

#endif  // EMX_WORKFLOW_CHECKPOINT_H_
