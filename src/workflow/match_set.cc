#include "src/workflow/match_set.h"

namespace emx {

void MatchSet::Add(const CandidateSet& pairs, const std::string& provenance,
                   bool overwrite) {
  for (const RecordPair& p : pairs) {
    if (overwrite) {
      provenance_[p] = provenance;
    } else {
      provenance_.try_emplace(p, provenance);
    }
  }
}

void MatchSet::Remove(const CandidateSet& pairs) {
  for (const RecordPair& p : pairs) provenance_.erase(p);
}

std::string MatchSet::ProvenanceOf(const RecordPair& pair) const {
  auto it = provenance_.find(pair);
  return it == provenance_.end() ? "" : it->second;
}

CandidateSet MatchSet::AsCandidateSet() const {
  std::vector<RecordPair> pairs;
  pairs.reserve(provenance_.size());
  for (const auto& [p, tag] : provenance_) pairs.push_back(p);
  return CandidateSet(std::move(pairs));
}

std::map<std::string, size_t> MatchSet::CountsByProvenance() const {
  std::map<std::string, size_t> counts;
  for (const auto& [p, tag] : provenance_) ++counts[tag];
  return counts;
}

}  // namespace emx
