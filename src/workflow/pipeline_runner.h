#ifndef EMX_WORKFLOW_PIPELINE_RUNNER_H_
#define EMX_WORKFLOW_PIPELINE_RUNNER_H_

#include <string>

#include "src/core/result.h"
#include "src/workflow/em_workflow.h"

namespace emx {

struct PipelineOptions {
  // Directory for stage checkpoints; empty disables checkpointing.
  std::string checkpoint_dir;
  // Reuse checkpointed stages whose fingerprints match instead of
  // recomputing them. Without it an existing checkpoint directory is
  // overwritten as stages complete.
  bool resume = false;
};

// Drives an EmWorkflow stage by stage with checkpoint/resume.
//
// After each stage (sure_matches → candidates → ml_predicted →
// flipped/after_rules) the stage's output is persisted to the checkpoint
// store under a fingerprint chaining the input tables, the workflow
// configuration, and every upstream artifact. A rerun with `resume` skips
// any stage whose fingerprint matches a stored, checksum-clean artifact —
// so a run killed at any point restarts from the last completed stage and,
// because every stage is deterministic at any thread count, produces
// bit-identical final_matches and provenance to an uninterrupted run.
//
// Robustness posture:
//  - A truncated, corrupted, or stale checkpoint logs a warning and
//    recomputes the stage; it can never fail the run.
//  - A FAILED checkpoint WRITE fails the run (the caller asked for
//    durability it isn't getting).
//  - Exceptions escaping a stage (e.g. an injected executor-dispatch fault)
//    are contained and surfaced as an Internal Status, preserving the
//    library's no-throw API boundary.
class PipelineRunner {
 public:
  explicit PipelineRunner(const EmWorkflow* workflow,
                          PipelineOptions options = {});

  // Executes the workflow over one table pair. Bit-identical to
  // workflow->Run(left, right) whether or not stages were resumed.
  Result<WorkflowRunResult> Run(const Table& left, const Table& right);

 private:
  const EmWorkflow* workflow_;  // not owned
  PipelineOptions options_;
};

}  // namespace emx

#endif  // EMX_WORKFLOW_PIPELINE_RUNNER_H_
