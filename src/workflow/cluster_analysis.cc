#include "src/workflow/cluster_analysis.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/core/logging.h"
#include "src/core/strings.h"

namespace emx {

CardinalityStats AnalyzeCardinality(const CandidateSet& matches) {
  std::unordered_map<uint32_t, size_t> left_degree, right_degree;
  for (const RecordPair& p : matches) {
    ++left_degree[p.left];
    ++right_degree[p.right];
  }
  CardinalityStats s;
  s.total = matches.size();
  for (const RecordPair& p : matches) {
    bool left_many = left_degree[p.left] > 1;
    bool right_many = right_degree[p.right] > 1;
    if (!left_many && !right_many) {
      ++s.one_to_one;
    } else if (left_many && !right_many) {
      ++s.one_to_many;
    } else if (!left_many && right_many) {
      ++s.many_to_one;
    } else {
      ++s.many_to_many;
    }
  }
  return s;
}

std::string CardinalityStats::ToString() const {
  return StrFormat(
      "1:1=%zu 1:n=%zu n:1=%zu n:m=%zu (total %zu, %.1f%% one-to-one)",
      one_to_one, one_to_many, many_to_one, many_to_many, total,
      OneToOneShare() * 100.0);
}

namespace {

// Union-find over 64-bit node ids (left rows and right rows live in
// disjoint id spaces).
class UnionFind {
 public:
  uint64_t Find(uint64_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    // Path compression (iterative).
    uint64_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      uint64_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void Union(uint64_t a, uint64_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::unordered_map<uint64_t, uint64_t> parent_;
};

uint64_t LeftNode(uint32_t row) { return row; }
uint64_t RightNode(uint32_t row) { return (1ULL << 32) | row; }

}  // namespace

std::vector<std::vector<RecordPair>> MatchClusters(
    const CandidateSet& matches) {
  UnionFind uf;
  for (const RecordPair& p : matches) {
    uf.Union(LeftNode(p.left), RightNode(p.right));
  }
  // Group pairs by root; std::map keys make the output order deterministic
  // (roots compare by the smallest pair's component id encountered first).
  std::map<uint64_t, std::vector<RecordPair>> groups;
  for (const RecordPair& p : matches) {
    groups[uf.Find(LeftNode(p.left))].push_back(p);
  }
  std::vector<std::vector<RecordPair>> out;
  out.reserve(groups.size());
  for (auto& [root, pairs] : groups) {
    std::sort(pairs.begin(), pairs.end());
    out.push_back(std::move(pairs));
  }
  std::sort(out.begin(), out.end(),
            [](const std::vector<RecordPair>& a,
               const std::vector<RecordPair>& b) { return a[0] < b[0]; });
  return out;
}

CandidateSet GreedyOneToOne(const CandidateSet& matches,
                            const std::vector<double>& scores) {
  EMX_CHECK(scores.size() == matches.size())
      << "GreedyOneToOne: scores misaligned (" << scores.size() << " vs "
      << matches.size() << ")";
  std::vector<size_t> order(matches.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::unordered_set<uint32_t> used_left, used_right;
  std::vector<RecordPair> out;
  for (size_t i : order) {
    const RecordPair& p = matches[i];
    if (used_left.count(p.left) || used_right.count(p.right)) continue;
    used_left.insert(p.left);
    used_right.insert(p.right);
    out.push_back(p);
  }
  return CandidateSet(std::move(out));
}

}  // namespace emx
