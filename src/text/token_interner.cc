#include "src/text/token_interner.h"

#include <atomic>

namespace emx {

uint64_t TokenInterner::NextUid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

uint32_t TokenInterner::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(token);
  ids_.emplace(strings_.back(), id);
  return id;
}

std::optional<uint32_t> TokenInterner::Find(std::string_view token) const {
  auto it = ids_.find(token);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace emx
