#ifndef EMX_TEXT_TOKENIZER_H_
#define EMX_TEXT_TOKENIZER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace emx {

// Splits a string into tokens. Implementations are stateless and
// thread-compatible; `unique` controls set vs bag semantics (set semantics
// are what the paper's overlap/Jaccard blockers use).
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  // Tokenizes `s`. When `unique()` is set, duplicates are removed (first
  // occurrence order preserved).
  std::vector<std::string> Tokenize(std::string_view s) const;

  // A stable name for feature naming, e.g. "ws", "qgm_3".
  virtual std::string name() const = 0;

  bool unique() const { return unique_; }
  void set_unique(bool unique) { unique_ = unique; }

 protected:
  virtual std::vector<std::string> TokenizeImpl(std::string_view s) const = 0;

 private:
  bool unique_ = true;
};

// Tokens are maximal runs of non-whitespace ("word-level tokenizer" in §7).
class WhitespaceTokenizer : public Tokenizer {
 public:
  std::string name() const override { return "ws"; }

 protected:
  std::vector<std::string> TokenizeImpl(std::string_view s) const override;
};

// Tokens are maximal runs of [A-Za-z0-9]; punctuation separates.
class AlphanumericTokenizer : public Tokenizer {
 public:
  std::string name() const override { return "alnum"; }

 protected:
  std::vector<std::string> TokenizeImpl(std::string_view s) const override;
};

// Sliding character q-grams. With `pad` set, the string is padded with q-1
// leading/trailing '#'/'$' sentinels (py_stringmatching convention), so
// "ab" with q=3 yields {"##a","#ab","ab$","b$$"}.
class QgramTokenizer : public Tokenizer {
 public:
  explicit QgramTokenizer(int q, bool pad = true);

  std::string name() const override { return "qgm_" + std::to_string(q_); }
  int q() const { return q_; }

 protected:
  std::vector<std::string> TokenizeImpl(std::string_view s) const override;

 private:
  int q_;
  bool pad_;
};

// Splits on a fixed delimiter character (used for the '|'-joined employee
// name lists of §6).
class DelimiterTokenizer : public Tokenizer {
 public:
  explicit DelimiterTokenizer(char delim) : delim_(delim) {}

  std::string name() const override { return std::string("delim_") + delim_; }

 protected:
  std::vector<std::string> TokenizeImpl(std::string_view s) const override;

 private:
  char delim_;
};

}  // namespace emx

#endif  // EMX_TEXT_TOKENIZER_H_
