#include "src/text/sequence_similarity.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/text/sequence_kernel.h"

namespace emx {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  return MyersLevenshtein(a, b, &DpScratch::Tls());
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(mx);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size(), lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;
  const int window =
      std::max(0, static_cast<int>(std::max(la, lb)) / 2 - 1);
  // Match flags as plain bytes from the thread's scratch: no per-call
  // vector<bool> allocations and no bitset-proxy reads in the hot loops.
  uint8_t* a_match = DpScratch::Tls().Bytes(la + lb);
  uint8_t* b_match = a_match + la;
  std::memset(a_match, 0, la + lb);
  int matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = (static_cast<int>(i) > window) ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_match[j] && a[i] == b[j]) {
        a_match[i] = 1;
        b_match[j] = 1;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions between matched characters in order.
  int transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b, double p) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * p * (1.0 - jaro);
}

double NeedlemanWunschScore(std::string_view a, std::string_view b,
                            double match, double mismatch, double gap) {
  // The score is symmetric (transposing the DP matrix swaps the roles of the
  // up/left gap candidates, and max over the same values is unchanged), so
  // orient the LONGER string as the inner row: fewer row initializations and
  // a better-amortized hoisted outer character. Matches the Levenshtein
  // convention of normalizing orientation before the DP.
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size(), n = b.size();
  double* prev = DpScratch::Tls().Doubles(2 * (n + 1));
  double* cur = prev + (n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = gap * static_cast<double>(j);
  for (size_t i = 1; i <= m; ++i) {
    const char ai = a[i - 1];
    cur[0] = gap * static_cast<double>(i);
    for (size_t j = 1; j <= n; ++j) {
      double diag = prev[j - 1] + (ai == b[j - 1] ? match : mismatch);
      cur[j] = std::max({diag, prev[j] + gap, cur[j - 1] + gap});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double NeedlemanWunschSimilarity(std::string_view a, std::string_view b) {
  size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0;
  double s = NeedlemanWunschScore(a, b) / static_cast<double>(mx);
  return std::clamp(s, 0.0, 1.0);
}

double SmithWatermanScore(std::string_view a, std::string_view b,
                          double match, double mismatch, double gap) {
  // Symmetric for the same reason as Needleman-Wunsch (`best` is a max over
  // every cell, and the transposed matrix holds the same cell values).
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size(), n = b.size();
  double* prev = DpScratch::Tls().Doubles(2 * (n + 1));
  double* cur = prev + (n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = 0.0;
  double best = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    const char ai = a[i - 1];
    cur[0] = 0.0;
    for (size_t j = 1; j <= n; ++j) {
      double diag = prev[j - 1] + (ai == b[j - 1] ? match : mismatch);
      cur[j] = std::max({0.0, diag, prev[j] + gap, cur[j - 1] + gap});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return best;
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  size_t mn = std::min(a.size(), b.size());
  if (mn == 0) return (a.size() == b.size()) ? 1.0 : 0.0;
  double s = SmithWatermanScore(a, b) / static_cast<double>(mn);
  return std::clamp(s, 0.0, 1.0);
}

double HammingSimilarity(std::string_view a, std::string_view b) {
  size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0;
  size_t mn = std::min(a.size(), b.size());
  size_t same = 0;
  for (size_t i = 0; i < mn; ++i) {
    if (a[i] == b[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(mx);
}

double ExactMatch(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

// --- scalar oracle ---------------------------------------------------------
// The seed implementations, unchanged. Every kernel above must reproduce
// these bit-exactly; keep them boring.

namespace oracle {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter: O(min) space
  const size_t m = a.size(), n = b.size();
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= n; ++j) {
    cur[0] = static_cast<int>(j);
    for (size_t i = 1; i <= m; ++i) {
      int sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(mx);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size(), lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;
  const int window =
      std::max(0, static_cast<int>(std::max(la, lb)) / 2 - 1);
  std::vector<bool> a_match(la, false), b_match(lb, false);
  int matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = (static_cast<int>(i) > window) ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_match[j] && a[i] == b[j]) {
        a_match[i] = true;
        b_match[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  int transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b, double p) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * p * (1.0 - jaro);
}

double NeedlemanWunschScore(std::string_view a, std::string_view b,
                            double match, double mismatch, double gap) {
  const size_t m = a.size(), n = b.size();
  std::vector<double> prev(n + 1), cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = gap * static_cast<double>(j);
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = gap * static_cast<double>(i);
    for (size_t j = 1; j <= n; ++j) {
      double diag = prev[j - 1] + (a[i - 1] == b[j - 1] ? match : mismatch);
      cur[j] = std::max({diag, prev[j] + gap, cur[j - 1] + gap});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double NeedlemanWunschSimilarity(std::string_view a, std::string_view b) {
  size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0;
  double s = NeedlemanWunschScore(a, b) / static_cast<double>(mx);
  return std::clamp(s, 0.0, 1.0);
}

double SmithWatermanScore(std::string_view a, std::string_view b,
                          double match, double mismatch, double gap) {
  const size_t m = a.size(), n = b.size();
  std::vector<double> prev(n + 1, 0.0), cur(n + 1, 0.0);
  double best = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = 0.0;
    for (size_t j = 1; j <= n; ++j) {
      double diag = prev[j - 1] + (a[i - 1] == b[j - 1] ? match : mismatch);
      cur[j] = std::max({0.0, diag, prev[j] + gap, cur[j - 1] + gap});
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return best;
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  size_t mn = std::min(a.size(), b.size());
  if (mn == 0) return (a.size() == b.size()) ? 1.0 : 0.0;
  double s = SmithWatermanScore(a, b) / static_cast<double>(mn);
  return std::clamp(s, 0.0, 1.0);
}

}  // namespace oracle

}  // namespace emx
