#include "src/text/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "src/core/strings.h"

namespace emx {

std::vector<std::string> Tokenizer::Tokenize(std::string_view s) const {
  std::vector<std::string> tokens = TokenizeImpl(s);
  if (!unique_) return tokens;
  // The set must own its keys: moving tokens into `out` would invalidate
  // any view-based key pointing at them.
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& t : tokens) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

std::vector<std::string> WhitespaceTokenizer::TokenizeImpl(
    std::string_view s) const {
  return SplitWhitespace(s);
}

std::vector<std::string> AlphanumericTokenizer::TokenizeImpl(
    std::string_view s) const {
  std::vector<std::string> out;
  size_t i = 0;
  auto is_alnum = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9');
  };
  while (i < s.size()) {
    while (i < s.size() && !is_alnum(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && is_alnum(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

QgramTokenizer::QgramTokenizer(int q, bool pad) : q_(q < 1 ? 1 : q), pad_(pad) {}

std::vector<std::string> QgramTokenizer::TokenizeImpl(std::string_view s) const {
  std::string padded;
  if (pad_) {
    padded.append(static_cast<size_t>(q_ - 1), '#');
    padded.append(s);
    padded.append(static_cast<size_t>(q_ - 1), '$');
  } else {
    padded.assign(s);
  }
  std::vector<std::string> out;
  if (padded.size() < static_cast<size_t>(q_)) return out;
  out.reserve(padded.size() - q_ + 1);
  for (size_t i = 0; i + q_ <= padded.size(); ++i) {
    out.push_back(padded.substr(i, static_cast<size_t>(q_)));
  }
  return out;
}

std::vector<std::string> DelimiterTokenizer::TokenizeImpl(
    std::string_view s) const {
  std::vector<std::string> out;
  for (auto& part : Split(s, delim_)) {
    std::string_view stripped = StripWhitespace(part);
    if (!stripped.empty()) out.emplace_back(stripped);
  }
  return out;
}

}  // namespace emx
