#ifndef EMX_TEXT_SET_SIMILARITY_H_
#define EMX_TEXT_SET_SIMILARITY_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace emx {

// Token-set similarity measures (§7 of the paper uses overlap size,
// overlap coefficient, and Jaccard). Inputs are token vectors as produced by
// a Tokenizer with unique() set; duplicate tokens in the input are treated
// as a set (deduplicated internally).

// |A ∩ B|.
size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

// |A ∩ B| / |A ∪ B|; two empty sets score 1.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

// |A ∩ B| / min(|A|, |B|); two empty sets score 1, one empty scores 0.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

// 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

// |A ∩ B| / sqrt(|A|·|B|) (set cosine).
double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

// Monge-Elkan: mean over tokens of A of the best Jaro-Winkler score against
// any token of B. Asymmetric; MongeElkanSimilarity symmetrizes by averaging
// both directions.
double MongeElkanAsymmetric(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

// TF-IDF weighted cosine over a fixed corpus vocabulary. Build once from all
// strings of both tables, then score token vectors. Unknown tokens get
// idf = log(N + 1) (treated as if they occur in no document).
class TfIdfScorer {
 public:
  TfIdfScorer() = default;

  // `documents` is the token list of each corpus string.
  explicit TfIdfScorer(const std::vector<std::vector<std::string>>& documents);

  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  size_t corpus_size() const { return num_documents_; }

 private:
  double Idf(const std::string& token) const;

  std::unordered_map<std::string, size_t> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace emx

#endif  // EMX_TEXT_SET_SIMILARITY_H_
